"""Repo-wide pytest configuration: a per-test wall-clock ceiling.

A hung simulation (an event loop that never drains, a deadlocked generator
program) would otherwise stall the whole tier-1 run.  ``pytest-timeout`` is
deliberately not a dependency — the ceiling is enforced with ``SIGALRM``,
which is enough for the single-process, main-thread way this suite runs.
The limit comes from the ``repro_test_timeout`` ini option (pyproject.toml)
and can be overridden per-invocation with ``REPRO_TEST_TIMEOUT=<seconds>``
(``0`` disables, e.g. for debugging under a debugger).
"""

import os
import signal
import threading

import pytest


def pytest_addoption(parser):
    parser.addini(
        "repro_test_timeout",
        "per-test wall-clock ceiling in seconds (0 disables)",
        default="180",
    )


@pytest.fixture(autouse=True)
def _per_test_timeout(request):
    raw = os.environ.get("REPRO_TEST_TIMEOUT")
    if raw is None:
        raw = request.config.getini("repro_test_timeout")
    limit = int(float(raw))
    usable = (
        limit > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _on_alarm(signum, frame):
        raise TimeoutError(
            f"test exceeded the {limit}s wall-clock ceiling "
            f"(REPRO_TEST_TIMEOUT overrides)"
        )

    old_handler = signal.signal(signal.SIGALRM, _on_alarm)
    signal.alarm(limit)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, old_handler)
