"""Tests for AMPI point-to-point semantics and the GPU-aware path."""

import numpy as np
import pytest

from repro.ampi import ANY_SOURCE, ANY_TAG, Ampi
from repro.ampi.datatypes import DOUBLE, INT
from repro.ampi.mpi import MpiTruncationError
from repro.charm import Charm
from repro.config import KB, MachineConfig, MB


def run_ranks(program, nodes=2, ranks_per_pe=1, max_events=5_000_000):
    charm = Charm(MachineConfig.summit(nodes=nodes))
    ampi = Ampi(charm, ranks_per_pe=ranks_per_pe)
    done = ampi.launch(program)
    charm.run_until(done, max_events=max_events)
    return charm, ampi


class TestBasicPt2Pt:
    def test_host_eager_roundtrip(self):
        out = {}

        def program(mpi):
            buf = mpi.charm.cuda.malloc_host(mpi.node, 64)
            if mpi.rank == 0:
                buf.data[:] = 5
                yield mpi.send(buf, 64, dst=1, tag=7)
            elif mpi.rank == 1:
                status = yield mpi.recv(buf, 64, src=0, tag=7)
                out["status"] = status
                out["ok"] = bool((buf.data == 5).all())

        run_ranks(program)
        assert out["ok"]
        assert out["status"].source == 0
        assert out["status"].tag == 7
        assert out["status"].count == 64

    def test_host_rndv_roundtrip(self):
        out = {}
        size = 256 * KB

        def program(mpi):
            buf = mpi.charm.cuda.malloc_host(mpi.node, size, materialize=True)
            if mpi.rank == 0:
                buf.data[:] = 9
                yield mpi.send(buf, size, dst=1, tag=1)
            elif mpi.rank == 1:
                yield mpi.recv(buf, size, src=0, tag=1)
                out["ok"] = bool((buf.data == 9).all())

        run_ranks(program)
        assert out["ok"]

    def test_device_roundtrip(self):
        out = {}

        def program(mpi):
            buf = mpi.charm.cuda.malloc(mpi.gpu, 4 * KB)
            if mpi.rank == 0:
                buf.data[:] = 3
                yield mpi.send(buf, 4 * KB, dst=1, tag=2)
            elif mpi.rank == 1:
                yield mpi.recv(buf, 4 * KB, src=0, tag=2)
                out["ok"] = bool((buf.data == 3).all())

        run_ranks(program)
        assert out["ok"]

    def test_recv_before_send_and_after(self):
        """Both matching scenarios of SIII-C2."""
        out = {"orders": []}

        def program(mpi):
            buf = mpi.charm.cuda.malloc_host(mpi.node, 8)
            if mpi.rank == 0:
                # recv posted first (request queue path)
                st = yield mpi.recv(buf, 8, src=1, tag=1)
                out["orders"].append("recv-first")
                yield mpi.send(buf, 8, dst=1, tag=2)
            elif mpi.rank == 1:
                yield mpi.send(buf, 8, dst=0, tag=1)
                # delay so the message parks in the unexpected queue
                from repro.sim.primitives import Timeout

                yield Timeout(mpi.sim, 1e-3)
                st = yield mpi.recv(buf, 8, src=0, tag=2)
                out["orders"].append("unexpected")

        run_ranks(program)
        assert sorted(out["orders"]) == ["recv-first", "unexpected"]

    def test_any_source_any_tag(self):
        out = {}

        def program(mpi):
            buf = mpi.charm.cuda.malloc_host(mpi.node, 8)
            if mpi.rank == 2:
                statuses = []
                for _ in range(2):
                    st = yield mpi.recv(buf, 8, src=ANY_SOURCE, tag=ANY_TAG)
                    statuses.append((st.source, st.tag))
                out["statuses"] = sorted(statuses)
            elif mpi.rank in (0, 1):
                yield mpi.send(buf, 8, dst=2, tag=10 + mpi.rank)

        run_ranks(program)
        assert out["statuses"] == [(0, 10), (1, 11)]

    def test_message_ordering_same_pair(self):
        out = {}

        def program(mpi):
            buf = mpi.charm.cuda.malloc_host(mpi.node, 8)
            if mpi.rank == 0:
                for i in range(6):
                    buf2 = mpi.charm.cuda.malloc_host(mpi.node, 8)
                    buf2.data[:] = i
                    yield mpi.send(buf2, 8, dst=1, tag=4)
            elif mpi.rank == 1:
                got = []
                for _ in range(6):
                    yield mpi.recv(buf, 8, src=0, tag=4)
                    got.append(int(buf.data[0]))
                out["got"] = got

        run_ranks(program)
        assert out["got"] == list(range(6))

    def test_truncation_fails_request(self):
        out = {}

        def program(mpi):
            if mpi.rank == 0:
                big = mpi.charm.cuda.malloc_host(mpi.node, 128)
                yield mpi.send(big, 128, dst=1, tag=1)
            elif mpi.rank == 1:
                small = mpi.charm.cuda.malloc_host(mpi.node, 16)
                try:
                    yield mpi.recv(small, 16, src=0, tag=1)
                except MpiTruncationError:
                    out["truncated"] = True

        run_ranks(program)
        assert out["truncated"]

    def test_sendrecv(self):
        out = {}

        def program(mpi):
            if mpi.rank > 1:
                return
            other = 1 - mpi.rank
            sb = mpi.charm.cuda.malloc_host(mpi.node, 8)
            rb = mpi.charm.cuda.malloc_host(mpi.node, 8)
            sb.data[:] = mpi.rank + 1
            yield mpi.sendrecv(sb, 8, other, rb, 8, other)
            out[mpi.rank] = int(rb.data[0])

        run_ranks(program)
        assert out == {0: 2, 1: 1}

    def test_isend_irecv_waitall(self):
        out = {}

        def program(mpi):
            if mpi.rank > 1:
                return
            other = 1 - mpi.rank
            bufs = [mpi.charm.cuda.malloc_host(mpi.node, 8) for _ in range(4)]
            reqs = [mpi.irecv(bufs[i], 8, src=other, tag=i) for i in range(2)]
            reqs += [mpi.isend(bufs[2 + i], 8, dst=other, tag=i) for i in range(2)]
            statuses = yield mpi.waitall(reqs)
            out[mpi.rank] = len(statuses)

        run_ranks(program)
        assert out == {0: 4, 1: 4}

    def test_typed_send_recv(self):
        out = {}

        def program(mpi):
            buf = mpi.charm.cuda.malloc_host(mpi.node, 10 * DOUBLE.extent)
            if mpi.rank == 0:
                yield mpi.send_typed(buf, 10, DOUBLE, dst=1, tag=3)
            elif mpi.rank == 1:
                st = yield mpi.recv_typed(buf, 10, DOUBLE, src=0, tag=3)
                out["count"] = st.count

        run_ranks(program)
        assert out["count"] == 10 * DOUBLE.extent

    def test_send_larger_than_buffer_rejected(self):
        def program(mpi):
            if mpi.rank == 0:
                buf = mpi.charm.cuda.malloc_host(mpi.node, 8)
                with pytest.raises(ValueError):
                    mpi.send(buf, 16, dst=1)
            return
            yield  # pragma: no cover - makes this a generator

        run_ranks(program)

    def test_bad_destination_rejected(self):
        def program(mpi):
            if mpi.rank == 0:
                buf = mpi.charm.cuda.malloc_host(mpi.node, 8)
                with pytest.raises(ValueError):
                    mpi.send(buf, 8, dst=999)
            return
            yield  # pragma: no cover

        run_ranks(program)


class TestGpuPath:
    def test_mixed_device_to_host_rejected(self):
        out = {}

        def program(mpi):
            if mpi.rank == 0:
                d = mpi.charm.cuda.malloc(mpi.gpu, 64)
                yield mpi.send(d, 64, dst=1, tag=1)
            elif mpi.rank == 1:
                h = mpi.charm.cuda.malloc_host(mpi.node, 64)
                try:
                    yield mpi.recv(h, 64, src=0, tag=1)
                except NotImplementedError:
                    out["raised"] = True

        run_ranks(program)
        assert out["raised"]

    def test_gpu_cache_warms(self):
        caches = {}

        def program(mpi):
            if mpi.rank == 0:
                d = mpi.charm.cuda.malloc(mpi.gpu, 64)
                for i in range(3):
                    yield mpi.send(d, 64, dst=1, tag=i)
                caches["stats"] = (
                    mpi.ampi.gpu_caches[0].hits, mpi.ampi.gpu_caches[0].misses
                )
            elif mpi.rank == 1:
                d = mpi.charm.cuda.malloc(mpi.gpu, 64)
                for i in range(3):
                    yield mpi.recv(d, 64, src=0, tag=i)

        run_ranks(program)
        assert caches["stats"] == (2, 1)

    def test_inter_node_device_large(self):
        out = {}
        size = 1 * MB

        def program(mpi):
            peers = (0, 6)  # different nodes
            if mpi.rank not in peers:
                return
            buf = mpi.charm.cuda.malloc(mpi.gpu, size, materialize=True)
            if mpi.rank == 0:
                buf.data[:] = 123
                yield mpi.send(buf, size, dst=6, tag=1)
            else:
                yield mpi.recv(buf, size, src=0, tag=1)
                out["ok"] = bool((buf.data == 123).all())

        run_ranks(program)
        assert out["ok"]


class TestVirtualization:
    def test_multiple_ranks_per_pe(self):
        out = {}

        def program(mpi):
            buf = mpi.charm.cuda.malloc_host(mpi.node, 8)
            right = (mpi.rank + 1) % mpi.size
            left = (mpi.rank - 1) % mpi.size
            send = mpi.isend(buf, 8, dst=right, tag=0)
            yield mpi.recv(buf, 8, src=left, tag=0)
            yield send.event
            out[mpi.rank] = True

        charm, ampi = run_ranks(program, ranks_per_pe=2)
        assert ampi.n_ranks == 2 * charm.n_pes
        assert len(out) == ampi.n_ranks

    def test_block_mapping(self):
        charm = Charm(MachineConfig.summit(nodes=1))
        ampi = Ampi(charm, ranks_per_pe=2)
        assert ampi.rank_pe(0) == 0 and ampi.rank_pe(1) == 0
        assert ampi.rank_pe(2) == 1
