"""Tests for FIFO resources and the tracer."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.resources import Resource
from repro.sim.trace import Tracer


@pytest.fixture
def sim():
    return Simulator()


def test_grants_up_to_capacity(sim):
    r = Resource(sim, capacity=2)
    a, b, c = r.acquire(), r.acquire(), r.acquire()
    assert a.triggered and b.triggered and not c.triggered
    r.release()
    assert c.triggered


def test_capacity_must_be_positive(sim):
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


def test_waiters_granted_fifo(sim):
    r = Resource(sim, capacity=1)
    r.acquire()
    order = []
    for name in "abc":
        r.acquire().add_callback(lambda _e, n=name: order.append(n))
    for _ in range(3):
        r.release()
    assert order == ["a", "b", "c"]


def test_release_idle_rejected(sim):
    r = Resource(sim)
    with pytest.raises(RuntimeError):
        r.release()


def test_occupy_holds_for_duration(sim):
    r = Resource(sim, capacity=1)
    done_times = []
    r.occupy(2.0).add_callback(lambda _e: done_times.append(sim.now))
    r.occupy(3.0).add_callback(lambda _e: done_times.append(sim.now))
    sim.run()
    assert done_times == [2.0, 5.0]  # second waits for the first


def test_occupy_parallel_with_capacity(sim):
    r = Resource(sim, capacity=2)
    done_times = []
    for _ in range(2):
        r.occupy(2.0).add_callback(lambda _e: done_times.append(sim.now))
    sim.run()
    assert done_times == [2.0, 2.0]


def test_utilisation_accounting(sim):
    r = Resource(sim, capacity=1)
    r.occupy(2.0)
    sim.schedule(10.0, lambda: None)
    sim.run()
    assert r.utilisation() == pytest.approx(0.2)
    assert r.total_acquisitions == 1


def test_on_next_release_fires_once(sim):
    r = Resource(sim, capacity=1)
    r.acquire()
    hits = []
    r.on_next_release(lambda: hits.append(sim.now))
    r.release()
    r.acquire()
    r.release()
    assert hits == [0.0]


def test_queue_length(sim):
    r = Resource(sim, capacity=1)
    r.acquire()
    r.acquire()
    r.acquire()
    assert r.queue_length == 2


class TestTracer:
    def test_counters_always_on(self, sim):
        t = Tracer(sim, enabled=False)
        t.emit("ucx", "send", size=8)
        t.emit("ucx", "send", size=16)
        assert t.counters["ucx.send"] == 2
        assert t.records == []  # disabled: no record bodies

    def test_records_when_enabled(self, sim):
        t = Tracer(sim, enabled=True)
        sim.schedule(1.0, t.emit, "charm", "entry")
        sim.run()
        recs = t.filter(category="charm")
        assert len(recs) == 1 and recs[0].time == 1.0 and recs[0].event == "entry"

    def test_deprecated_span_api_removed(self, sim):
        # span_begin/span_end completed their deprecation cycle; the
        # with-statement span() API below is the only span interface
        t = Tracer(sim, enabled=True)
        assert not hasattr(t, "span_begin")
        assert not hasattr(t, "span_end")

    def test_span_close_at(self, sim):
        # close_at ends a span at an explicit modeled time without
        # scheduling anything (used for analytic costs like tag matching)
        t = Tracer(sim, enabled=True)
        sp = t.span("ucx.match", "tag_match")
        sp.close_at(sim.now + 3.0)
        assert sp.duration == pytest.approx(3.0)
        assert t.time_in("ucx.match") == pytest.approx(3.0)
        sp.close_at(sim.now + 9.0)  # idempotent: second close ignored
        assert sp.duration == pytest.approx(3.0)

    def test_span_context_manager(self, sim):
        """The replacement API: with-statement spans on an enabled tracer."""
        t = Tracer(sim, enabled=True)
        with t.span("ampi", "send", size=8) as sp:
            sim.schedule(2.0, lambda: None)
            sim.run()
        assert sp.duration == pytest.approx(2.0)
        assert t.time_in("ampi") == pytest.approx(2.0)

    def test_filter_by_event(self, sim):
        t = Tracer(sim, enabled=True)
        t.emit("a", "x")
        t.emit("a", "y")
        assert len(t.filter(category="a", event="x")) == 1

    def test_reset_clears_everything(self, sim):
        t = Tracer(sim, enabled=True)
        t.emit("a", "x")
        with t.span("s", "work"):
            pass
        t.reset()
        assert not t.records and not t.counters and t.time_in("s") == 0.0
        assert not t.spans
