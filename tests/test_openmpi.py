"""Tests for the OpenMPI baseline (direct UCX, immediate receive posting)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import KB, MachineConfig, MB
from repro.openmpi import ANY_SOURCE, ANY_TAG, OpenMpi
from repro.openmpi.mpi import decode_mpi_tag, encode_mpi_tag, match_mask


def run_ranks(program, nodes=2):
    lib = OpenMpi(MachineConfig.summit(nodes=nodes))
    done = lib.launch(program)
    lib.run_until(done, max_events=5_000_000)
    return lib


class TestTagEncoding:
    def test_roundtrip(self):
        tag = encode_mpi_tag(src=300, tag=123456)
        assert decode_mpi_tag(tag) == (300, 123456)

    def test_bounds(self):
        with pytest.raises(ValueError):
            encode_mpi_tag(src=1 << 24, tag=0)
        with pytest.raises(ValueError):
            encode_mpi_tag(src=0, tag=1 << 32)

    def test_any_source_mask_ignores_src(self):
        mask = match_mask(ANY_SOURCE, 5)
        a = encode_mpi_tag(1, 5)
        b = encode_mpi_tag(999, 5)
        want = encode_mpi_tag(0, 5)
        assert a & mask == want & mask == b & mask

    def test_any_tag_mask_ignores_tag(self):
        mask = match_mask(3, ANY_TAG)
        a = encode_mpi_tag(3, 1)
        b = encode_mpi_tag(3, 12345)
        assert a & mask == b & mask

    @given(src=st.integers(0, (1 << 24) - 1), tag=st.integers(0, (1 << 32) - 1))
    @settings(max_examples=200)
    def test_roundtrip_property(self, src, tag):
        assert decode_mpi_tag(encode_mpi_tag(src, tag)) == (src, tag)


class TestPt2Pt:
    def test_device_roundtrip(self):
        out = {}

        def program(mpi):
            buf = mpi.charm.cuda.malloc(mpi.gpu, 2 * KB)
            if mpi.rank == 0:
                buf.data[:] = 8
                yield mpi.send(buf, 2 * KB, dst=1, tag=5)
            elif mpi.rank == 1:
                st_ = yield mpi.recv(buf, 2 * KB, src=0, tag=5)
                out["status"] = st_
                out["ok"] = bool((buf.data == 8).all())

        run_ranks(program)
        assert out["ok"] and out["status"].source == 0 and out["status"].tag == 5

    def test_wildcard_receive(self):
        out = {}

        def program(mpi):
            buf = mpi.charm.cuda.malloc_host(mpi.node, 8)
            if mpi.rank == 2:
                st_ = yield mpi.recv(buf, 8, src=ANY_SOURCE, tag=ANY_TAG)
                out["src"] = st_.source
            elif mpi.rank == 4:
                yield mpi.send(buf, 8, dst=2, tag=77)

        run_ranks(program)
        assert out["src"] == 4

    def test_truncation(self):
        out = {}

        def program(mpi):
            if mpi.rank == 0:
                big = mpi.charm.cuda.malloc_host(mpi.node, 64 * KB)
                yield mpi.send(big, 64 * KB, dst=1, tag=1)
            elif mpi.rank == 1:
                small = mpi.charm.cuda.malloc_host(mpi.node, 1 * KB)
                try:
                    yield mpi.recv(small, 1 * KB, src=0, tag=1)
                except Exception as e:
                    out["err"] = type(e).__name__

        run_ranks(program)
        assert out["err"] == "MpiTruncationError"

    def test_waitall_and_ordering(self):
        out = {}

        def program(mpi):
            if mpi.rank > 1:
                return
            other = 1 - mpi.rank
            bufs = [mpi.charm.cuda.malloc_host(mpi.node, 8) for _ in range(3)]
            if mpi.rank == 0:
                for i, b in enumerate(bufs):
                    b.data[:] = i
                reqs = [mpi.isend(b, 8, dst=other, tag=9) for b in bufs]
                yield mpi.waitall(reqs)
            else:
                got = []
                for b in bufs:
                    yield mpi.recv(b, 8, src=other, tag=9)
                    got.append(int(b.data[0]))
                out["got"] = got

        run_ranks(program)
        assert out["got"] == [0, 1, 2]

    def test_barrier_synchronises(self):
        times = {}

        def program(mpi):
            from repro.sim.primitives import Timeout

            yield Timeout(mpi.sim, (mpi.size - mpi.rank) * 1e-6)
            yield from mpi.barrier()
            times[mpi.rank] = mpi.sim.now

        lib = run_ranks(program)
        assert all(t >= lib.n_ranks * 1e-6 - 1e-9 for t in times.values())

    def test_sendrecv_exchange(self):
        out = {}

        def program(mpi):
            if mpi.rank > 1:
                return
            other = 1 - mpi.rank
            sb = mpi.charm.cuda.malloc(mpi.gpu, 64)
            rb = mpi.charm.cuda.malloc(mpi.gpu, 64)
            sb.data[:] = mpi.rank + 10
            yield mpi.sendrecv(sb, 64, other, rb, 64, other)
            out[mpi.rank] = int(rb.data[0])

        run_ranks(program)
        assert out == {0: 11, 1: 10}


class TestStructuralAdvantage:
    def test_openmpi_faster_than_ampi_small_messages(self):
        """The whole point of the baseline: fewer layers above UCX."""
        from repro.apps.osu import run_latency

        ampi = run_latency("ampi", 8, "intra", True)
        ompi = run_latency("openmpi", 8, "intra", True)
        assert ompi < ampi
        # the gap is the AMPI-specific overhead the paper measured (~us)
        assert (ampi - ompi) > 2e-6

    def test_rank_count_bounded_by_gpus(self):
        with pytest.raises(ValueError):
            OpenMpi(MachineConfig.summit(nodes=1), n_ranks=7)
