"""Cross-model parity tests: the same semantics hold in every model."""

import numpy as np
import pytest

from repro.ampi import Ampi
from repro.charm import Charm, CkCallback, CkDeviceBuffer
from repro.charm4py import Charm4py, PyChare
from repro.config import KB, MachineConfig


class TestCharm4pyReductions:
    """PyChares participate in the Charm++ reduction machinery."""

    class Elem(PyChare):
        def __init__(self, sink):
            self.sink = sink

        def go(self, value, cb):
            self.charm.reductions.contribute(self, value, "sum", cb)

    def test_group_reduction_through_pychares(self):
        c4p = Charm4py(MachineConfig.summit(nodes=1))
        results = []
        g = c4p.create_group(self.Elem, results)
        cb = CkCallback(fn=results.append)
        for pe in range(c4p.charm.n_pes):
            g[pe].go(pe + 1, cb)
        c4p.charm.run()
        assert results == [sum(range(1, c4p.charm.n_pes + 1))]

    def test_pychare_migration(self):
        c4p = Charm4py(MachineConfig.summit(nodes=1))
        p = c4p.create_chare(self.Elem, 0, [])
        obj = c4p.charm.chares[p.chare_id]
        obj.migrate(4)
        assert obj.pe == 4 and obj.gpu == 4


class TestDataIntegrityParity:
    """An identical payload survives every model's device path bit-for-bit."""

    SIZE = 32 * KB

    def _payload(self):
        return np.random.default_rng(11).integers(
            0, 255, self.SIZE, dtype=np.uint8
        )

    def test_charm_path(self):
        payload = self._payload()
        got = {}

        from repro.charm import Chare

        class Rx(Chare):
            def __init__(self):
                self.buf = self.charm.cuda.malloc(self.gpu, TestDataIntegrityParity.SIZE)

            def take_post(self, posts):
                posts[0].buffer = self.buf

            def take(self, data):
                got["data"] = data.data.copy()

        class Tx(Chare):
            def __init__(self, payload):
                self.buf = self.charm.cuda.malloc(self.gpu, TestDataIntegrityParity.SIZE)
                self.buf.data[:] = payload

            def go(self, peer):
                peer.take(CkDeviceBuffer.wrap(self.buf))

        charm = Charm(MachineConfig.summit(nodes=2))
        tx = charm.create_chare(Tx, 0, payload)
        rx = charm.create_chare(Rx, 9)
        tx.go(rx)
        charm.run()
        assert (got["data"] == payload).all()

    @pytest.mark.parametrize("lib", ["ampi", "openmpi"])
    def test_mpi_paths(self, lib):
        payload = self._payload()
        got = {}
        size = self.SIZE

        def program(mpi):
            buf = mpi.charm.cuda.malloc(mpi.gpu, size)
            if mpi.rank == 0:
                buf.data[:] = payload
                yield mpi.send(buf, size, dst=9, tag=1)
            elif mpi.rank == 9:
                yield mpi.recv(buf, size, src=0, tag=1)
                got["data"] = buf.data.copy()

        if lib == "ampi":
            charm = Charm(MachineConfig.summit(nodes=2))
            a = Ampi(charm)
            charm.run_until(a.launch(program), max_events=5_000_000)
        else:
            from repro.openmpi import OpenMpi

            o = OpenMpi(MachineConfig.summit(nodes=2))
            o.run_until(o.launch(program), max_events=5_000_000)
        assert (got["data"] == payload).all()

    def test_charm4py_path(self):
        payload = self._payload()
        got = {}
        size = self.SIZE

        class Pair(PyChare):
            def __init__(self):
                self.buf = self.c4p.cuda.malloc(self.gpu, size)

            def run(self, partner):
                ch = self.c4p.channel(self, partner)
                if self.thisIndex == 0:
                    self.buf.data[:] = payload
                    yield ch.send(self.buf, size)
                else:
                    yield ch.recv(self.buf, size)
                    got["data"] = self.buf.data.copy()

        c4p = Charm4py(MachineConfig.summit(nodes=2))
        arr = c4p.create_array(Pair, 2, mapping=lambda i: (0, 9)[i])
        arr[0].run(arr[1])
        arr[1].run(arr[0])
        c4p.charm.run(max_events=2_000_000)
        assert (got["data"] == payload).all()


class TestCapacityAndErrors:
    def test_gpu_oom_through_charm_allocation(self):
        from repro.hardware.memory import OutOfMemory

        charm = Charm(MachineConfig.summit(nodes=1))
        cap = charm.cfg.topology.gpu_memory_capacity
        charm.cuda.malloc(0, cap - 100, materialize=False)
        with pytest.raises(OutOfMemory):
            charm.cuda.malloc(0, 4096, materialize=False)

    def test_free_returns_capacity_to_jacobi_scale(self):
        charm = Charm(MachineConfig.summit(nodes=1))
        cap = charm.cfg.topology.gpu_memory_capacity
        big = charm.cuda.malloc(0, cap // 2, materialize=False)
        charm.cuda.free(big)
        charm.cuda.malloc(0, cap // 2 + 1024, materialize=False)  # fits again

    def test_jacobi_paper_scale_fits_v100(self):
        """The weak-scaling base block (1536^3/6 doubles, two fields + face
        buffers) must fit a 16 GB V100 — as it did on Summit."""
        from repro.apps.jacobi3d.common import BlockState
        from repro.apps.jacobi3d.decomposition import Decomposition
        from repro.hardware.cuda import CudaRuntime
        from repro.hardware.topology import Machine

        m = Machine(MachineConfig.summit(nodes=1))
        cuda = CudaRuntime(m)
        decomp = Decomposition.create((1536, 1536, 1536), 6)
        BlockState(cuda, 0, decomp, 0, functional=False)  # must not OOM
        used = m.allocators[0].used
        assert used < m.cfg.topology.gpu_memory_capacity
        assert used > 2 * decomp.cells_per_block * 8  # two fields
