"""Unit tests for the observability subsystem: spans, metrics, exporters."""

import json

import pytest

from repro.obs import (
    LATENCY_BUCKETS,
    NULL_SPAN,
    SIZE_BUCKETS,
    Histogram,
    MetricsRegistry,
    Tracer,
    chrome_trace,
    export_chrome_trace,
    metrics_snapshot,
    validate_chrome_trace,
)
from repro.sim.engine import Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def tracer(sim):
    return Tracer(sim, enabled=True)


# ---------------------------------------------------------------------------
# span trees
# ---------------------------------------------------------------------------

class TestSpanTree:
    def test_context_manager_nesting(self, sim, tracer):
        with tracer.span("machine", "send") as outer:
            with tracer.span("ucx", "tag_send") as inner:
                pass
        assert inner.parent_sid == outer.sid
        assert outer.parent_sid == -1
        assert tracer.span_roots() == [outer]
        assert tracer.span_children(outer) == [inner]

    def test_explicit_end_crossing_events(self, sim, tracer):
        sp = tracer.span("ucx", "tag_send", size=64)
        sim.schedule(3.0, sp.end)
        sim.run()
        assert sp.end_time == pytest.approx(3.0)
        assert sp.duration == pytest.approx(3.0)
        assert tracer.time_in("ucx") == pytest.approx(3.0)

    def test_end_is_idempotent(self, sim, tracer):
        sp = tracer.span("ucx", "x")
        sim.schedule(1.0, sp.end)
        sim.schedule(5.0, sp.end)
        sim.run()
        assert sp.end_time == pytest.approx(1.0)
        assert tracer.time_in("ucx") == pytest.approx(1.0)

    def test_parent_override(self, sim, tracer):
        send = tracer.span("ucx", "tag_send")
        with tracer.span("other", "unrelated"):
            recv = tracer.span("ucx.eager", "eager_recv", parent=send)
        assert recv.parent_sid == send.sid

    def test_under_reactivates_span(self, sim, tracer):
        sp = tracer.span("machine", "send_device")

        def _later():
            with tracer.under(sp):
                child = tracer.span("ucx", "tag_send")
                child.end()
            sp.end()

        sim.schedule(2.0, _later)
        sim.run()
        child = [s for s in tracer.spans if s.category == "ucx"][0]
        assert child.parent_sid == sp.sid

    def test_annotate_and_end_attrs(self, sim, tracer):
        sp = tracer.span("ucx", "x", size=8)
        sp.annotate(proto="eager")
        sp.end(status="ok")
        assert sp.attrs == {"size": 8, "proto": "eager", "status": "ok"}

    def test_disabled_tracer_returns_null_span(self, sim):
        t = Tracer(sim, enabled=False)
        sp = t.span("ucx", "x", size=8)
        assert sp is NULL_SPAN
        assert not sp  # falsy
        sp.end()
        sp.annotate(a=1)
        with t.under(sp):
            pass
        with t.under(None):
            pass
        assert t.spans == []

    def test_active_span(self, tracer):
        assert tracer.active_span is None
        with tracer.span("a", "x") as sp:
            assert tracer.active_span is sp
        assert tracer.active_span is None


# ---------------------------------------------------------------------------
# metrics registry
# ---------------------------------------------------------------------------

class TestMetricsRegistry:
    def test_counters_tuple_keyed_and_view(self):
        m = MetricsRegistry()
        m.inc("ucx", "send")
        m.inc("ucx", "send", 2)
        m.inc("ampi", "recv")
        assert m.counter("ucx", "send") == 3
        assert m.counters["ucx.send"] == 3
        assert m.counters["ampi.recv"] == 1
        m.inc("ucx", "send")  # view invalidated and rebuilt
        assert m.counters["ucx.send"] == 4

    def test_gauges(self):
        m = MetricsRegistry()
        assert m.gauge("depth") is None
        m.set_gauge("depth", 7)
        m.set_gauge("depth", 3)
        assert m.gauge("depth") == 3

    def test_histogram_buckets(self):
        h = Histogram("sizes", bounds=(10, 100))
        for v in (1, 10, 11, 100, 1000):
            h.observe(v)
        # inclusive upper edges: <=10, <=100, overflow
        assert h.counts == [2, 2, 1]
        assert h.count == 5
        assert h.mean == pytest.approx((1 + 10 + 11 + 100 + 1000) / 5)

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram("bad", bounds=(5, 5))
        with pytest.raises(ValueError):
            Histogram("bad", bounds=(5, 1))
        with pytest.raises(ValueError):
            Histogram("bad", bounds=())

    def test_default_ladders(self):
        assert SIZE_BUCKETS[0] == 1 and SIZE_BUCKETS[-1] == 4 * 1024 * 1024
        assert LATENCY_BUCKETS == tuple(sorted(LATENCY_BUCKETS))
        m = MetricsRegistry()
        m.observe("send_size", 4096)
        assert m.histogram("send_size").bounds == SIZE_BUCKETS

    def test_snapshot_schema_and_json(self):
        m = MetricsRegistry()
        m.inc("ucx", "send")
        m.set_gauge("g", 1.5)
        m.observe("sizes", 64)
        m.add_time("ampi", 3e-6)
        snap = m.snapshot()
        assert set(snap) == {"counters", "gauges", "histograms", "time_by_category"}
        assert snap["counters"] == {"ucx.send": 1}
        assert snap["time_by_category"]["ampi"] == pytest.approx(3e-6)
        json.dumps(snap)  # must be JSON-serialisable as-is

    def test_reset(self):
        m = MetricsRegistry()
        m.inc("a", "b")
        m.set_gauge("g", 1)
        m.observe("h", 2)
        m.add_time("c", 1.0)
        m.reset()
        snap = m.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {},
                        "time_by_category": {}}


class TestTracerMetricsIntegration:
    def test_count_always_on_charge_enabled_only(self, sim):
        on, off = Tracer(sim, enabled=True), Tracer(sim, enabled=False)
        for t in (on, off):
            t.count("ucx", "send")
            t.charge("ucx", 5e-6)
            t.observe("sizes", 128)
        # counters identical in both modes (the fingerprint contract)
        assert on.counters == off.counters
        # charges and histograms only accumulate when enabled
        assert on.metrics.time_in("ucx") == pytest.approx(5e-6)
        assert off.metrics.time_in("ucx") == 0.0
        assert on.metrics.snapshot()["histograms"] != {}
        assert off.metrics.snapshot()["histograms"] == {}


# ---------------------------------------------------------------------------
# Chrome-trace export
# ---------------------------------------------------------------------------

def _traced_workload(sim, tracer):
    """Overlapping + nested spans exercising the lane allocator."""
    with tracer.span("machine", "send_device", size=1024):
        sp = tracer.span("ucx", "tag_send", size=1024)
    other = tracer.span("ucx", "tag_recv")  # overlaps sp, not nested
    sim.schedule(1.0, sp.end)
    sim.schedule(2.0, other.end)
    sim.run()


class TestChromeTrace:
    def test_valid_and_round_trips(self, sim, tracer, tmp_path):
        _traced_workload(sim, tracer)
        path = export_chrome_trace(tracer, tmp_path / "trace.json",
                                   process_name="repro-test")
        loaded = json.loads(path.read_text())
        info = validate_chrome_trace(loaded)
        assert info["n_spans"] == 3
        assert info["categories"] == {"machine", "ucx"}
        names = {e["args"]["name"] for e in loaded["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "process_name"}
        assert names == {"repro-test"}

    def test_b_events_carry_attrs_and_links(self, sim, tracer):
        _traced_workload(sim, tracer)
        tr = chrome_trace(tracer)
        b = [e for e in tr["traceEvents"] if e["ph"] == "B"]
        send = [e for e in b if e["name"] == "tag_send"][0]
        assert send["args"]["size"] == 1024
        assert "parent_sid" in send["args"]
        root = [e for e in b if e["name"] == "send_device"][0]
        assert "parent_sid" not in root["args"]

    def test_ts_monotone_and_microseconds(self, sim, tracer):
        _traced_workload(sim, tracer)
        tr = chrome_trace(tracer)
        ts = [e["ts"] for e in tr["traceEvents"] if e["ph"] != "M"]
        assert ts == sorted(ts)
        assert max(ts) == pytest.approx(2e6)  # 2 simulated seconds in us

    def test_metrics_embedded(self, sim, tracer):
        tracer.count("ucx", "send")
        tr = chrome_trace(tracer)
        assert tr["otherData"]["metrics"]["counters"]["ucx.send"] == 1
        assert metrics_snapshot(tracer)["counters"]["ucx.send"] == 1

    def test_empty_tracer_exports_cleanly(self, sim, tracer):
        info = validate_chrome_trace(chrome_trace(tracer))
        assert info["n_spans"] == 0
        assert info["n_tracks"] == 0

    def test_zero_duration_span_validates(self, sim, tracer):
        # B/E at the same ts (e.g. a zero-cost analytic span) is legal
        with tracer.span("ucx", "instant"):
            pass
        info = validate_chrome_trace(chrome_trace(tracer))
        assert info["n_spans"] == 1

    def test_open_span_exported_as_incomplete(self, sim, tracer):
        # a span still open at export must be flagged, extended to the
        # latest known instant, and still validate (stack-balanced)
        open_sp = tracer.span("ucx", "never_ended")
        with tracer.span("machine", "done"):
            sim.schedule(3.0, lambda: None)
            sim.run()
        tr = chrome_trace(tracer)
        info = validate_chrome_trace(tr)
        assert info["n_spans"] == 2
        b = [e for e in tr["traceEvents"]
             if e["ph"] == "B" and e["name"] == "never_ended"][0]
        assert b["args"]["incomplete"] is True
        e = [e for e in tr["traceEvents"]
             if e["ph"] == "E" and e["tid"] == b["tid"]][-1]
        assert e["ts"] == pytest.approx(3e6)  # extended to t_max, not 0
        closed = [e for e in tr["traceEvents"]
                  if e["ph"] == "B" and e["name"] == "done"][0]
        assert "incomplete" not in closed["args"]

    def test_open_span_export_is_deterministic(self, sim, tracer):
        tracer.span("ucx", "open")
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert chrome_trace(tracer) == chrome_trace(tracer)

    def test_osu_like_overlap_needs_multiple_lanes(self, sim, tracer):
        # spans that overlap without containment cannot share a tid
        a = tracer.span("ucx", "a")  # 0 .. 2

        def _start_b():
            b = tracer.span("ucx", "b")  # 1 .. 3: straddles a's end
            sim.schedule(2.0, b.end)

        sim.schedule(1.0, _start_b)
        sim.schedule(2.0, a.end)
        sim.run()
        info = validate_chrome_trace(chrome_trace(tracer))
        assert info["n_tracks"] == 2


class TestValidateRejects:
    def test_missing_trace_events(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace({})

    def test_missing_required_key(self):
        with pytest.raises(ValueError, match="missing required key"):
            validate_chrome_trace({"traceEvents": [{"ph": "B", "pid": 0, "tid": 0}]})

    def test_non_monotone_ts(self):
        evs = [
            {"name": "a", "ph": "B", "pid": 0, "tid": 0, "ts": 5.0},
            {"name": "b", "ph": "B", "pid": 0, "tid": 0, "ts": 1.0},
        ]
        with pytest.raises(ValueError, match="non-monotone"):
            validate_chrome_trace({"traceEvents": evs})

    def test_unmatched_end(self):
        evs = [{"name": "a", "ph": "E", "pid": 0, "tid": 0, "ts": 1.0}]
        with pytest.raises(ValueError, match="empty stack"):
            validate_chrome_trace({"traceEvents": evs})

    def test_unclosed_begin(self):
        evs = [{"name": "a", "ph": "B", "pid": 0, "tid": 0, "ts": 1.0}]
        with pytest.raises(ValueError, match="unclosed"):
            validate_chrome_trace({"traceEvents": evs})

    def test_mismatched_names(self):
        evs = [
            {"name": "a", "ph": "B", "pid": 0, "tid": 0, "ts": 1.0},
            {"name": "b", "ph": "E", "pid": 0, "tid": 0, "ts": 2.0},
        ]
        with pytest.raises(ValueError, match="does not match"):
            validate_chrome_trace({"traceEvents": evs})

    def test_non_dict_event(self):
        with pytest.raises(ValueError, match="event 0 must be a dict"):
            validate_chrome_trace({"traceEvents": ["not-an-event"]})

    def test_events_not_a_list(self):
        with pytest.raises(ValueError, match="must be a list"):
            validate_chrome_trace({"traceEvents": {"ph": "B"}})

    def test_non_numeric_ts(self):
        evs = [{"name": "a", "ph": "B", "pid": 0, "tid": 0, "ts": "soon"}]
        with pytest.raises(ValueError, match="'ts' must be a number"):
            validate_chrome_trace({"traceEvents": evs})

    def test_boolean_ts_rejected(self):
        evs = [{"name": "a", "ph": "B", "pid": 0, "tid": 0, "ts": True}]
        with pytest.raises(ValueError, match="'ts' must be a number"):
            validate_chrome_trace({"traceEvents": evs})
