"""Deterministic fault injection: plans, recovery, fallbacks, surfacing.

The contract under test (ISSUE: fault-injection tentpole):

* an **empty** plan is bit-identical to no plan at all;
* the same plan always produces the same faults (one seeded stream);
* a seeded lossy link delivers every message anyway — via retransmits —
  and the recovery work is visible in counters, flight records, and the
  ``fault_recovery`` blame layer;
* exhausted retries surface ``UCS_ERR_ENDPOINT_TIMEOUT`` upward into
  each model's error path (AMPI exceptions, Charm++ callbacks);
* forced capability failures (CUDA-IPC open, GDRCopy probe) steer the
  protocol selection onto their fallback chains.
"""

import json

import pytest

import repro.api as api
from repro.apps.osu.runner import run_latency
from repro.config import KB, MB, MachineConfig
from repro.faults import (
    ANY_WORKER,
    BandwidthWindow,
    FaultInjector,
    FaultPlan,
    LinkFaultRule,
)
from repro.hardware.topology import Machine
from repro.ucx.context import UcpContext
from repro.ucx.status import UcsStatus


def make_pair(config, gpus=(0, 1)):
    m = Machine(config)
    ctx = UcpContext(m)
    wa = ctx.create_worker(0, m.node_of_gpu(gpus[0]), m.socket_of_gpu(gpus[0]))
    wb = ctx.create_worker(1, m.node_of_gpu(gpus[1]), m.socket_of_gpu(gpus[1]))
    return m, ctx, wa, wb


# ---------------------------------------------------------------------------
# the plan object
# ---------------------------------------------------------------------------

class TestFaultPlan:
    def test_empty_by_default(self):
        assert FaultPlan().empty
        assert not FaultPlan.lossy(drop_p=0.1).empty
        assert not FaultPlan(fail_ipc_open=True).empty
        assert not FaultPlan(fail_gdrcopy_probe=True).empty
        assert not FaultPlan(
            bandwidth_windows=(BandwidthWindow("n0.nic*", 0.5),)
        ).empty

    def test_validation(self):
        with pytest.raises(ValueError, match="drop_p"):
            LinkFaultRule(drop_p=1.5)
        with pytest.raises(ValueError, match="frame kind"):
            LinkFaultRule(kinds=("bogus",))
        with pytest.raises(ValueError, match="precedes"):
            LinkFaultRule(t0=2.0, t1=1.0)
        with pytest.raises(ValueError, match="factor"):
            BandwidthWindow("x", -0.1)
        with pytest.raises(ValueError, match="factor"):
            BandwidthWindow("x", 1.5)
        # factor 0.0 is valid: it marks the link *down* (rail-fault model)
        assert BandwidthWindow("x", 0.0).factor == 0.0
        with pytest.raises(ValueError, match="retry_timeout"):
            FaultPlan(retry_timeout=0.0)
        with pytest.raises(ValueError, match="retry_backoff"):
            FaultPlan(retry_backoff=0.5)
        with pytest.raises(ValueError, match="max_retries"):
            FaultPlan(max_retries=-1)

    def test_rule_matching(self):
        r = LinkFaultRule(src=0, dst=1, kinds=("eager",), t0=1.0, t1=2.0)
        assert r.applies(0, 1, "eager", 1.5)
        assert not r.applies(1, 0, "eager", 1.5)  # directed
        assert not r.applies(0, 1, "rts", 1.5)
        assert not r.applies(0, 1, "eager", 2.0)  # window is half-open
        anyr = LinkFaultRule(drop_p=0.5)
        assert anyr.applies(7, 3, "am", 99.0)

    def test_json_roundtrip(self):
        plan = FaultPlan(
            seed=7,
            link_rules=(
                LinkFaultRule(src=0, dst=ANY_WORKER, drop_p=0.25,
                              kinds=("rts", "fin"), max_faults=3),
                LinkFaultRule(stall_p=0.5, stall_seconds=3e-4, t1=1.0),
            ),
            bandwidth_windows=(BandwidthWindow("n0.nic*", 0.5, t0=1e-3),),
            fail_ipc_open=True,
            retry_timeout=20e-6,
            max_retries=4,
        )
        again = FaultPlan.from_json(plan.to_json())
        assert again == plan
        # open-ended windows survive the inf <-> null mapping
        assert again.link_rules[1].t1 == 1.0
        assert again.link_rules[0].t1 == float("inf")
        assert again.bandwidth_windows[0].t1 == float("inf")

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown FaultPlan field"):
            FaultPlan.from_dict({"seed": 1, "typo_field": 2})

    def test_load_inline_and_file(self, tmp_path):
        text = FaultPlan.lossy(drop_p=0.125, seed=3).to_json()
        assert FaultPlan.load(text) == FaultPlan.lossy(drop_p=0.125, seed=3)
        p = tmp_path / "plan.json"
        p.write_text(text)
        assert FaultPlan.load(str(p)) == FaultPlan.lossy(drop_p=0.125, seed=3)

    def test_injector_refuses_empty_plan(self):
        from repro.sim.trace import Tracer
        from repro.sim.engine import Simulator

        with pytest.raises(ValueError):
            FaultInjector(FaultPlan(), Tracer(Simulator(), enabled=False))

    def test_with_faults_type_checked(self):
        cfg = MachineConfig.summit(nodes=2)
        with pytest.raises(TypeError):
            cfg.with_faults({"drop_p": 0.1})
        assert cfg.with_faults(FaultPlan.lossy(0.1)).faults is not None


# ---------------------------------------------------------------------------
# determinism contract
# ---------------------------------------------------------------------------

def _fingerprint(faults):
    cfg = MachineConfig.summit(nodes=2).with_flight(True)
    sess = api.session(cfg).model("ampi").faults(faults).build() \
        if faults is not None else api.session(cfg).model("ampi").build()
    lat = run_latency("ampi", 64 * KB, "inter", True, session=sess,
                      iters=4, skip=1)
    fp = sess.baseline_fingerprint()
    fp["latency_us"] = lat * 1e6
    return fp


class TestDeterminism:
    def test_empty_plan_bit_identical_to_no_plan(self):
        assert _fingerprint(FaultPlan()) == _fingerprint(None)

    def test_empty_plan_builds_no_injector(self):
        m = Machine(MachineConfig.summit(nodes=2).with_faults(FaultPlan()))
        assert m.fault_injector is None
        m2 = Machine(MachineConfig.summit(nodes=2))
        assert m2.fault_injector is None

    def test_same_plan_same_fingerprint_with_retransmits(self):
        plan = FaultPlan.lossy(drop_p=0.1, seed=42)
        a = _fingerprint(plan)
        b = _fingerprint(plan)
        assert a == b
        assert a["counters"]["fault.retransmit"] > 0

    def test_different_seed_different_faults(self):
        a = _fingerprint(FaultPlan.lossy(drop_p=0.1, seed=1))
        b = _fingerprint(FaultPlan.lossy(drop_p=0.1, seed=2))
        # same rule, different stream: the drop schedule must differ
        assert a != b


# ---------------------------------------------------------------------------
# recovery: retransmit until delivered
# ---------------------------------------------------------------------------

class TestRecovery:
    def test_lossy_link_delivers_all_messages(self):
        plan = FaultPlan.lossy(drop_p=0.2, seed=9)
        cfg = MachineConfig.summit(nodes=2).with_faults(plan)
        m, ctx, wa, wb = make_pair(cfg)
        n = 12
        reqs = []
        for i in range(n):
            src, dst = m.alloc_host(0, 64), m.alloc_host(0, 64)
            src.data[:] = i + 1
            reqs.append((wb.tag_recv_nb(dst, 64, tag=i),
                         wa.tag_send_nb(wa.ep(1), src, 64, tag=i), dst, i))
        m.sim.run()
        for rreq, sreq, dst, i in reqs:
            assert rreq.completed and sreq.completed
            assert rreq.status is UcsStatus.OK
            assert (dst.data == i + 1).all()
        assert m.tracer.counters["fault.drop"] > 0
        assert m.tracer.counters["fault.retransmit"] > 0

    def test_lossy_rndv_data_intact(self):
        plan = FaultPlan.lossy(drop_p=0.3, seed=5, kinds=("rts", "fin"))
        cfg = MachineConfig.summit(nodes=2).with_faults(plan)
        m, ctx, wa, wb = make_pair(cfg)
        size = 256 * KB
        src, dst = m.alloc_host(0, size), m.alloc_host(0, size)
        src.data[:] = 77
        rreq = wb.tag_recv_nb(dst, size, tag=1)
        sreq = wa.tag_send_nb(wa.ep(1), src, size, tag=1)
        m.sim.run()
        assert rreq.completed and sreq.completed
        assert (dst.data == 77).all()

    def test_corrupt_occupies_wire_then_retransmits(self):
        plan = FaultPlan(
            seed=0,
            link_rules=(LinkFaultRule(corrupt_p=1.0, max_faults=2),),
        )
        cfg = MachineConfig.summit(nodes=2).with_faults(plan)
        m, ctx, wa, wb = make_pair(cfg)
        src, dst = m.alloc_host(0, 64), m.alloc_host(0, 64)
        src.data[:] = 4
        rreq = wb.tag_recv_nb(dst, 64, tag=1)
        wa.tag_send_nb(wa.ep(1), src, 64, tag=1)
        m.sim.run()
        assert rreq.completed and (dst.data == 4).all()
        assert m.tracer.counters["fault.corrupt"] == 2
        assert m.tracer.counters["fault.retransmit"] == 2

    def test_long_stall_produces_deduped_duplicate(self):
        # stall far beyond the first retry timeout: the retransmit arrives
        # first, the stalled original becomes a duplicate the receiver drops
        plan = FaultPlan(
            seed=0,
            link_rules=(LinkFaultRule(stall_p=1.0, stall_seconds=5e-4,
                                      max_faults=1),),
            retry_timeout=20e-6,
        )
        cfg = MachineConfig.summit(nodes=2).with_faults(plan)
        m, ctx, wa, wb = make_pair(cfg)
        src, dst = m.alloc_host(0, 64), m.alloc_host(0, 64)
        src.data[:] = 8
        rreq = wb.tag_recv_nb(dst, 64, tag=1)
        wa.tag_send_nb(wa.ep(1), src, 64, tag=1)
        m.sim.run()
        assert rreq.completed and (dst.data == 8).all()
        assert m.tracer.counters["fault.stall"] == 1
        assert m.tracer.counters["fault.duplicate_dropped"] >= 1

    def test_max_faults_budget_limits_rule(self):
        plan = FaultPlan(
            seed=0, link_rules=(LinkFaultRule(drop_p=1.0, max_faults=3),)
        )
        cfg = MachineConfig.summit(nodes=2).with_faults(plan)
        m, ctx, wa, wb = make_pair(cfg)
        src, dst = m.alloc_host(0, 64), m.alloc_host(0, 64)
        rreq = wb.tag_recv_nb(dst, 64, tag=1)
        wa.tag_send_nb(wa.ep(1), src, 64, tag=1)
        m.sim.run()
        # three drops consumed the budget; the fourth attempt goes through
        assert rreq.completed and rreq.status is UcsStatus.OK
        assert m.tracer.counters["fault.drop"] == 3


# ---------------------------------------------------------------------------
# giving up: endpoint timeout, surfaced per model
# ---------------------------------------------------------------------------

def _down_cfg(**plan_overrides):
    plan = FaultPlan.endpoint_down(src=0, dst=1, from_t=0.0,
                                   retry_timeout=10e-6, max_retries=2,
                                   **plan_overrides)
    return MachineConfig.summit(nodes=2).with_faults(plan)


class TestEndpointTimeout:
    def test_sender_and_receiver_observe_timeout(self):
        m, ctx, wa, wb = make_pair(_down_cfg())
        size = 256 * KB  # rendezvous: the RTS never gets through
        src, dst = m.alloc_host(0, size), m.alloc_host(0, size)
        rreq = wb.tag_recv_nb(dst, size, tag=1)
        sreq = wa.tag_send_nb(wa.ep(1), src, size, tag=1)
        m.sim.run()
        assert sreq.status is UcsStatus.ERR_ENDPOINT_TIMEOUT
        assert rreq.status is UcsStatus.ERR_ENDPOINT_TIMEOUT
        assert m.tracer.counters["fault.endpoint_timeout"] >= 1

    def test_eager_receiver_observes_timeout(self):
        m, ctx, wa, wb = make_pair(_down_cfg())
        src, dst = m.alloc_host(0, 64), m.alloc_host(0, 64)
        rreq = wb.tag_recv_nb(dst, 64, tag=1)
        sreq = wa.tag_send_nb(wa.ep(1), src, 64, tag=1)
        m.sim.run()
        # eager sends complete locally at copy-in (UCX semantics); the
        # loss is the *receiver's* problem, surfaced on the posted recv
        assert sreq.completed and sreq.status is UcsStatus.OK
        assert rreq.status is UcsStatus.ERR_ENDPOINT_TIMEOUT

    def test_reverse_direction_unaffected(self):
        m, ctx, wa, wb = make_pair(_down_cfg())
        src, dst = m.alloc_host(0, 64), m.alloc_host(0, 64)
        src.data[:] = 6
        rreq = wa.tag_recv_nb(dst, 64, tag=2)
        wb.tag_send_nb(wb.ep(0), src, 64, tag=2)
        m.sim.run()
        assert rreq.completed and rreq.status is UcsStatus.OK
        assert (dst.data == 6).all()

    def test_openmpi_raises_mpi_comm_error(self):
        from repro.ampi.mpi import MpiCommError
        from repro.openmpi import OpenMpi

        lib = OpenMpi(_down_cfg())
        caught = []

        def program(rank):
            if rank.rank == 0:
                buf = lib.machine.alloc_device(0, 64 * KB)
                try:
                    yield rank.send(buf, 64 * KB, dst=1)
                except MpiCommError as e:
                    caught.append(e)

        lib.machine.sim.run_until_complete(lib.launch(program))
        assert len(caught) == 1
        assert caught[0].status is UcsStatus.ERR_ENDPOINT_TIMEOUT

    def test_charm_comm_error_callback(self):
        from repro.charm.charm import Charm

        # PE0 and PE1 are workers 0 and 1 of the machine layer
        charm = Charm(_down_cfg())
        failures = []
        charm.on_comm_error(lambda kind, tag, status: failures.append(
            (kind, tag, status)))
        from repro.core.device_buffer import CmiDeviceBuffer

        buf = charm.machine.alloc_device(0, 64 * KB)
        dev = CmiDeviceBuffer(ptr=buf, size=64 * KB)
        charm.converse.cmi_send_device(0, 1, dev)
        charm.sim.run()
        assert failures
        kind, _tag, status = failures[0]
        assert kind == "send"
        assert status is UcsStatus.ERR_ENDPOINT_TIMEOUT

    def test_charm_without_callback_raises(self):
        from repro.charm.charm import Charm
        from repro.core.device_buffer import CmiDeviceBuffer

        charm = Charm(_down_cfg())
        buf = charm.machine.alloc_device(0, 64 * KB)
        dev = CmiDeviceBuffer(ptr=buf, size=64 * KB)
        charm.converse.cmi_send_device(0, 1, dev)
        with pytest.raises(RuntimeError, match="ENDPOINT_TIMEOUT"):
            charm.sim.run()


# ---------------------------------------------------------------------------
# forced capability failures -> fallback chains
# ---------------------------------------------------------------------------

class TestFallbacks:
    def test_ipc_open_failure_forces_pipeline_lane(self):
        plan = FaultPlan(fail_ipc_open=True)
        cfg = MachineConfig.summit(nodes=2).with_flight(True).with_faults(plan)
        m, ctx, wa, wb = make_pair(cfg)
        size = 1 * MB
        src = m.alloc_device(0, size, materialize=False)
        dst = m.alloc_device(1, size, materialize=False)
        rreq = wb.tag_recv_nb(dst, size, tag=1)
        wa.tag_send_nb(wa.ep(1), src, size, tag=1)
        m.sim.run()
        assert rreq.completed
        assert m.tracer.counters["fault.fallback_pipeline"] == 1
        (rec,) = m.tracer.flight.records()
        assert rec.lane == "pipeline"  # not "ipc"

    def test_ipc_failure_slower_in_steady_state(self):
        # compare the *second* transfer: healthy runs hit the IPC handle
        # cache, the fallback pays the host-staging pipeline every time
        def second_transfer_time(plan):
            cfg = MachineConfig.summit(nodes=2)
            if plan is not None:
                cfg = cfg.with_faults(plan)
            m, ctx, wa, wb = make_pair(cfg)
            size = 1 * MB
            src = m.alloc_device(0, size, materialize=False)
            dst = m.alloc_device(1, size, materialize=False)
            wb.tag_recv_nb(dst, size, tag=1)
            wa.tag_send_nb(wa.ep(1), src, size, tag=1)
            m.sim.run()
            t1 = m.sim.now
            wb.tag_recv_nb(dst, size, tag=2)
            wa.tag_send_nb(wa.ep(1), src, size, tag=2)
            m.sim.run()
            return m.sim.now - t1

        healthy = second_transfer_time(None)
        fallback = second_transfer_time(FaultPlan(fail_ipc_open=True))
        assert fallback > healthy

    def test_gdrcopy_probe_failure_disables_gdrcopy(self):
        plan = FaultPlan(fail_gdrcopy_probe=True)
        cfg = MachineConfig.summit(nodes=2).with_faults(plan)
        m, ctx, wa, wb = make_pair(cfg)
        assert not ctx.gdrcopy.available
        assert m.tracer.counters["fault.gdrcopy_forced_off"] == 1
        src, dst = m.alloc_device(0, 64), m.alloc_device(1, 64)
        src.data[:] = 3
        rreq = wb.tag_recv_nb(dst, 64, tag=1)
        wa.tag_send_nb(wa.ep(1), src, 64, tag=1)
        m.sim.run()
        # host-staged small-message path still delivers
        assert rreq.completed and (dst.data == 3).all()
        assert ctx.gdrcopy.copies == 0

    def test_gdrcopy_forced_off_matches_config_off_latency(self):
        def run(cfg):
            m, ctx, wa, wb = make_pair(cfg)
            src, dst = m.alloc_device(0, 64), m.alloc_device(1, 64)
            wb.tag_recv_nb(dst, 64, tag=1)
            wa.tag_send_nb(wa.ep(1), src, 64, tag=1)
            m.sim.run()
            return m.sim.now

        base = MachineConfig.summit(nodes=2)
        forced = run(base.with_faults(FaultPlan(fail_gdrcopy_probe=True)))
        config_off = run(base.without_gdrcopy())
        assert forced == config_off


# ---------------------------------------------------------------------------
# degraded bandwidth windows
# ---------------------------------------------------------------------------

class TestBandwidthWindows:
    def _time_inter_rndv(self, cfg):
        m, ctx, wa, wb = make_pair(cfg, gpus=(0, 6))
        size = 1 * MB
        src, dst = m.alloc_host(0, size), m.alloc_host(1, size)
        wb.tag_recv_nb(dst, size, tag=1)
        wa.tag_send_nb(wa.ep(1), src, size, tag=1)
        m.sim.run()
        return m.sim.now

    def test_degraded_nic_slows_inter_node_transfer(self):
        base = MachineConfig.summit(nodes=2)
        healthy = self._time_inter_rndv(base)
        degraded = self._time_inter_rndv(base.with_faults(FaultPlan(
            bandwidth_windows=(BandwidthWindow("n*.nic*", 0.25),)
        )))
        assert degraded > healthy

    def test_window_outside_interval_is_noop_for_timing(self):
        base = MachineConfig.summit(nodes=2)
        healthy = self._time_inter_rndv(base)
        # window long past anything this run does
        later = self._time_inter_rndv(base.with_faults(FaultPlan(
            bandwidth_windows=(BandwidthWindow("n*.nic*", 0.25, t0=1e6),)
        )))
        assert later == healthy


# ---------------------------------------------------------------------------
# surfacing: session facade, observability, CLI
# ---------------------------------------------------------------------------

class TestSurfacing:
    def test_counters_in_session_metrics_snapshot(self):
        plan = FaultPlan.lossy(drop_p=0.1, seed=42)
        sess = api.build(MachineConfig.summit(nodes=2), "ampi", faults=plan)
        run_latency("ampi", 64 * KB, "inter", True, session=sess,
                    iters=4, skip=1)
        counters = sess.metrics_snapshot()["counters"]
        assert counters["fault.drop"] > 0
        assert counters["fault.retransmit"] > 0

    def test_fault_recovery_blame_layer(self):
        plan = FaultPlan.lossy(drop_p=0.15, seed=7)
        cfg = MachineConfig.summit(nodes=2).with_trace(True)
        sess = api.session(cfg).model("ampi").faults(plan).build()
        run_latency("ampi", 64 * KB, "inter", True, session=sess,
                    iters=6, skip=1)
        report = sess.critical_path()
        assert report.blame.get("fault_recovery", 0.0) > 0.0
        assert "fault_recovery" in report.format()

    def test_flight_records_count_retransmits(self):
        plan = FaultPlan.lossy(drop_p=0.2, seed=11, kinds=("eager", "rts"))
        cfg = MachineConfig.summit(nodes=2).with_flight(True)
        sess = api.session(cfg).model("ampi").faults(plan).build()
        run_latency("ampi", 64 * KB, "inter", True, session=sess,
                    iters=6, skip=1)
        recs = sess.flight_records()
        assert recs and all(r.complete for r in recs)
        assert sum(r.retransmits for r in recs) > 0

    def test_builder_faults_none_is_noop(self):
        sess = api.session(MachineConfig.summit(nodes=2)) \
            .model("openmpi").faults(None).build()
        assert sess.machine.fault_injector is None

    def test_osu_cli_fault_plan_inline(self, capsys):
        from repro.apps.osu.runner import main

        plan = FaultPlan.lossy(drop_p=0.1, seed=42).to_json(indent=None)
        main(["latency", "openmpi", "--placement", "inter",
              "--max-size", "256", "--fault-plan", plan])
        out = capsys.readouterr().out
        assert "# fault counters" in out
        assert "fault.retransmit=" in out

    def test_osu_cli_fault_plan_file(self, tmp_path, capsys):
        from repro.apps.osu.runner import main

        p = tmp_path / "plan.json"
        p.write_text(FaultPlan.lossy(drop_p=0.1, seed=42).to_json())
        main(["latency", "ampi", "--placement", "inter",
              "--max-size", "256", "--fault-plan", str(p), "--blame"])
        out = capsys.readouterr().out
        assert "# fault counters" in out
        assert "fault_recovery" in out

    def test_jacobi_cli_fault_plan(self, capsys):
        from repro.apps.jacobi3d.driver import main

        plan = FaultPlan.lossy(drop_p=0.02, seed=1).to_json(indent=None)
        main(["charm", "--nodes", "1", "--iters", "1", "--fault-plan", plan])
        out = capsys.readouterr().out
        assert "# fault counters" in out


class TestPoolExhaustion:
    """Pool-layer OutOfMemory is a resource fault: it must surface through
    the same error paths as communication faults — an ``MpiCommError``
    with ``UCS_ERR_NO_MEMORY`` at the allocation site, and the Charm
    runtime's ``on_comm_error`` notification."""

    def _capped_cfg(self):
        return (MachineConfig.summit(nodes=1)
                .with_pool(True, pool_slab_bytes=1 << 20,
                           pool_max_bytes=1 << 20))

    @pytest.mark.parametrize("model", ["ampi", "openmpi"])
    def test_pool_oom_is_mpi_comm_error_with_no_memory_status(self, model):
        from repro.ampi.mpi import MpiCommError

        sess = api.session(self._capped_cfg()).model(model).ranks(2).build()
        notified = []
        if sess.charm is not None:  # the Charm-side notification channel
            sess.charm.on_comm_error(
                lambda kind, tag, status: notified.append((kind, tag, status)))
        caught = {}

        def program(rank):
            if rank.rank == 0:
                rank.alloc_device(512 * KB)  # first slab
                try:
                    rank.alloc_device(1 << 20)  # second slab > pool cap
                except MpiCommError as exc:
                    caught["status"] = exc.status
                    caught["message"] = str(exc)
            yield from rank.barrier()

        sess.run_until(sess.launch(program), max_events=1_000_000)
        assert caught["status"] == UcsStatus.ERR_NO_MEMORY
        assert "pool" in caught["message"]
        if sess.charm is not None:
            assert ("alloc", 0, UcsStatus.ERR_NO_MEMORY) in notified
        assert sess.counters["fault.oom"] == 1

    def test_pool_return_avoids_the_oom(self):
        from repro.ampi.mpi import MpiCommError

        sess = api.session(self._capped_cfg()).model("ampi").ranks(2).build()

        def program(rank):
            if rank.rank == 0:
                for _ in range(8):  # 8 MB of traffic through a 1 MB cap
                    buf = rank.alloc_device(1 << 20)
                    rank.free_device(buf)
            yield from rank.barrier()

        sess.run_until(sess.launch(program), max_events=1_000_000)
        assert sess.counters["mem.pool_hit"] == 7
        assert "fault.oom" not in sess.counters

    def test_backing_device_oom_surfaces_identically(self):
        # exhaustion of the GPU itself (not the pool cap) takes the same
        # path: V100s model 16 GB, so two 9 GB direct allocations overflow
        from repro.ampi.mpi import MpiCommError

        sess = (api.session(MachineConfig.summit(nodes=1))
                .model("ampi").ranks(2).build())
        caught = {}

        def program(rank):
            if rank.rank == 0:
                rank.alloc_device(9 << 30)
                try:
                    rank.alloc_device(9 << 30)
                except MpiCommError as exc:
                    caught["status"] = exc.status
            yield from rank.barrier()

        sess.run_until(sess.launch(program), max_events=1_000_000)
        assert caught["status"] == UcsStatus.ERR_NO_MEMORY
