"""Tests for the UCX model: tag matching, protocols, AM path."""

import numpy as np
import pytest

from repro.config import KB, MachineConfig, MB
from repro.hardware.topology import Machine
from repro.ucx.context import UcpContext
from repro.ucx.protocols.pipeline import (
    pipeline_effective_bandwidth,
    pipeline_extra_time,
)
from repro.ucx.protocols.select import Protocol, choose_send_protocol
from repro.ucx.status import UcsStatus, UcxError


def make_pair(nodes=2, gpus=(0, 1), config=None):
    cfg = config if config is not None else MachineConfig.summit(nodes=nodes)
    m = Machine(cfg)
    ctx = UcpContext(m)
    wa = ctx.create_worker(0, m.node_of_gpu(gpus[0]), m.socket_of_gpu(gpus[0]))
    wb = ctx.create_worker(1, m.node_of_gpu(gpus[1]), m.socket_of_gpu(gpus[1]))
    return m, ctx, wa, wb


class TestProtocolSelection:
    def test_host_small_is_eager(self):
        m, ctx, *_ = make_pair()
        buf = m.alloc_host(0, 1024)
        assert choose_send_protocol(ctx.cfg, buf, 1024) is Protocol.EAGER

    def test_host_large_is_rndv(self):
        m, ctx, *_ = make_pair()
        buf = m.alloc_host(0, 64 * KB)
        assert choose_send_protocol(ctx.cfg, buf, 64 * KB) is Protocol.RNDV

    def test_host_threshold_boundary(self):
        m, ctx, *_ = make_pair()
        th = ctx.cfg.host_rndv_threshold
        buf = m.alloc_host(0, th)
        assert choose_send_protocol(ctx.cfg, buf, th - 1) is Protocol.EAGER
        assert choose_send_protocol(ctx.cfg, buf, th) is Protocol.RNDV

    def test_device_threshold(self):
        m, ctx, *_ = make_pair()
        th = ctx.cfg.device_eager_threshold
        buf = m.alloc_device(0, th)
        assert choose_send_protocol(ctx.cfg, buf, th - 1) is Protocol.EAGER
        assert choose_send_protocol(ctx.cfg, buf, th) is Protocol.RNDV

    def test_negative_size_rejected(self):
        m, ctx, *_ = make_pair()
        with pytest.raises(ValueError):
            choose_send_protocol(ctx.cfg, m.alloc_host(0, 8), -1)


class TestTagMatching:
    def test_expected_receive(self):
        m, ctx, wa, wb = make_pair()
        src, dst = m.alloc_host(0, 64), m.alloc_host(0, 64)
        src.data[:] = 9
        rreq = wb.tag_recv_nb(dst, 64, tag=5)
        sreq = wa.tag_send_nb(wa.ep(1), src, 64, tag=5)
        m.sim.run()
        assert rreq.completed and sreq.completed
        assert rreq.info == (5, 64)
        assert (dst.data == 9).all()
        assert wb.expected_hits == 1

    def test_unexpected_receive(self):
        m, ctx, wa, wb = make_pair()
        src, dst = m.alloc_host(0, 64), m.alloc_host(0, 64)
        src.data[:] = 7
        wa.tag_send_nb(wa.ep(1), src, 64, tag=5)
        m.sim.run()  # message parked in the unexpected queue
        rreq = wb.tag_recv_nb(dst, 64, tag=5)
        m.sim.run()
        assert rreq.completed and (dst.data == 7).all()
        assert wb.unexpected_hits == 1

    def test_fifo_matching_same_tag(self):
        m, ctx, wa, wb = make_pair()
        srcs = []
        for i in range(3):
            s = m.alloc_host(0, 8)
            s.data[:] = i + 1
            srcs.append(s)
            wa.tag_send_nb(wa.ep(1), s, 8, tag=1)
        m.sim.run()
        got = []
        for _ in range(3):
            d = m.alloc_host(0, 8)
            req = wb.tag_recv_nb(d, 8, tag=1)
            m.sim.run()
            assert req.completed
            got.append(int(d.data[0]))
        assert got == [1, 2, 3]

    def test_wildcard_mask_matches_any_counter(self):
        from repro.core.device_tags import MsgType, make_tag, msg_type_mask

        m, ctx, wa, wb = make_pair()
        src, dst = m.alloc_host(0, 8), m.alloc_host(0, 8)
        sent_tag = make_tag(MsgType.HOST, pe=0, count=77)
        want = make_tag(MsgType.HOST, pe=0, count=0)
        rreq = wb.tag_recv_nb(dst, 8, tag=want, mask=msg_type_mask())
        wa.tag_send_nb(wa.ep(1), src, 8, tag=sent_tag)
        m.sim.run()
        assert rreq.completed and rreq.info[0] == sent_tag

    def test_non_matching_tag_stays_posted(self):
        m, ctx, wa, wb = make_pair()
        src, dst = m.alloc_host(0, 8), m.alloc_host(0, 8)
        rreq = wb.tag_recv_nb(dst, 8, tag=99)
        wa.tag_send_nb(wa.ep(1), src, 8, tag=1)
        m.sim.run()
        assert not rreq.completed
        assert len(wb.unexpected) == 1 and len(wb.posted) == 1

    def test_truncation_error(self):
        m, ctx, wa, wb = make_pair()
        src, dst = m.alloc_host(0, 128), m.alloc_host(0, 16)
        rreq = wb.tag_recv_nb(dst, 16, tag=2)
        wa.tag_send_nb(wa.ep(1), src, 128, tag=2)
        m.sim.run()
        assert rreq.status is UcsStatus.ERR_MESSAGE_TRUNCATED

    def test_send_size_exceeding_buffer_rejected(self):
        m, ctx, wa, wb = make_pair()
        src = m.alloc_host(0, 8)
        with pytest.raises(UcxError):
            wa.tag_send_nb(wa.ep(1), src, 16, tag=0)

    def test_foreign_endpoint_rejected(self):
        m, ctx, wa, wb = make_pair()
        src = m.alloc_host(0, 8)
        with pytest.raises(UcxError):
            wb.tag_send_nb(wa.ep(1), src, 8, tag=0)


class TestRendezvous:
    def test_rndv_sender_completes_after_fin(self):
        m, ctx, wa, wb = make_pair()
        size = 1 * MB
        src, dst = m.alloc_host(0, size), m.alloc_host(0, size)
        rreq = wb.tag_recv_nb(dst, size, tag=3)
        sreq = wa.tag_send_nb(wa.ep(1), src, size, tag=3)
        m.sim.run()
        assert sreq.completed and rreq.completed
        # FIN comes back after the data: sender finishes last
        assert sreq.completed_at >= rreq.completed_at

    def test_rndv_data_integrity(self):
        m, ctx, wa, wb = make_pair()
        size = 256 * KB
        src, dst = m.alloc_host(0, size), m.alloc_host(0, size)
        src.data[:] = np.random.default_rng(1).integers(0, 255, size, dtype=np.uint8)
        rreq = wb.tag_recv_nb(dst, size, tag=3)
        wa.tag_send_nb(wa.ep(1), src, size, tag=3)
        m.sim.run()
        assert rreq.completed and (dst.data == src.data).all()

    def test_device_rndv_uses_ipc_cache(self):
        m, ctx, wa, wb = make_pair()
        size = 1 * MB
        src = m.alloc_device(0, size, materialize=False)
        dst = m.alloc_device(1, size, materialize=False)
        # first transfer pays the IPC open; second is cached and faster
        r1 = wb.tag_recv_nb(dst, size, tag=1)
        wa.tag_send_nb(wa.ep(1), src, size, tag=1)
        m.sim.run()
        t1 = m.sim.now
        r2 = wb.tag_recv_nb(dst, size, tag=2)
        wa.tag_send_nb(wa.ep(1), src, size, tag=2)
        m.sim.run()
        t2 = m.sim.now - t1
        assert r1.completed and r2.completed
        assert t1 - t2 == pytest.approx(
            m.cfg.cuda.ipc_handle_open_cost - m.cfg.cuda.ipc_cached_open_cost,
            rel=0.05,
        )

    def test_inter_node_device_pipelined_slower_than_gpudirect(self):
        size = 4 * MB

        def run(gdr: bool):
            from dataclasses import replace

            cfg = MachineConfig.summit(nodes=2)
            cfg = replace(cfg, ucx=replace(cfg.ucx, gpudirect_rdma=gdr))
            m, ctx, wa, wb = make_pair(gpus=(0, 6), config=cfg)
            src = m.alloc_device(0, size, materialize=False)
            dst = m.alloc_device(6, size, materialize=False)
            wb.tag_recv_nb(dst, size, tag=1)
            wa.tag_send_nb(wa.ep(1), src, size, tag=1)
            m.sim.run()
            return m.sim.now

        assert run(False) > run(True)


class TestEagerDevice:
    def test_gdrcopy_eager_device_roundtrip(self):
        m, ctx, wa, wb = make_pair()
        src = m.alloc_device(0, 512)
        dst = m.alloc_device(1, 512)
        src.data[:] = 42
        rreq = wb.tag_recv_nb(dst, 512, tag=9)
        wa.tag_send_nb(wa.ep(1), src, 512, tag=9)
        m.sim.run()
        assert rreq.completed and (dst.data == 42).all()
        assert ctx.gdrcopy.copies == 2  # copy-in + copy-out

    def test_no_gdrcopy_is_much_slower(self):
        def run(cfg):
            m, ctx, wa, wb = make_pair(config=cfg)
            src, dst = m.alloc_device(0, 64), m.alloc_device(1, 64)
            wb.tag_recv_nb(dst, 64, tag=9)
            wa.tag_send_nb(wa.ep(1), src, 64, tag=9)
            m.sim.run()
            return m.sim.now

        base = MachineConfig.summit(nodes=2)
        with_gdr = run(base)
        without = run(base.without_gdrcopy())
        assert without > 3 * with_gdr  # the paper: detection is essential


class TestPipelineModel:
    def test_extra_time_zero_for_empty(self):
        assert pipeline_extra_time(MachineConfig.summit(), 0) == 0.0

    def test_extra_grows_with_chunks(self):
        cfg = MachineConfig.summit()
        assert pipeline_extra_time(cfg, 4 * MB) > pipeline_extra_time(cfg, 1 * MB)

    def test_effective_bandwidth_below_nic(self):
        cfg = MachineConfig.summit()
        bw = pipeline_effective_bandwidth(cfg, 4 * MB)
        assert 0 < bw < cfg.topology.nic.bandwidth

    def test_effective_bandwidth_monotone(self):
        cfg = MachineConfig.summit()
        bws = [pipeline_effective_bandwidth(cfg, s) for s in (64 * KB, 512 * KB, 4 * MB)]
        assert bws == sorted(bws)


class TestAmPath:
    def test_eager_delivery(self):
        m, ctx, wa, wb = make_pair()
        got = []
        wb.set_am_handler(lambda payload, size, src: got.append((payload, size, src)))
        wa.am_send(wa.ep(1), 128, payload={"k": 1})
        m.sim.run()
        assert got == [({"k": 1}, 128, 0)]

    def test_rndv_delivery_and_sender_completion(self):
        m, ctx, wa, wb = make_pair()
        got = []
        wb.set_am_handler(lambda payload, size, src: got.append(size))
        req = wa.am_send(wa.ep(1), 1 * MB, payload="big")
        m.sim.run()
        assert got == [1 * MB] and req.completed

    def test_loopback(self):
        m, ctx, wa, wb = make_pair()
        got = []
        wa.set_am_handler(lambda payload, size, src: got.append(payload))
        wa.am_send(wa.ep(0), 64, payload="self")
        m.sim.run()
        assert got == ["self"]

    def test_missing_handler_raises(self):
        m, ctx, wa, wb = make_pair()
        wa.am_send(wa.ep(1), 64, payload=None)
        with pytest.raises(UcxError):
            m.sim.run()

    def test_ordering_mixed_rndv_eager(self):
        """The AM stream is strictly ordered per directed pair even when a
        rendezvous AM (delivery waits for the data fetch) is followed by a
        small eager one: the receiver holds the eager delivery until the
        earlier rendezvous message's data has landed."""
        m, ctx, wa, wb = make_pair()
        got = []
        wb.set_am_handler(lambda payload, size, src: got.append(payload))
        wa.am_send(wa.ep(1), 64 * KB, payload="big-first")  # rndv
        wa.am_send(wa.ep(1), 64, payload="small-second")  # eager
        m.sim.run()
        assert got == ["big-first", "small-second"]

    def test_ordering_many_interleaved_rndv_eager(self):
        m, ctx, wa, wb = make_pair()
        got = []
        wb.set_am_handler(lambda payload, size, src: got.append(payload))
        sent = []
        for i in range(8):
            size = 64 * KB if i % 2 == 0 else 64
            wa.am_send(wa.ep(1), size, payload=i)
            sent.append(i)
        m.sim.run()
        assert got == sent


class TestCancel:
    def test_cancel_posted_recv_then_repost(self):
        m, ctx, wa, wb = make_pair()
        dst = m.alloc_host(0, 64)
        rreq = wb.tag_recv_nb(dst, 64, tag=4)
        assert wb.cancel(rreq) is True
        assert rreq.status is UcsStatus.ERR_CANCELED
        assert len(wb.posted) == 0
        # the tag is free for a fresh post; traffic flows normally
        src = m.alloc_host(0, 64)
        src.data[:] = 3
        r2 = wb.tag_recv_nb(dst, 64, tag=4)
        wa.tag_send_nb(wa.ep(1), src, 64, tag=4)
        m.sim.run()
        assert r2.completed and r2.status is UcsStatus.OK
        assert (dst.data == 3).all()

    def test_cancel_completed_request_returns_false(self):
        m, ctx, wa, wb = make_pair()
        src, dst = m.alloc_host(0, 8), m.alloc_host(0, 8)
        rreq = wb.tag_recv_nb(dst, 8, tag=1)
        sreq = wa.tag_send_nb(wa.ep(1), src, 8, tag=1)
        m.sim.run()
        assert wb.cancel(rreq) is False
        assert wa.cancel(sreq) is False

    def test_cancel_eager_send_before_staging_does_not_deliver(self):
        m, ctx, wa, wb = make_pair()
        src = m.alloc_host(0, 64)
        sreq = wa.tag_send_nb(wa.ep(1), src, 64, tag=7)
        assert wa.cancel(sreq) is True
        assert sreq.status is UcsStatus.ERR_CANCELED
        m.sim.run()
        assert len(wb.unexpected) == 0
        # the cancelled frame's wire slot is consumed: later same-pair
        # traffic still arrives in order
        src2, dst2 = m.alloc_host(0, 8), m.alloc_host(0, 8)
        src2.data[:] = 5
        r2 = wb.tag_recv_nb(dst2, 8, tag=8)
        wa.tag_send_nb(wa.ep(1), src2, 8, tag=8)
        m.sim.run()
        assert r2.completed and (dst2.data == 5).all()

    def test_cancel_rndv_send_before_match_retracts_rts(self):
        m, ctx, wa, wb = make_pair()
        size = 1 * MB
        src = m.alloc_host(0, size)
        sreq = wa.tag_send_nb(wa.ep(1), src, size, tag=6)
        m.sim.run()  # RTS parked in wb's unexpected queue
        assert len(wb.unexpected) == 1
        assert wa.cancel(sreq) is True
        assert sreq.status is UcsStatus.ERR_CANCELED
        assert len(wb.unexpected) == 0
        # a matching recv posted afterwards must simply stay pending
        dst = m.alloc_host(0, size)
        rreq = wb.tag_recv_nb(dst, size, tag=6)
        m.sim.run()
        assert not rreq.completed

    def test_cancel_rndv_send_after_transfer_started_fails(self):
        m, ctx, wa, wb = make_pair()
        size = 1 * MB
        src, dst = m.alloc_host(0, size), m.alloc_host(0, size)
        rreq = wb.tag_recv_nb(dst, size, tag=6)
        sreq = wa.tag_send_nb(wa.ep(1), src, size, tag=6)
        # drain until the receiver has committed to the transfer
        while not wa._rndv_started and m.sim.step():
            pass
        assert wa._rndv_started
        assert wa.cancel(sreq) is False
        m.sim.run()
        assert sreq.completed and rreq.completed

    def test_cancel_am_send_unsupported(self):
        m, ctx, wa, wb = make_pair()
        wb.set_am_handler(lambda payload, size, src: None)
        req = wa.am_send(wa.ep(1), 1 * MB, payload="x")
        assert wa.cancel(req) is False
        m.sim.run()
        assert req.completed


class TestHostFreeHooks:
    def test_free_host_invalidates_reg_cache(self):
        m, ctx, wa, wb = make_pair(gpus=(0, 6))  # inter-node: host rndv pins
        size = 256 * KB
        src = m.alloc_host(0, size)
        dst = m.alloc_host(1, size)
        wb.tag_recv_nb(dst, size, tag=1)
        wa.tag_send_nb(wa.ep(1), src, size, tag=1)
        m.sim.run()
        assert src.address in ctx.reg_cache  # pinned by the transfer
        m.free_host(src)
        assert src.address not in ctx.reg_cache  # dropped with the buffer

    def test_free_host_rejects_device_and_double_free(self):
        m, ctx, wa, wb = make_pair()
        dev = m.alloc_device(0, 64)
        with pytest.raises(ValueError):
            m.free_host(dev)
        buf = m.alloc_host(0, 64)
        m.free_host(buf)
        with pytest.raises(RuntimeError):
            m.free_host(buf)


class TestPoolFreeHooks:
    """Pool returns are not frees: every address-keyed cache (mapping,
    IPC handle opens, custom free hooks) must survive a pool return and
    die only on a real free — a pool trim."""

    def _pooled_pair(self):
        cfg = (MachineConfig.summit(nodes=1)
               .with_pool(True, pool_slab_bytes=4 * MB)
               .with_ucx(mapping_cost=1e-5))
        return make_pair(config=cfg)

    def _transfer(self, m, wa, wb, src, dst, size, tag):
        wb.tag_recv_nb(dst, size, tag=tag)
        wa.tag_send_nb(wa.ep(1), src, size, tag=tag)
        m.sim.run()

    def test_pool_return_keeps_mapping_and_ipc_caches(self):
        m, ctx, wa, wb = self._pooled_pair()
        size = 256 * KB
        src = m.alloc_device(0, size)
        dst = m.alloc_device(1, size)
        self._transfer(m, wa, wb, src, dst, size, tag=1)
        mappings = len(ctx.map_cache)
        ipc_opens = len(ctx.cuda._ipc_open_cache)
        news = m.tracer.counters["ucx.mapping_new"]
        assert mappings > 0 and ipc_opens > 0 and news > 0

        hook_calls = []
        m.add_device_free_hook(lambda buf: hook_calls.append(buf))
        m.free_device(src)
        m.free_device(dst)
        # a return is not a free: nothing invalidated, nothing notified
        assert not hook_calls
        assert not src.freed and not dst.freed
        assert len(ctx.map_cache) == mappings
        assert len(ctx.cuda._ipc_open_cache) == ipc_opens

        # LIFO reuse hands back the very same blocks: the steady state
        # re-transfers without a single new mapping or driver open
        src2 = m.alloc_device(0, size)
        dst2 = m.alloc_device(1, size)
        assert src2 is src and dst2 is dst
        self._transfer(m, wa, wb, src2, dst2, size, tag=2)
        assert m.tracer.counters["ucx.mapping_new"] == news
        assert m.tracer.counters["ucx.mapping_hit"] > 0
        assert len(ctx.cuda._ipc_open_cache) == ipc_opens

    def test_trim_is_a_real_free_and_invalidates(self):
        m, ctx, wa, wb = self._pooled_pair()
        size = 256 * KB
        src = m.alloc_device(0, size)
        dst = m.alloc_device(1, size)
        self._transfer(m, wa, wb, src, dst, size, tag=1)
        assert len(ctx.map_cache) > 0

        hook_calls = []
        m.add_device_free_hook(lambda buf: hook_calls.append(buf))
        m.free_device(src)
        m.free_device(dst)
        released = m.trim_device_pools()
        assert released > 0
        # the trim freed the slabs AND notified for every carved block, so
        # every address-keyed consumer (mapping cache here) dropped out
        assert src in hook_calls and dst in hook_calls
        assert src.freed and dst.freed
        assert len(ctx.map_cache) == 0
        # fresh allocations after the trim are first touches again
        news = m.tracer.counters["ucx.mapping_new"]
        src3 = m.alloc_device(0, size)
        dst3 = m.alloc_device(1, size)
        self._transfer(m, wa, wb, src3, dst3, size, tag=3)
        assert m.tracer.counters["ucx.mapping_new"] > news

    def test_pool_return_keeps_ampi_gpu_pointer_cache(self):
        from repro.ampi import Ampi
        from repro.charm import Charm

        cfg = MachineConfig.summit(nodes=1).with_pool(True)
        ampi = Ampi(Charm(cfg), n_ranks=2)
        m = ampi.machine
        out = {}

        def program(rank):
            buf = rank.alloc_device(64 * KB)
            rank.ampi.gpu_caches[rank.pe].check(buf)
            rank.free_device(buf)
            again = rank.alloc_device(64 * KB)
            is_dev, _cost = rank.ampi.gpu_caches[rank.pe].check(again)
            if rank.rank == 0:
                out["reused"] = again is buf
                out["hits"] = rank.ampi.gpu_caches[rank.pe].hits
                out["invalidations"] = \
                    rank.ampi.gpu_caches[rank.pe].invalidations
            yield from rank.barrier()

        m.sim.run_until_complete(ampi.launch(program), max_events=1_000_000)
        # the return/reuse cycle stays warm: the second check is a hit
        # because the pool return never fired the invalidation hook
        assert out["reused"] is True
        assert out["hits"] == 1
        assert out["invalidations"] == 0


class TestChunkedMappingAccounting:
    """First-touch mapping for chunked/striped protocols keys on the BASE
    allocation: moving one buffer in many chunks (pipeline staging chunks,
    multirail stripes) charges the (base, peer-pair) mapping exactly once."""

    def _transfer(self, m, wa, wb, src, dst, size, tag=1):
        wb.tag_recv_nb(dst, size, tag=tag)
        wa.tag_send_nb(wa.ep(1), src, size, tag=tag)
        m.sim.run()

    def test_pipelined_multi_chunk_maps_once(self):
        from repro.ucx.protocols.pipeline import pipeline_chunks

        cfg = MachineConfig.summit(nodes=2).with_ucx(mapping_cost=1e-5)
        gpn = cfg.topology.gpus_per_node
        # device -> remote host: the pipelined lane stages ONE device
        # buffer through many bounce chunks
        m, ctx, wa, wb = make_pair(config=cfg, gpus=(0, gpn))
        size = 4 * MB
        assert pipeline_chunks(cfg, size) > 1
        src = m.alloc_device(0, size)
        dst = m.alloc_host(1, size)
        self._transfer(m, wa, wb, src, dst, size)
        assert m.tracer.counters["ucx.mapping_new"] == 1

    def test_striped_chunks_do_not_multiply_mappings(self):
        def news(cfg):
            m, ctx, wa, wb = make_pair(config=cfg, gpus=(0, 1))
            size = 4 * MB
            src = m.alloc_device(0, size)
            dst = m.alloc_device(1, size)
            self._transfer(m, wa, wb, src, dst, size)
            return (m.tracer.counters["ucx.mapping_new"],
                    m.tracer.counters.get("ucx.rail.striped", 0))

        base = MachineConfig.summit(nodes=1).with_ucx(mapping_cost=1e-5)
        single_news, single_striped = news(base)
        striped_news, striped_striped = news(base.with_multirail())
        assert single_striped == 0 and striped_striped == 1
        # 8 chunks over 2 rails, same two first touches (src via the IPC
        # open, dst registered back for the FIN'd direct copy)
        assert striped_news == single_news == 2


class TestMappingLRUCap:
    """``max_mappings``: LRU cap on the first-touch mapping cache (default
    unlimited = bit-identical to the uncapped dict it replaces)."""

    def _machine(self, max_mappings=None):
        cfg = (MachineConfig.summit(nodes=1)
               .with_ucx(mapping_cost=1e-5, max_mappings=max_mappings))
        m = Machine(cfg)
        return m, UcpContext(m)

    def test_validation(self):
        with pytest.raises(ValueError, match="max_mappings"):
            MachineConfig.summit(nodes=1).with_ucx(max_mappings=0)

    def test_eviction_counter_and_recharge(self):
        m, ctx = self._machine(max_mappings=2)
        bufs = [m.alloc_device(0, KB) for _ in range(3)]
        for b in bufs:
            assert ctx.mapping_charge(b, 0, 1) > 0.0
        # the third insert evicted the least-recently-touched first entry
        assert m.tracer.counters["ucx.mapping_evicted"] == 1
        assert len(ctx.map_cache) == 2
        # the evicted mapping re-charges on its next touch (and evicts the
        # next LRU victim to make room)
        assert ctx.mapping_charge(bufs[0], 0, 1) > 0.0
        assert m.tracer.counters["ucx.mapping_evicted"] == 2
        assert m.tracer.counters["ucx.mapping_new"] == 4

    def test_lru_touch_protects_hot_mappings(self):
        m, ctx = self._machine(max_mappings=2)
        a, b, c = (m.alloc_device(0, KB) for _ in range(3))
        ctx.mapping_charge(a, 0, 1)
        ctx.mapping_charge(b, 0, 1)
        # touch `a`: now `b` is the LRU victim
        assert ctx.mapping_charge(a, 0, 1) == 0.0
        ctx.mapping_charge(c, 0, 1)
        assert ctx.mapping_charge(a, 0, 1) == 0.0   # survived
        assert ctx.mapping_charge(b, 0, 1) > 0.0    # was evicted

    def test_eviction_drops_secondary_indexes(self):
        m, ctx = self._machine(max_mappings=1)
        a, b = m.alloc_device(0, KB), m.alloc_device(0, KB)
        ctx.mapping_charge(a, 0, 1)
        ctx.mapping_charge(b, 0, 1)  # evicts a's mapping
        assert len(ctx.map_cache) == 1
        assert len(ctx._map_by_base) == 1
        # freeing the evicted buffer is a clean no-op for the cache
        m.free_device(a)
        assert len(ctx.map_cache) == 1

    def test_unlimited_default_bit_identical_to_uncapped(self):
        """A cap that never bites (huge) must not shift any modeled
        quantity vs. the default-unlimited run — the LRU touch reorders
        the dict but changes no cost."""

        def fingerprint(max_mappings):
            cfg = (MachineConfig.summit(nodes=1)
                   .with_ucx(mapping_cost=1e-5, max_mappings=max_mappings))
            m, ctx, wa, wb = make_pair(config=cfg)
            for tag in range(4):
                src = m.alloc_device(0, 256 * KB)
                dst = m.alloc_device(1, 256 * KB)
                wb.tag_recv_nb(dst, 256 * KB, tag=tag)
                wa.tag_send_nb(wa.ep(1), src, 256 * KB, tag=tag)
                m.sim.run()
            return m.sim.now, m.sim.event_count, dict(m.tracer.counters)

        assert fingerprint(None) == fingerprint(1 << 30)
