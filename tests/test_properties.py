"""Property-based tests on core invariants (hypothesis)."""

import heapq

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ampi.matching import ANY_SOURCE, ANY_TAG, AmpiEnvelope, MatchEngine, PostedMpiRecv
from repro.sim.engine import Simulator
from repro.sim.primitives import SimEvent


# ---------------------------------------------------------------------------
# event engine ordering vs a sorted-reference oracle
# ---------------------------------------------------------------------------

@given(delays=st.lists(st.floats(0, 100, allow_nan=False), min_size=1, max_size=50))
@settings(max_examples=100)
def test_engine_executes_in_sorted_stable_order(delays):
    sim = Simulator()
    fired = []
    for i, d in enumerate(delays):
        sim.schedule(d, fired.append, (d, i))
    sim.run()
    assert fired == sorted(fired, key=lambda p: (p[0], p[1]))


@given(
    delays=st.lists(st.floats(0, 10, allow_nan=False), min_size=1, max_size=30),
    cancel_idx=st.data(),
)
@settings(max_examples=50)
def test_cancellation_removes_exactly_the_cancelled(delays, cancel_idx):
    sim = Simulator()
    fired = []
    handles = [sim.schedule(d, fired.append, i) for i, d in enumerate(delays)]
    victim = cancel_idx.draw(st.integers(0, len(handles) - 1))
    handles[victim].cancel()
    sim.run()
    assert victim not in fired
    assert sorted(fired) == [i for i in range(len(delays)) if i != victim]


# ---------------------------------------------------------------------------
# AMPI matching engine vs a brute-force oracle
# ---------------------------------------------------------------------------

class _Oracle:
    """Straightforward reference implementation of MPI matching."""

    def __init__(self):
        self.unexpected = []
        self.posted = []

    @staticmethod
    def _match(req, env):
        return (
            env.comm == req["comm"]
            and (req["src"] == ANY_SOURCE or req["src"] == env.src)
            and (req["tag"] == ANY_TAG or req["tag"] == env.tag)
        )

    def envelope(self, env):
        for i, req in enumerate(self.posted):
            if self._match(req, env):
                return self.posted.pop(i)["id"]
        self.unexpected.append(env)
        return None

    def recv(self, req):
        for i, env in enumerate(self.unexpected):
            if self._match(req, env):
                return self.unexpected.pop(i).seq
        self.posted.append(req)
        return None


_ops = st.lists(
    st.one_of(
        st.tuples(st.just("env"), st.integers(0, 3), st.integers(0, 3)),
        st.tuples(
            st.just("recv"),
            st.sampled_from([ANY_SOURCE, 0, 1, 2, 3]),
            st.sampled_from([ANY_TAG, 0, 1, 2, 3]),
        ),
    ),
    min_size=1,
    max_size=40,
)


@given(ops=_ops)
@settings(max_examples=200)
def test_matching_engine_agrees_with_oracle(ops):
    sim = Simulator()
    engine = MatchEngine()
    oracle = _Oracle()
    seq = 0
    req_id = 0
    for op in ops:
        if op[0] == "env":
            _, src, tag = op
            env = AmpiEnvelope(src=src, dst=0, tag=tag, comm=0, size=8, seq=seq)
            matched, _ = engine.match_envelope(env)
            oracle_hit = oracle.envelope(env)
            assert (matched is not None) == (oracle_hit is not None)
            if matched is not None:
                assert matched.event.name == f"r{oracle_hit}"
            seq += 1
        else:
            _, src, tag = op
            ev = SimEvent(sim, name=f"r{req_id}")
            req = PostedMpiRecv(src=src, tag=tag, comm=0, buf=None,
                                capacity=1 << 30, event=ev)
            matched, _ = engine.match_recv(req)
            oracle_hit = oracle.recv({"src": src, "tag": tag, "comm": 0, "id": req_id})
            assert (matched is not None) == (oracle_hit is not None)
            if matched is not None:
                assert matched.seq == oracle_hit
            req_id += 1
    # residual queue lengths agree
    assert len(engine.unexpected) == len(oracle.unexpected)
    assert len(engine.posted) == len(oracle.posted)


# ---------------------------------------------------------------------------
# cost-model monotonicity
# ---------------------------------------------------------------------------

@given(
    a=st.integers(1, 1 << 22),
    b=st.integers(1, 1 << 22),
)
@settings(max_examples=100)
def test_pipeline_bandwidth_monotone(a, b):
    from repro.config import MachineConfig
    from repro.ucx.protocols.pipeline import pipeline_effective_bandwidth

    cfg = MachineConfig.summit()
    lo, hi = min(a, b), max(a, b)
    assert pipeline_effective_bandwidth(cfg, lo) <= (
        pipeline_effective_bandwidth(cfg, hi) * (1 + 1e-9)
    )


@given(size=st.integers(0, 1 << 23))
@settings(max_examples=100)
def test_link_transfer_time_affine(size):
    from repro.config import LinkParams

    p = LinkParams(latency=1e-6, bandwidth=1e9)
    assert p.transfer_time(size) == 1e-6 + size / 1e9


# ---------------------------------------------------------------------------
# buffer copy semantics
# ---------------------------------------------------------------------------

@given(
    n=st.integers(1, 256),
    k=st.integers(1, 256),
    fill=st.integers(0, 255),
)
@settings(max_examples=100)
def test_partial_copy_preserves_tail(n, k, fill):
    from repro.hardware.memory import host_buffer

    size = max(n, k)
    src = host_buffer(0, size, np.full(size, fill, dtype=np.uint8))
    dst = host_buffer(0, size, np.zeros(size, dtype=np.uint8))
    dst.copy_from(src, nbytes=min(n, k))
    cut = min(n, k)
    assert (dst.data[:cut] == fill).all()
    assert (dst.data[cut:] == 0).all()
