"""Regression tests for per-pair wire ordering (ordered-QP semantics).

A small control frame (RTS) physically bypasses bulk data in the link
model; matching must nevertheless follow send order, or a rendezvous
message overtakes an earlier eager one and MPI's non-overtaking rule
breaks (this actually happened — caught by the randomized stress tests).
"""

import numpy as np
import pytest

from repro.config import KB, MachineConfig, MB
from repro.hardware.topology import Machine
from repro.ucx.context import UcpContext


def make_pair(nodes=2, gpus=(0, 6)):
    m = Machine(MachineConfig.summit(nodes=nodes))
    ctx = UcpContext(m)
    wa = ctx.create_worker(0, m.node_of_gpu(gpus[0]), m.socket_of_gpu(gpus[0]))
    wb = ctx.create_worker(1, m.node_of_gpu(gpus[1]), m.socket_of_gpu(gpus[1]))
    return m, wa, wb


class TestTaggedStreamOrdering:
    def test_rndv_does_not_overtake_eager_same_tag(self):
        """big-eager then rndv: the rndv RTS (tiny, bypasses links) must not
        match the first posted receive."""
        m, wa, wb = make_pair()
        small = m.alloc_host(0, 8 * KB, materialize=True)
        small.data[:] = 1
        big = m.alloc_host(0, 1 * MB, materialize=True)
        big.data[:] = 2
        d1 = m.alloc_host(1, 1 * MB, materialize=True)
        d2 = m.alloc_host(1, 1 * MB, materialize=True)
        r1 = wb.tag_recv_nb(d1, 1 * MB, tag=5)
        r2 = wb.tag_recv_nb(d2, 1 * MB, tag=5)
        wa.tag_send_nb(wa.ep(1), small, 8 * KB, tag=5)  # eager (bulk wire)
        wa.tag_send_nb(wa.ep(1), big, 1 * MB, tag=5)  # rndv (RTS bypasses)
        m.sim.run()
        assert r1.completed and r2.completed
        assert r1.info[1] == 8 * KB and d1.data[0] == 1
        assert r2.info[1] == 1 * MB and d2.data[0] == 2

    def test_mixed_sizes_exact_capacity_never_truncates(self):
        """The original failure: exact-capacity receives posted in send
        order must all match without truncation despite protocol mixes."""
        m, wa, wb = make_pair()
        sizes = [64, 512 * KB, 256, 64 * KB, 2 * MB, 1 * KB]
        reqs = []
        for i, size in enumerate(sizes):
            dst = m.alloc_host(1, size, materialize=True)
            reqs.append((wb.tag_recv_nb(dst, size, tag=1), dst, i, size))
        for i, size in enumerate(sizes):
            src = m.alloc_host(0, size, materialize=True)
            src.data[:] = (i + 1) * 7 % 251
            wa.tag_send_nb(wa.ep(1), src, size, tag=1)
        m.sim.run()
        for req, dst, i, size in reqs:
            assert req.completed and req.status.name == "OK", (i, size)
            assert dst.data[0] == (i + 1) * 7 % 251

    def test_device_eager_and_rndv_ordered(self):
        m, wa, wb = make_pair()
        small = m.alloc_device(0, 1 * KB, materialize=True)
        small.data[:] = 3
        big = m.alloc_device(0, 256 * KB, materialize=True)
        big.data[:] = 4
        d1 = m.alloc_device(6, 256 * KB, materialize=True)
        d2 = m.alloc_device(6, 256 * KB, materialize=True)
        r1 = wb.tag_recv_nb(d1, 256 * KB, tag=9)
        r2 = wb.tag_recv_nb(d2, 256 * KB, tag=9)
        wa.tag_send_nb(wa.ep(1), small, 1 * KB, tag=9)
        wa.tag_send_nb(wa.ep(1), big, 256 * KB, tag=9)
        m.sim.run()
        assert r1.info[1] == 1 * KB and d1.data[0] == 3
        assert r2.info[1] == 256 * KB and d2.data[0] == 4

    def test_unexpected_queue_respects_send_order(self):
        """Nothing posted: messages park in the unexpected queue in send
        order, so later receives drain them FIFO."""
        m, wa, wb = make_pair()
        first = m.alloc_host(0, 32 * KB, materialize=True)
        first.data[:] = 11
        second = m.alloc_host(0, 64, materialize=True)
        second.data[:] = 22
        wa.tag_send_nb(wa.ep(1), first, 32 * KB, tag=2)  # rndv
        wa.tag_send_nb(wa.ep(1), second, 64, tag=2)  # eager ctrl-sized
        m.sim.run()
        d = m.alloc_host(1, 32 * KB, materialize=True)
        r1 = wb.tag_recv_nb(d, 32 * KB, tag=2)
        m.sim.run()
        assert r1.info[1] == 32 * KB and d.data[0] == 11

    def test_fin_not_sequenced(self):
        """FINs travel outside the matchable stream; a rendezvous completes
        even while later matchable traffic is held for ordering."""
        m, wa, wb = make_pair()
        big = m.alloc_host(0, 1 * MB, materialize=True)
        dst = m.alloc_host(1, 1 * MB, materialize=True)
        r = wb.tag_recv_nb(dst, 1 * MB, tag=1)
        s = wa.tag_send_nb(wa.ep(1), big, 1 * MB, tag=1)
        m.sim.run()
        assert s.completed and r.completed


class TestAmStreamOrdering:
    def test_small_envelope_does_not_overtake_large(self):
        m, wa, wb = make_pair()
        got = []
        wb.set_am_handler(lambda payload, size, src: got.append(payload))
        wa.am_send(wa.ep(1), 8 * KB, payload="big-first")  # eager, queues
        wa.am_send(wa.ep(1), 64, payload="small-second")  # would bypass
        m.sim.run()
        assert got == ["big-first", "small-second"]

    def test_many_mixed_sizes_stay_ordered(self):
        m, wa, wb = make_pair(nodes=1, gpus=(0, 1))
        got = []
        wb.set_am_handler(lambda payload, size, src: got.append(payload))
        rng = np.random.default_rng(5)
        for i in range(20):
            wa.am_send(wa.ep(1), int(rng.integers(1, 12 * KB)), payload=i)
        m.sim.run()
        assert got == list(range(20))

    def test_bidirectional_streams_independent(self):
        m, wa, wb = make_pair()
        got_a, got_b = [], []
        wa.set_am_handler(lambda p, s, src: got_a.append(p))
        wb.set_am_handler(lambda p, s, src: got_b.append(p))
        for i in range(5):
            wa.am_send(wa.ep(1), 4 * KB, payload=("a", i))
            wb.am_send(wb.ep(0), 64, payload=("b", i))
        m.sim.run()
        assert got_b == [("a", i) for i in range(5)]
        assert got_a == [("b", i) for i in range(5)]
