"""Smoke tests for the CLI entry points and the example scripts."""

import runpy
import sys
from pathlib import Path

import pytest

from repro.apps.jacobi3d import driver as jacobi_driver
from repro.apps.osu import runner as osu_runner
from repro.apps.shuffle import driver as shuffle_driver
from repro.bench import figures

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


class TestOsuCli:
    def test_latency_output(self, capsys):
        osu_runner.main(["latency", "charm", "--max-size", "1024"])
        out = capsys.readouterr().out
        assert "OSU latency: charm-D" in out
        assert "1K" in out

    def test_bandwidth_host_staging(self, capsys):
        osu_runner.main(
            ["bandwidth", "openmpi", "--host-staging", "--max-size", "256",
             "--placement", "inter"]
        )
        out = capsys.readouterr().out
        assert "openmpi-H (inter-node)" in out

    def test_bad_model_rejected(self):
        with pytest.raises(SystemExit):
            osu_runner.main(["latency", "mvapich"])


class TestJacobiCli:
    def test_runs_and_prints(self, capsys):
        jacobi_driver.main(["charm", "--nodes", "1", "--iters", "2"])
        out = capsys.readouterr().out
        assert "overall time per iteration" in out
        assert "Jacobi3D charm-D" in out

    def test_host_staging_flag(self, capsys):
        jacobi_driver.main(["ampi", "--nodes", "1", "--iters", "2",
                            "--host-staging"])
        assert "ampi-H" in capsys.readouterr().out


class TestShuffleCli:
    def test_runs_and_prints(self, capsys):
        shuffle_driver.main(["ampi", "--nodes", "1", "--rounds", "2"])
        out = capsys.readouterr().out
        assert "shuffle ampi [pool]" in out
        assert "bandwidth" in out

    def test_ablation_prints_speedup(self, capsys):
        shuffle_driver.main(
            ["charm4py", "--nodes", "1", "--rounds", "2", "--ablation"])
        out = capsys.readouterr().out
        assert "pool speedup" in out

    def test_bad_model_rejected(self):
        with pytest.raises(SystemExit):
            shuffle_driver.main(["mvapich"])


class TestFiguresCli:
    def test_single_target(self, capsys):
        figures.main(["anatomy"])
        out = capsys.readouterr().out
        assert "AMPI overhead anatomy" in out

    def test_quick_flag(self, capsys):
        figures.main(["ablation-gpudirect", "--quick"])
        assert "rendezvous lane" in capsys.readouterr().out

    def test_unknown_target(self):
        with pytest.raises(SystemExit):
            figures.main(["fig99"])


class TestExamples:
    def _run(self, name):
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")

    def test_quickstart(self, capsys):
        self._run("quickstart.py")
        out = capsys.readouterr().out
        assert "GPU data from 'sender-chare' arrived" in out
        assert "device sends: 1" in out

    def test_ampi_cuda_aware(self, capsys):
        self._run("ampi_cuda_aware.py")
        out = capsys.readouterr().out
        assert "global residual" in out
        assert "finished at" in out

    def test_jacobi3d_scaling_importable(self):
        # only the functional-verification part (the sweep is exercised by
        # the benchmarks); importing must not execute anything heavy
        mod = runpy.run_path(str(EXAMPLES / "jacobi3d_scaling.py"))
        mod["verify_small_grid"]()
