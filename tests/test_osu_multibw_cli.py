"""Additional OSU-suite coverage: sweeps, placements, window sensitivity."""

import pytest

from repro.apps.osu import run_bandwidth, run_latency, run_bandwidth_sweep, run_latency_sweep
from repro.config import KB, MachineConfig, MB


class TestSweeps:
    def test_latency_sweep_returns_all_sizes(self):
        sizes = [8, 1 * KB, 64 * KB]
        out = run_latency_sweep("charm", "intra", True, sizes, iters=4, skip=1)
        assert list(out) == sizes
        assert all(v > 0 for v in out.values())

    def test_bandwidth_sweep_returns_all_sizes(self):
        sizes = [4 * KB, 256 * KB]
        out = run_bandwidth_sweep("openmpi", "inter", True, sizes, loops=2, skip=1,
                                  window=8)
        assert list(out) == sizes

    def test_custom_config_respected(self):
        """A slower NIC must show up in inter-node latency."""
        from dataclasses import replace

        from repro.config import GB, LinkParams

        slow = MachineConfig.summit(nodes=2)
        slow = replace(
            slow,
            topology=replace(slow.topology, nic=LinkParams(0.8e-6, 1 * GB)),
        )
        fast = run_latency("charm", 1 * MB, "inter", True, MachineConfig.summit(nodes=2),
                           iters=3, skip=1)
        slower = run_latency("charm", 1 * MB, "inter", True, slow, iters=3, skip=1)
        assert slower > 3 * fast


class TestWindowSensitivity:
    def test_larger_window_does_not_reduce_bandwidth(self):
        small = run_bandwidth("charm", 256 * KB, "intra", True, loops=2, skip=1,
                              window=4)
        large = run_bandwidth("charm", 256 * KB, "intra", True, loops=2, skip=1,
                              window=32)
        assert large >= small * 0.9

    def test_latency_insensitive_to_iteration_count(self):
        a = run_latency("openmpi", 4 * KB, "intra", True, iters=5, skip=2)
        b = run_latency("openmpi", 4 * KB, "intra", True, iters=20, skip=2)
        assert a == pytest.approx(b, rel=0.02)


class TestPlacementContrast:
    @pytest.mark.parametrize("model", ["charm", "ampi", "openmpi", "charm4py"])
    def test_intra_beats_inter_at_bulk_sizes(self, model):
        intra = run_bandwidth(model, 4 * MB, "intra", True, loops=2, skip=1)
        inter = run_bandwidth(model, 4 * MB, "inter", True, loops=2, skip=1)
        assert intra > 2 * inter  # NVLink vs one EDR rail

    def test_cross_socket_pair_slower_than_same_socket(self):
        """X-Bus adds latency for socket-crossing pairs."""
        from repro.apps.osu.latency import charm_latency

        cfg = MachineConfig.summit(nodes=1)
        same = charm_latency(cfg, 1 * MB, (0, 1), True, iters=4, skip=1)
        cross = charm_latency(cfg, 1 * MB, (0, 4), True, iters=4, skip=1)
        assert cross >= same
