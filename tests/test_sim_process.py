"""Tests for generator-based processes."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.primitives import AllOf, SimEvent, Timeout
from repro.sim.process import Interrupt, Process, spawn


@pytest.fixture
def sim():
    return Simulator()


def test_process_runs_and_returns_value(sim):
    def gen():
        yield Timeout(sim, 1.0)
        return "done"

    p = Process(sim, gen())
    sim.run()
    assert p.triggered and p.result() == "done"
    assert sim.now == 1.0


def test_process_requires_generator(sim):
    with pytest.raises(TypeError):
        Process(sim, lambda: None)


def test_process_receives_event_values(sim):
    got = []

    def gen():
        v = yield Timeout(sim, 0.5, value=123)
        got.append(v)

    Process(sim, gen())
    sim.run()
    assert got == [123]


def test_yield_none_resumes_same_instant(sim):
    times = []

    def gen():
        times.append(sim.now)
        yield None
        times.append(sim.now)

    Process(sim, gen())
    sim.run()
    assert times == [0.0, 0.0]


def test_process_join(sim):
    def child():
        yield Timeout(sim, 2.0)
        return 5

    def parent():
        v = yield Process(sim, child())
        return v * 2

    p = Process(sim, parent())
    sim.run()
    assert p.result() == 10


def test_exception_propagates_to_joiner(sim):
    def child():
        yield Timeout(sim, 1.0)
        raise ValueError("child failed")

    def parent():
        try:
            yield Process(sim, child())
        except ValueError as e:
            return f"caught {e}"

    p = Process(sim, parent())
    sim.run()
    assert p.result() == "caught child failed"


def test_unjoined_exception_reraises(sim):
    def gen():
        yield Timeout(sim, 0.1)
        raise RuntimeError("unhandled")

    Process(sim, gen())
    with pytest.raises(RuntimeError, match="unhandled"):
        sim.run()


def test_interrupt_delivers_cause(sim):
    causes = []

    def gen():
        try:
            yield Timeout(sim, 100.0)
        except Interrupt as i:
            causes.append(i.cause)

    p = Process(sim, gen())
    sim.schedule(1.0, p.interrupt, "stop now")
    sim.run()
    assert causes == ["stop now"]
    assert p.triggered


def test_interrupt_after_completion_is_noop(sim):
    def gen():
        yield Timeout(sim, 0.5)

    p = Process(sim, gen())
    sim.run()
    p.interrupt()
    sim.run()


def test_kill_terminates_silently(sim):
    progress = []

    def gen():
        progress.append("start")
        yield Timeout(sim, 100.0)
        progress.append("never")

    p = Process(sim, gen())
    sim.schedule(1.0, p.kill)
    sim.run()
    assert progress == ["start"]
    assert p.triggered and p.result() is None


def test_invalid_yield_type_raises(sim):
    def gen():
        yield 42

    Process(sim, gen())
    with pytest.raises(TypeError, match="yielded"):
        sim.run()


def test_two_processes_interleave(sim):
    log = []

    def worker(name, delay):
        for i in range(3):
            yield Timeout(sim, delay)
            log.append((name, sim.now))

    spawn(sim, worker("fast", 1.0))
    spawn(sim, worker("slow", 1.5))
    sim.run()
    # at t=3.0 both wake; slow's timeout was scheduled earlier (at t=1.5)
    # so FIFO tie-breaking resumes it first
    assert log == [
        ("fast", 1.0), ("slow", 1.5), ("fast", 2.0), ("slow", 3.0),
        ("fast", 3.0), ("slow", 4.5),
    ]


def test_process_waits_on_plain_event(sim):
    ev = SimEvent(sim)
    got = []

    def gen():
        got.append((yield ev))

    Process(sim, gen())
    sim.schedule(2.0, ev.succeed, "payload")
    sim.run()
    assert got == ["payload"]


def test_process_is_event_for_allof(sim):
    def gen(v, d):
        yield Timeout(sim, d)
        return v

    combo = AllOf(sim, [Process(sim, gen("a", 1)), Process(sim, gen("b", 2))])
    sim.run()
    assert combo.result() == ["a", "b"]


def test_yield_from_composes_subgenerators(sim):
    def sub():
        yield Timeout(sim, 1.0)
        return "sub-value"

    def main():
        v = yield from sub()
        return v.upper()

    p = Process(sim, main())
    sim.run()
    assert p.result() == "SUB-VALUE"
