"""Tests for the configuration layer and public package surface."""

from dataclasses import FrozenInstanceError, replace

import pytest

import repro
from repro.config import (
    GB,
    KB,
    MB,
    LinkParams,
    MachineConfig,
    TagConfig,
    TopologyConfig,
)


class TestPackage:
    def test_version(self):
        assert repro.__version__

    def test_top_level_exports(self):
        assert repro.__all__ == ["MachineConfig", "__version__", "api", "obs"]
        assert isinstance(MachineConfig.default(), MachineConfig)

    def test_api_facade_importable(self):
        assert repro.api.MODELS == ("charm", "ampi", "openmpi", "charm4py")
        assert callable(repro.api.session)

    def test_deprecated_aliases_removed(self):
        # the free summit()/default_config() helpers completed their
        # deprecation cycle; MachineConfig classmethods are the API
        import repro.config

        assert not hasattr(repro, "summit")
        assert not hasattr(repro, "default_config")
        assert not hasattr(repro.config, "summit")
        assert not hasattr(repro.config, "default_config")


class TestLinkParams:
    def test_transfer_time(self):
        p = LinkParams(latency=2e-6, bandwidth=1 * GB)
        assert p.transfer_time(0) == 2e-6
        assert p.transfer_time(1 * GB) == pytest.approx(2e-6 + 1.0)


class TestTopology:
    def test_summit_shape(self):
        cfg = MachineConfig.summit(nodes=4)
        t = cfg.topology
        assert t.nodes == 4
        assert t.gpus_per_node == 6
        assert t.total_gpus == 24
        assert t.sockets_per_node == 2 and t.gpus_per_socket == 3

    def test_link_speed_ordering(self):
        t = TopologyConfig()
        # X-Bus > NVLink > host memcpy > NIC is the Summit hierarchy
        assert t.xbus.bandwidth > t.nvlink.bandwidth > t.nic.bandwidth
        assert t.device_mem.bandwidth > t.nvlink.bandwidth

    def test_configs_frozen(self):
        cfg = MachineConfig.summit()
        with pytest.raises(FrozenInstanceError):
            cfg.trace = True

    def test_with_nodes(self):
        assert MachineConfig.summit(nodes=2).with_nodes(16).topology.nodes == 16

    def test_with_nodes_validates(self):
        with pytest.raises(ValueError):
            MachineConfig.summit().with_nodes(0)
        with pytest.raises(ValueError):
            MachineConfig.summit().with_nodes(-2)

    def test_without_gdrcopy(self):
        assert MachineConfig.summit().ucx.gdrcopy_enabled
        assert not MachineConfig.summit().without_gdrcopy().ucx.gdrcopy_enabled

    def test_with_trace(self):
        assert not MachineConfig.summit().trace
        assert MachineConfig.summit().with_trace().trace
        assert not MachineConfig.summit().with_trace(True).with_trace(False).trace

    def test_summit_overrides(self):
        cfg = MachineConfig.summit(nodes=1, trace=True, seed=7)
        assert cfg.trace and cfg.seed == 7

    def test_summit_rejects_unknown_overrides(self):
        with pytest.raises(ValueError, match="unknown MachineConfig override"):
            MachineConfig.summit(nodes=1, tracing=True)

    def test_with_overrides_validates(self):
        cfg = MachineConfig.summit().with_overrides(seed=9)
        assert cfg.seed == 9
        with pytest.raises(ValueError, match="valid fields"):
            MachineConfig.summit().with_overrides(sede=9)

    def test_with_ucx_and_runtime_validate(self):
        cfg = MachineConfig.summit().with_ucx(gdrcopy_enabled=False)
        assert not cfg.ucx.gdrcopy_enabled
        with pytest.raises(ValueError):
            MachineConfig.summit().with_ucx(gdrcopy=False)
        cfg = MachineConfig.summit().with_runtime(ampi_send_overhead=1e-6)
        assert cfg.runtime.ampi_send_overhead == 1e-6
        with pytest.raises(ValueError):
            MachineConfig.summit().with_runtime(nope=1.0)


class TestTagConfigValidation:
    def test_default_is_paper_split(self):
        t = TagConfig()
        assert (t.msg_bits, t.pe_bits, t.cnt_bits) == (4, 32, 28)

    def test_bad_sum_rejected(self):
        with pytest.raises(ValueError):
            TagConfig(msg_bits=8, pe_bits=32, cnt_bits=28)


class TestUnits:
    def test_byte_units(self):
        assert KB == 1024 and MB == 1024**2 and GB == 1024**3


class TestUcxDefaults:
    def test_thresholds_sane(self):
        u = MachineConfig.summit().ucx
        assert 0 < u.device_eager_threshold < u.host_rndv_threshold
        assert u.pipeline_chunk >= 64 * KB
        assert u.pipeline_num_stages >= 2

    def test_runtime_overheads_positive(self):
        rt = MachineConfig.summit().runtime
        for name in ("scheduler_pickup_overhead", "entry_dispatch_overhead",
                     "ampi_send_overhead", "py_call_overhead",
                     "charm_send_overhead", "ompi_send_overhead"):
            assert getattr(rt, name) > 0

    def test_ampi_overheads_exceed_openmpi(self):
        rt = MachineConfig.summit().runtime
        assert rt.ampi_send_overhead > rt.ompi_send_overhead
        assert rt.ampi_recv_overhead > rt.ompi_recv_overhead

    def test_replace_produces_new_config(self):
        cfg = MachineConfig.summit()
        cfg2 = replace(cfg, ucx=replace(cfg.ucx, gdrcopy_enabled=False))
        assert cfg.ucx.gdrcopy_enabled and not cfg2.ucx.gdrcopy_enabled
