"""Tests for buffers and device allocators."""

import numpy as np
import pytest

from repro.hardware.memory import Buffer, DeviceAllocator, MemoryKind, OutOfMemory, host_buffer


class TestBuffer:
    def test_device_buffer_requires_device_index(self):
        with pytest.raises(ValueError):
            Buffer(MemoryKind.DEVICE, 8, node=0)

    def test_host_buffer_rejects_device_index(self):
        with pytest.raises(ValueError):
            Buffer(MemoryKind.HOST, 8, node=0, device=1)

    def test_size_must_be_positive(self):
        with pytest.raises(ValueError):
            Buffer(MemoryKind.HOST, 0, node=0)

    def test_data_size_must_match(self):
        with pytest.raises(ValueError):
            Buffer(MemoryKind.HOST, 8, node=0, data=np.zeros(4, dtype=np.uint8))

    def test_addresses_unique(self):
        bufs = [host_buffer(0, 8) for _ in range(100)]
        assert len({b.address for b in bufs}) == 100

    def test_copy_from_moves_bytes(self):
        a = host_buffer(0, 16, np.arange(16, dtype=np.uint8))
        b = host_buffer(0, 16, np.zeros(16, dtype=np.uint8))
        b.copy_from(a)
        assert (b.data == a.data).all()

    def test_partial_copy(self):
        a = host_buffer(0, 16, np.full(16, 9, dtype=np.uint8))
        b = host_buffer(0, 16, np.zeros(16, dtype=np.uint8))
        b.copy_from(a, nbytes=4)
        assert b.data[:4].tolist() == [9] * 4 and (b.data[4:] == 0).all()

    def test_copy_exceeding_size_rejected(self):
        a = host_buffer(0, 8, np.zeros(8, dtype=np.uint8))
        b = host_buffer(0, 4, np.zeros(4, dtype=np.uint8))
        with pytest.raises(ValueError):
            b.copy_from(a, nbytes=8)

    def test_virtual_copy_is_noop(self):
        a = host_buffer(0, 8)  # materialize defaults to None data here
        b = host_buffer(0, 8, np.zeros(8, dtype=np.uint8))
        assert a.is_virtual
        b.copy_from(a)  # no crash, no data change
        a.copy_from(b)

    def test_use_after_free_rejected(self):
        alloc = DeviceAllocator(1024, device=0, node=0)
        buf = alloc.alloc(64)
        other = alloc.alloc(64)
        alloc.free(buf)
        with pytest.raises(RuntimeError):
            other.copy_from(buf)

    def test_fill(self):
        b = host_buffer(0, 8, np.zeros(8, dtype=np.uint8))
        b.fill(7)
        assert (b.data == 7).all()

    def test_multidim_data_copies_flat(self):
        src = host_buffer(0, 24, np.arange(6, dtype=np.float32).reshape(2, 3))
        dst = host_buffer(0, 24, np.zeros((3, 2), dtype=np.float32))
        dst.copy_from(src)
        assert (dst.data.reshape(-1) == src.data.reshape(-1)).all()

    def test_same_location(self):
        a = Buffer(MemoryKind.DEVICE, 8, node=0, device=3)
        b = Buffer(MemoryKind.DEVICE, 16, node=0, device=3)
        c = Buffer(MemoryKind.DEVICE, 8, node=0, device=4)
        assert a.same_location(b) and not a.same_location(c)


class TestDeviceAllocator:
    def test_tracks_usage(self):
        alloc = DeviceAllocator(1000, device=0, node=0)
        a = alloc.alloc(400)
        assert alloc.used == 400 and alloc.live_buffers == 1
        alloc.free(a)
        assert alloc.used == 0 and alloc.live_buffers == 0

    def test_oom_when_exhausted(self):
        alloc = DeviceAllocator(100, device=0, node=0)
        alloc.alloc(60)
        with pytest.raises(OutOfMemory):
            alloc.alloc(60)

    def test_free_restores_capacity(self):
        alloc = DeviceAllocator(100, device=0, node=0)
        a = alloc.alloc(80)
        alloc.free(a)
        alloc.alloc(80)  # fits again

    def test_double_free_rejected(self):
        alloc = DeviceAllocator(100, device=0, node=0)
        a = alloc.alloc(10)
        alloc.free(a)
        with pytest.raises(RuntimeError):
            alloc.free(a)

    def test_foreign_buffer_rejected(self):
        a0 = DeviceAllocator(100, device=0, node=0)
        a1 = DeviceAllocator(100, device=1, node=0)
        buf = a0.alloc(10)
        with pytest.raises(ValueError):
            a1.free(buf)

    def test_allocated_buffer_is_device_kind(self):
        alloc = DeviceAllocator(100, device=2, node=1)
        buf = alloc.alloc(10)
        assert buf.on_device and buf.device == 2 and buf.node == 1


class TestPooledAllocator:
    def _pool(self, capacity=64 * 1024 * 1024, **overrides):
        from repro.config import MemoryConfig
        from repro.hardware.memory import PooledAllocator

        overrides.setdefault("pool_slab_bytes", 1 << 20)
        backing = DeviceAllocator(capacity, device=0, node=0)
        policy = MemoryConfig(allocator="pool", **overrides)
        return backing, PooledAllocator(backing, policy)

    def test_size_classes_power_of_two_with_quantum_floor(self):
        _, pool = self._pool(pool_bin_quantum=256)
        assert pool.class_size(1) == 256
        assert pool.class_size(256) == 256
        assert pool.class_size(257) == 512
        assert pool.class_size(512) == 512
        assert pool.class_size(513) == 1024
        assert pool.class_size(100_000) == 131072

    def test_lifo_reuse_returns_most_recent_block_first(self):
        _, pool = self._pool()
        a, b, c = (pool.alloc(4096) for _ in range(3))
        assert len({a.address, b.address, c.address}) == 3
        pool.free(a)
        pool.free(b)
        pool.free(c)
        # LIFO: the most recently returned block comes back first, and the
        # SAME Buffer objects return (stable addresses = warm caches)
        assert pool.alloc(4096) is c
        assert pool.alloc(4096) is b
        assert pool.alloc(4096) is a
        assert pool.hits == 3 and pool.carves == 3

    def test_reuse_order_is_deterministic_across_pools(self):
        # two pools driven by the same alloc/free script hand out blocks
        # in the same structural order — the property the bit-identical
        # shuffle fingerprints rest on
        def script(pool):
            trail = []
            live = []
            for i in range(40):
                if i % 3 == 2 and live:
                    pool.free(live.pop(i % len(live)))
                    trail.append("return")
                else:
                    buf = pool.alloc(1024 * (1 + i % 4))
                    live.append(buf)
                    trail.append(buf.address - pool._slabs[0].buffer.address)
            return trail, pool.hits, pool.carves, pool.grows

        _, pa = self._pool()
        _, pb = self._pool()
        ra, rb = script(pa), script(pb)
        # addresses are process-global and differ; compare slab-relative
        # offsets and the hit/carve/grow trace, which must match exactly
        assert ra[1:] == rb[1:]

    def test_distinct_classes_do_not_share_free_lists(self):
        _, pool = self._pool()
        small = pool.alloc(512)
        pool.free(small)
        big = pool.alloc(8192)
        assert big is not small
        assert pool.alloc(512) is small

    def test_grow_by_whole_slabs_and_oversized_requests(self):
        backing, pool = self._pool()
        pool.alloc(100)
        assert pool.grows == 1
        assert backing.used == 1 << 20  # whole slab, not one block
        # a request larger than the slab gets a slab of its own size
        huge = pool.alloc((1 << 20) + 1)
        assert pool.grows == 2
        assert huge.size == 2 << 20
        assert backing.used == (1 << 20) + (2 << 20)

    def test_pool_cap_surfaces_out_of_memory(self):
        _, pool = self._pool(pool_max_bytes=2 << 20)
        pool.alloc(1 << 19)  # slab 1
        pool.alloc(1 << 20)  # fills slab 1? no: carve fits -> still slab 1
        with pytest.raises(OutOfMemory, match="pool"):
            # forcing a third slab beyond the 2 MB cap
            pool.alloc(1 << 20)
            pool.alloc(1 << 20)
            pool.alloc(1 << 20)

    def test_return_is_not_a_free(self):
        backing, pool = self._pool()
        hook_calls = []
        backing.add_free_hook(hook_calls.append)
        buf = pool.alloc(4096)
        pool.free(buf)
        assert not buf.freed and not hook_calls
        assert backing.used == 1 << 20  # slab still held

    def test_double_return_rejected(self):
        _, pool = self._pool()
        buf = pool.alloc(64)
        pool.free(buf)
        with pytest.raises(RuntimeError, match="double return"):
            pool.free(buf)

    def test_foreign_buffer_rejected(self):
        backing, pool = self._pool()
        foreign = backing.alloc(64)
        with pytest.raises(ValueError, match="belong"):
            pool.free(foreign)

    def test_trim_frees_slabs_and_fires_hooks_per_block(self):
        backing, pool = self._pool()
        hook_calls = []
        backing.add_free_hook(hook_calls.append)
        a = pool.alloc(4096)
        b = pool.alloc(4096)
        pool.free(a)
        pool.free(b)
        released = pool.trim(retain=0)
        assert released == 1 << 20
        assert backing.used == 0
        # hooks ran for both carved blocks AND the slab buffer itself
        assert a in hook_calls and b in hook_calls
        assert a.freed and b.freed
        assert len(hook_calls) == 3

    def test_trim_retains_requested_slabs_and_skips_live_ones(self):
        backing, pool = self._pool()
        live = pool.alloc(1 << 19)       # slab 1 stays busy
        filler = pool.alloc(1 << 19)     # fills slab 1 exactly
        spare = pool.alloc(4096)         # forces slab 2
        pool.free(spare)
        assert pool.trim(retain=1) == 0  # the only empty slab is retained
        assert pool.trim(retain=0) == 1 << 20  # now it goes
        assert not live.freed and not filler.freed
        assert backing.used == 1 << 20

    def test_auto_trim_policy_frees_on_return(self):
        backing, pool = self._pool(pool_auto_trim=True, pool_retain_slabs=0)
        buf = pool.alloc(4096)
        pool.free(buf)
        assert buf.freed and backing.used == 0

    def test_alloc_copies_data_into_pooled_payload(self):
        from repro.config import MemoryConfig
        from repro.hardware.memory import PooledAllocator

        backing = DeviceAllocator(1 << 22, device=0, node=0)
        policy = MemoryConfig(allocator="pool", pool_slab_bytes=1 << 16)
        pool = PooledAllocator(
            backing, policy,
            slab_payload=lambda size: np.zeros(size, dtype=np.uint8))
        buf = pool.alloc(16, data=np.arange(16, dtype=np.uint8))
        assert buf.data.reshape(-1).view(np.uint8)[:16].tolist() \
            == list(range(16))
