"""Tests for buffers and device allocators."""

import numpy as np
import pytest

from repro.hardware.memory import Buffer, DeviceAllocator, MemoryKind, OutOfMemory, host_buffer


class TestBuffer:
    def test_device_buffer_requires_device_index(self):
        with pytest.raises(ValueError):
            Buffer(MemoryKind.DEVICE, 8, node=0)

    def test_host_buffer_rejects_device_index(self):
        with pytest.raises(ValueError):
            Buffer(MemoryKind.HOST, 8, node=0, device=1)

    def test_size_must_be_positive(self):
        with pytest.raises(ValueError):
            Buffer(MemoryKind.HOST, 0, node=0)

    def test_data_size_must_match(self):
        with pytest.raises(ValueError):
            Buffer(MemoryKind.HOST, 8, node=0, data=np.zeros(4, dtype=np.uint8))

    def test_addresses_unique(self):
        bufs = [host_buffer(0, 8) for _ in range(100)]
        assert len({b.address for b in bufs}) == 100

    def test_copy_from_moves_bytes(self):
        a = host_buffer(0, 16, np.arange(16, dtype=np.uint8))
        b = host_buffer(0, 16, np.zeros(16, dtype=np.uint8))
        b.copy_from(a)
        assert (b.data == a.data).all()

    def test_partial_copy(self):
        a = host_buffer(0, 16, np.full(16, 9, dtype=np.uint8))
        b = host_buffer(0, 16, np.zeros(16, dtype=np.uint8))
        b.copy_from(a, nbytes=4)
        assert b.data[:4].tolist() == [9] * 4 and (b.data[4:] == 0).all()

    def test_copy_exceeding_size_rejected(self):
        a = host_buffer(0, 8, np.zeros(8, dtype=np.uint8))
        b = host_buffer(0, 4, np.zeros(4, dtype=np.uint8))
        with pytest.raises(ValueError):
            b.copy_from(a, nbytes=8)

    def test_virtual_copy_is_noop(self):
        a = host_buffer(0, 8)  # materialize defaults to None data here
        b = host_buffer(0, 8, np.zeros(8, dtype=np.uint8))
        assert a.is_virtual
        b.copy_from(a)  # no crash, no data change
        a.copy_from(b)

    def test_use_after_free_rejected(self):
        alloc = DeviceAllocator(1024, device=0, node=0)
        buf = alloc.alloc(64)
        other = alloc.alloc(64)
        alloc.free(buf)
        with pytest.raises(RuntimeError):
            other.copy_from(buf)

    def test_fill(self):
        b = host_buffer(0, 8, np.zeros(8, dtype=np.uint8))
        b.fill(7)
        assert (b.data == 7).all()

    def test_multidim_data_copies_flat(self):
        src = host_buffer(0, 24, np.arange(6, dtype=np.float32).reshape(2, 3))
        dst = host_buffer(0, 24, np.zeros((3, 2), dtype=np.float32))
        dst.copy_from(src)
        assert (dst.data.reshape(-1) == src.data.reshape(-1)).all()

    def test_same_location(self):
        a = Buffer(MemoryKind.DEVICE, 8, node=0, device=3)
        b = Buffer(MemoryKind.DEVICE, 16, node=0, device=3)
        c = Buffer(MemoryKind.DEVICE, 8, node=0, device=4)
        assert a.same_location(b) and not a.same_location(c)


class TestDeviceAllocator:
    def test_tracks_usage(self):
        alloc = DeviceAllocator(1000, device=0, node=0)
        a = alloc.alloc(400)
        assert alloc.used == 400 and alloc.live_buffers == 1
        alloc.free(a)
        assert alloc.used == 0 and alloc.live_buffers == 0

    def test_oom_when_exhausted(self):
        alloc = DeviceAllocator(100, device=0, node=0)
        alloc.alloc(60)
        with pytest.raises(OutOfMemory):
            alloc.alloc(60)

    def test_free_restores_capacity(self):
        alloc = DeviceAllocator(100, device=0, node=0)
        a = alloc.alloc(80)
        alloc.free(a)
        alloc.alloc(80)  # fits again

    def test_double_free_rejected(self):
        alloc = DeviceAllocator(100, device=0, node=0)
        a = alloc.alloc(10)
        alloc.free(a)
        with pytest.raises(RuntimeError):
            alloc.free(a)

    def test_foreign_buffer_rejected(self):
        a0 = DeviceAllocator(100, device=0, node=0)
        a1 = DeviceAllocator(100, device=1, node=0)
        buf = a0.alloc(10)
        with pytest.raises(ValueError):
            a1.free(buf)

    def test_allocated_buffer_is_device_kind(self):
        alloc = DeviceAllocator(100, device=2, node=1)
        buf = alloc.alloc(10)
        assert buf.on_device and buf.device == 2 and buf.node == 1
