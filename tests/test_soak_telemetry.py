"""Soak-stress gate for the telemetry subsystem.

Waves of seeded mixed host/device traffic run on ONE session with the
pooled allocator and a lossy fault plan — the regime where queues churn,
the pool cycles slabs, and retransmits fire.  The gate asserts the three
promises the telemetry tentpole makes:

* **bounded memory**: every retained ring buffer stays within its
  capacity no matter how many samples the soak offers, and the
  congestion aggregates stay bounded by link count / window cap;
* **zero perturbation**: the full fingerprint of the soak with
  telemetry on is bit-identical to telemetry off, faults and all;
* **bounded wall-clock**: the whole soak finishes inside its
  ``WALLCLOCK_BUDGETS`` entry, so a runaway sampling path fails CI the
  same way a modeled-perf regression would.
"""

import time

import numpy as np
import pytest

import repro.api as api
from repro.config import MachineConfig
from repro.faults import FaultPlan
from repro.obs.baseline import WALLCLOCK_BUDGETS
from tests.test_stress_random_traffic import make_plan

N_RANKS = 12
N_WAVES = 3
MSGS_PER_WAVE = 30
#: deliberately tiny ring buffers so the soak decimates many times over
SOAK_CAPACITY = 64


def _soak_config(telemetry):
    cfg = (MachineConfig.summit(nodes=2)
           .with_pool(True)
           .with_faults(FaultPlan.lossy(drop_p=0.05, seed=11)))
    if telemetry:
        cfg = cfg.with_telemetry(True, capacity=SOAK_CAPACITY)
    return cfg


def _run_soak(telemetry):
    sess = api.session(_soak_config(telemetry)).model("ampi").build()
    received = {}

    for wave in range(N_WAVES):
        rng = np.random.default_rng(100 + wave)
        plan = make_plan(rng, n_ranks=N_RANKS, n_msgs=MSGS_PER_WAVE,
                         device_fraction=0.5, max_kb=48)

        def program(mpi, plan=plan, wave=wave):
            cuda = mpi.charm.cuda
            reqs, recv_bufs = [], []
            for i, src, dst, tag, size, dev in plan:
                if dst == mpi.rank:
                    buf = (cuda.malloc(mpi.gpu, size, materialize=True) if dev
                           else cuda.malloc_host(mpi.node, size,
                                                 materialize=True))
                    recv_bufs.append((wave * MSGS_PER_WAVE + i, buf))
                    reqs.append(mpi.irecv(buf, size, src=src, tag=tag))
            for i, src, dst, tag, size, dev in plan:
                if src == mpi.rank:
                    buf = (cuda.malloc(mpi.gpu, size, materialize=True) if dev
                           else cuda.malloc_host(mpi.node, size,
                                                 materialize=True))
                    if buf.data is not None:
                        buf.data[:] = i % 251
                    reqs.append(mpi.isend(buf, size, dst=dst, tag=tag))
            yield mpi.waitall(reqs)
            for key, buf in recv_bufs:
                # pooled device blocks follow the slab's materialisation and
                # may carry no payload; -1 marks "arrived, payload virtual"
                received[key] = (int(buf.data[0]) if buf.data is not None
                                 else -1)

        done = sess.launch(program)
        sess.run_until(done, max_events=50_000_000)

    fingerprint = {
        "received": dict(received),
        "now": sess.now,
        "event_count": sess.sim.event_count,
        "counters": dict(sess.counters),
    }
    return sess, fingerprint


def test_soak_bounded_and_bit_identical():
    t0 = time.monotonic()
    sess_off, fp_off = _run_soak(telemetry=False)
    sess_on, fp_on = _run_soak(telemetry=True)
    elapsed = time.monotonic() - t0

    # -- zero perturbation: identical fingerprints, faults and all --------
    assert fp_on == fp_off
    assert len(fp_on["received"]) == N_WAVES * MSGS_PER_WAVE
    # the lossy plan actually exercised the retransmit path
    assert any(k.startswith("fault.") and v > 0
               for k, v in fp_on["counters"].items())

    # -- telemetry actually observed the soak -----------------------------
    telem = sess_on.tracer.timeline
    assert telem.enabled and telem.series
    names = set(telem.series)
    assert any(n.startswith("matchq.") for n in names)
    assert any(n.startswith("pool.") for n in names)
    assert any(n.startswith("link.") for n in names)
    assert "engine.pending_events" in names
    # faults surfaced as a retransmit series
    assert telem.counter("fault.retransmits") > 0

    # -- bounded memory ----------------------------------------------------
    for name, ts in telem.series.items():
        assert len(ts.times) <= SOAK_CAPACITY, name
        assert len(ts.values) == len(ts.times), name
    # decimation really happened somewhere (the soak offers far more than
    # SOAK_CAPACITY samples to the busiest series)
    assert any(ts.stride > 1 for ts in telem.series.values())
    # queues drained: every depth series ends at zero
    for name, ts in telem.series.items():
        if name.startswith("matchq."):
            assert ts.stats()["last"] == 0.0, name
            assert ts.vmin >= 0.0, name
    # congestion aggregates bounded by link count / window cap
    assert len(telem.links) <= 64
    for rec in telem.saturation.values():
        assert len(rec["windows"]) <= telem._sat_window_cap
    # the telemetry-off session carries no series at all
    assert not sess_off.tracer.timeline.series

    # -- bounded wall-clock ------------------------------------------------
    budget = WALLCLOCK_BUDGETS["soak_telemetry_smoke"]
    assert elapsed < budget, (
        f"soak took {elapsed:.1f}s, budget {budget:.0f}s")


def test_soak_telemetry_deterministic():
    """Two identical telemetry soaks retain identical series."""
    sess1, fp_a = _run_soak(telemetry=True)
    sess2, fp_b = _run_soak(telemetry=True)
    assert fp_a == fp_b
    assert sess1.timeline() == sess2.timeline()
