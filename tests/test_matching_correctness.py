"""Regression tests for the matching/cache correctness hazards.

Three latent bugs are locked down here:

1. **Equality-based removal** — the seed's ``MatchEngine`` removed matched
   entries with ``list.remove``, which compares *every* earlier entry by
   dataclass equality.  That scan is O(n), can delete a different-but-equal
   entry, and crashes outright the moment a payload field has a non-boolean
   ``__eq__`` (a NumPy array ``value``, for instance).  Matching must remove
   by queue slot (identity) and never consult entry equality.
2. **Stale GPU-pointer cache** — a freed device buffer's address can be
   re-used by a later (even host) allocation; without invalidation the
   per-PE cache keeps answering ``(True, hit_cost)``.
3. **Span overwrite** — the seed's re-entrant span accounting silently
   overwrote the open span's start, losing the outer span's time; the
   structured span() API must account nested spans independently.
"""

import pytest

from repro.ampi.matching import (
    ANY_SOURCE,
    ANY_TAG,
    AmpiEnvelope,
    MatchEngine,
    PostedMpiRecv,
)
from repro.config import MachineConfig, RuntimeConfig
from repro.hardware.memory import DeviceAllocator, host_buffer
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer


# ---------------------------------------------------------------------------
# 1. matching must remove by identity, never by value equality
# ---------------------------------------------------------------------------

class _EqBomb:
    """Stands in for a payload whose ``__eq__`` is not boolean-valued (e.g. a
    NumPy array: ``bool(a == b)`` raises).  Any equality comparison of an
    entry containing it is a bug."""

    def __eq__(self, other):  # pragma: no cover - the point is not to run it
        raise AssertionError("matching consulted entry equality")

    __hash__ = None


def _env(src=0, dst=0, tag=0, comm=0, size=8, seq=0, value=None):
    return AmpiEnvelope(src=src, dst=dst, tag=tag, comm=comm, size=size,
                        seq=seq, value=value)


@pytest.mark.parametrize("indexed", [True, False])
class TestIdentityRemoval:
    def test_unexpected_removal_never_compares_entries(self, indexed):
        """Matching an envelope that is *not* first in the unexpected queue
        must not equality-compare it against its predecessors (the seed's
        ``list.remove`` did, and raises here)."""
        eng = MatchEngine(indexed=indexed)
        early = _env(tag=1, value=_EqBomb())
        late = _env(tag=2, value=_EqBomb(), seq=1)
        assert eng.match_envelope(early) == (None, 0)
        assert eng.match_envelope(late) == (None, 0)

        req = PostedMpiRecv(src=0, tag=2, comm=0, buf=None, capacity=1 << 30,
                            event=None)
        env, scanned = eng.match_recv(req)
        assert env is late and scanned == 2
        # the non-matching predecessor is still queued
        assert list(eng.unexpected) == [early]

    def test_posted_removal_never_compares_entries(self, indexed):
        """Same hazard on the request queue: matching the second posted
        receive must not equality-compare posted entries."""
        eng = MatchEngine(indexed=indexed)
        bomb = _EqBomb()
        first = PostedMpiRecv(src=1, tag=ANY_TAG, comm=0, buf=None,
                              capacity=1 << 30, event=bomb)
        second = PostedMpiRecv(src=0, tag=ANY_TAG, comm=0, buf=None,
                               capacity=1 << 30, event=bomb)
        assert eng.match_recv(first) == (None, 0)
        assert eng.match_recv(second) == (None, 0)

        req, scanned = eng.match_envelope(_env(src=0, tag=5))
        assert req is second and scanned == 2
        assert list(eng.posted) == [first]

    def test_two_identical_receives_each_match_once(self, indexed):
        """Two receives with identical fields (the dataclass-equal pair of
        the hazard) must stay distinct entries: two envelopes complete them
        in FIFO order, each exactly once."""
        eng = MatchEngine(indexed=indexed)

        class _AlwaysEqual:
            def __eq__(self, other):
                return isinstance(other, _AlwaysEqual)

            __hash__ = None

        req1 = PostedMpiRecv(src=3, tag=7, comm=0, buf=None, capacity=64,
                             event=_AlwaysEqual())
        req2 = PostedMpiRecv(src=3, tag=7, comm=0, buf=None, capacity=64,
                             event=_AlwaysEqual())
        assert req1 == req2 and req1 is not req2  # the hazardous shape
        eng.match_recv(req1)
        eng.match_recv(req2)

        got_first, scanned1 = eng.match_envelope(_env(src=3, tag=7))
        got_second, scanned2 = eng.match_envelope(_env(src=3, tag=7, seq=1))
        assert got_first is req1 and scanned1 == 1
        assert got_second is req2 and scanned2 == 1
        assert len(eng.posted) == 0

    def test_wildcard_and_exact_fifo_interleaving(self, indexed):
        """FIFO order must hold across the exact-bucket/wildcard split: an
        earlier wildcard receive wins over a later exact one and vice
        versa."""
        eng = MatchEngine(indexed=indexed)
        wild = PostedMpiRecv(src=ANY_SOURCE, tag=ANY_TAG, comm=0, buf=None,
                             capacity=64, event="wild")
        exact = PostedMpiRecv(src=0, tag=1, comm=0, buf=None,
                              capacity=64, event="exact")
        eng.match_recv(wild)
        eng.match_recv(exact)
        got, scanned = eng.match_envelope(_env(src=0, tag=1))
        assert got is wild and scanned == 1  # earlier wildcard wins
        got, scanned = eng.match_envelope(_env(src=0, tag=1, seq=1))
        assert got is exact and scanned == 1

        # now the reverse posting order: exact first, wildcard second
        eng.match_recv(exact := PostedMpiRecv(src=0, tag=1, comm=0, buf=None,
                                              capacity=64, event="exact2"))
        eng.match_recv(wild := PostedMpiRecv(src=ANY_SOURCE, tag=ANY_TAG,
                                             comm=0, buf=None, capacity=64,
                                             event="wild2"))
        got, scanned = eng.match_envelope(_env(src=0, tag=1, seq=2))
        assert got is exact and scanned == 1
        got, scanned = eng.match_envelope(_env(src=9, tag=9, seq=0))
        assert got is wild and scanned == 1


class TestUcxQueueIdentity:
    def test_ucx_unexpected_removal_is_by_slot(self):
        """UCP worker unexpected-queue consumption removes exactly the
        matched message even with equal-looking neighbours."""
        from repro.hardware.topology import Machine
        from repro.ucx.context import UcpContext

        m = Machine(MachineConfig.summit(nodes=1))
        ctx = UcpContext(m)
        wa = ctx.create_worker(0, 0)
        wb = ctx.create_worker(1, 0)
        bufs = [m.alloc_host(0, 8, materialize=True) for _ in range(3)]
        for i, buf in enumerate(bufs):
            buf.data[:] = i + 1
            wa.tag_send_nb(wa.ep(1), buf, 8, tag=i)
        m.sim.run()
        assert len(wb.unexpected) == 3

        # consume the *middle* message; neighbours must survive untouched
        dst = m.alloc_host(0, 8, materialize=True)
        req = wb.tag_recv_nb(dst, 8, tag=1)
        m.sim.run()
        assert req.completed and dst.data[0] == 2
        assert [msg.tag for msg in wb.unexpected] == [0, 2]


# ---------------------------------------------------------------------------
# 2. GPU-pointer cache invalidation on free
# ---------------------------------------------------------------------------

class TestGpuPointerCacheInvalidation:
    def test_address_reuse_after_free_is_not_a_device_hit(self):
        """A freed device buffer's address re-used by a host buffer must be
        re-queried, not served from the cache as 'device memory'."""
        from repro.ampi.gpucache import GpuPointerCache

        rt = RuntimeConfig()
        cache = GpuPointerCache(rt)
        allocator = DeviceAllocator(1 << 20, device=0, node=0)
        allocator.add_free_hook(lambda buf: cache.invalidate(buf.address))

        dev = allocator.alloc(64)
        assert cache.check(dev) == (True, rt.gpu_pointer_check_cost)
        assert cache.check(dev) == (True, rt.gpu_pointer_cache_hit_cost)

        allocator.free(dev)
        assert cache.invalidations == 1

        # the driver hands the same address to a host allocation
        reused = host_buffer(0, 64)
        reused.address = dev.address
        is_dev, cost = cache.check(reused)
        assert is_dev is False  # stale cache would have said True
        assert cost == rt.gpu_pointer_check_cost

    def test_ampi_wires_invalidation_to_machine_free(self):
        """End-to-end wiring: freeing through the CUDA runtime invalidates
        every PE's pointer cache."""
        from repro.ampi import Ampi
        from repro.charm import Charm

        charm = Charm(MachineConfig.summit(nodes=1))
        ampi = Ampi(charm)
        buf = charm.cuda.malloc(0, 256)
        assert ampi.gpu_caches[0].check(buf)[0] is True
        assert ampi.gpu_caches[0].check(buf)[1] == ampi.rt.gpu_pointer_cache_hit_cost

        charm.cuda.free(buf)

        reused = charm.cuda.malloc_host(0, 256)
        reused.address = buf.address
        is_dev, cost = ampi.gpu_caches[0].check(reused)
        assert is_dev is False
        assert cost == ampi.rt.gpu_pointer_check_cost

    def test_double_free_still_raises(self):
        allocator = DeviceAllocator(1 << 20, device=0, node=0)
        buf = allocator.alloc(32)
        allocator.free(buf)
        with pytest.raises(RuntimeError, match="double free"):
            allocator.free(buf)


# ---------------------------------------------------------------------------
# 3. re-entrant spans
# ---------------------------------------------------------------------------

class TestSpanAccounting:
    """Nested spans on the structured span() API keep both spans' time
    (the seed's span_begin overwrote the open span's start; that API has
    since been removed in favor of with-statement spans)."""

    def test_nested_same_category_spans_account_both(self):
        sim = Simulator()
        t = Tracer(sim, enabled=True)
        outer = t.span("ampi", "outer")  # opens at 0
        sim.schedule(1.0, lambda: setattr(t, "_inner", t.span("ampi", "inner")))
        sim.schedule(3.0, lambda: t._inner.end())  # inner: 1..3
        sim.schedule(5.0, lambda: outer.end())  # outer: 0..5
        sim.run()
        assert t._inner.duration == pytest.approx(2.0)
        assert outer.duration == pytest.approx(5.0)
        assert t.time_in("ampi") == pytest.approx(7.0)

    def test_distinct_categories_remain_independent(self):
        sim = Simulator()
        t = Tracer(sim, enabled=True)
        sp = t.span("ucx", "a")
        sim.schedule(4.0, sp.end)
        sim.run()
        assert t.time_in("ucx") == pytest.approx(4.0)
        assert t.time_in("ampi") == 0.0


# ---------------------------------------------------------------------------
# 4. protocol-selection boundary semantics
# ---------------------------------------------------------------------------

class TestProtocolSelectionBoundaries:
    """``choose_send_protocol`` thresholds are exclusive for eager: a size
    *exactly at* the threshold already goes rendezvous (UCX_RNDV_THRESH
    semantics)."""

    def _cfg(self):
        from repro.config import UcxConfig
        return UcxConfig()

    def test_host_size_at_threshold_is_rndv(self):
        from repro.ucx.protocols.select import Protocol, choose_send_protocol

        cfg = self._cfg()
        buf = host_buffer(0, 2 * cfg.host_rndv_threshold)
        at = choose_send_protocol(cfg, buf, cfg.host_rndv_threshold)
        below = choose_send_protocol(cfg, buf, cfg.host_rndv_threshold - 1)
        assert at is Protocol.RNDV
        assert below is Protocol.EAGER

    def test_device_size_at_threshold_is_rndv(self):
        from repro.ucx.protocols.select import Protocol, choose_send_protocol

        cfg = self._cfg()
        allocator = DeviceAllocator(1 << 30, device=0, node=0)
        buf = allocator.alloc(2 * cfg.device_eager_threshold)
        at = choose_send_protocol(cfg, buf, cfg.device_eager_threshold)
        below = choose_send_protocol(cfg, buf, cfg.device_eager_threshold - 1)
        assert at is Protocol.RNDV
        assert below is Protocol.EAGER

    def test_zero_size_is_eager(self):
        from repro.ucx.protocols.select import Protocol, choose_send_protocol

        cfg = self._cfg()
        assert choose_send_protocol(cfg, host_buffer(0, 1), 0) is Protocol.EAGER

    def test_negative_size_raises(self):
        from repro.ucx.protocols.select import choose_send_protocol

        cfg = self._cfg()
        with pytest.raises(ValueError, match="negative send size"):
            choose_send_protocol(cfg, host_buffer(0, 8), -1)


# ---------------------------------------------------------------------------
# engine slot reclamation under heavy cancellation
# ---------------------------------------------------------------------------

class TestHeapCompaction:
    def test_cancelled_entries_are_reclaimed_and_order_preserved(self):
        sim = Simulator()
        fired = []
        handles = [sim.schedule(float(i), fired.append, i) for i in range(1000)]
        for i, h in enumerate(handles):
            if i % 10 != 0:
                h.cancel()
        # cancellation is an O(1) tombstone: the live count drops immediately
        assert sim.pending_events == 100
        assert sim._tombstones == 900
        sim.run()
        assert fired == list(range(0, 1000, 10))
        assert sim.now == 990.0
        # every tombstone was reaped and every slot returned to the freelist
        assert sim._tombstones == 0
        assert sim.pending_events == 0
        assert len(sim._free) == len(sim._fn)

    def test_slot_storage_bounded_under_churn(self):
        # schedule/cancel churn must recycle slots, not grow the arrays
        sim = Simulator()
        for _ in range(100):
            handles = [sim.schedule(1.0, lambda: None) for _ in range(50)]
            for h in handles:
                h.cancel()
            sim.run()
        assert len(sim._fn) <= 50

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        h = sim.schedule(1.0, lambda: None)
        h.cancel()
        h.cancel()
        assert h.cancelled
        sim.run()
        assert sim._tombstones == 0
