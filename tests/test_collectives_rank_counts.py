"""Collective algorithms at awkward rank counts (non-powers-of-two).

Binomial trees, dissemination rounds and rings all have edge cases at
P = 1, primes, and P just above/below powers of two; every algorithm is
checked against its mathematical result for each count.
"""

import pytest

from repro.ampi import Ampi
from repro.charm import Charm
from repro.config import MachineConfig

COUNTS = [1, 2, 3, 5, 7, 8, 11, 12]


def run_collective(n_ranks, program):
    charm = Charm(MachineConfig.summit(nodes=2))
    ampi = Ampi(charm, n_ranks=n_ranks)
    done = ampi.launch(program)
    charm.run_until(done, max_events=20_000_000)
    return ampi


@pytest.mark.parametrize("p", COUNTS)
def test_bcast_every_count(p):
    got = {}

    def program(mpi):
        v = yield from mpi.bcast("x" if mpi.rank == 0 else None, root=0)
        got[mpi.rank] = v

    run_collective(p, program)
    assert got == {r: "x" for r in range(p)}


@pytest.mark.parametrize("p", COUNTS)
def test_reduce_every_count(p):
    got = {}

    def program(mpi):
        got[mpi.rank] = (yield from mpi.reduce(mpi.rank + 1, "sum", root=0))

    run_collective(p, program)
    assert got[0] == p * (p + 1) // 2


@pytest.mark.parametrize("p", COUNTS)
def test_allreduce_every_count(p):
    got = {}

    def program(mpi):
        got[mpi.rank] = (yield from mpi.allreduce(mpi.rank, "max"))

    run_collective(p, program)
    assert set(got.values()) == {p - 1}


@pytest.mark.parametrize("p", COUNTS)
def test_allgather_every_count(p):
    got = {}

    def program(mpi):
        got[mpi.rank] = (yield from mpi.allgather(mpi.rank * 3))

    run_collective(p, program)
    expect = [r * 3 for r in range(p)]
    assert all(v == expect for v in got.values())


@pytest.mark.parametrize("p", [1, 3, 7, 12])
def test_barrier_every_count(p):
    done_count = []

    def program(mpi):
        yield from mpi.barrier()
        done_count.append(mpi.rank)

    run_collective(p, program)
    assert sorted(done_count) == list(range(p))


@pytest.mark.parametrize("p", [2, 5, 12])
def test_alltoall_every_count(p):
    got = {}

    def program(mpi):
        values = [(mpi.rank, d) for d in range(mpi.size)]
        got[mpi.rank] = (yield from mpi.alltoall(values))

    run_collective(p, program)
    for r in range(p):
        assert got[r] == [(s, r) for s in range(p)]


@pytest.mark.parametrize("p", [1, 3, 8, 12])
@pytest.mark.parametrize("root", [0, -1])  # -1 = last rank
def test_bcast_device_every_count(p, root):
    root = root % p
    got = {}

    def program(mpi):
        buf = mpi.charm.cuda.malloc(mpi.gpu, 512)
        if mpi.rank == root:
            buf.data[:] = 55
        yield from mpi.bcast_device(buf, 512, root=root)
        got[mpi.rank] = bool((buf.data == 55).all())

    run_collective(p, program)
    assert all(got.values()) and len(got) == p


@pytest.mark.parametrize("p", [2, 5, 12])
def test_reduce_device_every_count(p):
    import numpy as np

    got = {}

    def program(mpi):
        buf = mpi.charm.cuda.malloc(mpi.gpu, 64)
        buf.data.view(np.float64)[:] = float(mpi.rank + 1)
        yield from mpi.reduce_device(buf, 64, "sum", root=0)
        if mpi.rank == 0:
            got["v"] = float(buf.data.view(np.float64)[0])

    run_collective(p, program)
    assert got["v"] == p * (p + 1) / 2


@pytest.mark.parametrize("p", [3, 5, 12])
def test_nonzero_root_every_count(p):
    got = {}

    def program(mpi):
        root = p - 1
        v = yield from mpi.bcast("payload" if mpi.rank == root else None, root=root)
        r = yield from mpi.reduce(1, "sum", root=root)
        got[mpi.rank] = (v, r)

    run_collective(p, program)
    assert all(v == "payload" for v, _r in got.values())
    assert got[p - 1][1] == p
