"""The redesigned collective API surface.

Covers the :class:`ReduceOp` enum shared by every reduction surface, the
removal of the old free-function shim module (a clean ImportError with a
pointer to the communicator methods), the per-communicator sequence-number
tag namespacing (the fix for overlapping collectives aliasing and for
device collectives leaking into user tag space), and the session facade's
collective knobs/summary.
"""

from __future__ import annotations

import importlib

import numpy as np
import pytest

import repro.api as api
from repro.ampi.mpi import Ampi
from repro.charm import Charm, Chare, CkCallback
from repro.charm4py.runtime import Charm4py
from repro.collectives import ReduceOp
from repro.config import MachineConfig

MAX_EVENTS = 20_000_000


def _build(n_ranks=4):
    charm = Charm(MachineConfig.summit(nodes=-(-n_ranks // 6)))
    return charm, Ampi(charm, n_ranks=n_ranks)


def _time(program, n_ranks=4):
    charm, ampi = _build(n_ranks)
    done = ampi.launch(program)
    charm.sim.run_until_complete(done, max_events=MAX_EVENTS)
    return charm.sim.now


class TestReduceOp:
    def test_normalization(self):
        assert ReduceOp.of("sum") is ReduceOp.SUM
        assert ReduceOp.of("MAX") is ReduceOp.MAX
        assert ReduceOp.of(ReduceOp.MIN) is ReduceOp.MIN

    def test_unknown_op_names_valid_set(self):
        with pytest.raises(ValueError, match=r"xor.*max.*min.*prod.*sum"):
            ReduceOp.of("xor")

    def test_combine(self):
        assert ReduceOp.SUM.combine(2, 3) == 5
        assert ReduceOp.PROD.combine(2, 3) == 6
        assert ReduceOp.MAX.combine(2, 3) == 3
        a = np.array([1.0, 5.0])
        assert np.array_equal(ReduceOp.MIN.combine(a, np.array([2.0, 4.0])),
                              np.array([1.0, 4.0]))

    def test_charm_reductions_accept_enum_and_str(self):
        class Elem(Chare):
            def go(self, op, cb):
                self.charm.reductions.contribute(self, 2.0, op, cb)

        for op in ("sum", ReduceOp.SUM):
            results = []
            charm = Charm(MachineConfig.summit(nodes=1))
            group = charm.create_group(Elem)
            group.go(op, CkCallback(fn=results.append))
            charm.run()
            assert results == [2.0 * charm.n_pes]

    def test_charm4py_contribute_surface(self):
        from repro.charm4py.chare import PyChare

        results = []

        class Elem(PyChare):
            def go(self, cb):
                self.c4p.contribute(self, 1.0, ReduceOp.SUM, cb)

        c4p = Charm4py(MachineConfig.summit(nodes=1))
        group = c4p.create_group(Elem)
        group.go(CkCallback(fn=results.append))
        c4p.charm.run()
        assert results == [float(c4p.charm.n_pes)]
        assert c4p.reductions is c4p.charm.reductions


class TestShimModuleRemoved:
    def test_import_raises_with_pointer_to_methods(self):
        # the two-PR deprecation window closed: the module body is gone,
        # and any straggler import gets told where the API went
        with pytest.raises(ImportError,
                           match=r"removed.*rank\.allreduce.*repro\.collectives"):
            importlib.import_module("repro.ampi.collectives")

    def test_method_api_covers_the_old_surface(self):
        def program(rank):
            total = yield from rank.allreduce(rank.rank, op="sum")
            assert total == 6
            buf = rank.charm.cuda.malloc(rank.gpu, 4096)
            yield from rank.allreduce_device(buf, 4096, op="sum")

        _time(program)

    def test_old_positional_signatures_still_work(self):
        def program(rank):
            buf = rank.charm.cuda.malloc(rank.gpu, 64)
            yield from rank.reduce_device(buf, 64, "sum", 0)
            yield from rank.bcast_device(buf, 64, 1)
            v = yield from rank.reduce(rank.rank, "max", 0)
            if rank.rank == 0:
                assert v == 3
            yield from rank.barrier()

        _time(program)


class TestTagNamespacing:
    def test_overlapping_gathers_do_not_alias(self):
        # back-to-back gathers share no barrier; with the old fixed tag the
        # root's wildcard receives could swallow the second invocation's
        # sends into the first result
        out = {}

        def program(rank):
            first = yield from rank.gather(("a", rank.rank), root=0)
            second = yield from rank.gather(("b", rank.rank), root=0)
            if rank.rank == 0:
                out["first"], out["second"] = first, second

        _time(program)
        assert out["first"] == [("a", r) for r in range(4)]
        assert out["second"] == [("b", r) for r in range(4)]

    def test_device_collectives_do_not_leak_into_user_tag_space(self):
        # the old device collectives ran on comm=0 with tags below
        # MAX_USER_TAG; a wildcard user receive could swallow them
        out = {}

        def program(rank):
            buf = rank.charm.cuda.malloc(rank.gpu, 256)
            req = None
            if rank.rank == 0:
                user = rank.charm.cuda.malloc(rank.gpu, 256)
                req = rank.irecv(user, 256)  # ANY_SOURCE, ANY_TAG
            yield from rank.allreduce_device(buf, 256, op="sum")
            if rank.rank == 1:
                yield rank.send(buf, 256, 0, 42)
            if req is not None:
                status = yield req.event
                out["status"] = status

        _time(program)
        assert out["status"].source == 1
        assert out["status"].tag == 42

    def test_seq_counters_are_per_communicator(self):
        seqs = {}

        def program(rank):
            yield from rank.barrier()
            sub = yield from rank.comm_split(0)
            yield from sub.barrier()
            seqs[rank.rank] = (rank._coll_seq, sub._coll_seq)

        _time(program)
        # world: barrier + the comm_split allgather (+1 endpoint-free);
        # sub: its own barrier only
        for world_seq, sub_seq in seqs.values():
            assert world_seq == 2
            assert sub_seq == 1


class TestSessionFacade:
    def test_collectives_summary_and_knobs(self):
        sess = (api.session(MachineConfig.summit(nodes=2))
                .model("ampi").ranks(8).trace()
                .collectives(allreduce_algorithm="ring", ring_chunk=128 * 1024)
                .build())
        assert sess.config.collectives.allreduce_algorithm == "ring"
        assert sess.config.collectives.ring_chunk == 128 * 1024

        def program(rank):
            buf = rank.charm.cuda.malloc(rank.gpu, 1 << 20)
            yield from rank.allreduce_device(buf, 1 << 20)

        sess.run_until(sess.launch(program), max_events=MAX_EVENTS)
        summary = sess.collectives_summary()
        assert summary["invocations"]["allreduce"] == 8
        assert summary["invocations"]["allreduce.ring"] == 8
        assert summary["intra_time_us"] > 0
        assert summary["inter_time_us"] > 0

    def test_build_kwarg(self):
        sess = api.build(
            MachineConfig.summit(nodes=1), "openmpi",
            collectives={"hierarchical_enabled": False},
        )
        assert sess.config.collectives.hierarchical_enabled is False
