"""Tests for the OSU benchmark implementations (paper-shape invariants)."""

import pytest

from repro.apps.osu import (
    MODELS,
    OSU_SIZES,
    inter_node_pair,
    intra_node_pair,
    run_bandwidth,
    run_latency,
)
from repro.config import KB, MachineConfig, MB


class TestRunners:
    @pytest.mark.parametrize("model", MODELS)
    @pytest.mark.parametrize("gpu_aware", [True, False])
    def test_latency_point_runs(self, model, gpu_aware):
        lat = run_latency(model, 1024, "intra", gpu_aware, iters=5, skip=1)
        assert 0 < lat < 1e-3

    @pytest.mark.parametrize("model", MODELS)
    @pytest.mark.parametrize("gpu_aware", [True, False])
    def test_bandwidth_point_runs(self, model, gpu_aware):
        bw = run_bandwidth(model, 64 * KB, "inter", gpu_aware, loops=2, skip=1,
                           window=16)
        assert 1e6 < bw < 1e12

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            run_latency("mpich", 8)
        with pytest.raises(ValueError):
            run_bandwidth("mpich", 8)

    def test_size_ladder_spans_1B_to_4MB(self):
        assert OSU_SIZES[0] == 1 and OSU_SIZES[-1] == 4 * MB
        assert all(b == 2 * a for a, b in zip(OSU_SIZES, OSU_SIZES[1:]))

    def test_gpu_pairs(self):
        cfg = MachineConfig.summit(nodes=2)
        a, b = intra_node_pair(cfg)
        assert a // 6 == b // 6
        a, b = inter_node_pair(cfg)
        assert a // 6 != b // 6


class TestPaperShapes:
    """The qualitative results of Figs. 10-13 as assertions."""

    @pytest.mark.parametrize("model", MODELS)
    def test_gpu_aware_beats_host_staging_small(self, model):
        d = run_latency(model, 8, "intra", True, iters=5, skip=1)
        h = run_latency(model, 8, "intra", False, iters=5, skip=1)
        assert h > d

    @pytest.mark.parametrize("model", MODELS)
    def test_gpu_aware_beats_host_staging_large(self, model):
        d = run_latency(model, 4 * MB, "intra", True, iters=5, skip=1)
        h = run_latency(model, 4 * MB, "intra", False, iters=5, skip=1)
        assert h / d > 4  # paper: 9.1x-17.4x at 4 MB

    def test_latency_monotone_in_size(self):
        lats = [run_latency("charm", s, "intra", True, iters=5, skip=1)
                for s in (8, 4 * KB, 256 * KB, 4 * MB)]
        assert lats == sorted(lats)

    def test_inter_node_slower_than_intra(self):
        intra = run_latency("charm", 1 * MB, "intra", True, iters=5, skip=1)
        inter = run_latency("charm", 1 * MB, "inter", True, iters=5, skip=1)
        assert inter > intra

    def test_bandwidth_grows_with_size(self):
        bws = [run_bandwidth("charm", s, "intra", True, loops=2, skip=1, window=16)
               for s in (1 * KB, 64 * KB, 4 * MB)]
        assert bws == sorted(bws)

    def test_peak_bandwidths_match_paper(self):
        """SIV-B2: Charm++ ~44.7 GB/s intra, ~10 GB/s inter; Charm4py lower."""
        charm_intra = run_bandwidth("charm", 4 * MB, "intra", True, loops=3, skip=1)
        charm_inter = run_bandwidth("charm", 4 * MB, "inter", True, loops=3, skip=1)
        c4p_intra = run_bandwidth("charm4py", 4 * MB, "intra", True, loops=3, skip=1)
        assert charm_intra / 1e9 == pytest.approx(44.7, rel=0.1)
        assert charm_inter / 1e9 == pytest.approx(10.0, rel=0.1)
        assert c4p_intra / 1e9 == pytest.approx(35.5, rel=0.15)
        assert c4p_intra < charm_intra

    def test_openmpi_latency_close_to_raw_ucx(self):
        """SIV-B1: OpenMPI-D small-message latency ~2 us."""
        lat = run_latency("openmpi", 8, "intra", True, iters=10, skip=2)
        assert lat < 4e-6

    def test_ampi_h_dip_at_128k(self):
        """SIV-B2: AMPI-H bandwidth degrades at 128 KB."""
        bw64 = run_bandwidth("ampi", 64 * KB, "intra", False, loops=2, skip=1, window=32)
        bw128 = run_bandwidth("ampi", 128 * KB, "intra", False, loops=2, skip=1, window=32)
        # bytes doubled but bandwidth does not follow the trend at the dip
        assert bw128 < 1.5 * bw64

    def test_eager_rndv_crossover_visible(self):
        """Latency jumps where the device path switches to rendezvous."""
        below = run_latency("charm", 2 * KB, "intra", True, iters=5, skip=1)
        above = run_latency("charm", 8 * KB, "intra", True, iters=5, skip=1)
        assert above > below
