"""Tests for the beyond-the-paper extensions: streams, probe/cancel,
device collectives, sub-communicators, load balancing."""

import numpy as np
import pytest

from repro.ampi import Ampi
from repro.charm import Charm, Chare
from repro.config import KB, MachineConfig
from repro.hardware.topology import Machine
from repro.ucx.context import UcpContext
from repro.ucx.status import UcsStatus
from repro.ucx.stream import StreamChannel, stream_pair


def make_workers(nodes=1):
    m = Machine(MachineConfig.summit(nodes=nodes))
    ctx = UcpContext(m)
    wa = ctx.create_worker(0, 0, 0)
    wb = ctx.create_worker(1, 0, 0)
    return m, wa, wb


class TestStreamApi:
    def test_ordered_delivery(self):
        m, wa, wb = make_workers()
        tx, rx = stream_pair(wa, wb)
        # rx side receives in send order, no tags involved
        srcs = []
        for i in range(3):
            s = m.alloc_host(0, 8)
            s.data[:] = i + 1
            srcs.append(s)
            tx.send_nb(s, 8)
        got = []
        for _ in range(3):
            d = m.alloc_host(0, 8)
            req = rx.recv_nb(d, 8)
            m.sim.run()
            assert req.completed
            got.append(int(d.data[0]))
        assert got == [1, 2, 3]

    def test_device_payloads_through_stream(self):
        m, wa, wb = make_workers()
        tx, rx = stream_pair(wa, wb)
        src = m.alloc_device(0, 32 * KB, materialize=True)
        dst = m.alloc_device(1, 32 * KB, materialize=True)
        src.data[:] = 77
        rx.recv_nb(dst, 32 * KB)
        tx.send_nb(src, 32 * KB)
        m.sim.run()
        assert (dst.data == 77).all()

    def test_bidirectional(self):
        m, wa, wb = make_workers()
        ab, ba = stream_pair(wa, wb)
        s1, s2 = m.alloc_host(0, 8), m.alloc_host(0, 8)
        d1, d2 = m.alloc_host(0, 8), m.alloc_host(0, 8)
        s1.data[:] = 1
        s2.data[:] = 2
        ab.send_nb(s1, 8)
        ba.send_nb(s2, 8)
        r1 = ba.recv_nb(d1, 8)  # wb receives from wa
        r2 = ab.recv_nb(d2, 8)  # wa receives from wb... wait: naming
        m.sim.run()
        assert r1.completed and r2.completed

    def test_cross_context_pair_rejected(self):
        m1, wa, _ = make_workers()
        m2, wb, _ = make_workers()
        from repro.ucx.status import UcxError

        with pytest.raises(UcxError):
            stream_pair(wa, wb)


class TestProbeCancel:
    def test_probe_sees_unexpected_without_consuming(self):
        m, wa, wb = make_workers()
        src = m.alloc_host(0, 64)
        wa.tag_send_nb(wa.ep(1), src, 64, tag=5)
        m.sim.run()
        assert wb.tag_probe_nb(5) == (5, 64)
        assert wb.tag_probe_nb(6) is None
        assert len(wb.unexpected) == 1  # still there

    def test_cancel_posted_receive(self):
        m, wa, wb = make_workers()
        dst = m.alloc_host(0, 64)
        req = wb.tag_recv_nb(dst, 64, tag=9)
        assert wb.cancel(req)
        assert req.status is UcsStatus.ERR_CANCELED
        assert not wb.posted

    def test_cancel_completed_request_fails(self):
        m, wa, wb = make_workers()
        src, dst = m.alloc_host(0, 8), m.alloc_host(0, 8)
        req = wb.tag_recv_nb(dst, 8, tag=1)
        wa.tag_send_nb(wa.ep(1), src, 8, tag=1)
        m.sim.run()
        assert not wb.cancel(req)


class TestDeviceCollectives:
    def _run(self, program, nodes=2):
        charm = Charm(MachineConfig.summit(nodes=nodes))
        ampi = Ampi(charm)
        done = ampi.launch(program)
        charm.run_until(done, max_events=10_000_000)
        return ampi

    def test_reduce_device_sums_on_gpu(self):
        got = {}

        def program(mpi):
            buf = mpi.charm.cuda.malloc(mpi.gpu, 64)
            buf.data.view(np.float64)[:] = float(mpi.rank)
            yield from mpi.reduce_device(buf, 64, "sum", root=0)
            if mpi.rank == 0:
                got["sum"] = buf.data.view(np.float64).copy()

        ampi = self._run(program)
        expect = sum(range(ampi.n_ranks))
        assert (got["sum"] == expect).all()

    def test_allreduce_device_max(self):
        got = {}

        def program(mpi):
            buf = mpi.charm.cuda.malloc(mpi.gpu, 32)
            buf.data.view(np.float64)[:] = float(mpi.rank % 4)
            yield from mpi.allreduce_device(buf, 32, "max")
            got[mpi.rank] = buf.data.view(np.float64)[0]

        ampi = self._run(program)
        assert set(got.values()) == {3.0}
        assert len(got) == ampi.n_ranks

    def test_reduce_device_rejects_host_buffer(self):
        def program(mpi):
            h = mpi.charm.cuda.malloc_host(mpi.node, 64)
            with pytest.raises(ValueError):
                list(mpi.reduce_device(h, 64, "sum", root=0))
            return
            yield  # pragma: no cover

        self._run(program)

    def test_reduce_device_rejects_unknown_op(self):
        def program(mpi):
            d = mpi.charm.cuda.malloc(mpi.gpu, 64)
            with pytest.raises(ValueError):
                list(mpi.reduce_device(d, 64, "xor", root=0))
            return
            yield  # pragma: no cover

        self._run(program)


class TestIprobeAndCommSplit:
    def test_iprobe(self):
        out = {}

        def program(mpi):
            buf = mpi.charm.cuda.malloc_host(mpi.node, 8)
            if mpi.rank == 0:
                yield mpi.send(buf, 8, dst=1, tag=42)
            elif mpi.rank == 1:
                from repro.sim.primitives import Timeout

                yield Timeout(mpi.sim, 1e-3)  # let the envelope arrive
                flag, st = mpi.iprobe(src=0, tag=42)
                out["flag"] = flag
                out["tag"] = st.tag if st else None
                out["miss"] = mpi.iprobe(src=0, tag=7)[0]
                yield mpi.recv(buf, 8, src=0, tag=42)

        charm = Charm(MachineConfig.summit(nodes=1))
        ampi = Ampi(charm)
        charm.run_until(ampi.launch(program), max_events=5_000_000)
        assert out == {"flag": True, "tag": 42, "miss": False}

    def test_comm_split_even_odd(self):
        out = {}

        def program(mpi):
            sub = yield from mpi.comm_split(color=mpi.rank % 2)
            out[mpi.rank] = (sub.rank, sub.size)
            # ring exchange inside the sub-communicator
            buf = mpi.charm.cuda.malloc_host(mpi.node, 8)
            buf.data[:] = mpi.rank
            right = (sub.rank + 1) % sub.size
            left = (sub.rank - 1) % sub.size
            send = sub.isend(buf, 8, dst=right, tag=1)
            rbuf = mpi.charm.cuda.malloc_host(mpi.node, 8)
            st = yield sub.recv(rbuf, 8, src=left, tag=1)
            yield send.event
            # the world rank we heard from has the same parity
            assert int(rbuf.data[0]) % 2 == mpi.rank % 2

        charm = Charm(MachineConfig.summit(nodes=2))
        ampi = Ampi(charm)
        charm.run_until(ampi.launch(program), max_events=20_000_000)
        evens = [r for r in out if r % 2 == 0]
        assert all(out[r][1] == len(evens) for r in evens)
        # local ranks are ordered by world rank
        assert out[0][0] == 0 and out[2][0] == 1

    def test_comm_split_traffic_isolated(self):
        """Same tag on world and sub-communicator must not cross-match."""
        out = {}

        def program(mpi):
            if mpi.rank > 1:
                yield from mpi.comm_split(color=1)
                return
            sub = yield from mpi.comm_split(color=0)
            buf = mpi.charm.cuda.malloc_host(mpi.node, 8)
            if mpi.rank == 0:
                buf.data[:] = 1
                yield mpi.send(buf, 8, dst=1, tag=7)  # world
                buf2 = mpi.charm.cuda.malloc_host(mpi.node, 8)
                buf2.data[:] = 2
                yield sub.send(buf2, 8, dst=1, tag=7)  # sub-comm
            else:
                world = mpi.charm.cuda.malloc_host(mpi.node, 8)
                subb = mpi.charm.cuda.malloc_host(mpi.node, 8)
                yield sub.recv(subb, 8, src=0, tag=7)
                yield mpi.recv(world, 8, src=0, tag=7)
                out["sub"] = int(subb.data[0])
                out["world"] = int(world.data[0])

        charm = Charm(MachineConfig.summit(nodes=1))
        ampi = Ampi(charm)
        charm.run_until(ampi.launch(program), max_events=20_000_000)
        assert out == {"sub": 2, "world": 1}


class TestLoadBalancing:
    class Worker(Chare):
        def __init__(self):
            pass

        def spin(self, cost):
            self.charm.charge_current_pe(cost)

    def test_greedy_rebalance_spreads_load(self):
        charm = Charm(MachineConfig.summit(nodes=1))
        # 12 chares all piled onto PE 0 with varying loads
        arr = charm.create_array(self.Worker, 12, mapping=lambda i: 0)
        for i in range(12):
            arr[i].spin((i + 1) * 1e-6)
        charm.run()
        moves = charm.rebalance_greedy()
        assert moves  # something moved
        pes = {charm.chare_pe[arr[i].chare_id] for i in range(12)}
        assert len(pes) == charm.n_pes  # spread over every PE

    def test_rebalance_balances_measured_load(self):
        charm = Charm(MachineConfig.summit(nodes=1))
        arr = charm.create_array(self.Worker, 12, mapping=lambda i: i % 2)
        for i in range(12):
            arr[i].spin(1e-6)
        charm.run()
        charm.rebalance_greedy()
        loads = {pe: 0.0 for pe in range(charm.n_pes)}
        for i in range(12):
            cid = arr[i].chare_id
            loads[charm.chare_pe[cid]] += charm.chares[cid]._load
        assert max(loads.values()) <= 2 * (sum(loads.values()) / charm.n_pes) + 1e-12

    def test_groups_do_not_migrate(self):
        charm = Charm(MachineConfig.summit(nodes=1))
        g = charm.create_group(self.Worker)
        charm.rebalance_greedy()
        for pe in range(charm.n_pes):
            assert charm.chare_pe[g[pe].chare_id] == pe

    def test_messages_follow_after_rebalance(self):
        log = []

        class Logger(Chare):
            def __init__(self):
                pass

            def spin(self, cost):
                self.charm.charge_current_pe(cost)

            def note(self):
                log.append(self.pe)

        charm = Charm(MachineConfig.summit(nodes=1))
        arr = charm.create_array(Logger, 6, mapping=lambda i: 0)
        for i in range(6):
            arr[i].spin(1e-6)
        charm.run()
        charm.rebalance_greedy()
        for i in range(6):
            arr[i].note()
        charm.run()
        assert sorted(log) == sorted(
            charm.chare_pe[arr[i].chare_id] for i in range(6)
        )
