"""Determinism guarantees and runtime statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.jacobi3d.charm_impl import run_charm_jacobi
from repro.apps.jacobi3d.decomposition import Decomposition
from repro.charm import Charm, Chare, CkCallback
from repro.config import MachineConfig


class TestDeterminism:
    def test_jacobi_run_reproducible(self):
        cfg = MachineConfig.summit(nodes=1)
        decomp = Decomposition.create((12, 12, 12), 6)

        def run():
            col = run_charm_jacobi(cfg, decomp, gpu_aware=True, iters=3, warmup=1)
            return (col.avg_iter_time(), col.avg_comm_time())

        assert run() == run()

    def test_event_counts_reproducible(self):
        def run():
            charm = Charm(MachineConfig.summit(nodes=2))
            from repro.ampi import Ampi

            ampi = Ampi(charm)

            def program(mpi):
                buf = mpi.charm.cuda.malloc(mpi.gpu, 4096)
                right = (mpi.rank + 1) % mpi.size
                left = (mpi.rank - 1) % mpi.size
                s = mpi.isend(buf, 4096, dst=right, tag=1)
                yield mpi.recv(buf, 4096, src=left, tag=1)
                yield s.event

            charm.run_until(ampi.launch(program), max_events=1_000_000)
            return charm.sim.event_count

        assert run() == run()


class TestLinkStatistics:
    def test_jacobi_moves_expected_halo_bytes(self):
        """Conservation check: with faces above the device eager threshold,
        the NVLink ports carry at least the halo volume the decomposition
        predicts (rendezvous CUDA-IPC route)."""
        from repro.charm import Charm as _Charm
        from repro.apps.jacobi3d.charm_impl import JacobiBlock
        from repro.apps.jacobi3d.common import ResultCollector

        cfg = MachineConfig.summit(nodes=1)
        decomp = Decomposition.create((48, 48, 48), 6)
        # every face actually exchanged is >= the device eager threshold
        exchanged = {d for r in range(decomp.n_blocks) for d, _ in decomp.neighbors(r)}
        assert min(decomp.face_bytes(d) for d in exchanged) >= \
            cfg.ucx.device_eager_threshold
        charm = _Charm(cfg)
        collector = ResultCollector(charm.sim, decomp.n_blocks, warmup=0)
        peers = charm.create_array(
            JacobiBlock, decomp.n_blocks, decomp, True, 2, 0, False, collector,
            mapping=lambda i: i,
        )
        for i in range(decomp.n_blocks):
            peers[i].start(peers)
        charm.run_until(collector.done, max_events=10_000_000)
        total_halo = sum(decomp.halo_bytes(r) for r in range(decomp.n_blocks))
        nv_bytes = sum(
            l.bytes_carried for l in charm.machine.nodes[0].nvlink_tx
        )
        assert nv_bytes >= 2 * total_halo  # 2 measured iterations

    def test_small_halos_ride_the_eager_host_path(self):
        """Below the device eager threshold the halos stage through GDRCopy
        and host memory — the NVLinks stay idle (UCX protocol selection)."""
        from repro.charm import Charm as _Charm
        from repro.apps.jacobi3d.charm_impl import JacobiBlock
        from repro.apps.jacobi3d.common import ResultCollector

        cfg = MachineConfig.summit(nodes=1)
        decomp = Decomposition.create((24, 24, 24), 6)  # faces < 4 KB
        charm = _Charm(cfg)
        collector = ResultCollector(charm.sim, decomp.n_blocks, warmup=0)
        peers = charm.create_array(
            JacobiBlock, decomp.n_blocks, decomp, True, 2, 0, False, collector,
            mapping=lambda i: i,
        )
        for i in range(decomp.n_blocks):
            peers[i].start(peers)
        charm.run_until(collector.done, max_events=10_000_000)
        assert sum(l.bytes_carried for l in charm.machine.nodes[0].nvlink_tx) == 0
        assert charm.machine.nodes[0].host_mem.bytes_carried > 0

    def test_pe_busy_time_positive_after_work(self):
        class Busy(Chare):
            def __init__(self):
                pass

            def work(self):
                self.charm.charge_current_pe(1e-5)

        charm = Charm(MachineConfig.summit(nodes=1))
        p = charm.create_chare(Busy, 0)
        p.work()
        charm.run()
        assert charm.pe_object(0).busy_time >= 1e-5


@given(values=st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    min_size=12, max_size=12,
))
@settings(max_examples=20, deadline=None)
def test_reduction_sum_matches_numpy(values):
    class W(Chare):
        def __init__(self):
            pass

        def go(self, v, cb):
            self.charm.reductions.contribute(self, v, "sum", cb)

    charm = Charm(MachineConfig.summit(nodes=2))
    results = []
    g = charm.create_group(W)
    cb = CkCallback(fn=results.append)
    for pe, v in enumerate(values):
        g[pe].go(v, cb)
    charm.run()
    assert results[0] == pytest.approx(float(np.sum(values)), rel=1e-12, abs=1e-9)
