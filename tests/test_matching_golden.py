"""Golden comparison: indexed matching must be *bit-identical* to linear.

``IndexedMatchQueue`` is a pure host-side optimisation — the simulated
world (completion times, event counts, tracer counters, virtual scan
lengths) must not move by one bit when it replaces the linear reference
queues.  These tests run the same deterministic mixed workload (host +
device messages, exact and wildcard receives) under both
``indexed_matching`` settings and compare full result fingerprints.
"""

import dataclasses

import numpy as np
import pytest

from repro.ampi import Ampi
from repro.charm import Charm
from repro.config import MachineConfig
from repro.openmpi import OpenMpi

ANY = -1  # MPI_ANY_SOURCE / MPI_ANY_TAG in both layers

N_RANKS = 12
NODES = 2
CAPACITY = 64 * 1024  # recv buffers; every planned message fits


def make_plan(seed, n_msgs, device_fraction=0.25):
    """Deterministic message plan: (id, src, dst, tag, size, dev, wild_src,
    wild_tag).  Wildcard receives stress the fallback list; device messages
    stress the UCX tag path under AMPI.

    Device messages use a disjoint tag space (10..13) and exact receives so
    a host-posted wildcard can never match a device-sent payload (mixed
    host/device pt2pt is outside the modeled scope).  Wildcard receives are
    ``(ANY_SOURCE, tag=4)`` with tag 4 reserved for them: wildcards then only
    compete with each other, so any steal is still completable and the
    workload cannot deadlock."""
    rng = np.random.default_rng(seed)
    plan = []
    for i in range(n_msgs):
        src = int(rng.integers(0, N_RANKS))
        dst = int(rng.integers(0, N_RANKS - 1))
        if dst >= src:
            dst += 1
        tag = int(rng.integers(0, 4))
        size = int(rng.integers(1, 32 * 1024))
        dev = bool(rng.random() < device_fraction)
        wild_src = bool(rng.random() < 0.3) and not dev
        if dev:
            tag += 10
        elif wild_src:
            tag = 4
        plan.append((i, src, dst, tag, size, dev, wild_src, False))
    return plan


def _config(indexed):
    cfg = MachineConfig.summit(nodes=NODES)
    return dataclasses.replace(
        cfg,
        ucx=dataclasses.replace(cfg.ucx, indexed_matching=indexed),
        runtime=dataclasses.replace(cfg.runtime, indexed_matching=indexed),
    )


def _make_program(plan, sim, payloads, finish_times):
    def program(mpi):
        cuda = mpi.charm.cuda
        my_recvs = [p for p in plan if p[2] == mpi.rank]
        my_sends = [p for p in plan if p[1] == mpi.rank]
        reqs = []
        recv_bufs = []
        for i, src, dst, tag, size, dev, wild_src, wild_tag in my_recvs:
            buf = (cuda.malloc(mpi.gpu, CAPACITY, materialize=True) if dev
                   else cuda.malloc_host(mpi.node, CAPACITY, materialize=True))
            recv_bufs.append((i, buf))
            reqs.append(mpi.irecv(buf, CAPACITY,
                                  src=ANY if wild_src else src,
                                  tag=ANY if wild_tag else tag))
        for i, src, dst, tag, size, dev, wild_src, wild_tag in my_sends:
            buf = (cuda.malloc(mpi.gpu, size, materialize=True) if dev
                   else cuda.malloc_host(mpi.node, size, materialize=True))
            buf.data[:] = i % 251
            reqs.append(mpi.isend(buf, size, dst=dst, tag=tag))
        yield mpi.waitall(reqs)
        finish_times[mpi.rank] = sim.now
        for i, buf in recv_bufs:
            payloads[i] = int(buf.data[0])

    return program


def run_openmpi(plan, indexed):
    lib = OpenMpi(_config(indexed))
    payloads, finish = {}, {}
    done = lib.launch(_make_program(plan, lib.machine.sim, payloads, finish))
    lib.run_until(done, max_events=50_000_000)
    sim = lib.machine.sim
    workers = list(lib.ucp._workers.values())
    return {
        "payloads": payloads,
        "finish_times": finish,
        "now": sim.now,
        "event_count": sim.event_count,
        "counters": dict(lib.machine.tracer.counters),
        "tag_scans": sum(w.tag_scans for w in workers),
        "expected_hits": sum(w.expected_hits for w in workers),
        "unexpected_hits": sum(w.unexpected_hits for w in workers),
    }


def run_ampi(plan, indexed):
    charm = Charm(_config(indexed))
    lib = Ampi(charm)
    payloads, finish = {}, {}
    done = lib.launch(_make_program(plan, charm.sim, payloads, finish))
    charm.run_until(done, max_events=50_000_000)
    stats = charm.layer.matching_stats()
    return {
        "payloads": payloads,
        "finish_times": finish,
        "now": charm.sim.now,
        "event_count": charm.sim.event_count,
        "counters": dict(charm.machine.tracer.counters),
        "ucx_stats": stats,
        "ampi_scanned": sum(r.matching.scanned_total for r in lib.ranks),
    }


@pytest.mark.parametrize("seed", [0, 3])
def test_openmpi_indexed_bit_identical_to_linear(seed):
    plan = make_plan(seed, n_msgs=60)
    linear = run_openmpi(plan, indexed=False)
    indexed = run_openmpi(plan, indexed=True)
    assert indexed == linear
    # sanity: the workload actually exercised matching
    assert linear["tag_scans"] > 0
    assert len(linear["payloads"]) == 60


@pytest.mark.parametrize("seed", [1, 4])
def test_ampi_indexed_bit_identical_to_linear(seed):
    plan = make_plan(seed, n_msgs=60)
    linear = run_ampi(plan, indexed=True), run_ampi(plan, indexed=False)
    indexed, linear = linear[0], linear[1]
    assert indexed == linear
    assert linear["ampi_scanned"] > 0
    assert len(linear["payloads"]) == 60


def test_wildcard_heavy_workload_identical():
    """All-wildcard receives force the fallback list: the indexed queue is
    pure overhead here, but semantics must still be identical."""
    plan = make_plan(seed=9, n_msgs=40, device_fraction=0.0)
    plan = [(i, s, d, t, sz, dev, True, True)
            for (i, s, d, t, sz, dev, _ws, _wt) in plan]
    linear = run_openmpi(plan, indexed=False)
    indexed = run_openmpi(plan, indexed=True)
    assert indexed == linear
