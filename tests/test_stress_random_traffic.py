"""Randomized traffic stress tests: many senders, wildcards, mixed sizes.

A deterministic global plan of (src, dst, tag, size) messages is generated
per seed; every rank plays its part with non-blocking operations, and the
test verifies that every message arrives intact, exactly once, with MPI
ordering preserved per (source, tag).  This exercises the unexpected/
posted queues, eager/rendezvous mixes, and the device paths under load.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ampi import Ampi
from repro.charm import Charm
from repro.config import KB, MachineConfig
from repro.openmpi import OpenMpi


def make_plan(rng, n_ranks, n_msgs, device_fraction=0.0, max_kb=64):
    plan = []
    for i in range(n_msgs):
        src = int(rng.integers(0, n_ranks))
        dst = int(rng.integers(0, n_ranks - 1))
        if dst >= src:
            dst += 1
        size = int(rng.integers(1, max_kb * 1024))
        tag = int(rng.integers(0, 4))
        dev = bool(rng.random() < device_fraction)
        plan.append((i, src, dst, tag, size, dev))
    return plan


def run_plan(lib_kind, plan, n_ranks, nodes=2):
    received = {}

    def program(mpi):
        cuda = mpi.charm.cuda
        my_sends = [p for p in plan if p[1] == mpi.rank]
        my_recvs = [p for p in plan if p[2] == mpi.rank]
        reqs = []
        recv_bufs = []
        for i, src, dst, tag, size, dev in my_recvs:
            buf = (cuda.malloc(mpi.gpu, size, materialize=True) if dev
                   else cuda.malloc_host(mpi.node, size, materialize=True))
            recv_bufs.append((i, buf, src, tag))
            reqs.append(mpi.irecv(buf, size, src=src, tag=tag))
        for i, src, dst, tag, size, dev in my_sends:
            buf = (cuda.malloc(mpi.gpu, size, materialize=True) if dev
                   else cuda.malloc_host(mpi.node, size, materialize=True))
            buf.data[:] = i % 251  # payload identifies the message
            reqs.append(mpi.isend(buf, size, dst=dst, tag=tag))
        yield mpi.waitall(reqs)
        for i, buf, src, tag in recv_bufs:
            received[i] = int(buf.data[0])

    if lib_kind == "ampi":
        charm = Charm(MachineConfig.summit(nodes=nodes))
        lib = Ampi(charm)
        done = lib.launch(program)
        charm.run_until(done, max_events=50_000_000)
    else:
        lib = OpenMpi(MachineConfig.summit(nodes=nodes))
        done = lib.launch(program)
        lib.run_until(done, max_events=50_000_000)
    return received


@pytest.mark.parametrize("lib_kind", ["ampi", "openmpi"])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_random_host_traffic_all_delivered(lib_kind, seed):
    rng = np.random.default_rng(seed)
    plan = make_plan(rng, n_ranks=12, n_msgs=40)
    received = run_plan(lib_kind, plan, 12)
    assert len(received) == 40
    # Payload correctness modulo same-(src,dst,tag) reordering: MPI only
    # orders messages within a (src, dst, tag) triple, and our plan posts
    # irecvs in plan order, so payloads within a triple must appear in
    # order; across triples any interleaving is legal.
    by_triple = {}
    for i, src, dst, tag, size, dev in plan:
        by_triple.setdefault((src, dst, tag), []).append(i)
    for (src, dst, tag), ids in by_triple.items():
        got = [received[i] for i in ids]
        assert got == [i % 251 for i in ids], (src, dst, tag)


@pytest.mark.parametrize("lib_kind", ["ampi", "openmpi"])
def test_random_device_traffic_all_delivered(lib_kind):
    rng = np.random.default_rng(7)
    plan = make_plan(rng, n_ranks=12, n_msgs=24, device_fraction=1.0, max_kb=32)
    received = run_plan(lib_kind, plan, 12)
    assert len(received) == 24
    by_triple = {}
    for i, src, dst, tag, size, dev in plan:
        by_triple.setdefault((src, dst, tag), []).append(i)
    for ids in by_triple.values():
        assert [received[i] for i in ids] == [i % 251 for i in ids]


class TestUcxFuzz:
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["send", "recv"]),
                st.integers(0, 2),  # tag
                st.integers(1, 8 * 1024),  # size class (bytes)
            ),
            min_size=2, max_size=30,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_every_matched_pair_delivers(self, ops):
        """For any interleaving of posts and sends, matched pairs complete
        and payloads arrive intact (per-tag FIFO)."""
        from repro.hardware.topology import Machine
        from repro.ucx.context import UcpContext

        m = Machine(MachineConfig.summit(nodes=1))
        ctx = UcpContext(m)
        wa = ctx.create_worker(0, 0)
        wb = ctx.create_worker(1, 0)
        sends_per_tag = {0: 0, 1: 0, 2: 0}
        recvs = []
        for kind, tag, size in ops:
            if kind == "send":
                buf = m.alloc_host(0, size, materialize=True)
                buf.data[:] = (sends_per_tag[tag] + tag * 50) % 251
                sends_per_tag[tag] += 1
                wa.tag_send_nb(wa.ep(1), buf, size, tag=tag)
            else:
                buf = m.alloc_host(0, 8 * 1024, materialize=True)
                recvs.append((tag, buf, wb.tag_recv_nb(buf, 8 * 1024, tag=tag)))
            m.sim.run()
        m.sim.run()
        matched_per_tag = {0: 0, 1: 1 and 0, 2: 0}
        seen = {0: 0, 1: 0, 2: 0}
        for tag, buf, req in recvs:
            if req.completed:
                expect = (seen[tag] + tag * 50) % 251
                assert buf.data[0] == expect, (tag, seen[tag])
                seen[tag] += 1
        # number of completions per tag = min(sends, recvs posted)
        posted = {t: sum(1 for tag, _b, _r in recvs if tag == t) for t in (0, 1, 2)}
        for t in (0, 1, 2):
            done = sum(1 for tag, _b, r in recvs if tag == t and r.completed)
            assert done == min(sends_per_tag[t], posted[t])
