"""Tests for GPUs, streams, kernels, and the CUDA runtime facade."""

import numpy as np
import pytest

from repro.config import MachineConfig, MB
from repro.hardware.cuda import CudaRuntime
from repro.hardware.gpu import Kernel
from repro.hardware.topology import Machine


@pytest.fixture
def rt():
    return CudaRuntime(Machine(MachineConfig.summit(nodes=1)))


class TestStreams:
    def test_stream_serialises_operations(self, rt):
        sim = rt.sim
        s = rt.create_stream(0)
        d = rt.malloc(0, 1 * MB)
        h = rt.malloc_host(0, 1 * MB)
        rt.memcpy_dtoh(h, d, s)
        rt.memcpy_htod(d, h, s)
        first = rt.stream_synchronize(s)
        sim.run()
        # two sequential 1 MB copies over NVLink plus overheads
        topo = rt.machine.cfg.topology
        per_copy = rt.cfg.memcpy_launch_overhead + topo.nvlink.transfer_time(1 * MB)
        assert sim.now == pytest.approx(
            2 * per_copy + rt.cfg.stream_sync_overhead, rel=1e-6
        )
        assert first.triggered

    def test_independent_streams_overlap(self, rt):
        s1, s2 = rt.create_stream(0), rt.create_stream(1)
        d0, d1 = rt.malloc(0, 1 * MB), rt.malloc(1, 1 * MB)
        h = rt.malloc_host(0, 1 * MB)
        h2 = rt.malloc_host(0, 1 * MB)
        rt.memcpy_dtoh(h, d0, s1)
        rt.memcpy_dtoh(h2, d1, s2)
        rt.sim.run()
        topo = rt.machine.cfg.topology
        per_copy = rt.cfg.memcpy_launch_overhead + topo.nvlink.transfer_time(1 * MB)
        assert rt.sim.now == pytest.approx(per_copy, rel=1e-6)

    def test_sync_on_empty_stream_is_cheap(self, rt):
        s = rt.create_stream(0)
        done = rt.stream_synchronize(s)
        rt.sim.run()
        assert done.triggered
        assert rt.sim.now == pytest.approx(rt.cfg.stream_sync_overhead)


class TestMemcpy:
    def test_moves_data(self, rt):
        d = rt.malloc(0, 64)
        h = rt.malloc_host(0, 64)
        h.data[:] = np.arange(64, dtype=np.uint8)
        s = rt.create_stream(0)
        rt.memcpy_htod(d, h, s)
        rt.sim.run()
        assert (d.data == h.data).all()

    def test_direction_validation(self, rt):
        d = rt.malloc(0, 64)
        h = rt.malloc_host(0, 64)
        s = rt.create_stream(0)
        with pytest.raises(ValueError):
            rt.memcpy_dtoh(d, h, s)
        with pytest.raises(ValueError):
            rt.memcpy_htod(h, d, s)

    def test_dtod_between_gpus(self, rt):
        a = rt.malloc(0, 64)
        b = rt.malloc(1, 64)
        a.data[:] = 5
        s = rt.create_stream(0)
        rt.memcpy_async(b, a, s)
        rt.sim.run()
        assert (b.data == 5).all()


class TestKernels:
    def test_memory_bound_duration(self, rt):
        k = Kernel("sweep", bytes_moved=800 * 1024 * 1024)
        assert k.duration(800e9, 7e12) == pytest.approx(800 * 1024 * 1024 / 800e9)

    def test_flop_bound_duration(self, rt):
        k = Kernel("gemm", bytes_moved=1, flops=7_000_000)
        assert k.duration(800e9, 7e12) == pytest.approx(1e-6)

    def test_body_runs_at_completion(self, rt):
        fired = []
        k = Kernel("f", bytes_moved=1024, body=lambda: fired.append(rt.sim.now))
        rt.launch(0, k)
        rt.sim.run()
        assert len(fired) == 1 and fired[0] > 0

    def test_kernels_serialise_on_exec_units_across_streams(self, rt):
        """Memory-bound kernels saturate the device: two streams' kernels
        run back to back, not concurrently."""
        s1, s2 = rt.create_stream(0), rt.create_stream(0)
        dur_bytes = 8 * 1024 * 1024 * 100  # ~1 ms at 800 GB/s
        done = []
        rt.launch(0, Kernel("a", dur_bytes), s1).add_callback(
            lambda _e: done.append(rt.sim.now)
        )
        rt.launch(0, Kernel("b", dur_bytes), s2).add_callback(
            lambda _e: done.append(rt.sim.now)
        )
        rt.sim.run()
        assert done[1] >= 2 * (dur_bytes / (800 * 1024**3))

    def test_kernels_on_different_gpus_overlap(self, rt):
        dur_bytes = 8 * 1024 * 1024 * 100
        done = []
        for g in (0, 1):
            rt.launch(g, Kernel("k", dur_bytes)).add_callback(
                lambda _e: done.append(rt.sim.now)
            )
        rt.sim.run()
        assert done[0] == pytest.approx(done[1])

    def test_launch_counts(self, rt):
        rt.launch(0, Kernel("x", 10))
        rt.launch(0, Kernel("y", 10))
        rt.sim.run()
        assert rt.gpu(0).kernels_launched == 2


class TestIpc:
    def test_first_open_expensive_then_cached(self, rt):
        buf = rt.malloc(0, 1024)
        handle = rt.ipc_get_handle(buf)
        first = rt.ipc_open_cost(1, handle)
        second = rt.ipc_open_cost(1, handle)
        assert first == rt.cfg.ipc_handle_open_cost
        assert second == rt.cfg.ipc_cached_open_cost

    def test_cache_is_per_opener(self, rt):
        buf = rt.malloc(0, 1024)
        handle = rt.ipc_get_handle(buf)
        rt.ipc_open_cost(1, handle)
        assert rt.ipc_open_cost(2, handle) == rt.cfg.ipc_handle_open_cost

    def test_handle_resolves_buffer(self, rt):
        buf = rt.malloc(0, 1024)
        handle = rt.ipc_get_handle(buf)
        assert rt.ipc_resolve(handle) is buf

    def test_host_buffer_rejected(self, rt):
        h = rt.malloc_host(0, 64)
        with pytest.raises(ValueError):
            rt.ipc_get_handle(h)


class TestGdrCopy:
    def test_copy_time_and_data(self):
        from repro.hardware.gdrcopy import GdrCopy

        m = Machine(MachineConfig.summit(nodes=1))
        g = GdrCopy(m.sim, m.cfg.ucx)
        src = m.alloc_device(0, 64)
        dst = m.alloc_host(0, 64)
        src.data[:] = 3
        done = g.copy(dst, src)
        m.sim.run()
        assert done.triggered and (dst.data == 3).all()
        assert m.sim.now == pytest.approx(g.copy_time(64))
        assert g.copies == 1

    def test_disabled_raises(self):
        from repro.hardware.gdrcopy import GdrCopy

        m = Machine(MachineConfig.summit(nodes=1).without_gdrcopy())
        g = GdrCopy(m.sim, m.cfg.ucx)
        assert not g.available
        with pytest.raises(RuntimeError):
            g.copy(m.alloc_host(0, 8), m.alloc_device(0, 8))
