"""Cross-layer integration tests: the paper's claims as executable checks."""

import pytest

from repro.apps.jacobi3d.driver import run_jacobi
from repro.apps.osu import run_latency
from repro.config import KB, MachineConfig, MB


class TestModelConsistency:
    def test_ampi_and_openmpi_run_identical_programs(self):
        """AMPI's promise: the same MPI program runs unchanged; only the
        runtime differs.  Both Jacobi runs share one program object."""
        from repro.apps.jacobi3d.decomposition import Decomposition
        from repro.apps.jacobi3d.mpi_impl import (
            jacobi_mpi_program,
            run_ampi_jacobi,
            run_openmpi_jacobi,
        )
        import numpy as np

        cfg = MachineConfig.summit(nodes=1)
        decomp = Decomposition.create((12, 12, 12), 6)
        a = run_ampi_jacobi(cfg, decomp, True, iters=2, warmup=0, functional=True)
        o = run_openmpi_jacobi(cfg, decomp, True, iters=2, warmup=0, functional=True)
        assert np.allclose(a.assemble(decomp), o.assemble(decomp))

    def test_layer_cost_ordering(self):
        """OpenMPI < Charm++ < AMPI < Charm4py in small-message overhead
        (Figs. 10a-c read at the smallest size)."""
        lats = {
            m: run_latency(m, 8, "intra", True, iters=10, skip=2)
            for m in ("openmpi", "charm", "ampi", "charm4py")
        }
        assert lats["openmpi"] < lats["charm"] < lats["ampi"] < lats["charm4py"]

    def test_all_models_share_transport_peak(self):
        """All four ride the same UCX machine layer: large-message D latency
        converges to the wire time (SIII: one abstraction layer)."""
        lats = [
            run_latency(m, 4 * MB, "inter", True, iters=5, skip=1)
            for m in ("openmpi", "charm", "ampi")
        ]
        assert max(lats) / min(lats) < 1.1


class TestJacobiScalingShapes:
    def test_weak_scaling_overall_improvement_range(self):
        """Fig. 14a: overall iteration-time reduction 5-37% for Charm++."""
        d = run_jacobi("charm", nodes=1, gpu_aware=True, iters=2, warmup=1)
        h = run_jacobi("charm", nodes=1, gpu_aware=False, iters=2, warmup=1)
        improvement = 1 - d.iter_time / h.iter_time
        assert 0.05 < improvement < 0.5

    def test_weak_scaling_speedup_decreases_with_nodes(self):
        """Fig. 14b: the relative comm speedup shrinks as slower inter-node
        communication starts to dominate."""
        r1d = run_jacobi("charm", nodes=1, gpu_aware=True, iters=2, warmup=1)
        r1h = run_jacobi("charm", nodes=1, gpu_aware=False, iters=2, warmup=1)
        r4d = run_jacobi("charm", nodes=4, gpu_aware=True, iters=2, warmup=1)
        r4h = run_jacobi("charm", nodes=4, gpu_aware=False, iters=2, warmup=1)
        assert r1h.comm_time / r1d.comm_time > r4h.comm_time / r4d.comm_time

    def test_strong_scaling_iter_time_decreases(self):
        r8 = run_jacobi("charm", nodes=8, scaling="strong", gpu_aware=True,
                        iters=2, warmup=1)
        r32 = run_jacobi("charm", nodes=32, scaling="strong", gpu_aware=True,
                         iters=2, warmup=1)
        assert r32.iter_time < r8.iter_time

    def test_charm4py_slowest_overall(self):
        """Fig. 16 vs 14: Charm4py's per-iteration times sit above Charm++'s
        (its y-axis tops out at 300 ms vs 40 ms in the paper)."""
        c = run_jacobi("charm", nodes=1, gpu_aware=False, iters=2, warmup=1)
        p = run_jacobi("charm4py", nodes=1, gpu_aware=False, iters=2, warmup=1)
        assert p.iter_time > c.iter_time

    def test_ampi_tracks_openmpi_gpu_aware(self):
        """Fig. 15: AMPI-D close to OpenMPI-D at small scale."""
        a = run_jacobi("ampi", nodes=1, gpu_aware=True, iters=2, warmup=1)
        o = run_jacobi("openmpi", nodes=1, gpu_aware=True, iters=2, warmup=1)
        assert a.iter_time / o.iter_time < 1.15


class TestConfigurationAblations:
    def test_overdecomposition_functionality(self):
        from repro.bench.figures import ablation_overdecomposition

        r = ablation_overdecomposition(blocks_per_pe=(1, 2), nodes=1, quiet=True)
        assert set(r) == {1, 2}
        assert all(v > 0 for v in r.values())

    def test_without_gdrcopy_hurts_small_device_latency(self):
        base = run_latency("charm", 64, "intra", True, MachineConfig.summit(nodes=2),
                           iters=5, skip=1)
        nogdr = run_latency("charm", 64, "intra", True,
                            MachineConfig.summit(nodes=2).without_gdrcopy(), iters=5, skip=1)
        assert nogdr > 2 * base

    def test_custom_tag_split_works_end_to_end(self):
        from dataclasses import replace

        from repro.config import TagConfig

        cfg = MachineConfig.summit(nodes=2)
        cfg = replace(cfg, tags=TagConfig(msg_bits=4, pe_bits=16, cnt_bits=44))
        lat = run_latency("charm", 1024, "intra", True, cfg, iters=3, skip=1)
        assert lat > 0

    def test_determinism(self):
        """Identical configurations produce identical simulated times."""
        a = run_latency("ampi", 4 * KB, "inter", True, iters=5, skip=1)
        b = run_latency("ampi", 4 * KB, "inter", True, iters=5, skip=1)
        assert a == b
