"""Unit-level coverage for small surfaces not exercised elsewhere."""

import numpy as np
import pytest

from repro.charm import Charm, Chare
from repro.config import MachineConfig


class TestJacobiKernelsUnit:
    """Pack/unpack/stencil kernels verified slice-by-slice, no runtime."""

    def _field(self, shape=(4, 5, 6)):
        rng = np.random.default_rng(3)
        u = np.zeros(tuple(d + 2 for d in shape))
        u[1:-1, 1:-1, 1:-1] = rng.random(shape)
        return u

    @pytest.mark.parametrize("direction,expected_slice", [
        ("-x", np.s_[1, 1:-1, 1:-1]),
        ("+x", np.s_[-2, 1:-1, 1:-1]),
        ("-y", np.s_[1:-1, 1, 1:-1]),
        ("+z", np.s_[1:-1, 1:-1, -2]),
    ])
    def test_pack_extracts_the_right_face(self, direction, expected_slice):
        from repro.apps.jacobi3d.kernels import pack_kernel

        u = self._field()
        face = u[expected_slice]
        out = np.zeros(face.size)
        k = pack_kernel(direction, face.size * 8, u, out)
        k.body()
        assert np.allclose(out[: face.size], face.reshape(-1))

    @pytest.mark.parametrize("direction,ghost_slice", [
        ("-x", np.s_[0, 1:-1, 1:-1]),
        ("+y", np.s_[1:-1, -1, 1:-1]),
        ("-z", np.s_[1:-1, 1:-1, 0]),
    ])
    def test_unpack_fills_the_right_ghost(self, direction, ghost_slice):
        from repro.apps.jacobi3d.kernels import unpack_kernel

        u = self._field()
        ghost_shape = u[ghost_slice].shape
        src = np.arange(int(np.prod(ghost_shape)), dtype=float)
        k = unpack_kernel(direction, src.size * 8, u, src)
        k.body()
        assert np.allclose(u[ghost_slice].reshape(-1), src)

    def test_stencil_is_the_six_point_average(self):
        from repro.apps.jacobi3d.kernels import stencil_kernel

        u = self._field((3, 3, 3))
        out = np.zeros_like(u)
        stencil_kernel(27, u, out).body()
        expect = (
            u[:-2, 1:-1, 1:-1] + u[2:, 1:-1, 1:-1]
            + u[1:-1, :-2, 1:-1] + u[1:-1, 2:, 1:-1]
            + u[1:-1, 1:-1, :-2] + u[1:-1, 1:-1, 2:]
        ) / 6.0
        assert np.allclose(out[1:-1, 1:-1, 1:-1], expect)

    def test_virtual_kernels_have_no_body(self):
        from repro.apps.jacobi3d.kernels import pack_kernel, stencil_kernel

        assert pack_kernel("-x", 1024).body is None
        assert stencil_kernel(1000).body is None
        assert stencil_kernel(1000).bytes_moved == 16000


class TestProxyMechanics:
    class Probe(Chare):
        def __init__(self, log):
            self.log = log

        def hit(self):
            self.log.append(self.thisIndex)

    def test_proxy_equality_and_hash(self):
        charm = Charm(MachineConfig.summit(nodes=1))
        p = charm.create_chare(self.Probe, 0, [])
        obj = charm.chares[p.chare_id]
        assert obj.thisProxy == p
        assert hash(obj.thisProxy) == hash(p)
        assert p != object()

    def test_private_attribute_access_raises(self):
        charm = Charm(MachineConfig.summit(nodes=1))
        p = charm.create_chare(self.Probe, 0, [])
        with pytest.raises(AttributeError):
            p._secret  # noqa: B018

    def test_collection_len_and_indexing(self):
        charm = Charm(MachineConfig.summit(nodes=1))
        g = charm.create_group(self.Probe, [])
        assert len(g) == charm.n_pes
        assert g[0].chare_id != g[1].chare_id


class TestPeDebtMechanics:
    def test_current_delay_accumulates_and_resets(self):
        charm = Charm(MachineConfig.summit(nodes=1))
        pe = charm.pe_object(0)
        assert pe.current_delay() == 0.0
        pe.charge(2e-6)
        pe.charge(3e-6)
        assert pe.current_delay() == pytest.approx(5e-6)
        assert pe.take_debt() == pytest.approx(5e-6)
        assert pe.current_delay() == 0.0


class TestWeakScalingInvariant:
    def test_cell_count_scales_with_nodes(self):
        from repro.apps.jacobi3d.decomposition import weak_scaling_domain

        base = 1536
        for nodes in (1, 2, 4, 8, 16, 32, 64, 128, 256):
            dims = weak_scaling_domain(base, nodes)
            assert np.prod([float(d) for d in dims]) == float(base) ** 3 * nodes


class TestPlottingInternals:
    def test_log_positions_monotone(self):
        from repro.bench.plotting import _log_positions

        pos = _log_positions([1, 10, 100, 1000], 1, 1000, 40)
        assert pos == sorted(pos)
        assert pos[0] == 0 and pos[-1] == 39

    def test_nonpositive_values_pinned_low(self):
        from repro.bench.plotting import _log_positions

        assert _log_positions([0.0], 1, 10, 10)[0] == 0


class TestDeviceEventRecord:
    def test_fence_fires_with_stream_position(self):
        from repro.hardware.cuda import CudaRuntime
        from repro.hardware.gpu import DeviceEventRecord
        from repro.hardware.topology import Machine

        m = Machine(MachineConfig.summit(nodes=1))
        rt = CudaRuntime(m)
        s = rt.create_stream(0)
        d = rt.malloc(0, 1024)
        h = rt.malloc_host(0, 1024)
        rt.memcpy_dtoh(h, d, s)
        record = DeviceEventRecord(stream=s, fence=s.drained())
        m.sim.run()
        assert record.fence.triggered
