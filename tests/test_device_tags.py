"""Tests (incl. property-based) for the 64-bit device tag scheme (Fig. 3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import TagConfig
from repro.core.device_tags import (
    MsgType,
    TagGenerator,
    decode_tag,
    make_tag,
    msg_type_mask,
)


class TestMakeDecode:
    def test_roundtrip_defaults(self):
        tag = make_tag(MsgType.DEVICE, pe=123, count=456)
        assert decode_tag(tag) == (MsgType.DEVICE, 123, 456)

    def test_tag_fits_64_bits(self):
        cfg = TagConfig()
        tag = make_tag(
            MsgType.PROBE, (1 << cfg.pe_bits) - 1, (1 << cfg.cnt_bits) - 1, cfg
        )
        assert 0 <= tag < (1 << 64)

    def test_pe_out_of_range_rejected(self):
        cfg = TagConfig(msg_bits=4, pe_bits=8, cnt_bits=52)
        with pytest.raises(ValueError):
            make_tag(MsgType.DEVICE, pe=256, count=0, cfg=cfg)

    def test_count_wraps(self):
        cfg = TagConfig()
        wrapped = make_tag(MsgType.DEVICE, 0, 1 << cfg.cnt_bits)
        assert decode_tag(wrapped) == (MsgType.DEVICE, 0, 0)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            make_tag(MsgType.DEVICE, 0, -1)

    def test_decode_rejects_oversized(self):
        with pytest.raises(ValueError):
            decode_tag(1 << 64)

    def test_msg_type_mask_selects_type_field(self):
        mask = msg_type_mask()
        a = make_tag(MsgType.HOST, pe=5, count=9)
        b = make_tag(MsgType.HOST, pe=77, count=1234)
        c = make_tag(MsgType.DEVICE, pe=5, count=9)
        assert a & mask == b & mask
        assert a & mask != c & mask


class TestTagConfig:
    def test_fields_must_sum_to_64(self):
        with pytest.raises(ValueError):
            TagConfig(msg_bits=4, pe_bits=32, cnt_bits=29)

    def test_fields_must_be_positive(self):
        with pytest.raises(ValueError):
            TagConfig(msg_bits=0, pe_bits=32, cnt_bits=32)

    def test_custom_split_roundtrip(self):
        # the paper: "modified by the user to allocate more bits to one side"
        cfg = TagConfig(msg_bits=4, pe_bits=20, cnt_bits=40)
        tag = make_tag(MsgType.DEVICE, pe=(1 << 20) - 1, count=(1 << 40) - 1, cfg=cfg)
        assert decode_tag(tag, cfg) == (MsgType.DEVICE, (1 << 20) - 1, (1 << 40) - 1)


class TestTagGenerator:
    def test_monotonic_counter(self):
        gen = TagGenerator(pe=3)
        tags = [gen.next_device_tag() for _ in range(5)]
        counts = [decode_tag(t)[2] for t in tags]
        assert counts == [0, 1, 2, 3, 4]
        assert all(decode_tag(t)[0] is MsgType.DEVICE for t in tags)
        assert all(decode_tag(t)[1] == 3 for t in tags)

    def test_distinct_pes_never_collide(self):
        a = TagGenerator(pe=1)
        b = TagGenerator(pe=2)
        ta = {a.next_device_tag() for _ in range(100)}
        tb = {b.next_device_tag() for _ in range(100)}
        assert not (ta & tb)

    def test_counter_wraps_at_field_width(self):
        cfg = TagConfig(msg_bits=4, pe_bits=56, cnt_bits=4)
        gen = TagGenerator(pe=0, cfg=cfg)
        tags = [gen.next_device_tag() for _ in range(20)]
        counts = [decode_tag(t, cfg)[2] for t in tags]
        assert counts == [i % 16 for i in range(20)]

    def test_host_tag_type(self):
        gen = TagGenerator(pe=9)
        assert decode_tag(gen.host_tag())[0] is MsgType.HOST


# --------------------------------------------------------------------------
# property-based
# --------------------------------------------------------------------------

_splits = st.tuples(
    st.integers(4, 8), st.integers(8, 40)
).map(lambda t: TagConfig(msg_bits=t[0], pe_bits=t[1], cnt_bits=64 - t[0] - t[1]))


@given(
    cfg=_splits,
    msg=st.sampled_from(list(MsgType)),
    data=st.data(),
)
@settings(max_examples=200)
def test_roundtrip_property(cfg, msg, data):
    pe = data.draw(st.integers(0, (1 << cfg.pe_bits) - 1))
    count = data.draw(st.integers(0, (1 << cfg.cnt_bits) - 1))
    tag = make_tag(msg, pe, count, cfg)
    assert 0 <= tag < (1 << 64)
    assert decode_tag(tag, cfg) == (msg, pe, count)


@given(
    pes=st.lists(st.integers(0, 1000), min_size=2, max_size=5, unique=True),
    n=st.integers(1, 50),
)
@settings(max_examples=50)
def test_uniqueness_property(pes, n):
    """Tags from distinct PEs (or distinct counters) never collide until the
    counter wraps."""
    seen = set()
    for pe in pes:
        gen = TagGenerator(pe)
        for _ in range(n):
            tag = gen.next_device_tag()
            assert tag not in seen
            seen.add(tag)
