"""Tests for tree reductions over chare collections."""

import numpy as np
import pytest

from repro.charm import Charm, Chare, CkCallback
from repro.config import MachineConfig


class Worker(Chare):
    def __init__(self, results):
        self.results = results

    def go(self, value, op, cb):
        self.charm.reductions.contribute(self, value, op, cb)

    def take_result(self, value):
        self.results.append(value)


@pytest.fixture
def charm():
    return Charm(MachineConfig.summit(nodes=2))


def run_reduction(charm, values, op):
    results = []
    g = charm.create_group(Worker, results)
    cb = CkCallback(fn=results.append)
    for pe, v in enumerate(values):
        g[pe].go(v, op, cb)
    charm.run()
    assert len(results) == 1
    return results[0]


class TestScalarReductions:
    def test_sum(self, charm):
        vals = list(range(charm.n_pes))
        assert run_reduction(charm, vals, "sum") == sum(vals)

    def test_max(self, charm):
        vals = [3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8]
        assert run_reduction(charm, vals, "max") == 9

    def test_min(self, charm):
        vals = [v + 2 for v in range(charm.n_pes)]
        assert run_reduction(charm, vals, "min") == 2

    def test_prod(self, charm):
        vals = [1] * (charm.n_pes - 1) + [7]
        assert run_reduction(charm, vals, "prod") == 7

    def test_unknown_op_rejected(self, charm):
        g = charm.create_group(Worker, [])
        obj = charm.chares[g[0].chare_id]
        with pytest.raises(ValueError):
            charm.reductions.contribute(obj, 1, "xor", CkCallback(fn=print))


class TestArrayReductions:
    def test_elementwise_sum(self, charm):
        vals = [np.full(4, float(i)) for i in range(charm.n_pes)]
        out = run_reduction(charm, vals, "sum")
        assert (out == sum(range(charm.n_pes))).all()

    def test_elementwise_max(self, charm):
        vals = [np.array([i, -i, 0.5]) for i in range(charm.n_pes)]
        out = run_reduction(charm, vals, "max")
        assert out.tolist() == [charm.n_pes - 1, 0, 0.5]


class TestReductionSemantics:
    def test_multiple_elements_per_pe(self, charm):
        results = []
        arr = charm.create_array(Worker, 2 * charm.n_pes, results)
        cb = CkCallback(fn=results.append)
        for i in range(2 * charm.n_pes):
            arr[i].go(1, "sum", cb)
        charm.run()
        assert results == [2 * charm.n_pes]

    def test_back_to_back_rounds_pipeline(self, charm):
        results = []
        g = charm.create_group(Worker, results)
        cb = CkCallback(fn=results.append)
        for _round in range(3):
            for pe in range(charm.n_pes):
                g[pe].go(1, "sum", cb)
        charm.run()
        assert results == [charm.n_pes] * 3

    def test_non_collection_chare_rejected(self, charm):
        p = charm.create_chare(Worker, 0, [])
        obj = charm.chares[p.chare_id]
        with pytest.raises(RuntimeError, match="group/array"):
            charm.reductions.contribute(obj, 1, "sum", CkCallback(fn=print))

    def test_callback_to_entry_method(self, charm):
        results = []
        g = charm.create_group(Worker, results)
        cb = CkCallback(proxy=g[0], method="take_result")
        for pe in range(charm.n_pes):
            g[pe].go(pe, "sum", cb)
        charm.run()
        assert results == [sum(range(charm.n_pes))]

    def test_single_pe_collection(self):
        charm = Charm(MachineConfig.summit(nodes=1), n_pes=1)
        results = []
        g = charm.create_group(Worker, results)
        g[0].go(42, "sum", CkCallback(fn=results.append))
        charm.run()
        assert results == [42]
