"""Tests for Converse (PEs, handlers, debt) and the UCX machine layer."""

import pytest

from repro.config import MachineConfig
from repro.converse.cmi import Converse
from repro.converse.message import CmiMessage
from repro.core.device_buffer import (
    CmiDeviceBuffer,
    DeviceRdmaOp,
    DeviceRecvType,
)
from repro.core.device_tags import MsgType, decode_tag
from repro.core.machine_ucx import UcxMachineLayer
from repro.hardware.topology import Machine
from repro.sim.primitives import Timeout


def make_stack(nodes=1, n_pes=None):
    m = Machine(MachineConfig.summit(nodes=nodes))
    n = n_pes if n_pes is not None else m.cfg.topology.total_gpus
    pe_node = [m.node_of_gpu(g) for g in range(n)]
    pe_gpu = list(range(n))
    layer = UcxMachineLayer(m, n, pe_node)
    conv = Converse(m, layer, pe_node, pe_gpu)
    return m, layer, conv


class TestConverse:
    def test_handler_registry(self):
        m, layer, conv = make_stack()
        seen = []
        conv.register_handler("t", lambda pe, msg: seen.append(msg.payload))
        msg = CmiMessage("t", payload="hello", host_bytes=0, src_pe=0, dst_pe=1)
        conv.cmi_send(0, msg)
        m.sim.run()
        assert seen == ["hello"]

    def test_duplicate_handler_rejected(self):
        _, _, conv = make_stack()
        conv.register_handler("x", lambda pe, msg: None)
        with pytest.raises(ValueError):
            conv.register_handler("x", lambda pe, msg: None)

    def test_unknown_handler_raises(self):
        m, layer, conv = make_stack()
        conv.cmi_send(0, CmiMessage("nope", None, 0, 0, 1))
        with pytest.raises(RuntimeError, match="nope"):
            m.sim.run()

    def test_message_to_self_delivered(self):
        m, layer, conv = make_stack()
        seen = []
        conv.register_handler("self", lambda pe, msg: seen.append(pe.index))
        conv.cmi_send(2, CmiMessage("self", None, 0, 2, 2))
        m.sim.run()
        assert seen == [2]

    def test_debt_delays_next_message(self):
        m, layer, conv = make_stack()
        times = []

        def slow(pe, msg):
            pe.charge(5e-6)
            times.append(m.sim.now)

        conv.register_handler("slow", slow)
        conv.cmi_send(0, CmiMessage("slow", None, 0, 0, 1))
        conv.cmi_send(0, CmiMessage("slow", None, 0, 0, 1))
        m.sim.run()
        # second handler starts only after the first's debt elapses
        assert times[1] - times[0] >= 5e-6

    def test_threaded_handler_runs_as_process(self):
        m, layer, conv = make_stack()
        log = []

        def threaded(pe, msg):
            def gen():
                log.append("start")
                yield Timeout(m.sim, 1e-6)
                log.append("end")

            return gen()

        conv.register_handler("th", threaded)
        conv.cmi_send(0, CmiMessage("th", None, 0, 0, 1))
        m.sim.run()
        assert log == ["start", "end"]

    def test_wire_size_includes_headers_and_metadata(self):
        rt = MachineConfig.summit().runtime
        msg = CmiMessage("h", None, host_bytes=100, src_pe=0, dst_pe=1)
        base = msg.wire_size(rt.converse_header_bytes, rt.device_metadata_bytes)
        assert base == 100 + rt.converse_header_bytes
        m = Machine(MachineConfig.summit(nodes=1))
        buf = m.alloc_device(0, 64)
        msg.device_bufs.append(CmiDeviceBuffer(ptr=buf, size=64))
        assert msg.wire_size(rt.converse_header_bytes, rt.device_metadata_bytes) == (
            100 + rt.converse_header_bytes + rt.device_metadata_bytes
        )

    def test_messages_between_pes_ordered(self):
        m, layer, conv = make_stack()
        seen = []
        conv.register_handler("ord", lambda pe, msg: seen.append(msg.payload))
        for i in range(10):
            conv.cmi_send(0, CmiMessage("ord", i, 0, 0, 3))
        m.sim.run()
        assert seen == list(range(10))


class TestMachineLayer:
    def test_lrts_send_device_assigns_tag(self):
        m, layer, conv = make_stack()
        buf = m.alloc_device(0, 256)
        dev = CmiDeviceBuffer(ptr=buf, size=256)
        tag = layer.lrts_send_device(0, 1, dev)
        assert dev.tag == tag and dev.src_pe == 0
        msg_type, pe, _count = decode_tag(tag, m.cfg.tags)
        assert msg_type is MsgType.DEVICE and pe == 0

    def test_device_roundtrip_via_machine_layer(self):
        m, layer, conv = make_stack()
        src = m.alloc_device(0, 256)
        dst = m.alloc_device(1, 256)
        src.data[:] = 77
        done = []
        layer.register_device_recv_handler(
            DeviceRecvType.CHARM, lambda op: done.append(op)
        )
        dev = CmiDeviceBuffer(ptr=src, size=256)
        tag = layer.lrts_send_device(0, 1, dev)
        op = DeviceRdmaOp(dest=dst, size=256, tag=tag, recv_type=DeviceRecvType.CHARM)
        layer.lrts_recv_device(1, op)
        m.sim.run()
        assert done == [op] and (dst.data == 77).all()
        assert layer.device_sends == 1 and layer.device_recvs == 1

    def test_unregistered_recv_type_raises(self):
        m, layer, conv = make_stack()
        dst = m.alloc_device(1, 64)
        op = DeviceRdmaOp(dest=dst, size=64, tag=1, recv_type=DeviceRecvType.AMPI)
        with pytest.raises(RuntimeError, match="handler"):
            layer.lrts_recv_device(1, op)

    def test_tags_unique_across_pes_and_sends(self):
        m, layer, conv = make_stack()
        tags = set()
        for pe in range(4):
            buf = m.alloc_device(pe, 64)
            for _ in range(10):
                tags.add(layer.lrts_send_device(pe, (pe + 1) % 4, CmiDeviceBuffer(buf, 64)))
        assert len(tags) == 40
        m.sim.run(max_events=100000)  # drain (no receivers posted is fine)

    def test_on_complete_callback_fires(self):
        m, layer, conv = make_stack()
        src = m.alloc_device(0, 64)
        dst = m.alloc_device(1, 64)
        fired = []
        layer.register_device_recv_handler(DeviceRecvType.AMPI, lambda op: None)
        dev = CmiDeviceBuffer(ptr=src, size=64)
        tag = layer.lrts_send_device(0, 1, dev, on_complete=lambda: fired.append("send"))
        op = DeviceRdmaOp(
            dest=dst, size=64, tag=tag, recv_type=DeviceRecvType.AMPI,
            on_complete=lambda _op: fired.append("recv"),
        )
        layer.lrts_recv_device(1, op)
        m.sim.run()
        assert sorted(fired) == ["recv", "send"]


class TestDeviceBufferValidation:
    def test_cmi_device_buffer_host_rejected(self):
        m = Machine(MachineConfig.summit(nodes=1))
        with pytest.raises(ValueError):
            CmiDeviceBuffer(ptr=m.alloc_host(0, 64), size=64)

    def test_size_exceeding_buffer_rejected(self):
        m = Machine(MachineConfig.summit(nodes=1))
        with pytest.raises(ValueError):
            CmiDeviceBuffer(ptr=m.alloc_device(0, 64), size=128)

    def test_rdma_op_dest_must_be_device(self):
        m = Machine(MachineConfig.summit(nodes=1))
        with pytest.raises(ValueError):
            DeviceRdmaOp(dest=m.alloc_host(0, 64), size=64, tag=1,
                         recv_type=DeviceRecvType.CHARM)

    def test_rdma_op_size_bounds(self):
        m = Machine(MachineConfig.summit(nodes=1))
        with pytest.raises(ValueError):
            DeviceRdmaOp(dest=m.alloc_device(0, 64), size=128, tag=1,
                         recv_type=DeviceRecvType.CHARM)
