"""Tests for the analysis toolkit and calibration self-check."""

import pytest

from repro.bench.analysis import (
    crossover,
    fit_alpha_beta,
    half_peak_size,
    speedup_series,
    summarize_latency,
)
from repro.bench.reporting import Series
from repro.config import KB, MB


class TestAlphaBetaFit:
    def test_recovers_exact_model(self):
        alpha, beta = 2e-6, 10e9
        s = Series("t", [(x, alpha + x / beta) for x in (64, 1024, 65536, 1 << 20)])
        a, b = fit_alpha_beta(s)
        assert a == pytest.approx(alpha, rel=1e-6)
        assert b == pytest.approx(beta, rel=1e-6)

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            fit_alpha_beta(Series("t", [(1, 1.0)]))

    def test_decreasing_series_rejected(self):
        with pytest.raises(ValueError):
            fit_alpha_beta(Series("t", [(1, 2.0), (1000, 1.0)]))

    def test_fits_measured_charm_curve(self):
        """The fitted beta of the Charm++ GPU-aware intra-node latency curve
        should recover roughly the NVLink rate; alpha its small-message
        latency."""
        from repro.apps.osu import run_latency

        sizes = [8, 64 * KB, 1 * MB, 4 * MB]
        s = Series("charm-D", [
            (x, run_latency("charm", x, "intra", True, iters=5, skip=1))
            for x in sizes
        ])
        summary = summarize_latency(s)
        assert 2.0 < summary["alpha_us"] < 8.0
        assert 30.0 < summary["beta_gbs"] < 55.0


class TestCrossover:
    def test_basic_crossover_found(self):
        a = Series("a", [(1, 10.0), (100, 10.0), (10000, 10.0)])
        b = Series("b", [(1, 1.0), (100, 5.0), (10000, 50.0)])
        x = crossover(a, b)  # where a stops exceeding b
        assert 100 < x < 10000

    def test_no_crossover(self):
        a = Series("a", [(1, 1.0), (100, 1.0)])
        b = Series("b", [(1, 2.0), (100, 3.0)])
        assert crossover(b, a) is None

    def test_immediate(self):
        a = Series("a", [(1, 1.0)])
        b = Series("b", [(1, 2.0)])
        assert crossover(a, b) == 1.0

    def test_disjoint_series_rejected(self):
        with pytest.raises(ValueError):
            crossover(Series("a", [(1, 1.0)]), Series("b", [(2, 1.0)]))


class TestHalfPeakAndSpeedup:
    def test_half_peak(self):
        s = Series("bw", [(1, 1.0), (10, 4.0), (100, 9.0), (1000, 10.0)])
        assert half_peak_size(s) == 100

    def test_speedup_series(self):
        h = Series("h", [(1, 10.0), (2, 10.0)])
        d = Series("d", [(1, 5.0), (2, 2.0)])
        sp = speedup_series(h, d)
        assert sp.points == [(1, 2.0), (2, 5.0)]

    def test_eager_rndv_crossover_in_measured_data(self):
        """The -H curve's advantage never materialises: D beats H at every
        size, so the crossover of (D - H) never happens — but the *speedup*
        should peak beyond the rendezvous threshold."""
        from repro.apps.osu import run_latency

        sizes = [8, 2 * KB, 64 * KB, 4 * MB]
        h = Series("h", [(x, run_latency("charm", x, "intra", False, iters=5, skip=1))
                         for x in sizes])
        d = Series("d", [(x, run_latency("charm", x, "intra", True, iters=5, skip=1))
                         for x in sizes])
        assert crossover(h, d) is None  # H never drops below D
        sp = speedup_series(h, d)
        assert sp.at(4 * MB) > sp.at(8)


class TestCalibrationAnchors:
    @pytest.mark.slow
    def test_all_anchors_hold(self):
        from repro.bench.calibration import check_anchors

        results = check_anchors(quiet=True)
        drifted = [r.anchor.name for r in results if not r.within_tolerance]
        assert not drifted, f"calibration drifted: {drifted}"
