"""Deeper stream-API and protocol-interaction tests."""

import numpy as np
import pytest

from repro.config import KB, MachineConfig, MB
from repro.hardware.topology import Machine
from repro.ucx.context import UcpContext
from repro.ucx.stream import stream_pair


def make(nodes=2, gpus=(0, 6)):
    m = Machine(MachineConfig.summit(nodes=nodes))
    ctx = UcpContext(m)
    wa = ctx.create_worker(0, m.node_of_gpu(gpus[0]), m.socket_of_gpu(gpus[0]))
    wb = ctx.create_worker(1, m.node_of_gpu(gpus[1]), m.socket_of_gpu(gpus[1]))
    return m, wa, wb


class TestStreamProtocols:
    def test_large_stream_message_uses_rendezvous(self):
        m, wa, wb = make()
        tx, rx = stream_pair(wa, wb)
        size = 1 * MB
        src = m.alloc_host(0, size, materialize=True)
        dst = m.alloc_host(1, size, materialize=True)
        src.data[:] = np.random.default_rng(3).integers(0, 255, size, dtype=np.uint8)
        sreq = tx.send_nb(src, size)
        rreq = rx.recv_nb(dst, size)
        m.sim.run()
        assert sreq.completed and rreq.completed
        assert (dst.data == src.data).all()

    def test_interleaved_sizes_stay_ordered(self):
        m, wa, wb = make(nodes=1, gpus=(0, 1))
        tx, rx = stream_pair(wa, wb)
        sizes = [64, 64 * KB, 128, 32 * KB]
        for i, s in enumerate(sizes):
            buf = m.alloc_host(0, s, materialize=True)
            buf.data[:] = i + 1
            tx.send_nb(buf, s)
        got = []
        for s in sizes:
            d = m.alloc_host(0, s, materialize=True)
            req = rx.recv_nb(d, s)
            m.sim.run()
            assert req.completed
            got.append(int(d.data[0]))
        assert got == [1, 2, 3, 4]

    def test_pre_posted_stream_receives(self):
        m, wa, wb = make(nodes=1, gpus=(0, 1))
        tx, rx = stream_pair(wa, wb)
        dsts = [m.alloc_host(0, 16) for _ in range(3)]
        reqs = [rx.recv_nb(d, 16) for d in dsts]
        for i in range(3):
            s = m.alloc_host(0, 16)
            s.data[:] = 10 + i
            tx.send_nb(s, 16)
        m.sim.run()
        assert all(r.completed for r in reqs)
        assert [int(d.data[0]) for d in dsts] == [10, 11, 12]

    def test_two_streams_between_same_workers_independent(self):
        m, wa, wb = make(nodes=1, gpus=(0, 1))
        tx1, rx1 = stream_pair(wa, wb)
        # NOTE: a second stream_pair shares the per-worker tag namespace;
        # streams are per worker pair in this model, matching UCX where a
        # stream is per endpoint.  Verify sequential use works.
        s = m.alloc_host(0, 8)
        s.data[:] = 9
        tx1.send_nb(s, 8)
        d = m.alloc_host(0, 8)
        req = rx1.recv_nb(d, 8)
        m.sim.run()
        assert req.completed and d.data[0] == 9


class TestMixedTagAndStream:
    def test_stream_and_tagged_traffic_do_not_cross_match(self):
        m, wa, wb = make(nodes=1, gpus=(0, 1))
        tx, rx = stream_pair(wa, wb)
        tag_src = m.alloc_host(0, 8)
        tag_src.data[:] = 1
        stream_src = m.alloc_host(0, 8)
        stream_src.data[:] = 2
        wa.tag_send_nb(wa.ep(1), tag_src, 8, tag=123)
        tx.send_nb(stream_src, 8)
        tag_dst = m.alloc_host(0, 8)
        stream_dst = m.alloc_host(0, 8)
        t_req = wb.tag_recv_nb(tag_dst, 8, tag=123)
        s_req = rx.recv_nb(stream_dst, 8)
        m.sim.run()
        assert t_req.completed and s_req.completed
        assert tag_dst.data[0] == 1 and stream_dst.data[0] == 2
