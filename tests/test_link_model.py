"""Tests for link-model refinements: control bypass, rails, pipelined
rendezvous occupancy."""

import pytest

from repro.config import MachineConfig, MB
from repro.hardware.links import CTRL_BYPASS_BYTES, path_transfer, path_transfer_time
from repro.hardware.topology import Machine
from repro.ucx.context import UcpContext


@pytest.fixture
def machine():
    return Machine(MachineConfig.summit(nodes=2))


class TestControlBypass:
    def test_small_messages_skip_occupancy(self, machine):
        """A control message is not delayed by a bulk transfer holding the
        same links (inline sends on InfiniBand)."""
        sim = machine.sim
        route = machine.route(machine.host_location(0), machine.host_location(1))
        bulk_done = path_transfer(sim, route, 4 * MB)
        ctrl_done = path_transfer(sim, route, 64)
        times = {}
        bulk_done.add_callback(lambda _e: times.setdefault("bulk", sim.now))
        ctrl_done.add_callback(lambda _e: times.setdefault("ctrl", sim.now))
        sim.run()
        assert times["ctrl"] == pytest.approx(path_transfer_time(route, 64))
        assert times["ctrl"] < times["bulk"]

    def test_bypass_threshold(self, machine):
        sim = machine.sim
        route = machine.route(machine.host_location(0), machine.host_location(1))
        path_transfer(sim, route, 4 * MB)  # occupies the rail
        big_ctrl = path_transfer(sim, route, CTRL_BYPASS_BYTES + 1)
        t = {}
        big_ctrl.add_callback(lambda _e: t.setdefault("done", sim.now))
        sim.run()
        # above the threshold: queues behind the bulk transfer
        assert t["done"] > path_transfer_time(route, 4 * MB)

    def test_bypass_still_counts_bytes(self, machine):
        route = machine.route(machine.host_location(0), machine.host_location(1))
        path_transfer(machine.sim, route, 64)
        machine.sim.run()
        assert all(l.bytes_carried == 64 for l in route)


class TestPipelinedOccupancy:
    def test_staged_rndv_leaves_nvlinks_free(self, machine):
        """Inter-node device rendezvous stages through host memory: the bulk
        occupies the NIC rails, not the GPUs' NVLinks, so an intra-node
        transfer on the same GPU proceeds concurrently."""
        ctx = UcpContext(machine)
        wa = ctx.create_worker(0, 0, 0)
        wb = ctx.create_worker(1, 1, 0)
        wc = ctx.create_worker(2, 0, 0)
        size = 4 * MB
        inter_src = machine.alloc_device(0, size, materialize=False)
        inter_dst = machine.alloc_device(6, size, materialize=False)
        wb.tag_recv_nb(inter_dst, size, tag=1)
        wa.tag_send_nb(wa.ep(1), inter_src, size, tag=1)
        # concurrently, gpu0 -> gpu1 intra-node IPC over the same nvlink0.tx
        intra_src = machine.alloc_device(0, size, materialize=False)
        intra_dst = machine.alloc_device(1, size, materialize=False)
        req = wc.tag_recv_nb(intra_dst, size, tag=2)
        wa.tag_send_nb(wa.ep(2), intra_src, size, tag=2)
        machine.sim.run()
        assert req.completed
        # intra transfer finished well before the inter one would have, had
        # the pipeline held nvlink0.tx for its full wire time
        nvlink_time = size / machine.cfg.topology.nvlink.bandwidth
        assert req.completed_at < 3 * nvlink_time + machine.cfg.cuda.ipc_handle_open_cost

    def test_gpudirect_route_does_hold_nvlinks(self):
        from dataclasses import replace

        cfg = MachineConfig.summit(nodes=2)
        cfg = replace(cfg, ucx=replace(cfg.ucx, gpudirect_rdma=True))
        machine = Machine(cfg)
        ctx = UcpContext(machine)
        wa = ctx.create_worker(0, 0, 0)
        wb = ctx.create_worker(1, 1, 0)
        size = 4 * MB
        src = machine.alloc_device(0, size, materialize=False)
        dst = machine.alloc_device(6, size, materialize=False)
        wb.tag_recv_nb(dst, size, tag=1)
        wa.tag_send_nb(wa.ep(1), src, size, tag=1)
        machine.sim.run()
        assert machine.nodes[0].nvlink_tx[0].bytes_carried >= size


class TestRailAffinity:
    def test_sockets_use_distinct_rails(self, machine):
        ctx = UcpContext(machine)
        # gpu 0 (socket 0) and gpu 3 (socket 1) each stream to node 1
        w0 = ctx.create_worker(0, 0, machine.socket_of_gpu(0))
        w3 = ctx.create_worker(3, 0, machine.socket_of_gpu(3))
        w6 = ctx.create_worker(6, 1, 0)
        w9 = ctx.create_worker(9, 1, 1)
        size = 2 * MB
        bufs = {g: machine.alloc_device(g, size, materialize=False) for g in (0, 3, 6, 9)}
        w6.tag_recv_nb(bufs[6], size, tag=1)
        w9.tag_recv_nb(bufs[9], size, tag=2)
        w0.tag_send_nb(w0.ep(6), bufs[0], size, tag=1)
        w3.tag_send_nb(w3.ep(9), bufs[3], size, tag=2)
        machine.sim.run()
        node0 = machine.nodes[0]
        assert node0.nic_tx[0].bytes_carried >= size
        assert node0.nic_tx[1].bytes_carried >= size
