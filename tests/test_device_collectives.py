"""Functional correctness of the device collectives.

Every registered algorithm is exercised with materialized payloads across
rank counts including non-powers-of-two (the recursive-doubling fold, ring
block splits and tree allgather ranges all have remainder paths), on
single- and multi-node topologies, through the AMPI world communicator,
sub-communicators, and the forced-algorithm / config-knob selection paths.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ampi.mpi import Ampi
from repro.charm.charm import Charm
from repro.collectives import ReduceOp, available_algorithms
from repro.config import MachineConfig

MAX_EVENTS = 50_000_000
NBYTES = 256  # 32 float64 elements
COUNTS = [2, 3, 5, 7, 12]  # 7 and 12 span two summit nodes


def _build(n_ranks, coll=None):
    nodes = -(-n_ranks // 6)
    cfg = MachineConfig.summit(nodes=nodes)
    if coll:
        cfg = cfg.with_collectives(**coll)
    charm = Charm(cfg)
    return charm, Ampi(charm, n_ranks=n_ranks)


def _run(charm, ampi, program):
    done = ampi.launch(program)
    charm.sim.run_until_complete(done, max_events=MAX_EVENTS)


def _dev(rank, nbytes=NBYTES, fill=None):
    buf = rank.charm.cuda.malloc(rank.gpu, nbytes, materialize=True)
    if fill is not None:
        buf.data.reshape(-1).view(np.float64)[:] = fill
    return buf


def _f64(buf):
    return buf.data.reshape(-1).view(np.float64)


class TestFlatAlgorithms:
    @pytest.mark.parametrize("p", COUNTS)
    @pytest.mark.parametrize("algo", ["binomial", "ring"])
    def test_bcast(self, algo, p):
        charm, ampi = _build(p)
        root, out = 1, {}

        def program(rank):
            buf = _dev(rank, fill=100.0 + rank.rank)
            yield from rank.bcast_device(buf, NBYTES, root, algorithm=algo)
            out[rank.rank] = _f64(buf).copy()

        _run(charm, ampi, program)
        for r in range(p):
            assert np.all(out[r] == 100.0 + root), (algo, p, r)

    @pytest.mark.parametrize("p", COUNTS)
    @pytest.mark.parametrize("algo", ["binomial", "ring"])
    def test_reduce(self, algo, p):
        charm, ampi = _build(p)
        root, out = p - 1, {}

        def program(rank):
            buf = _dev(rank, fill=float(rank.rank))
            yield from rank.reduce_device(
                buf, NBYTES, op="max", root=root, algorithm=algo
            )
            out[rank.rank] = _f64(buf).copy()

        _run(charm, ampi, program)
        assert np.all(out[root] == p - 1), (algo, p)

    @pytest.mark.parametrize("p", COUNTS)
    @pytest.mark.parametrize("algo", ["binomial", "recdbl", "ring"])
    def test_allreduce(self, algo, p):
        charm, ampi = _build(p)
        out = {}

        def program(rank):
            buf = _dev(rank, fill=float(rank.rank + 1))
            yield from rank.allreduce_device(
                buf, NBYTES, op=ReduceOp.SUM, algorithm=algo
            )
            out[rank.rank] = _f64(buf).copy()

        _run(charm, ampi, program)
        expect = p * (p + 1) / 2
        for r in range(p):
            assert np.all(out[r] == expect), (algo, p, r)

    @pytest.mark.parametrize("p", COUNTS)
    @pytest.mark.parametrize("algo", ["ring", "tree"])
    def test_allgather(self, algo, p):
        charm, ampi = _build(p)
        out = {}

        def program(rank):
            buf = _dev(rank, fill=float(rank.rank))
            full = yield from rank.allgather_device(buf, NBYTES, algorithm=algo)
            out[rank.rank] = _f64(full).copy()

        _run(charm, ampi, program)
        expect = np.repeat(np.arange(p, dtype=np.float64), NBYTES // 8)
        for r in range(p):
            assert np.array_equal(out[r], expect), (algo, p, r)


class TestHierarchical:
    @pytest.mark.parametrize("p", [7, 12])
    def test_allreduce(self, p):
        charm, ampi = _build(p)
        out = {}

        def program(rank):
            buf = _dev(rank, fill=float(rank.rank + 1))
            yield from rank.allreduce_device(
                buf, NBYTES, op="sum", algorithm="hierarchical"
            )
            out[rank.rank] = _f64(buf).copy()

        _run(charm, ampi, program)
        expect = p * (p + 1) / 2
        for r in range(p):
            assert np.all(out[r] == expect), (p, r)

    @pytest.mark.parametrize("p", [7, 12])
    def test_bcast_nonzero_root(self, p):
        charm, ampi = _build(p)
        root, out = p - 1, {}

        def program(rank):
            buf = _dev(rank, fill=float(rank.rank))
            yield from rank.bcast_device(
                buf, NBYTES, root, algorithm="hierarchical"
            )
            out[rank.rank] = _f64(buf).copy()

        _run(charm, ampi, program)
        for r in range(p):
            assert np.all(out[r] == root), (p, r)

    @pytest.mark.parametrize("p", [7, 12])
    def test_reduce_nonzero_root(self, p):
        charm, ampi = _build(p)
        root, out = 2, {}

        def program(rank):
            buf = _dev(rank, fill=float(rank.rank))
            yield from rank.reduce_device(
                buf, NBYTES, op="min", root=root, algorithm="hierarchical"
            )
            out[rank.rank] = _f64(buf).copy()

        _run(charm, ampi, program)
        assert np.all(out[root] == 0.0), p

    def test_single_node_group_rejected(self):
        charm, ampi = _build(4)
        buf = _dev(ampi.ranks[0])
        with pytest.raises(ValueError, match="does not support"):
            next(ampi.ranks[0].allreduce_device(
                buf, NBYTES, algorithm="hierarchical"
            ))


class TestSelectionSurface:
    def test_registry_contents(self):
        assert available_algorithms("bcast") == ["binomial", "hierarchical", "ring"]
        assert available_algorithms("reduce") == ["binomial", "hierarchical", "ring"]
        assert available_algorithms("allreduce") == [
            "binomial", "hierarchical", "recdbl", "ring",
        ]
        assert available_algorithms("allgather") == ["ring", "tree"]

    def test_unknown_algorithm_lists_available(self):
        charm, ampi = _build(2)
        buf = _dev(ampi.ranks[0])
        with pytest.raises(ValueError, match="available.*binomial"):
            next(ampi.ranks[0].bcast_device(buf, NBYTES, algorithm="quantum"))

    def test_forced_unsupported_rejected(self):
        # ring allreduce needs a non-empty 8B block per rank
        charm, ampi = _build(5)
        buf = _dev(ampi.ranks[0], 16)
        with pytest.raises(ValueError, match="does not support"):
            next(ampi.ranks[0].allreduce_device(buf, 16, algorithm="ring"))

    def test_host_buffer_rejected(self):
        charm, ampi = _build(2)
        host = charm.machine.alloc_host(0, NBYTES)
        with pytest.raises(ValueError, match="device buffer"):
            next(ampi.ranks[0].bcast_device(host, NBYTES))

    def test_non_device_op_rejected(self):
        charm, ampi = _build(2)
        buf = _dev(ampi.ranks[0])
        with pytest.raises(ValueError, match="not 'prod'"):
            next(ampi.ranks[0].reduce_device(buf, NBYTES, op="prod"))
        with pytest.raises(ValueError, match="unknown reduction op"):
            next(ampi.ranks[0].allreduce_device(buf, NBYTES, op="xor"))

    def test_config_knob_forces_algorithm(self):
        charm, ampi = _build(4, coll={"allreduce_algorithm": "binomial"})

        def program(rank):
            buf = _dev(rank, fill=1.0)
            yield from rank.allreduce_device(buf, NBYTES)

        _run(charm, ampi, program)
        counters = charm.machine.tracer.counters
        assert counters["coll.allreduce.binomial"] == 4
        assert counters["coll.allreduce"] == 4

    def test_per_call_override_beats_config(self):
        charm, ampi = _build(4, coll={"allreduce_algorithm": "binomial"})

        def program(rank):
            buf = _dev(rank, fill=1.0)
            yield from rank.allreduce_device(buf, NBYTES, algorithm="recdbl")

        _run(charm, ampi, program)
        assert charm.machine.tracer.counters["coll.allreduce.recdbl"] == 4

    def test_hierarchical_disabled_falls_back_flat(self):
        charm, ampi = _build(12, coll={"hierarchical_enabled": False})

        def program(rank):
            buf = _dev(rank, fill=1.0)
            yield from rank.allreduce_device(buf, NBYTES)

        _run(charm, ampi, program)
        counters = charm.machine.tracer.counters
        assert counters.get("coll.allreduce.hierarchical", 0) == 0
        assert counters["coll.allreduce"] == 12


class TestCommView:
    def test_subcommunicator_device_allreduce(self):
        charm, ampi = _build(12)
        out = {}

        def program(rank):
            sub = yield from rank.comm_split(rank.rank % 3)
            buf = _dev(rank, fill=float(rank.rank))
            yield from sub.allreduce_device(buf, NBYTES, op="sum")
            out[rank.rank] = _f64(buf).copy()

        _run(charm, ampi, program)
        for r in range(12):
            expect = sum(x for x in range(12) if x % 3 == r % 3)
            assert np.all(out[r] == expect), r

    def test_subcommunicator_allgather_device(self):
        charm, ampi = _build(6)
        out = {}

        def program(rank):
            sub = yield from rank.comm_split(rank.rank % 2)
            buf = _dev(rank, fill=float(rank.rank))
            full = yield from sub.allgather_device(buf, NBYTES)
            out[rank.rank] = _f64(full).copy()

        _run(charm, ampi, program)
        for r in range(6):
            members = [x for x in range(6) if x % 2 == r % 2]
            expect = np.repeat(np.asarray(members, dtype=np.float64), NBYTES // 8)
            assert np.array_equal(out[r], expect), r
