"""Hand-computed scenarios for the flight recorder and critical path.

The flight recorder's headline number — the delayed-posting cost — and
the critical-path layer blame are both exercised here against scenarios
small enough to compute by hand: a send whose receive is posted a known
50 us late, a pair of receives posted against send order, and a
synthetic span tree whose deepest-active chain is worked out on paper.
"""

import pytest

import repro.api as api
from repro.apps.osu.runner import run_latency
from repro.config import KB, MachineConfig
from repro.core.device_buffer import (
    CmiDeviceBuffer,
    DeviceRdmaOp,
    DeviceRecvType,
)
from repro.core.machine_ucx import UcxMachineLayer
from repro.hardware.topology import Machine
from repro.obs.critical_path import critical_path, layer_of
from repro.obs.flight import FlightRecorder
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer

RNDV_SIZE = 64 * KB  # >= device_eager_threshold (4 KB): rendezvous
EAGER_SIZE = 256


def make_layer(nodes=1):
    m = Machine(MachineConfig.summit(nodes=nodes).with_flight(True))
    n = m.cfg.topology.total_gpus
    pe_node = [m.node_of_gpu(g) for g in range(n)]
    layer = UcxMachineLayer(m, n, pe_node)
    layer.register_device_recv_handler(DeviceRecvType.CHARM, lambda op: None)
    return m, layer


def _send_recv(m, layer, size, post_at):
    """One PE0 -> PE1 device transfer; receive posted at ``post_at``."""
    src = m.alloc_device(0, size)
    dst = m.alloc_device(1, size)
    dev = CmiDeviceBuffer(ptr=src, size=size)
    tag = layer.lrts_send_device(0, 1, dev)  # at sim.now: data-ready instant
    op = DeviceRdmaOp(dest=dst, size=size, tag=tag, recv_type=DeviceRecvType.CHARM)
    m.sim.schedule(post_at - m.sim.now, layer.lrts_recv_device, 1, op)
    return tag


# ---------------------------------------------------------------------------
# delayed-posting cost, hand-computed
# ---------------------------------------------------------------------------

class TestDelayedPosting:
    def test_rndv_cost_equals_posting_gap(self):
        # send enqueued at t=0, receive posted at t=50us: for rendezvous
        # the whole gap is exposed latency
        m, layer = make_layer()
        _send_recv(m, layer, RNDV_SIZE, post_at=50e-6)
        m.sim.run()
        (rec,) = m.tracer.flight.records()
        assert rec.complete
        assert rec.protocol == "rndv"
        assert rec.enqueued_at == 0.0
        assert rec.recv_posted_at == pytest.approx(50e-6)
        assert rec.posting_delay == pytest.approx(50e-6)
        assert rec.delayed_posting_cost == pytest.approx(50e-6)
        agg = m.tracer.flight.aggregate()
        assert agg["delayed_posting_seconds"] == pytest.approx(50e-6)
        assert agg["by_protocol"]["rndv"]["delayed_posting_seconds"] == \
            pytest.approx(50e-6)
        assert agg["by_protocol"]["rndv"]["max_delayed_posting_seconds"] == \
            pytest.approx(50e-6)

    def test_eager_cost_is_zero_despite_late_post(self):
        # same 50us gap, but the eager payload travels without the post:
        # the posting delay is visible, the *cost* is zero by definition
        m, layer = make_layer()
        _send_recv(m, layer, EAGER_SIZE, post_at=50e-6)
        m.sim.run()
        (rec,) = m.tracer.flight.records()
        assert rec.complete
        assert rec.protocol == "eager"
        assert rec.posting_delay == pytest.approx(50e-6)
        assert rec.delayed_posting_cost == 0.0
        agg = m.tracer.flight.aggregate()
        assert agg["delayed_posting_seconds"] == 0.0
        assert agg["by_protocol"]["eager"]["n"] == 1

    def test_two_messages_aggregate(self):
        # two rndv sends enqueued at 0, posts at 10us and 30us: total 40us
        m, layer = make_layer()
        _send_recv(m, layer, RNDV_SIZE, post_at=10e-6)
        _send_recv(m, layer, RNDV_SIZE, post_at=30e-6)
        m.sim.run()
        agg = m.tracer.flight.aggregate()
        assert agg["n_records"] == 2 and agg["n_complete"] == 2
        assert agg["delayed_posting_seconds"] == pytest.approx(40e-6)
        assert agg["by_protocol"]["rndv"]["max_delayed_posting_seconds"] == \
            pytest.approx(30e-6)
        assert agg["posting_inversions"] == 0

    def test_posting_inversion_detected(self):
        # message A enqueued before B, but B's receive posted first:
        # exactly one inversion in the (0, 1) group
        m, layer = make_layer()
        _send_recv(m, layer, EAGER_SIZE, post_at=20e-6)  # A: enq 0
        m.sim.schedule(
            1e-6, lambda: _send_recv(m, layer, EAGER_SIZE, post_at=10e-6)
        )  # B: enq 1us, posted 10us < A's 20us
        m.sim.run()
        recs = m.tracer.flight.records()
        assert [r.enqueued_at for r in recs] == pytest.approx([0.0, 1e-6])
        assert m.tracer.flight.aggregate()["posting_inversions"] == 1


class TestRecorderFifoPerTag:
    def test_same_tag_updates_go_to_oldest_open_record(self):
        # direct-UCX models (OpenMPI) reuse one application tag across
        # in-flight sends; stage updates must land FIFO
        sim = Simulator()
        fr = FlightRecorder(sim, enabled=True)
        fr.begin(7, src_pe=0, dst_pe=1, size=8)
        fr.begin(7, src_pe=0, dst_pe=1, size=8)
        fr.ucx_send(7, "eager")
        fr.completed(7)
        a, b = fr.records()
        assert a.protocol == "eager" and a.complete
        assert b.protocol is None and not b.complete
        fr.completed(7)
        assert all(r.complete for r in fr.records())

    def test_disabled_recorder_records_nothing(self):
        fr = FlightRecorder(Simulator(), enabled=False)
        fr.begin(1, src_pe=0, dst_pe=1, size=8)
        fr.completed(1)
        assert fr.records() == []
        assert fr.aggregate()["n_records"] == 0


class TestRecorderFaultStages:
    def test_retransmit_counted_on_open_record(self):
        sim = Simulator()
        fr = FlightRecorder(sim, enabled=True)
        fr.begin(3, src_pe=0, dst_pe=1, size=8)
        fr.retransmitted(3)
        fr.retransmitted(3)
        fr.completed(3)
        (rec,) = fr.records()
        assert rec.retransmits == 2 and rec.complete
        doc = rec.to_dict()
        assert doc["retransmits"] == 2
        assert doc["error"] is None and doc["failed_at"] is None

    def test_failed_closes_record_with_error(self):
        sim = Simulator()
        fr = FlightRecorder(sim, enabled=True)
        fr.begin(4, src_pe=0, dst_pe=1, size=8)
        sim.schedule(5e-6, lambda: fr.failed(4, "endpoint_timeout"))
        sim.run()
        (rec,) = fr.records()
        assert rec.error == "endpoint_timeout"
        assert rec.failed_at == pytest.approx(5e-6)
        assert not rec.complete  # failed, not completed
        assert rec.to_dict()["error"] == "endpoint_timeout"
        # the record is closed: later same-tag stages cannot land on it
        fr.completed(4)
        assert rec.completed_at is None

    def test_cancelled_is_failure_with_cancelled_error(self):
        fr = FlightRecorder(Simulator(), enabled=True)
        fr.begin(5, src_pe=0, dst_pe=1, size=8)
        fr.cancelled(5)
        (rec,) = fr.records()
        assert rec.error == "cancelled"

    def test_recv_cancel_clears_posting_stages(self):
        fr = FlightRecorder(Simulator(), enabled=True)
        fr.begin(6, src_pe=0, dst_pe=1, size=8)
        fr.recv_posted(6)
        fr.recv_cancelled(6)
        (rec,) = fr.records()
        assert rec.recv_posted_at is None
        assert rec.recv_cancels == 1
        # a repost then lands normally on the same record
        fr.recv_posted(6)
        fr.completed(6)
        assert rec.recv_posted_at is not None and rec.complete


# ---------------------------------------------------------------------------
# critical path, hand-computed
# ---------------------------------------------------------------------------

class TestLayerMap:
    def test_layer_of(self):
        assert layer_of("link", "wire") == "link"
        assert layer_of("link", "rndv_data") == "link"
        assert layer_of("link", "am_wire") == "host_metadata"
        assert layer_of("link", "am_fetch") == "host_metadata"
        assert layer_of("ucx", "am_send") == "host_metadata"
        assert layer_of("ucx", "tag_send") == "ucx_protocol"
        assert layer_of("ucx.match", "tag_match") == "matching"
        assert layer_of("ucx.rndv", "transfer") == "ucx_protocol"
        assert layer_of("machine", "lrts_send_device") == "machine"
        assert layer_of("converse", "cmi_send") == "host_metadata"
        assert layer_of("fault", "retransmit_wait") == "fault_recovery"
        assert layer_of("fault", "anything") == "fault_recovery"
        for model in ("ampi", "openmpi", "charm", "charm4py", "osu", "jacobi3d"):
            assert layer_of(model, "x") == "model"
        assert layer_of("mystery", "x") == "other"


class TestCriticalPathSynthetic:
    def _tracer(self):
        sim = Simulator()
        return sim, Tracer(sim, enabled=True)

    def test_deepest_span_wins(self):
        # model span 0..10; link child 2..6; ucx span 4..8.  The deepest
        # (latest-started) active span at each instant gives:
        #   [0,2) model, [2,4) link, [4,8) ucx_protocol, [8,10) model
        sim, t = self._tracer()
        a = t.span("ampi", "send")
        holder = {}
        sim.schedule(2.0, lambda: holder.setdefault("b", t.span("link", "wire")))
        sim.schedule(4.0, lambda: holder.setdefault("c", t.span("ucx.rndv", "drive")))
        sim.schedule(6.0, lambda: holder["b"].end())
        sim.schedule(8.0, lambda: holder["c"].end())
        sim.schedule(10.0, a.end)
        sim.run()
        report = critical_path(t)
        assert report.t0 == 0.0 and report.t1 == 10.0
        assert report.blame == {
            "model": pytest.approx(4.0),
            "link": pytest.approx(2.0),
            "ucx_protocol": pytest.approx(4.0),
        }
        assert [(s.start, s.end, s.layer) for s in report.segments] == [
            (0.0, 2.0, "model"),
            (2.0, 4.0, "link"),
            (4.0, 8.0, "ucx_protocol"),
            (8.0, 10.0, "model"),
        ]
        assert sum(report.blame.values()) == pytest.approx(report.total)

    def test_gap_blamed_on_uninstrumented(self):
        sim, t = self._tracer()
        sp1 = t.span("ampi", "a")
        sim.schedule(2.0, sp1.end)
        holder = {}
        sim.schedule(5.0, lambda: holder.setdefault("sp", t.span("link", "wire")))
        sim.schedule(7.0, lambda: holder["sp"].end())
        sim.run()
        report = critical_path(t)
        assert report.blame["uninstrumented"] == pytest.approx(3.0)
        assert report.blame["model"] == pytest.approx(2.0)
        assert report.blame["link"] == pytest.approx(2.0)

    def test_open_span_extends_to_window_end(self):
        sim, t = self._tracer()
        sp1 = t.span("ampi", "a")
        sim.schedule(2.0, sp1.end)
        sim.schedule(3.0, lambda: t.span("ucx", "open"))
        sim.run()
        report = critical_path(t, t1=5.0)
        assert report.blame["ucx_protocol"] == pytest.approx(2.0)
        assert report.blame["uninstrumented"] == pytest.approx(1.0)

    def test_no_spans_raises(self):
        sim = Simulator()
        with pytest.raises(ValueError, match="no spans recorded"):
            critical_path(Tracer(sim, enabled=False))

    def test_format_mentions_every_layer(self):
        sim, t = self._tracer()
        with t.span("ampi", "a"):
            sim.schedule(1.0, lambda: None)
            sim.run()
        text = critical_path(t).format()
        assert "critical path over" in text
        assert "model" in text and "100.0%" in text


# ---------------------------------------------------------------------------
# end-to-end blame on a real workload
# ---------------------------------------------------------------------------

class TestEndToEndBlame:
    def test_ampi_rndv_blame_and_posting(self):
        cfg = MachineConfig.summit(nodes=2).with_trace(True).with_flight(True)
        sess = api.session(cfg).model("ampi").build()
        run_latency("ampi", 64 * KB, "inter", True, session=sess,
                    iters=4, skip=1)
        report = sess.critical_path()
        assert sum(report.blame.values()) == pytest.approx(report.total)
        # bulk-data wire time and UCX protocol work must both show up on
        # the critical path of an inter-node rendezvous ping-pong
        assert report.blame.get("link", 0.0) > 0.0
        assert report.blame.get("ucx_protocol", 0.0) > 0.0
        agg = sess.flight_summary()
        assert agg["by_protocol"]["rndv"]["n"] > 0
        # metadata-gated rendezvous: nonzero aggregate delayed-posting cost
        assert agg["delayed_posting_seconds"] > 0.0
        recs = sess.flight_records()
        assert recs and all(r.complete and r.protocol == "rndv" for r in recs)

    def test_eager_workload_has_zero_posting_cost(self):
        cfg = MachineConfig.summit(nodes=2).with_flight(True)
        sess = api.session(cfg).model("ampi").build()
        run_latency("ampi", 8, "intra", True, session=sess, iters=4, skip=1)
        agg = sess.flight_summary()
        assert agg["by_protocol"]["eager"]["n"] > 0
        assert agg["delayed_posting_seconds"] == 0.0
