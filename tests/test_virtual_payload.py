"""Virtual-payload mode: no data movement, bit-identical timing.

``MachineConfig.virtual_payload`` skips NumPy payload materialisation for
every buffer whose caller did not explicitly ask for real bytes.  Buffer
copies become size-only no-ops, but every modeled delay is computed from
sizes and config alone — so full simulation fingerprints must match the
materialized runs bit for bit.  The paper-scale scaling sweeps rely on
this equivalence to drop the dead-weight memcpys.
"""

import numpy as np
import pytest

import repro.api as api
from repro.apps.jacobi3d.driver import run_jacobi
from repro.apps.osu.runner import run_latency
from repro.config import MachineConfig
from repro.hardware.topology import Machine


def _jacobi_fingerprint(cfg):
    sess = api.session(cfg.with_flight(True)).model("charm").build()
    r = run_jacobi("charm", nodes=cfg.topology.nodes, scaling="weak",
                   iters=2, warmup=1, session=sess)
    fp = sess.baseline_fingerprint()
    fp["iter_time"] = r.iter_time
    fp["comm_time"] = r.comm_time
    return fp


def test_jacobi_fingerprint_identical_under_virtual_payload():
    cfg = MachineConfig.summit(nodes=2)
    materialized = _jacobi_fingerprint(cfg)
    virtual = _jacobi_fingerprint(cfg.with_virtual_payload())
    assert virtual == materialized  # bit-equal, not approx


@pytest.mark.parametrize("model", ["charm", "openmpi"])
@pytest.mark.parametrize("placement,size", [("intra", 8), ("inter", 256 * 1024)])
def test_osu_latency_identical_under_virtual_payload(model, placement, size):
    # small messages materialize by default, so this exercises the case
    # where virtual mode actually changes the allocation decision
    def fingerprint(cfg):
        sess = api.session(cfg.with_flight(True)).model(model).build()
        lat = run_latency(model, size, placement, True, session=sess,
                          iters=6, skip=2)
        fp = sess.baseline_fingerprint()
        fp["latency"] = lat
        return fp

    cfg = MachineConfig.summit(nodes=2)
    assert fingerprint(cfg.with_virtual_payload()) == fingerprint(cfg)


def test_virtual_payload_skips_materialisation():
    m = Machine(MachineConfig.summit(nodes=1).with_virtual_payload())
    assert m.alloc_host(0, 64).data is None
    assert m.alloc_device(0, 64).data is None
    # an explicit request for real bytes still wins (functional tests)
    buf = m.alloc_host(0, 64, materialize=True)
    assert isinstance(buf.data, np.ndarray) and buf.data.nbytes == 64


def test_virtual_payload_defaults_off():
    cfg = MachineConfig.summit(nodes=1)
    assert cfg.virtual_payload is False
    m = Machine(cfg)
    assert m.alloc_host(0, 64).data is not None
