"""Tests for the Charm++ model: chares, entries, zero-copy, callbacks."""

import numpy as np
import pytest

from repro.charm import Charm, Chare, CkCallback, CkDeviceBuffer
from repro.charm.charm import marshal_bytes
from repro.charm.zerocopy import PostError
from repro.config import MachineConfig
from repro.sim.primitives import SimEvent


@pytest.fixture
def charm():
    return Charm(MachineConfig.summit(nodes=2))


class Echo(Chare):
    def __init__(self, log):
        self.log = log

    def hit(self, value):
        self.log.append((self.thisIndex, value, self.charm.time))

    def forward(self, proxy, value):
        proxy.hit(value)


class TestChares:
    def test_create_chare_runs_init_with_injection(self, charm):
        log = []
        proxy = charm.create_chare(Echo, pe=3, log=log)
        obj = charm.chares[proxy.chare_id]
        assert obj.pe == 3 and obj.gpu == 3 and obj.charm is charm
        assert obj.thisProxy == proxy

    def test_non_chare_rejected(self, charm):
        class NotAChare:
            pass

        with pytest.raises(TypeError):
            charm.create_chare(NotAChare, pe=0)

    def test_entry_invocation_delivers(self, charm):
        log = []
        p = charm.create_chare(Echo, 0, log)
        p.hit("x")
        charm.run()
        assert log == [(-1, "x", pytest.approx(log[0][2]))]

    def test_unknown_entry_raises(self, charm):
        p = charm.create_chare(Echo, 0, [])
        p.nonexistent()
        with pytest.raises(RuntimeError, match="entry method"):
            charm.run()

    def test_chare_to_chare_forwarding(self, charm):
        log = []
        a = charm.create_chare(Echo, 0, log)
        b = charm.create_chare(Echo, 6, log)  # other node
        a.forward(b, "relay")
        charm.run()
        assert log[0][1] == "relay"

    def test_messages_between_pair_ordered(self, charm):
        log = []
        p = charm.create_chare(Echo, 1, log)
        src = charm.create_chare(Echo, 0, log)
        for i in range(8):
            p.hit(i)
        charm.run()
        assert [v for _i, v, _t in log] == list(range(8))

    def test_migration_reroutes_messages(self, charm):
        log = []
        p = charm.create_chare(Echo, 0, log)
        obj = charm.chares[p.chare_id]
        obj.migrate(5)
        assert obj.pe == 5 and obj.gpu == 5
        p.hit("after-move")
        charm.run()
        assert log and charm.chare_pe[p.chare_id] == 5

    def test_migration_out_of_range(self, charm):
        p = charm.create_chare(Echo, 0, [])
        with pytest.raises(ValueError):
            charm.chares[p.chare_id].migrate(999)


class TestGroupsArrays:
    def test_group_one_element_per_pe(self, charm):
        log = []
        g = charm.create_group(Echo, log)
        assert len(g) == charm.n_pes
        for pe in range(charm.n_pes):
            assert charm.chares[g[pe].chare_id].pe == pe

    def test_array_round_robin_default(self, charm):
        log = []
        a = charm.create_array(Echo, 24, log)
        for i in range(24):
            assert charm.chares[a[i].chare_id].pe == i % charm.n_pes

    def test_array_custom_mapping(self, charm):
        a = charm.create_array(Echo, 4, [], mapping=lambda i: 2 * i)
        assert [charm.chares[a[i].chare_id].pe for i in range(4)] == [0, 2, 4, 6]

    def test_broadcast_reaches_all(self, charm):
        log = []
        g = charm.create_group(Echo, log)
        g.hit("bcast")
        charm.run()
        assert sorted(i for i, _v, _t in log) == list(range(charm.n_pes))


class TestMarshalling:
    def test_scalars_are_small(self):
        assert marshal_bytes((1, 2.5, "x")) == 24

    def test_numpy_counts_nbytes(self):
        assert marshal_bytes((np.zeros(10, dtype=np.float64),)) == 80

    def test_device_buffer_args_excluded(self, charm):
        buf = charm.cuda.malloc(0, 128)
        assert marshal_bytes((CkDeviceBuffer.wrap(buf),)) == 0

    def test_raw_device_buffer_rejected(self, charm):
        buf = charm.cuda.malloc(0, 128)
        with pytest.raises(TypeError, match="nocopydevice"):
            marshal_bytes((buf,))

    def test_host_buffer_counts_size(self, charm):
        h = charm.cuda.malloc_host(0, 321)
        assert marshal_bytes((h,)) == 321


class DeviceReceiver(Chare):
    def __init__(self, size, log):
        self.size = size
        self.log = log
        self.dbuf = self.charm.cuda.malloc(self.gpu, size)

    def take_post(self, posts, sender_note):
        posts[0].buffer = self.dbuf

    def take(self, data, sender_note):
        self.log.append((sender_note, data))


class TestZeroCopy:
    def test_device_args_need_post_entry(self, charm):
        class NoPost(Chare):
            def __init__(self):
                pass

            def take(self, data):
                pass

        src = charm.cuda.malloc(0, 64)
        p = charm.create_chare(NoPost, 1)
        p.take(CkDeviceBuffer.wrap(src))
        with pytest.raises(RuntimeError, match="post entry"):
            charm.run()

    def test_post_must_set_buffer(self, charm):
        class BadPost(Chare):
            def __init__(self):
                pass

            def take_post(self, posts):
                pass  # forgets to set posts[0].buffer

            def take(self, data):
                pass

        src = charm.cuda.malloc(0, 64)
        p = charm.create_chare(BadPost, 1)
        p.take(CkDeviceBuffer.wrap(src))
        with pytest.raises(PostError):
            charm.run()

    def test_device_payload_lands_in_named_buffer(self, charm):
        log = []
        src = charm.cuda.malloc(0, 64)
        src.data[:] = 11
        p = charm.create_chare(DeviceReceiver, 1, 64, log)
        p.take(CkDeviceBuffer.wrap(src), "note")
        charm.run()
        (note, data), = log
        assert note == "note" and data is charm.chares[p.chare_id].dbuf
        assert (data.data == 11).all()

    def test_multiple_device_buffers_one_invocation(self, charm):
        class Multi(Chare):
            def __init__(self, log):
                self.log = log
                self.a = self.charm.cuda.malloc(self.gpu, 32)
                self.b = self.charm.cuda.malloc(self.gpu, 32)

            def take_post(self, posts):
                posts[0].buffer = self.a
                posts[1].buffer = self.b

            def take(self, x, y):
                self.log.append((x, y))

        log = []
        s1 = charm.cuda.malloc(0, 32)
        s2 = charm.cuda.malloc(0, 32)
        s1.data[:] = 1
        s2.data[:] = 2
        p = charm.create_chare(Multi, 1, log)
        p.take(CkDeviceBuffer.wrap(s1), CkDeviceBuffer.wrap(s2))
        charm.run()
        (x, y), = log
        assert (x.data == 1).all() and (y.data == 2).all()

    def test_undersized_post_buffer_rejected(self, charm):
        class Small(Chare):
            def __init__(self):
                self.tiny = self.charm.cuda.malloc(self.gpu, 8)

            def take_post(self, posts):
                posts[0].buffer = self.tiny

            def take(self, data):
                pass

        src = charm.cuda.malloc(0, 64)
        p = charm.create_chare(Small, 1)
        p.take(CkDeviceBuffer.wrap(src))
        with pytest.raises(PostError):
            charm.run()

    def test_send_completion_callback(self, charm):
        log = []
        fired = []
        src = charm.cuda.malloc(0, 64)
        p = charm.create_chare(DeviceReceiver, 1, 64, log)
        p.take(CkDeviceBuffer.wrap(src, cb=lambda: fired.append(True)), "n")
        charm.run()
        assert fired == [True]


class TestCkCallback:
    def test_function_callback(self, charm):
        got = []
        cb = CkCallback(fn=got.append)
        cb.send(charm, 5)
        assert got == [5]

    def test_entry_method_callback(self, charm):
        log = []
        p = charm.create_chare(Echo, 2, log)
        cb = CkCallback(proxy=p, method="hit")
        cb.send(charm, "cb-value")
        charm.run()
        assert log[0][1] == "cb-value"

    def test_requires_target(self):
        with pytest.raises(ValueError):
            CkCallback()
        with pytest.raises(ValueError):
            CkCallback(fn=print, proxy=object(), method="x")


class TestThreadedEntries:
    def test_generator_entry_blocks_and_resumes(self, charm):
        log = []

        class Sleeper(Chare):
            def __init__(self):
                pass

            def work(self):
                log.append(("begin", self.charm.time))
                yield SimEvent_timeout(self.charm, 3e-6)
                log.append(("end", self.charm.time))

        def SimEvent_timeout(ch, dt):
            from repro.sim.primitives import Timeout

            return Timeout(ch.sim, dt)

        p = charm.create_chare(Sleeper, 0)
        p.work()
        charm.run()
        assert log[1][1] - log[0][1] >= 3e-6

    def test_threaded_entry_cuda_staging(self, charm):
        done = []

        class Stager(Chare):
            def __init__(self):
                self.d = self.charm.cuda.malloc(self.gpu, 1024)
                self.h = self.charm.cuda.malloc_host(
                    self.charm.pe_object(self.pe).node, 1024
                )
                self.s = self.charm.cuda.create_stream(self.gpu)

            def stage(self):
                cuda = self.charm.cuda
                cuda.memcpy_dtoh(self.h, self.d, self.s)
                yield cuda.stream_synchronize(self.s)
                done.append(self.charm.time)

        p = charm.create_chare(Stager, 0)
        p.stage()
        charm.run()
        assert done and done[0] > charm.cfg.cuda.memcpy_launch_overhead
