"""Coverage for smaller surfaces: worker stats, PE helpers, tracing
integration, Charm4py device entry parameters, request objects."""

import pytest

from repro.charm import Charm, CkDeviceBuffer
from repro.charm4py import Charm4py, PyChare
from repro.config import KB, MachineConfig
from repro.hardware.topology import Machine
from repro.ucx.context import UcpContext
from repro.ucx.request import RequestKind, UcxRequest
from repro.ucx.status import UcsStatus


class TestWorkerStats:
    def test_send_recv_counters_and_endpoint_accounting(self):
        m = Machine(MachineConfig.summit(nodes=1))
        ctx = UcpContext(m)
        wa = ctx.create_worker(0, 0)
        wb = ctx.create_worker(1, 0)
        src, dst = m.alloc_host(0, 64), m.alloc_host(0, 64)
        ep = wa.ep(1)
        wb.tag_recv_nb(dst, 64, tag=1)
        wa.tag_send_nb(ep, src, 64, tag=1)
        m.sim.run()
        assert wa.sends == 1 and wb.recvs == 1
        assert ep.messages_sent == 1 and ep.bytes_sent == 64
        assert not ep.is_loopback and ep.same_node

    def test_worker_registry(self):
        m = Machine(MachineConfig.summit(nodes=2))
        ctx = UcpContext(m)
        w = ctx.create_worker(3, 1)
        assert ctx.worker(3) is w
        assert ctx.create_worker(3, 1) is w  # idempotent
        with pytest.raises(ValueError):
            ctx.create_worker(3, 0)  # conflicting node
        assert ctx.worker_count == 1


class TestRequestObject:
    def test_double_completion_rejected(self):
        from repro.sim.engine import Simulator

        req = UcxRequest(Simulator(), RequestKind.SEND, tag=1, size=8)
        req.complete()
        with pytest.raises(RuntimeError):
            req.complete()

    def test_callback_invoked_with_request(self):
        from repro.sim.engine import Simulator

        seen = []
        req = UcxRequest(Simulator(), RequestKind.RECV, tag=1, size=8,
                         cb=seen.append)
        req.complete(UcsStatus.OK, info=(1, 8))
        assert seen == [req] and req.info == (1, 8)


class TestPeHelpers:
    def test_work_event_duration(self):
        charm = Charm(MachineConfig.summit(nodes=1))
        pe = charm.pe_object(0)
        ev = pe.work(5e-6)
        charm.run()
        assert ev.triggered and charm.time == pytest.approx(5e-6)

    def test_negative_charge_rejected(self):
        charm = Charm(MachineConfig.summit(nodes=1))
        with pytest.raises(ValueError):
            charm.pe_object(0).charge(-1.0)

    def test_messages_processed_counter(self):
        from repro.charm import Chare

        class Nop(Chare):
            def __init__(self):
                pass

            def hit(self):
                pass

        charm = Charm(MachineConfig.summit(nodes=1))
        p = charm.create_chare(Nop, 2)
        for _ in range(3):
            p.hit()
        charm.run()
        assert charm.pe_object(2).messages_processed == 3


class TestTracing:
    def test_device_send_traced_through_layers(self):
        from repro.charm import Chare

        class Recv(Chare):
            def __init__(self):
                self.buf = self.charm.cuda.malloc(self.gpu, 256)

            def take_post(self, posts):
                posts[0].buffer = self.buf

            def take(self, data):
                pass

        class Send(Chare):
            def __init__(self):
                self.buf = self.charm.cuda.malloc(self.gpu, 256)

            def go(self, peer):
                peer.take(CkDeviceBuffer.wrap(self.buf))

        charm = Charm(MachineConfig.summit(nodes=1))
        s = charm.create_chare(Send, 0)
        r = charm.create_chare(Recv, 1)
        s.go(r)
        charm.run()
        counters = charm.machine.tracer.counters
        assert counters["converse.send_device"] == 1
        assert counters["converse.recv_device"] == 1
        assert counters["ucx.send"] >= 1  # the tagged device send


class TestCharm4pyDeviceEntryParams:
    """Charm4py chares inherit the nocopydevice/post-entry machinery."""

    def test_device_param_through_py_proxy(self):
        got = {}

        class PyRecv(PyChare):
            def __init__(self):
                self.buf = self.c4p.cuda.malloc(self.gpu, 1 * KB)

            def take_post(self, posts):
                posts[0].buffer = self.buf

            def take(self, data):
                got["bytes"] = data.size
                got["ok"] = bool((data.data == 9).all())

        class PySend(PyChare):
            def __init__(self):
                self.buf = self.c4p.cuda.malloc(self.gpu, 1 * KB)
                self.buf.data[:] = 9

            def go(self, peer):
                peer.take(CkDeviceBuffer.wrap(self.buf))

        c4p = Charm4py(MachineConfig.summit(nodes=1))
        s = c4p.create_chare(PySend, 0)
        r = c4p.create_chare(PyRecv, 3)
        s.go(r)
        c4p.charm.run()
        assert got == {"bytes": 1 * KB, "ok": True}

    def test_py_dispatch_costs_more_than_charm(self):
        """The same transfer takes longer through Charm4py chares."""
        from repro.charm import Chare

        def run(py: bool) -> float:
            class R(PyChare if py else Chare):
                def __init__(self):
                    self.buf = (self.c4p if py else self.charm).cuda.malloc(
                        self.gpu, 256
                    )

                def take_post(self, posts):
                    posts[0].buffer = self.buf

                def take(self, data):
                    pass

            class S(PyChare if py else Chare):
                def __init__(self):
                    self.buf = (self.c4p if py else self.charm).cuda.malloc(
                        self.gpu, 256
                    )

                def go(self, peer):
                    peer.take(CkDeviceBuffer.wrap(self.buf))

            if py:
                rt = Charm4py(MachineConfig.summit(nodes=1))
                s, r = rt.create_chare(S, 0), rt.create_chare(R, 1)
                charm = rt.charm
            else:
                charm = Charm(MachineConfig.summit(nodes=1))
                s, r = charm.create_chare(S, 0), charm.create_chare(R, 1)
            s.go(r)
            charm.run()
            return charm.time

        assert run(py=True) > run(py=False)


class TestEndpointLoopback:
    def test_loopback_tagged_send(self):
        m = Machine(MachineConfig.summit(nodes=1))
        ctx = UcpContext(m)
        w = ctx.create_worker(0, 0)
        src, dst = m.alloc_host(0, 32), m.alloc_host(0, 32)
        src.data[:] = 4
        req = w.tag_recv_nb(dst, 32, tag=5)
        w.tag_send_nb(w.ep(0), src, 32, tag=5)
        m.sim.run()
        assert req.completed and (dst.data == 4).all()
        assert w.ep(0).is_loopback
