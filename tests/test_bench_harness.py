"""Tests for the figure/table harness and reporting helpers."""

import pytest

from repro.bench import figures
from repro.bench.reporting import Series, fmt_size, improvement_range, print_series
from repro.config import KB, MB


class TestSeries:
    def test_add_and_access(self):
        s = Series("x")
        s.add(1, 10.0)
        s.add(2, 20.0)
        assert s.xs == [1, 2] and s.ys == [10.0, 20.0]
        assert s.at(2) == 20.0

    def test_missing_x_raises(self):
        with pytest.raises(KeyError):
            Series("x", [(1, 1.0)]).at(5)

    def test_improvement_range(self):
        h = Series("h", [(1, 10.0), (2, 40.0)])
        d = Series("d", [(1, 5.0), (2, 4.0)])
        assert improvement_range(h, d) == (2.0, 10.0)

    def test_improvement_range_needs_shared_points(self):
        with pytest.raises(ValueError):
            improvement_range(Series("h", [(1, 1.0)]), Series("d", [(2, 1.0)]))

    def test_fmt_size(self):
        assert fmt_size(512) == "512"
        assert fmt_size(2 * KB) == "2K"
        assert fmt_size(4 * MB) == "4M"

    def test_print_series_renders(self, capsys):
        print_series("demo", [Series("a", [(1, 1.5)]), Series("b", [(1, 2.5)])])
        out = capsys.readouterr().out
        assert "demo" in out and "1.50" in out and "2.50" in out


SIZES = [8, 64 * KB, 4 * MB]


class TestFigureRunners:
    def test_fig10_structure(self):
        series = figures.fig10(sizes=SIZES, quiet=True)
        assert set(series) == {
            f"{m}-{v}" for m in ("charm", "ampi", "openmpi", "charm4py")
            for v in "HD"
        }
        for s in series.values():
            assert s.xs == SIZES
            assert all(v > 0 for v in s.ys)

    def test_fig12_bandwidth_units(self):
        series = figures.fig12(sizes=[4 * MB], quiet=True)
        # MB/s at 4 MB: tens of thousands intra-node
        assert series["charm-D"].at(4 * MB) > 10_000

    def test_table1_shape_and_paper_consistency(self):
        t = figures.table1(sizes=SIZES, quiet=True)
        assert set(t) == {"charm", "ampi", "charm4py"}
        for model, rows in t.items():
            for key, (lo, hi) in rows.items():
                assert 0 < lo <= hi, (model, key)
        # headline orderings from Table I hold
        assert t["charm4py"]["lat_intra"][1] > t["charm"]["lat_intra"][1]
        assert t["charm"]["bw_inter"][1] < t["charm"]["bw_intra"][1]

    def test_anatomy_reports_layers(self):
        r = figures.ampi_overhead_anatomy(quiet=True)
        assert r["ucx_us"] < r["openmpi_us"] < r["ampi_us"]
        assert r["ampi_outside_ucx_us"] > 2.0

    def test_ablation_gdrcopy_ordering(self):
        r = figures.ablation_gdrcopy(sizes=[8, 512], quiet=True)
        for x in (8, 512):
            assert r["off"].at(x) > r["on"].at(x)

    def test_ablation_early_post_penalty_positive(self):
        r = figures.ablation_early_post(quiet=True)
        assert r["penalty_us"] > 0

    def test_ablation_gpudirect_wins(self):
        r = figures.ablation_gpudirect(quiet=True)
        assert r["gpudirect_us"] < r["pipelined_us"]

    def test_ablation_pipeline_chunk_tradeoff(self):
        r = figures.ablation_pipeline_chunk(chunks=[64 * KB, 512 * KB], quiet=True)
        # tiny chunks pay more per-chunk overhead
        assert r[64 * KB] < r[512 * KB] * 1.05

    def test_ablation_ampi_dip_visible(self):
        r = figures.ablation_ampi_dip(quiet=True)
        on_dip = r["on"].at(128 * KB) / r["on"].at(64 * KB)
        off_dip = r["off"].at(128 * KB) / r["off"].at(64 * KB)
        assert on_dip < off_dip  # quirk depresses the 128 KB point
