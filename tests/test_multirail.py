"""Multi-rail striped transfers: planner, engine, determinism, faults.

The contract under test (ISSUE: multirail tentpole):

* the planner enumerates **disjoint** paths per (src, dst) pair, rail 0
  always the memoized seed route;
* multirail off — or on but inert (no eligible transfer) — is
  bit-identical to the seed simulation for all four models;
* striped runs are deterministic: two identical enabled runs interleave
  chunks identically (fingerprints and span trees match);
* striping is observation-clean: tracing/telemetry on/off does not
  change an enabled run's fingerprint;
* enabled intra-node bandwidth at the Fig. 12 peak beats the single-rail
  NVLink ceiling; graph-batched launches beat individual launches;
* one rail down (factor-0.0 bandwidth window) falls back gracefully to
  the single-rail timing, bit-exactly; bulk traffic routed over a down
  link is a hard error, not a divide-by-zero.
"""

import pytest

import repro.api as api
from repro.apps.osu.runner import run_bandwidth
from repro.config import KB, MB, MachineConfig, MultirailConfig
from repro.faults import BandwidthWindow, FaultPlan
from repro.hardware.links import path_transfer
from repro.hardware.topology import Machine
from repro.ucx.protocols.multirail import assign_chunks, split_chunks

#: Fig. 12 single-rail ceiling: one NVLink brick's bandwidth (GB/s).
NVLINK_CEILING_GBS = 42.1


def _cfg(nodes=2, **mr):
    cfg = MachineConfig.summit(nodes=nodes)
    return cfg.with_multirail(**mr) if mr else cfg


# ---------------------------------------------------------------------------
# config surface
# ---------------------------------------------------------------------------

class TestMultirailConfig:
    def test_default_off(self):
        cfg = MachineConfig.summit(nodes=2)
        assert not cfg.multirail.enabled
        assert MultirailConfig() == cfg.multirail

    def test_with_multirail(self):
        cfg = _cfg(enabled=True, max_rails=3, chunk_bytes=256 * KB,
                   window=4, graph_launch=False)
        assert cfg.multirail.enabled
        assert cfg.multirail.max_rails == 3
        assert cfg.multirail.chunk_bytes == 256 * KB
        assert cfg.multirail.window == 4
        assert not cfg.multirail.graph_launch

    def test_validation(self):
        with pytest.raises(ValueError, match="max_rails"):
            _cfg(enabled=True, max_rails=0)
        with pytest.raises(ValueError, match="chunk_bytes"):
            _cfg(enabled=True, chunk_bytes=0)
        with pytest.raises(ValueError, match="window"):
            _cfg(enabled=True, window=0)

    def test_builder_and_build_kwarg(self):
        sess = api.session(_cfg()).multirail(chunk_bytes=256 * KB).build()
        assert sess.config.multirail.enabled
        assert sess.config.multirail.chunk_bytes == 256 * KB
        sess = api.build(_cfg(), "ampi", n_ranks=2, multirail=True)
        assert sess.config.multirail.enabled
        sess = api.build(_cfg(), "ampi", n_ranks=2,
                         multirail={"max_rails": 3})
        assert sess.config.multirail.enabled
        assert sess.config.multirail.max_rails == 3
        sess = api.build(_cfg(), "ampi", n_ranks=2, multirail=False)
        assert not sess.config.multirail.enabled


# ---------------------------------------------------------------------------
# rail planner
# ---------------------------------------------------------------------------

class TestRailPlanner:
    def test_intra_device_pair_two_disjoint_rails(self):
        m = Machine(_cfg(enabled=True))
        a, b = m.device_location(0), m.device_location(1)
        rails = m.rail_planner.rails(a, b)
        assert len(rails) == 2
        # rail 0 IS the memoized seed route (same object)
        assert rails[0].route is m.route(a, b)
        # disjoint: no link shared between the rails
        names0 = {l.name for l in rails[0].route}
        names1 = {l.name for l in rails[1].route}
        assert not names0 & names1
        # the sideband runs alt bricks through the host-memory trunk
        assert any("nvlalt" in n for n in names1)
        assert any("hostmem" in n for n in names1)
        assert rails[1].bandwidth == m.cfg.topology.host_mem.bandwidth
        # memoized per pair
        assert m.rail_planner.rails(a, b) is rails

    def test_intra_device_host_sideband(self):
        m = Machine(_cfg(enabled=True))
        rails = m.rail_planner.rails(m.device_location(0),
                                     m.host_location(0))
        assert len(rails) == 2
        assert any("nvlalt" in l.name for l in rails[1].route)

    def test_inter_node_nic_rail_pairs(self):
        m = Machine(_cfg(enabled=True))
        a = m.host_location(0, socket=0)
        b = m.host_location(1, socket=0)
        rails = m.rail_planner.rails(a, b)
        assert len(rails) == m.cfg.topology.nic_rails == 2
        names0 = {l.name for l in rails[0].route}
        names1 = {l.name for l in rails[1].route}
        assert not names0 & names1
        # rail 0 carries the socket-affine NICs of the seed route
        assert names0 == {"n0.nic0.tx", "n1.nic0.rx"}
        assert names1 == {"n0.nic1.tx", "n1.nic1.rx"}

    def test_single_rail_pairs(self):
        m = Machine(_cfg(enabled=True))
        # host-host same node: one trunk, no alternate path
        assert len(m.rail_planner.rails(m.host_location(0),
                                        m.host_location(0, socket=1))) == 1
        # same location: the single-link seed route only
        d0 = m.device_location(0)
        assert len(m.rail_planner.rails(d0, d0)) == 1

    def test_disabled_machine_has_no_alternate_bricks(self):
        m = Machine(_cfg())
        node = m.nodes[0]
        assert node.nvlink_alt_tx == [] and node.nvlink_alt_rx == []
        rails = m.rail_planner.rails(m.device_location(0),
                                     m.device_location(1))
        assert len(rails) == 1

    def test_max_rails_one_disables_enumeration(self):
        m = Machine(_cfg(enabled=True, max_rails=1))
        rails = m.rail_planner.rails(m.device_location(0),
                                     m.device_location(1))
        assert len(rails) == 1

    def test_usable_rails_excludes_down_links(self):
        plan = FaultPlan.rail_down("n*.nvlalt*")
        m = Machine(_cfg(enabled=True).with_faults(plan))
        a, b = m.device_location(0), m.device_location(1)
        assert len(m.rail_planner.rails(a, b)) == 2
        usable = m.rail_planner.usable_rails(a, b)
        assert len(usable) == 1 and usable[0].index == 0
        assert m.tracer.counters["ucx.rail.down_excluded"] == 1


# ---------------------------------------------------------------------------
# chunking and greedy assignment
# ---------------------------------------------------------------------------

class TestChunkPlanning:
    def test_split_exact_and_remainder(self):
        assert split_chunks(4 * MB, 512 * KB) == [512 * KB] * 8
        sizes = split_chunks(MB + 1, 512 * KB)
        assert sizes == [512 * KB, 512 * KB, 1]
        assert sum(sizes) == MB + 1

    def test_greedy_weights_by_bandwidth(self):
        # NVLink-ish vs host-memory-ish rails, 8 chunks: the fast rail
        # takes ~bw-proportional share, both rails are used
        queues = assign_chunks([512 * KB] * 8, [42.1e9, 17.0e9])
        assert len(queues[0]) == 6 and len(queues[1]) == 2
        assert sum(len(q) for q in queues) == 8

    def test_greedy_avoids_slow_rail_when_unhelpful(self):
        # 2 chunks: putting the second on the slow rail would finish later
        # than queueing it behind the first on the fast rail
        queues = assign_chunks([512 * KB] * 2, [42.1e9, 17.0e9])
        assert len(queues[0]) == 2 and queues[1] == []

    def test_symmetric_rails_round_robin(self):
        queues = assign_chunks([512 * KB] * 4, [9.32e9, 9.32e9])
        assert len(queues[0]) == 2 and len(queues[1]) == 2


# ---------------------------------------------------------------------------
# golden fingerprints: off == seed, inert-on == off, determinism
# ---------------------------------------------------------------------------

def _bw_fingerprint(cfg, model, size=4 * MB, placement="intra"):
    sess = api.session(cfg).model(model).build()
    bw = run_bandwidth(model, size, placement, True, session=sess,
                       loops=2, skip=1, window=8)
    return {
        "bw": bw,
        "now": sess.now,
        "event_count": sess.sim.event_count,
        "counters": dict(sess.counters),
    }


@pytest.mark.parametrize("model", ["charm", "ampi", "openmpi", "charm4py"])
def test_multirail_off_bit_identical_to_seed(model):
    """An explicit ``multirail(False)`` config — the default — produces the
    seed fingerprint bit-for-bit (extends the test_obs_golden pattern)."""
    seed = _bw_fingerprint(_cfg(), model)
    off = _bw_fingerprint(_cfg().with_multirail(False), model)
    assert off == seed
    assert not any(k.startswith("ucx.rail") for k in seed["counters"])


@pytest.mark.parametrize("model", ["charm", "ampi", "openmpi", "charm4py"])
def test_multirail_inert_bit_identical_to_off(model):
    """Enabled but never eligible (min_bytes above every message) must be
    bit-identical to off: the alternate bricks exist and the planner is
    live, yet no modeled delay may move."""
    off = _bw_fingerprint(_cfg(), model)
    inert = _bw_fingerprint(_cfg(enabled=True, min_bytes=1 << 50), model)
    assert inert == off


def test_striped_interleaving_deterministic():
    """Two identical enabled runs must interleave chunks identically:
    same clocks, same events, same rail counters, same span tree."""

    def run():
        sess = api.session(_cfg(enabled=True).with_trace(True)).model("ampi").build()
        bw = run_bandwidth("ampi", 4 * MB, "intra", True, session=sess,
                           loops=2, skip=1, window=8)
        spans = [(s.category, s.name, s.start, s.end_time,
                  s.attrs.get("rail"), s.attrs.get("chunks"))
                 for s in sess.tracer.spans]
        return {
            "bw": bw,
            "now": sess.now,
            "event_count": sess.sim.event_count,
            "counters": dict(sess.counters),
            "spans": spans,
        }

    a, b = run(), run()
    assert a == b
    assert a["counters"]["ucx.rail.striped"] > 0
    assert a["counters"]["ucx.rail.1.chunks"] > 0
    # per-rail spans made it into the tree
    assert any(s[0] == "ucx.rail" for s in a["spans"])


@pytest.mark.parametrize("observe", ["trace", "telemetry", "flight"])
def test_enabled_observation_fingerprint(observe):
    """The new per-rail spans/telemetry are observation-only: an enabled
    run fingerprints identically with observation on and off."""

    def fp(on):
        cfg = _cfg(enabled=True)
        cfg = getattr(cfg, f"with_{observe}")(on)
        return _bw_fingerprint(cfg, "ampi")

    off, on = fp(False), fp(True)
    assert on == off
    assert off["counters"]["ucx.rail.striped"] > 0


# ---------------------------------------------------------------------------
# bandwidth: striping beats the single-rail ceiling
# ---------------------------------------------------------------------------

class TestStripedBandwidth:
    def test_intra_node_beats_single_rail_ceiling(self):
        for size in (MB, 2 * MB, 4 * MB):
            off = run_bandwidth("ampi", size, "intra", True, _cfg())
            on = run_bandwidth("ampi", size, "intra", True, _cfg(enabled=True))
            # never worse than single-rail, and above the NVLink-only
            # ceiling at every >= 1 MB point of the sweep
            assert on >= off, size
            assert on / 1e9 > NVLINK_CEILING_GBS, size
        assert run_bandwidth("ampi", 4 * MB, "intra", True,
                             _cfg(enabled=True)) > run_bandwidth(
            "ampi", 4 * MB, "intra", True, _cfg())

    def test_inter_node_dual_nic_rails_nearly_double(self):
        off = run_bandwidth("ampi", 4 * MB, "inter", True, _cfg())
        on = run_bandwidth("ampi", 4 * MB, "inter", True, _cfg(enabled=True))
        assert on > 1.7 * off

    def test_below_min_bytes_untouched(self):
        size = 256 * KB  # below the 1 MB default eligibility floor
        off = run_bandwidth("ampi", size, "intra", True, _cfg())
        on = run_bandwidth("ampi", size, "intra", True, _cfg(enabled=True))
        assert on == off

    def test_graph_batching_beats_individual_launches(self):
        graphed = _bw_fingerprint(_cfg(enabled=True), "ampi")
        individual = _bw_fingerprint(_cfg(enabled=True, graph_launch=False),
                                     "ampi")
        # 8 chunks/transfer: one graph launch + tiny per-node costs beat
        # eight full memcpy launch overheads
        assert graphed["now"] < individual["now"]
        assert graphed["bw"] > individual["bw"]


# ---------------------------------------------------------------------------
# faults: one rail down falls back gracefully
# ---------------------------------------------------------------------------

class TestRailFaults:
    def test_one_rail_down_matches_single_rail_bit_exactly(self):
        """Alt-brick links down for the whole run: the planner excludes
        the dead rail and the run is bit-identical to single-rail (the S1
        float-grouping fix makes the factor-1.0 injector path exact)."""
        single = _bw_fingerprint(_cfg(), "ampi")
        down = _bw_fingerprint(
            _cfg(enabled=True).with_faults(FaultPlan.rail_down("n*.nvlalt*")),
            "ampi")
        assert down["now"] == single["now"]
        assert down["event_count"] == single["event_count"]
        assert down["bw"] == single["bw"]
        assert down["counters"]["ucx.rail.fallback_single"] > 0
        assert down["counters"]["ucx.rail.down_excluded"] > 0
        clean = {k: v for k, v in down["counters"].items()
                 if not k.startswith("ucx.rail")}
        assert clean == single["counters"]

    def test_nic_rail_down_inter_node_fallback(self):
        """The second NIC rail down: inter-node striping degrades to the
        seed single-rail NIC pair."""
        single = _bw_fingerprint(_cfg(), "ampi", placement="inter")
        down = _bw_fingerprint(
            _cfg(enabled=True).with_faults(FaultPlan.rail_down("n*.nic1.*")),
            "ampi", placement="inter")
        assert down["now"] == single["now"]
        assert down["counters"]["ucx.rail.fallback_single"] > 0

    def test_degraded_rail_still_stripes(self):
        """A *degraded* (factor 0.5, not down) sideband still stripes —
        slower than healthy multirail, still at least single-rail."""
        healthy = _bw_fingerprint(_cfg(enabled=True), "ampi")
        plan = FaultPlan(bandwidth_windows=(
            BandwidthWindow("n*.nvlalt*", 0.5),))
        degraded = _bw_fingerprint(_cfg(enabled=True).with_faults(plan),
                                   "ampi")
        single = _bw_fingerprint(_cfg(), "ampi")
        assert degraded["counters"]["ucx.rail.striped"] > 0
        assert degraded["bw"] <= healthy["bw"]
        assert degraded["bw"] >= single["bw"]

    def test_bulk_transfer_over_down_link_raises(self):
        """Routing bulk traffic over a down link is a modelling error
        surfaced loudly, never a silent divide-by-zero."""
        plan = FaultPlan.rail_down("n0.nvlink0.tx")
        m = Machine(_cfg().with_faults(plan))
        route = m.route(m.device_location(0), m.device_location(1))
        with pytest.raises(RuntimeError, match="down link"):
            path_transfer(m.sim, route, 1 * MB)
        # control-sized messages bypass occupancy but still ride the
        # degraded-bandwidth model -> same hard error
        with pytest.raises(RuntimeError, match="down link"):
            path_transfer(m.sim, route, 4 * MB)


# ---------------------------------------------------------------------------
# S1 regression: factor-1.0 windows are bit-identical to no injector
# ---------------------------------------------------------------------------

class TestScaleOneWindowBitIdentity:
    def test_route_holds_bit_equal_under_unit_factor(self):
        """The degraded branch re-derives the bottleneck as
        ``min(bw * factor)``; with every factor 1.0 the result must be
        bit-equal to the memoized bottleneck so the memoized hold is
        reused (shared-composite-sum contract)."""
        from repro.hardware.links import degraded_bottleneck

        plan = FaultPlan(bandwidth_windows=(
            BandwidthWindow("n*", 1.0, t0=0.0, t1=float("inf")),))
        m = Machine(_cfg().with_faults(plan))
        assert m.fault_injector is not None
        for a, b in ((m.device_location(0), m.device_location(1)),
                     (m.device_location(0), m.host_location(1)),
                     (m.host_location(0), m.host_location(1, socket=1))):
            route = m.route(a, b)
            assert degraded_bottleneck(route.ordered, m.fault_injector,
                                       0.0) == route.bottleneck

    @pytest.mark.parametrize("placement", ["intra", "inter"])
    def test_unit_factor_window_fingerprint_matches_plain(self, placement):
        """A bandwidth window whose factor resolves to 1.0 must leave the
        whole run bit-identical to no fault plan at all (the regression:
        the old degraded branch regrouped the float sums and drifted)."""
        plain = _bw_fingerprint(_cfg(), "ampi", placement=placement)
        plan = FaultPlan(bandwidth_windows=(BandwidthWindow("n*", 1.0),))
        windowed = _bw_fingerprint(_cfg().with_faults(plan), "ampi",
                                   placement=placement)
        assert windowed == plain
