"""Additional Charm4py coverage: collections, broadcasts, channel edge cases."""

import pytest

from repro.charm4py import Charm4py, PyChare
from repro.config import KB, MachineConfig


class Counter(PyChare):
    def __init__(self, hits):
        self.hits = hits

    def bump(self, amount):
        self.hits.append((self.thisIndex, amount))


class TestPyCollections:
    def test_group_broadcast_with_python_costs(self):
        c4p = Charm4py(MachineConfig.summit(nodes=1))
        hits = []
        g = c4p.create_group(Counter, hits)
        g.bump(3)  # broadcast through the Python proxy
        c4p.charm.run()
        assert sorted(i for i, _a in hits) == list(range(c4p.charm.n_pes))
        assert all(a == 3 for _i, a in hits)

    def test_array_indexing_and_len(self):
        c4p = Charm4py(MachineConfig.summit(nodes=1))
        arr = c4p.create_array(Counter, 9, [])
        assert len(arr) == 9
        assert arr[4].chare_id == arr[4].chare_id

    def test_element_targeting(self):
        c4p = Charm4py(MachineConfig.summit(nodes=1))
        hits = []
        arr = c4p.create_array(Counter, 6, hits)
        arr[2].bump(1)
        arr[5].bump(2)
        c4p.charm.run()
        assert sorted(hits) == [(2, 1), (5, 2)]


class TestChannelEdgeCases:
    class Pair(PyChare):
        def __init__(self, out):
            self.out = out

        def multi(self, partner, n):
            ch = self.c4p.channel(self, partner)
            if self.thisIndex == 0:
                for i in range(n):
                    yield ch.send(("tuple", i), i * 1.5)
            else:
                for i in range(n):
                    v = yield ch.recv()
                    self.out.append(v)

    def test_multi_object_payloads(self):
        c4p = Charm4py(MachineConfig.summit(nodes=1))
        out = []
        arr = c4p.create_array(self.Pair, 2, out, mapping=lambda i: i)
        arr[0].multi(arr[1], 4)
        arr[1].multi(arr[0], 4)
        c4p.charm.run(max_events=500_000)
        assert out == [(("tuple", i), i * 1.5) for i in range(4)]

    def test_two_channels_same_pair_are_one_stream(self):
        """Channels are identified by the chare pair: a second Channel object
        between the same chares shares the endpoint state (documented)."""
        c4p = Charm4py(MachineConfig.summit(nodes=1))

        class Dual(PyChare):
            def __init__(self, out):
                self.out = out

            def run(self, partner):
                ch1 = self.c4p.channel(self, partner)
                ch2 = self.c4p.channel(self, partner)
                if self.thisIndex == 0:
                    yield ch1.send("via-ch1")
                    yield ch2.send("via-ch2")
                else:
                    a = yield ch1.recv()
                    b = yield ch2.recv()
                    self.out.extend([a, b])

        out = []
        arr = c4p.create_array(Dual, 2, out, mapping=lambda i: i)
        arr[0].run(arr[1])
        arr[1].run(arr[0])
        c4p.charm.run(max_events=500_000)
        assert out == ["via-ch1", "via-ch2"]

    def test_large_host_object_costs_serialisation_time(self):
        import numpy as np

        c4p = Charm4py(MachineConfig.summit(nodes=1))

        class Pair(PyChare):
            def __init__(self, times):
                self.times = times

            def run(self, partner, payload):
                ch = self.c4p.channel(self, partner)
                if self.thisIndex == 0:
                    t0 = self.c4p.sim.now
                    yield ch.send(payload)
                    self.times.append(self.c4p.sim.now - t0)
                else:
                    yield ch.recv()

        for nbytes, key in ((1 * KB, "small"), (1 << 20, "big")):
            times = []
            payload = np.zeros(nbytes, dtype=np.uint8)
            arr = c4p.create_array(Pair, 2, times, mapping=lambda i: i)
            arr[0].run(arr[1], payload)
            arr[1].run(arr[0], payload)
            c4p.charm.run(max_events=500_000)
            if key == "small":
                small_t = times[0]
            else:
                big_t = times[0]
        assert big_t > 10 * small_t  # pickling scales with payload size
