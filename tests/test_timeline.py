"""Unit tests for the telemetry ring buffers and counter-event export.

Covers the decimation contract of :class:`repro.obs.timeline.TimeSeries`
(halve-resolution-on-full, first/last preservation, capacity-1, repeated
timestamps, run-to-run determinism) and the Chrome-trace counter-event
round trip the validator must accept (``"ph": "C"``).
"""

import json

import pytest

import repro.api as api
from repro.config import MachineConfig
from repro.obs.export import validate_chrome_trace
from repro.obs.timeline import Telemetry, TimeSeries, timeline_dict


# -- TimeSeries decimation ----------------------------------------------------
def test_memory_bounded_regardless_of_run_length():
    ts = TimeSeries("s", capacity=32)
    for i in range(100_000):
        ts.sample(i * 1e-6, float(i))
    assert len(ts.times) <= 32
    assert ts.offered == 100_000
    # exact stats survive decimation
    assert ts.vmin == 0.0
    assert ts.vmax == 99_999.0
    assert ts.mean == pytest.approx(49_999.5)


def test_decimation_preserves_first_and_last_points():
    ts = TimeSeries("s", capacity=8)
    n = 1000
    for i in range(n):
        ts.sample(float(i), float(i * 10))
    pts = ts.points()
    assert pts[0] == (0.0, 0.0)
    assert pts[-1] == (float(n - 1), float((n - 1) * 10))


def test_retained_points_are_uniform_subsample():
    ts = TimeSeries("s", capacity=16)
    for i in range(500):
        ts.sample(float(i), float(i))
    # retained times must be exactly the multiples of the final stride
    stride = ts.stride
    assert stride > 1  # decimation actually happened
    assert ts.times == [float(i) for i in range(0, 500, stride)][:len(ts.times)]


def test_capacity_one_series():
    ts = TimeSeries("s", capacity=1)
    for i in range(50):
        ts.sample(float(i), float(i))
    assert len(ts.times) <= 1
    pts = ts.points()
    # first point retained, last appended out-of-band
    assert pts[0] == (0.0, 0.0)
    assert pts[-1] == (49.0, 49.0)
    assert ts.vmax == 49.0


def test_simultaneous_samples_at_one_timestamp():
    ts = TimeSeries("s", capacity=64)
    for v in range(10):
        ts.sample(1.5, float(v))  # all at t=1.5
    pts = ts.points()
    assert all(t == 1.5 for t, _ in pts)
    # last offered value always visible even with duplicate timestamps
    assert pts[-1] == (1.5, 9.0)
    assert ts.vmin == 0.0 and ts.vmax == 9.0


def test_deterministic_across_identical_runs():
    def run():
        ts = TimeSeries("s", capacity=24)
        for i in range(3333):
            ts.sample(i * 0.5, float((i * 7919) % 1000))
        return ts.points(), ts.stats(), ts.stride

    assert run() == run()


def test_points_no_duplicate_when_last_sample_retained():
    ts = TimeSeries("s", capacity=64)
    for i in range(5):
        ts.sample(float(i), float(i))
    # 5 < capacity: every sample retained; points() must not double the last
    assert ts.points() == [(float(i), float(i)) for i in range(5)]


def test_capacity_validation():
    with pytest.raises(ValueError):
        TimeSeries("s", capacity=0)
    with pytest.raises(ValueError):
        MachineConfig.summit(nodes=1).with_telemetry(True, capacity=0)


def test_percentile_and_stats_shape():
    ts = TimeSeries("s", capacity=128, unit="items")
    for i in range(100):
        ts.sample(float(i), float(i))
    st = ts.stats()
    assert st["count"] == 100
    assert st["min"] == 0.0 and st["max"] == 99.0
    assert st["p99"] == pytest.approx(99.0, abs=2.0)
    assert st["last"] == 99.0


# -- Telemetry registry -------------------------------------------------------
class _FakeSim:
    now = 0.0


def test_disabled_telemetry_records_nothing():
    telem = Telemetry(_FakeSim(), enabled=False)
    telem.sample("a", 1.0)
    telem.bump("b")
    probe = telem.queue_probe("q")
    probe(1)
    # queue_probe still maintains depth series when enabled=False?  No:
    # series creation goes through sample paths; the probe itself samples
    # directly, so guard behaviour is what matters here — nothing from
    # sample/bump, and the probe's series exists only because the probe
    # was explicitly wired (instrumentation sites never wire probes when
    # telemetry is off).
    assert "a" not in telem.series
    assert "b" not in telem.series


def test_queue_probe_tracks_depth():
    sim = _FakeSim()
    telem = Telemetry(sim, enabled=True, capacity=16)
    probe = telem.queue_probe("q")
    for delta in (1, 1, 1, -1, 1, -1, -1):
        probe(delta)
    st = telem.series["q"].stats()
    assert st["max"] == 3.0
    assert st["last"] == 1.0


def test_reset_clears_series():
    sim = _FakeSim()
    telem = Telemetry(sim, enabled=True)
    telem.sample("a", 1.0)
    telem.bump("b")
    telem.reset()
    assert telem.series == {}
    assert telem.counter("b") == 0


# -- counter-event export round trip (satellite: validator accepts "C") ------
def _telemetry_session():
    cfg = (MachineConfig.summit(nodes=2).with_telemetry(True)
           .with_trace(True))
    sess = api.session(cfg).model("openmpi").ranks(4).build()
    size = 32 * 1024

    def program(mpi):
        buf = mpi.charm.cuda.malloc(mpi.gpu, size)
        if mpi.rank == 0:
            yield mpi.send(buf, size, dst=1, tag=7)
        elif mpi.rank == 1:
            yield mpi.recv(buf, size, src=0, tag=7)

    sess.run_until(sess.launch(program))
    return sess


def test_counter_events_round_trip():
    sess = _telemetry_session()
    trace = sess.chrome_trace()
    stats = validate_chrome_trace(trace)
    assert stats["n_counter_events"] > 0
    assert stats["counter_series"] == set(sess.timeline()["series"])
    # serialise + reload: validation must hold on the wire format too
    reloaded = json.loads(json.dumps(trace))
    stats2 = validate_chrome_trace(reloaded)
    assert stats2["n_counter_events"] == stats["n_counter_events"]
    # counter events are ts-monotone within the merged stream and carry
    # numeric values
    for ev in reloaded["traceEvents"]:
        if ev.get("ph") == "C":
            assert isinstance(ev["args"]["value"], (int, float))


def test_validator_rejects_malformed_counters():
    base = {"traceEvents": [
        {"name": "x", "ph": "C", "ts": 0.0, "pid": 0, "tid": 0},
    ]}
    with pytest.raises(ValueError, match="args"):
        validate_chrome_trace(base)
    bad_value = {"traceEvents": [
        {"name": "x", "ph": "C", "ts": 0.0, "pid": 0, "tid": 0,
         "args": {"value": "high"}},
    ]}
    with pytest.raises(ValueError, match="number"):
        validate_chrome_trace(bad_value)
    ok = {"traceEvents": [
        {"name": "x", "ph": "C", "ts": 0.0, "pid": 0, "tid": 0,
         "args": {"value": 3}},
        {"name": "x", "ph": "C", "ts": 1.0, "pid": 0, "tid": 0,
         "args": {"value": 4.5}},
    ]}
    stats = validate_chrome_trace(ok)
    assert stats["n_counter_events"] == 2
    assert stats["counter_series"] == {"x"}


def test_timeline_dict_shape():
    sess = _telemetry_session()
    doc = timeline_dict(sess.tracer.timeline)
    assert doc["enabled"] is True
    assert doc["series"]
    for name, entry in doc["series"].items():
        assert set(entry) == {"unit", "stats", "points"}
        assert entry["stats"]["count"] >= len(entry["points"]) - 1 or True
        for t, v in entry["points"]:
            assert isinstance(t, float) and isinstance(v, (int, float))


def test_timeline_summary_cli(tmp_path, capsys):
    from repro.bench.timeline import main as timeline_main

    sess = _telemetry_session()
    path = tmp_path / "tl.json"
    sess.export_timeline(path)
    assert timeline_main(["summary", str(path)]) == 0
    out = capsys.readouterr().out
    assert "timeline summary" in out
    assert "p99" in out
    # filtered view
    assert timeline_main(["summary", str(path), "--series", "link.*"]) == 0
    # missing file is a clean error, not a traceback
    assert timeline_main(["summary", str(tmp_path / "nope.json")]) == 2
