"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import SimulationError, Simulator
from repro.sim.primitives import SimEvent, Timeout


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(2.0, order.append, "c")
    sim.schedule(0.5, order.append, "a")
    sim.schedule(1.0, order.append, "b")
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 2.0


def test_same_time_events_fire_fifo():
    sim = Simulator()
    order = []
    for name in "abcde":
        sim.schedule(1.0, order.append, name)
    sim.run()
    assert order == list("abcde")


def test_zero_delay_runs_after_current_instant_queue():
    sim = Simulator()
    order = []
    sim.schedule(0.0, order.append, 1)
    sim.schedule(0.0, lambda: (order.append(2), sim.schedule(0.0, order.append, 4)))
    sim.schedule(0.0, order.append, 3)
    sim.run()
    assert order == [1, 2, 3, 4]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1e-9, lambda: None)


def test_cancel_prevents_execution():
    sim = Simulator()
    fired = []
    h = sim.schedule(1.0, fired.append, "x")
    h.cancel()
    assert h.cancelled
    sim.run()
    assert fired == []
    assert sim.now == 0.0  # cancelled event does not advance time


def test_cancel_is_idempotent():
    sim = Simulator()
    h = sim.schedule(1.0, lambda: None)
    h.cancel()
    h.cancel()
    sim.run()


def test_run_until_stops_clock_at_bound():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(5.0, fired.append, "b")
    sim.run(until=2.0)
    assert fired == ["a"]
    assert sim.now == 2.0
    sim.run()
    assert fired == ["a", "b"]


def test_run_until_includes_events_at_exact_bound():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, fired.append, "x")
    sim.run(until=2.0)
    assert fired == ["x"]


def test_schedule_at_absolute_time():
    sim = Simulator()
    times = []
    sim.schedule(1.0, lambda: sim.schedule_at(5.0, lambda: times.append(sim.now)))
    sim.run()
    assert times == [5.0]


def test_nested_scheduling_during_execution():
    sim = Simulator()
    seen = []

    def outer():
        seen.append(("outer", sim.now))
        sim.schedule(0.5, inner)

    def inner():
        seen.append(("inner", sim.now))

    sim.schedule(1.0, outer)
    sim.run()
    assert seen == [("outer", 1.0), ("inner", 1.5)]


def test_peek_skips_cancelled():
    sim = Simulator()
    h = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    h.cancel()
    assert sim.peek() == 2.0


def test_step_returns_false_when_empty():
    sim = Simulator()
    assert sim.step() is False


def test_max_events_guards_against_loops():
    sim = Simulator()

    def loop():
        sim.schedule(0.0, loop)

    sim.schedule(0.0, loop)
    with pytest.raises(SimulationError, match="max_events"):
        sim.run(max_events=100)


def test_run_is_not_reentrant():
    sim = Simulator()
    errors = []

    def reenter():
        try:
            sim.run()
        except SimulationError as e:
            errors.append(e)

    sim.schedule(0.0, reenter)
    sim.run()
    assert len(errors) == 1


def test_run_until_complete_returns_value():
    sim = Simulator()
    ev = SimEvent(sim)
    sim.schedule(3.0, ev.succeed, 42)
    assert sim.run_until_complete(ev) == 42
    assert sim.now == 3.0


def test_run_until_complete_detects_deadlock():
    sim = Simulator()
    ev = SimEvent(sim)  # never triggered
    with pytest.raises(SimulationError, match="deadlock"):
        sim.run_until_complete(ev)


def test_event_count_tracks_executions():
    sim = Simulator()
    for _ in range(5):
        sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.event_count == 5


def test_timeout_event_integration():
    sim = Simulator()
    t = Timeout(sim, 2.5, value="done")
    sim.run()
    assert t.triggered and t.result() == "done"
    assert sim.now == 2.5


def test_nan_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(float("nan"), lambda: None)


class TestHandleIdentity:
    """Regression tests: handles must stay truthful across slot reuse.

    The old engine's lazy-deletion compaction rebound heap entries under
    live handles; cancel-after-fire and double-cancel of a compacted entry
    corrupted the cancellation bookkeeping.  The slot core's generation
    counters make every one of these a safe no-op.
    """

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        fired = []
        h = sim.schedule(1.0, fired.append, "a")
        sim.run()
        assert fired == ["a"]
        h.cancel()  # the event already ran: nothing to suppress
        assert not h.cancelled  # must not misreport the event as suppressed
        assert h.time == 1.0

    def test_cancel_after_fire_does_not_kill_slot_reuser(self):
        sim = Simulator()
        fired = []
        h1 = sim.schedule(1.0, fired.append, "a")
        sim.run()
        h2 = sim.schedule(1.0, fired.append, "b")
        assert h2._slot == h1._slot  # the freelist recycled the slot
        h1.cancel()  # stale handle: must not cancel h2's event
        sim.run()
        assert fired == ["a", "b"]
        assert not h1.cancelled and not h2.cancelled

    def test_double_cancel_of_reclaimed_entry(self):
        sim = Simulator()
        fired = []
        h = sim.schedule(1.0, fired.append, "x")
        h.cancel()
        sim.run()  # reaps the tombstone, frees the slot
        h2 = sim.schedule(2.0, fired.append, "y")
        assert h2._slot == h._slot
        h.cancel()  # second cancel of a reclaimed entry: pure no-op
        assert h.cancelled  # the first cancel did suppress the event
        sim.run()
        assert fired == ["y"]

    def test_handle_time_stable_under_mass_cancellation(self):
        # the old compaction pass rebuilt the agenda under the handles;
        # Handle.time must stay truthful no matter how many reaps happen
        sim = Simulator()
        handles = [sim.schedule(float(i), lambda: None) for i in range(500)]
        for h in handles[1::2]:
            h.cancel()
        sim.run()
        assert [h.time for h in handles] == [float(i) for i in range(500)]
        assert all(h.cancelled for h in handles[1::2])
        assert not any(h.cancelled for h in handles[::2])

    def test_pending_lifecycle(self):
        sim = Simulator()
        h = sim.schedule(1.0, lambda: None)
        assert h.pending
        sim.run()
        assert not h.pending and not h.cancelled
        h2 = sim.schedule(1.0, lambda: None)
        h2.cancel()
        assert not h2.pending and h2.cancelled
