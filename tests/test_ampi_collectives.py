"""Tests for the collectives built on point-to-point."""

import numpy as np
import pytest

from repro.ampi import Ampi
from repro.charm import Charm
from repro.config import MachineConfig


def run_collective(program, nodes=2):
    charm = Charm(MachineConfig.summit(nodes=nodes))
    ampi = Ampi(charm)
    done = ampi.launch(program)
    charm.run_until(done, max_events=10_000_000)
    return ampi


class TestBarrier:
    def test_all_ranks_pass_together(self):
        release_times = {}

        def program(mpi):
            from repro.sim.primitives import Timeout

            # stagger arrivals; everyone leaves after the last arrival
            yield Timeout(mpi.sim, mpi.rank * 1e-6)
            yield from mpi.barrier()
            release_times[mpi.rank] = mpi.sim.now

        ampi = run_collective(program)
        last_arrival = (ampi.n_ranks - 1) * 1e-6
        assert all(t >= last_arrival for t in release_times.values())


class TestBcast:
    @pytest.mark.parametrize("root", [0, 3, 11])
    def test_value_reaches_all(self, root):
        got = {}

        def program(mpi):
            v = "payload" if mpi.rank == root else None
            v = yield from mpi.bcast(v, root=root)
            got[mpi.rank] = v

        ampi = run_collective(program)
        assert got == {r: "payload" for r in range(ampi.n_ranks)}


class TestReduce:
    @pytest.mark.parametrize("op,expect", [
        ("sum", sum(range(12))),
        ("max", 11),
        ("min", 0),
    ])
    def test_scalar_ops(self, op, expect):
        got = {}

        def program(mpi):
            v = yield from mpi.reduce(mpi.rank, op, root=0)
            got[mpi.rank] = v

        run_collective(program)
        assert got[0] == expect
        assert all(v is None for r, v in got.items() if r != 0)

    def test_nonzero_root(self):
        got = {}

        def program(mpi):
            v = yield from mpi.reduce(1, "sum", root=5)
            got[mpi.rank] = v

        ampi = run_collective(program)
        assert got[5] == ampi.n_ranks

    def test_array_reduce(self):
        got = {}

        def program(mpi):
            v = yield from mpi.reduce(np.full(3, float(mpi.rank)), "sum", root=0,
                                      nbytes=24)
            got[mpi.rank] = v

        ampi = run_collective(program)
        assert (got[0] == sum(range(ampi.n_ranks))).all()


class TestAllreduce:
    def test_everyone_gets_result(self):
        got = {}

        def program(mpi):
            v = yield from mpi.allreduce(mpi.rank + 1, "sum")
            got[mpi.rank] = v

        ampi = run_collective(program)
        expect = sum(range(1, ampi.n_ranks + 1))
        assert got == {r: expect for r in range(ampi.n_ranks)}

    def test_max(self):
        got = {}

        def program(mpi):
            got[mpi.rank] = (yield from mpi.allreduce(mpi.rank % 5, "max"))

        run_collective(program)
        assert set(got.values()) == {4}


class TestGatherScatter:
    def test_gather_ordered_by_rank(self):
        got = {}

        def program(mpi):
            v = yield from mpi.gather(mpi.rank * 10, root=2)
            got[mpi.rank] = v

        ampi = run_collective(program)
        assert got[2] == [r * 10 for r in range(ampi.n_ranks)]
        assert got[0] is None

    def test_scatter(self):
        got = {}

        def program(mpi):
            values = [f"v{r}" for r in range(mpi.size)] if mpi.rank == 1 else None
            v = yield from mpi.scatter(values, root=1)
            got[mpi.rank] = v

        ampi = run_collective(program)
        assert got == {r: f"v{r}" for r in range(ampi.n_ranks)}

    def test_scatter_requires_full_list(self):
        failures = {}

        def program(mpi):
            if mpi.rank == 0:
                try:
                    yield from mpi.scatter(["too", "short"], root=0)
                except ValueError:
                    failures["raised"] = True
            return
            yield  # pragma: no cover

        run_collective(program)
        assert failures["raised"]

    def test_allgather_ring(self):
        got = {}

        def program(mpi):
            v = yield from mpi.allgather(mpi.rank ** 2)
            got[mpi.rank] = v

        ampi = run_collective(program)
        expect = [r ** 2 for r in range(ampi.n_ranks)]
        assert all(v == expect for v in got.values())

    def test_alltoall(self):
        got = {}

        def program(mpi):
            values = [f"{mpi.rank}->{d}" for d in range(mpi.size)]
            v = yield from mpi.alltoall(values)
            got[mpi.rank] = v

        ampi = run_collective(program)
        for r, received in got.items():
            assert received == [f"{s}->{r}" for s in range(ampi.n_ranks)]


class TestDeviceCollectives:
    def test_bcast_device_moves_gpu_payload(self):
        got = {}

        def program(mpi):
            buf = mpi.charm.cuda.malloc(mpi.gpu, 2048)
            if mpi.rank == 0:
                buf.data[:] = 99
            yield from mpi.bcast_device(buf, 2048, root=0)
            got[mpi.rank] = bool((buf.data == 99).all())

        ampi = run_collective(program)
        assert all(got.values()) and len(got) == ampi.n_ranks

    def test_bcast_device_rejects_host_buffer(self):
        def program(mpi):
            h = mpi.charm.cuda.malloc_host(mpi.node, 64)
            with pytest.raises(ValueError):
                list(mpi.bcast_device(h, 64, root=0))
            return
            yield  # pragma: no cover

        run_collective(program)
