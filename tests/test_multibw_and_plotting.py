"""Tests for the multi-pair bandwidth extension and ASCII plotting."""

import pytest

from repro.apps.osu.multibw import run_multi_pair_bandwidth
from repro.bench.plotting import ascii_plot, plot_series_dict
from repro.bench.reporting import Series
from repro.config import MachineConfig, MB


class TestMultiPairBandwidth:
    def test_single_pair_matches_pt2pt_rate(self):
        r = run_multi_pair_bandwidth(4 * MB, pairs=1)
        assert len(r["per_pair"]) == 1
        assert r["aggregate"] / 1e9 == pytest.approx(10.0, rel=0.1)

    def test_dual_rail_aggregate_doubles(self):
        """Six pairs span both socket rails: ~2x the aggregate of three
        pairs saturating one rail (same contention pattern per rail)."""
        three = run_multi_pair_bandwidth(4 * MB, pairs=3)["aggregate"]
        six = run_multi_pair_bandwidth(4 * MB, pairs=6)["aggregate"]
        assert six / three == pytest.approx(2.0, rel=0.1)

    def test_single_rail_machine_does_not_scale(self):
        from dataclasses import replace

        cfg = MachineConfig.summit(nodes=2)
        cfg = replace(cfg, topology=replace(cfg.topology, nic_rails=1))
        three = run_multi_pair_bandwidth(4 * MB, pairs=3, config=cfg)["aggregate"]
        six = run_multi_pair_bandwidth(4 * MB, pairs=6, config=cfg)["aggregate"]
        assert six / three < 1.3  # one rail: no headroom from more pairs

    def test_pair_bounds_validated(self):
        with pytest.raises(ValueError):
            run_multi_pair_bandwidth(1 * MB, pairs=0)
        with pytest.raises(ValueError):
            run_multi_pair_bandwidth(1 * MB, pairs=7)

    def test_intra_socket_pairs_share_a_rail(self):
        """Three pairs on one socket share one rail -> ~1x aggregate; with
        default config the pairs are socket-split only beyond 3."""
        three = run_multi_pair_bandwidth(4 * MB, pairs=3)["aggregate"]
        one = run_multi_pair_bandwidth(4 * MB, pairs=1)["aggregate"]
        assert three / one == pytest.approx(1.0, rel=0.15)


class TestAsciiPlot:
    def test_renders_title_legend_and_bounds(self):
        s1 = Series("alpha", [(1, 1.0), (1024, 10.0), (1 << 20, 100.0)])
        s2 = Series("beta", [(1, 2.0), (1024, 20.0), (1 << 20, 200.0)])
        out = ascii_plot("demo", [s1, s2])
        assert "# demo" in out
        assert "o alpha" in out and "x beta" in out
        assert "1M" in out  # x-axis upper bound
        assert "200" in out  # y-axis upper bound

    def test_empty_series_handled(self):
        assert "(no data)" in ascii_plot("empty", [Series("none")])

    def test_plot_series_dict(self):
        out = plot_series_dict("d", {"a": Series("a", [(1, 1.0), (2, 2.0)])})
        assert "# d" in out

    def test_figures_cli_plot_flag(self, capsys):
        from repro.bench import figures

        figures.main(["fig10", "--quick", "--plot"])
        out = capsys.readouterr().out
        assert "(log-log)" in out
        assert "charm-D" in out


class TestQuiescence:
    def test_run_to_quiescence_drains_everything(self):
        from repro.charm import Charm, Chare

        class Fanout(Chare):
            def __init__(self, hits):
                self.hits = hits

            def go(self, peers, depth):
                self.hits.append(self.thisIndex)
                if depth > 0:
                    for i in range(len(peers)):
                        peers[i].go(peers, depth - 1) if i == self.thisIndex else None

        charm = Charm(MachineConfig.summit(nodes=1))
        hits = []
        g = charm.create_group(Fanout, hits)
        g.go(g, 2)
        t = charm.run_to_quiescence(max_events=1_000_000)
        assert t > 0 and len(hits) >= charm.n_pes
        assert charm.sim.peek() is None  # truly quiescent
