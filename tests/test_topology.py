"""Tests for the machine topology, routing, and link transfers."""

import pytest

from repro.config import MachineConfig, MB
from repro.hardware.links import (
    path_bottleneck,
    path_latency,
    path_transfer,
    path_transfer_time,
)
from repro.hardware.memory import MemoryKind
from repro.hardware.topology import Machine


@pytest.fixture
def machine():
    return Machine(MachineConfig.summit(nodes=2))


class TestIndexing:
    def test_node_of_gpu(self, machine):
        assert machine.node_of_gpu(0) == 0
        assert machine.node_of_gpu(5) == 0
        assert machine.node_of_gpu(6) == 1

    def test_socket_of_gpu(self, machine):
        assert machine.socket_of_gpu(0) == 0
        assert machine.socket_of_gpu(2) == 0
        assert machine.socket_of_gpu(3) == 1
        assert machine.socket_of_gpu(9) == 1  # gpu 3 of node 1

    def test_total_gpus(self, machine):
        assert machine.cfg.topology.total_gpus == 12


class TestRouting:
    def _names(self, machine, src, dst):
        return [l.name for l in machine.route(src, dst)]

    def test_same_gpu_uses_hbm(self, machine):
        loc = machine.device_location(2)
        assert self._names(machine, loc, loc) == ["n0.hbm2"]

    def test_same_socket_gpu_pair(self, machine):
        names = self._names(
            machine, machine.device_location(0), machine.device_location(1)
        )
        assert names == ["n0.nvlink0.tx", "n0.nvlink1.rx"]

    def test_cross_socket_traverses_xbus(self, machine):
        names = self._names(
            machine, machine.device_location(0), machine.device_location(4)
        )
        assert names == ["n0.nvlink0.tx", "n0.xbus.d0", "n0.nvlink4.rx"]

    def test_xbus_direction_depends_on_sockets(self, machine):
        back = self._names(
            machine, machine.device_location(4), machine.device_location(0)
        )
        assert "n0.xbus.d1" in back

    def test_gpu_to_host_same_node(self, machine):
        names = self._names(
            machine, machine.device_location(1), machine.host_location(0)
        )
        assert names == ["n0.nvlink1.tx"]

    def test_host_to_host_same_node(self, machine):
        names = self._names(
            machine, machine.host_location(0), machine.host_location(0, socket=1)
        )
        assert names == ["n0.hostmem"]

    def test_inter_node_device_route(self, machine):
        names = self._names(
            machine, machine.device_location(0), machine.device_location(6)
        )
        assert names == [
            "n0.nvlink0.tx", "n0.nic0.tx", "n1.nic0.rx", "n1.nvlink0.rx"
        ]

    def test_rail_follows_socket(self, machine):
        # gpu 3 is on socket 1 -> rail 1
        names = self._names(
            machine, machine.device_location(3), machine.device_location(6)
        )
        assert "n0.nic1.tx" in names and "n1.nic0.rx" in names

    def test_host_rail_follows_socket_hint(self, machine):
        names = self._names(
            machine, machine.host_location(0, socket=1), machine.host_location(1)
        )
        assert "n0.nic1.tx" in names

    def test_route_bandwidths(self, machine):
        topo = machine.cfg.topology
        route = machine.route(machine.device_location(0), machine.device_location(6))
        assert path_bottleneck(route) == topo.nic.bandwidth
        assert path_latency(route) == pytest.approx(
            2 * topo.nvlink.latency + 2 * topo.nic.latency
        )


class TestAllocation:
    def test_small_buffers_materialize(self, machine):
        buf = machine.alloc_device(0, 1024)
        assert not buf.is_virtual

    def test_large_buffers_virtual(self, machine):
        buf = machine.alloc_device(0, 64 * MB)
        assert buf.is_virtual

    def test_materialize_override(self, machine):
        assert machine.alloc_device(0, 1024, materialize=False).is_virtual
        assert not machine.alloc_host(0, 8 * MB, materialize=True).is_virtual

    def test_device_capacity_enforced(self, machine):
        from repro.hardware.memory import OutOfMemory

        cap = machine.cfg.topology.gpu_memory_capacity
        machine.alloc_device(3, cap - 1024, materialize=False)
        with pytest.raises(OutOfMemory):
            machine.alloc_device(3, 2048, materialize=False)


class TestPathTransfer:
    def test_uncontended_time(self, machine):
        route = machine.route(machine.device_location(0), machine.device_location(1))
        size = 1 * MB
        expect = path_transfer_time(route, size)
        done = path_transfer(machine.sim, route, size)
        machine.sim.run()
        assert done.triggered
        assert machine.sim.now == pytest.approx(expect)

    def test_contention_serialises_on_shared_link(self, machine):
        route = machine.route(machine.device_location(0), machine.device_location(1))
        size = 1 * MB
        t1 = path_transfer(machine.sim, route, size)
        t2 = path_transfer(machine.sim, route, size)
        machine.sim.run()
        assert machine.sim.now == pytest.approx(2 * path_transfer_time(route, size))
        assert t1.triggered and t2.triggered

    def test_disjoint_paths_parallel(self, machine):
        r1 = machine.route(machine.device_location(0), machine.device_location(1))
        r2 = machine.route(machine.device_location(2), machine.device_location(5))
        size = 1 * MB
        path_transfer(machine.sim, r1, size)
        path_transfer(machine.sim, r2, size)
        machine.sim.run()
        assert machine.sim.now == pytest.approx(
            max(path_transfer_time(r1, size), path_transfer_time(r2, size))
        )

    def test_waiting_transfer_does_not_convoy_unrelated(self, machine):
        """A transfer queued behind an incast hotspot must not block traffic
        that shares only its *source* link while it waits (atomicity)."""
        sim = machine.sim
        into_b = machine.route(machine.device_location(0), machine.device_location(1))
        also_into_b = machine.route(machine.device_location(2), machine.device_location(1))
        unrelated = machine.route(machine.device_location(2), machine.device_location(5))
        size = 4 * MB
        path_transfer(sim, into_b, size)          # occupies nvlink1.rx
        path_transfer(sim, also_into_b, size)     # waits for nvlink1.rx
        t3 = path_transfer(sim, unrelated, size)  # shares nvlink2.tx with #2
        finish = {}
        t3.add_callback(lambda _e: finish.setdefault("t3", sim.now))
        sim.run()
        # the unrelated transfer completed in one uncontended pass
        assert finish["t3"] == pytest.approx(path_transfer_time(unrelated, size))

    def test_empty_path_is_pure_delay(self, machine):
        done = path_transfer(machine.sim, [], 1024, extra_time=1.5e-6)
        machine.sim.run()
        assert done.triggered and machine.sim.now == pytest.approx(1.5e-6)

    def test_bytes_accounted(self, machine):
        route = machine.route(machine.device_location(0), machine.device_location(1))
        path_transfer(machine.sim, route, 999)
        machine.sim.run()
        assert all(l.bytes_carried == 999 for l in route)
