"""Tests for the paper-expectations data and the experiments generator."""

import pytest

from repro.bench import paper
from repro.bench.experiments import generate


class TestPaperData:
    def test_table1_covers_all_models_and_keys(self):
        for model in ("charm", "ampi", "charm4py"):
            entry = paper.TABLE1[model]
            for key in ("lat_intra", "eager_intra", "bw_intra",
                        "lat_inter", "eager_inter", "bw_inter"):
                assert key in entry

    def test_ranges_are_ordered(self):
        for model, entry in paper.TABLE1.items():
            for key, val in entry.items():
                if isinstance(val, paper.Range):
                    assert val.lo <= val.hi, (model, key)

    def test_range_str(self):
        assert str(paper.Range(1.2, 4.1)) == "1.2x–4.1x"

    def test_within_and_verdict(self):
        assert paper.within(10.0, 11.0, rel=0.15)
        assert not paper.within(10.0, 20.0, rel=0.15)
        assert paper.verdict(44.5, 44.7, 0.15) == "ok"
        assert paper.verdict(5.0, 44.7, 0.15) == "deviates"
        assert paper.within(0.0, 0.0, rel=0.1)

    def test_setup_constants_match_config(self):
        """The hardware model must encode the paper's §IV-A machine."""
        from repro.config import MachineConfig

        topo = MachineConfig.summit().topology
        assert topo.gpus_per_node == paper.SETUP["gpus_per_node"]
        # modelled link rates are effective rates below the theoretical
        # peaks the paper quotes
        assert topo.nvlink.bandwidth / 2**30 <= paper.SETUP["nvlink_gbs"]
        assert topo.xbus.bandwidth / 2**30 <= paper.SETUP["xbus_gbs"]
        assert topo.nic.bandwidth / 2**30 <= paper.SETUP["nic_gbs"]

    def test_jacobi_expectations_present(self):
        for model in ("charm", "ampi", "charm4py"):
            assert "comm_speedup_weak" in paper.JACOBI[model]


class TestExperimentsGenerator:
    @pytest.fixture(scope="class")
    def report(self):
        # the smallest meaningful configuration: one size ladder point set,
        # two weak nodes, one strong pair
        from repro.bench import experiments

        return experiments.generate(
            path=None, quick=True, iters=2
        )

    @pytest.mark.slow
    def test_report_contains_all_sections(self, report):
        for heading in (
            "# EXPERIMENTS",
            "## Table I",
            "## §IV-B2",
            "## §IV-B1",
            "## Figs. 14–16",
            "## Ablations",
            "## Experiment index",
        ):
            assert heading in report

    @pytest.mark.slow
    def test_report_mentions_paper_values(self, report):
        assert "44.7" in report  # Charm++ intra peak
        assert "12.4" in report or "12.4x" in report  # Jacobi weak speedup

    @pytest.mark.slow
    def test_report_peaks_all_ok(self, report):
        # every peak-bandwidth row must carry an "ok" verdict
        section = report.split("## §IV-B2")[1].split("##")[0]
        rows = [l for l in section.splitlines() if l.startswith("| charm") or
                l.startswith("| ampi")]
        assert rows and all("deviates" not in r for r in rows)
