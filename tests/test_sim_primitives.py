"""Tests for events, combinators, latches, and queues."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.primitives import (
    AllOf,
    AnyOf,
    EventAlreadyTriggered,
    Latch,
    SimEvent,
    SimQueue,
    Timeout,
)


@pytest.fixture
def sim():
    return Simulator()


class TestSimEvent:
    def test_succeed_carries_value(self, sim):
        ev = SimEvent(sim)
        ev.succeed(7)
        assert ev.triggered and ev.ok and ev.result() == 7

    def test_fail_reraises(self, sim):
        ev = SimEvent(sim)
        ev.fail(ValueError("boom"))
        assert ev.triggered and not ev.ok
        with pytest.raises(ValueError, match="boom"):
            ev.result()

    def test_double_trigger_rejected(self, sim):
        ev = SimEvent(sim)
        ev.succeed()
        with pytest.raises(EventAlreadyTriggered):
            ev.succeed()
        with pytest.raises(EventAlreadyTriggered):
            ev.fail(RuntimeError())

    def test_result_before_trigger_raises(self, sim):
        with pytest.raises(RuntimeError):
            SimEvent(sim).result()

    def test_callbacks_before_and_after_trigger(self, sim):
        ev = SimEvent(sim)
        seen = []
        ev.add_callback(lambda e: seen.append("before"))
        ev.succeed()
        ev.add_callback(lambda e: seen.append("after"))
        assert seen == ["before", "after"]


class TestCombinators:
    def test_allof_collects_values_in_input_order(self, sim):
        evs = [SimEvent(sim) for _ in range(3)]
        combo = AllOf(sim, evs)
        evs[2].succeed("c")
        evs[0].succeed("a")
        assert not combo.triggered
        evs[1].succeed("b")
        assert combo.result() == ["a", "b", "c"]

    def test_allof_empty_succeeds_immediately(self, sim):
        assert AllOf(sim, []).result() == []

    def test_allof_fails_fast(self, sim):
        evs = [SimEvent(sim) for _ in range(2)]
        combo = AllOf(sim, evs)
        evs[0].fail(KeyError("k"))
        assert combo.triggered
        with pytest.raises(KeyError):
            combo.result()

    def test_allof_with_pretriggered_events(self, sim):
        done = SimEvent(sim)
        done.succeed(1)
        combo = AllOf(sim, [done, done])
        assert combo.result() == [1, 1]

    def test_anyof_returns_first(self, sim):
        evs = [SimEvent(sim) for _ in range(3)]
        combo = AnyOf(sim, evs)
        evs[1].succeed("winner")
        assert combo.result() == (1, "winner")
        evs[0].succeed("late")  # no error, ignored
        assert combo.result() == (1, "winner")

    def test_anyof_requires_events(self, sim):
        with pytest.raises(ValueError):
            AnyOf(sim, [])

    def test_anyof_propagates_failure(self, sim):
        evs = [SimEvent(sim) for _ in range(2)]
        combo = AnyOf(sim, evs)
        evs[0].fail(OSError("io"))
        with pytest.raises(OSError):
            combo.result()


class TestLatch:
    def test_counts_down_to_open(self, sim):
        latch = Latch(sim, 3)
        for i in range(2):
            latch.count_down()
            assert not latch.wait().triggered
        latch.count_down()
        assert latch.wait().triggered

    def test_zero_latch_open_immediately(self, sim):
        assert Latch(sim, 0).wait().triggered

    def test_negative_count_rejected(self, sim):
        with pytest.raises(ValueError):
            Latch(sim, -1)

    def test_count_down_after_open_rejected(self, sim):
        latch = Latch(sim, 1)
        latch.count_down()
        with pytest.raises(RuntimeError):
            latch.count_down()

    def test_count_down_by_multiple(self, sim):
        latch = Latch(sim, 5)
        latch.count_down(by=5)
        assert latch.wait().triggered


class TestSimQueue:
    def test_fifo_buffering(self, sim):
        q = SimQueue(sim)
        q.put(1)
        q.put(2)
        assert q.get().result() == 1
        assert q.get().result() == 2

    def test_waiter_woken_by_put(self, sim):
        q = SimQueue(sim)
        ev = q.get()
        assert not ev.triggered
        q.put("x")
        assert ev.result() == "x"

    def test_waiters_served_fifo(self, sim):
        q = SimQueue(sim)
        first, second = q.get(), q.get()
        q.put("a")
        q.put("b")
        assert first.result() == "a" and second.result() == "b"

    def test_len_counts_buffered_only(self, sim):
        q = SimQueue(sim)
        q.get()
        assert len(q) == 0
        q.put(1)
        q.put(2)  # first put woke the waiter
        assert len(q) == 1

    def test_get_nowait_raises_when_empty(self, sim):
        q = SimQueue(sim)
        with pytest.raises(IndexError):
            q.get_nowait()

    def test_remove_specific_item(self, sim):
        q = SimQueue(sim)
        q.put("a")
        q.put("b")
        q.remove("a")
        assert q.peek_all() == ["b"]


def test_timeouts_compose_with_allof(sim):
    combo = AllOf(sim, [Timeout(sim, 1.0, "a"), Timeout(sim, 3.0, "b")])
    sim.run()
    assert combo.result() == ["a", "b"]
    assert sim.now == 3.0
