"""Tests for the Jacobi3D convergence-check extension (reduction-based).

The paper runs a fixed iteration count "without convergence checks, to
evaluate the performance of point-to-point communication"; this extension
adds the residual allreduce a production Jacobi would use — a per-block
residual kernel, a max-reduction to element 0, and a broadcast releasing
every block with the global verdict.
"""

import numpy as np
import pytest

from repro.apps.jacobi3d.charm_impl import run_charm_jacobi
from repro.apps.jacobi3d.decomposition import Decomposition
from repro.config import MachineConfig


class TestConvergence:
    def test_terminates_early_with_loose_tolerance(self):
        """With zero boundary conditions the field decays toward 0; a loose
        tolerance must stop the run before the iteration cap."""
        cfg = MachineConfig.summit(nodes=1)
        decomp = Decomposition.create((12, 12, 12), 6)
        col = run_charm_jacobi(
            cfg, decomp, gpu_aware=True, iters=200, warmup=0, functional=True,
            check_interval=5, tolerance=0.05,
        )
        n_iters = len(col.timings[0].iter_times)
        assert n_iters < 200
        assert n_iters % 5 == 0  # stops only at check iterations

    def test_all_blocks_stop_at_the_same_iteration(self):
        cfg = MachineConfig.summit(nodes=1)
        decomp = Decomposition.create((12, 12, 12), 6)
        col = run_charm_jacobi(
            cfg, decomp, gpu_aware=True, iters=100, warmup=0, functional=True,
            check_interval=4, tolerance=0.05,
        )
        lengths = {len(t.iter_times) for t in col.timings.values()}
        assert len(lengths) == 1

    def test_residual_decreases_between_checks(self):
        """Run twice with tight/loose tolerance: the tighter run needs at
        least as many iterations (residual is monotone here)."""
        cfg = MachineConfig.summit(nodes=1)
        decomp = Decomposition.create((12, 12, 12), 6)
        loose = run_charm_jacobi(
            cfg, decomp, gpu_aware=True, iters=300, warmup=0, functional=True,
            check_interval=2, tolerance=0.08,
        )
        tight = run_charm_jacobi(
            cfg, decomp, gpu_aware=True, iters=300, warmup=0, functional=True,
            check_interval=2, tolerance=0.02,
        )
        assert len(tight.timings[0].iter_times) >= len(loose.timings[0].iter_times)

    def test_result_still_matches_reference_at_stop(self):
        from repro.apps.jacobi3d.common import initial_field
        from repro.apps.jacobi3d.kernels import jacobi_reference_step

        cfg = MachineConfig.summit(nodes=1)
        domain = (12, 12, 12)
        decomp = Decomposition.create(domain, 6)
        col = run_charm_jacobi(
            cfg, decomp, gpu_aware=True, iters=50, warmup=0, functional=True,
            check_interval=5, tolerance=0.05,
        )
        n_iters = len(col.timings[0].iter_times)
        u = np.zeros(tuple(d + 2 for d in domain))
        u[1:-1, 1:-1, 1:-1] = initial_field(decomp)
        for _ in range(n_iters):
            u = jacobi_reference_step(u)
        assert np.allclose(col.assemble(decomp), u[1:-1, 1:-1, 1:-1])

    def test_unchecked_run_unaffected(self):
        """check_interval=0 (the paper's configuration) is the default and
        runs exactly ``iters`` iterations."""
        cfg = MachineConfig.summit(nodes=1)
        decomp = Decomposition.create((12, 12, 12), 6)
        col = run_charm_jacobi(cfg, decomp, gpu_aware=True, iters=7, warmup=0,
                               functional=True)
        assert len(col.timings[0].iter_times) == 7

    def test_convergence_check_costs_time(self):
        """The residual kernel + reduction + broadcast add measurable time
        per checked iteration (why the paper leaves them out)."""
        cfg = MachineConfig.summit(nodes=1)
        decomp = Decomposition.create((48, 48, 48), 6)
        plain = run_charm_jacobi(cfg, decomp, gpu_aware=True, iters=6, warmup=1,
                                 functional=False)
        checked = run_charm_jacobi(cfg, decomp, gpu_aware=True, iters=6, warmup=1,
                                   functional=False, check_interval=1,
                                   tolerance=0.0)
        assert checked.avg_iter_time() > plain.avg_iter_time()
