"""Golden comparison: tracing/flight on must be *bit-identical* to off.

The observability layer is observation-only — spans, charges, histograms
and flight records never call ``sim.schedule``, never change a modeled
delay, and counters are incremented identically in both modes.  These
tests run the same deterministic workloads with ``trace``/``flight``
on and off and compare full simulation fingerprints (clocks, event
counts, payloads, counters), in the style of
``tests/test_matching_golden.py``.
"""

import pytest

import repro.api as api
from repro.apps.osu.runner import run_bandwidth, run_latency
from repro.config import MachineConfig
from tests.test_matching_golden import _make_program, make_plan


def _config(trace, flight=False):
    return MachineConfig.summit(nodes=2).with_trace(trace).with_flight(flight)


# ---------------------------------------------------------------------------
# mixed matching workload (host + device, exact + wildcard receives)
# ---------------------------------------------------------------------------

def _run_mixed(model, plan, trace):
    sess = api.session(_config(trace)).model(model).build()
    payloads, finish = {}, {}
    done = sess.launch(_make_program(plan, sess.sim, payloads, finish))
    sess.run_until(done, max_events=50_000_000)
    return {
        "payloads": payloads,
        "finish_times": finish,
        "now": sess.now,
        "event_count": sess.sim.event_count,
        "counters": dict(sess.counters),
    }


@pytest.mark.parametrize("model,seed", [("openmpi", 0), ("openmpi", 2), ("ampi", 1)])
def test_mixed_workload_fingerprint(model, seed):
    plan = make_plan(seed, n_msgs=50)
    off = _run_mixed(model, plan, trace=False)
    on = _run_mixed(model, plan, trace=True)
    assert on == off
    assert len(off["payloads"]) == 50


# ---------------------------------------------------------------------------
# OSU microbenchmarks across all four models
# ---------------------------------------------------------------------------

def _latency_fingerprint(model, trace, size, placement):
    sess = api.session(_config(trace)).model(model).build()
    lat = run_latency(model, size, placement, True, session=sess, iters=6, skip=2)
    return {
        "latency": lat,
        "now": sess.now,
        "event_count": sess.sim.event_count,
        "counters": dict(sess.counters),
    }


@pytest.mark.parametrize("model", ["charm", "ampi", "openmpi", "charm4py"])
@pytest.mark.parametrize("placement,size", [("intra", 8), ("inter", 256 * 1024)])
def test_osu_latency_fingerprint(model, placement, size):
    off = _latency_fingerprint(model, False, size, placement)
    on = _latency_fingerprint(model, True, size, placement)
    assert on == off
    assert off["latency"] > 0

    # tracing actually produced a span tree on the traced run
    sess = api.session(_config(True)).model(model).build()
    run_latency(model, size, placement, True, session=sess, iters=6, skip=2)
    assert sess.tracer.spans
    assert any(s.parent_sid >= 0 for s in sess.tracer.spans)


@pytest.mark.parametrize("model", ["charm", "ampi", "openmpi", "charm4py"])
@pytest.mark.parametrize("placement,size", [("intra", 8), ("inter", 256 * 1024)])
def test_osu_latency_flight_fingerprint(model, placement, size):
    """Flight recording must not disturb the simulation fingerprint."""

    def fp(flight):
        sess = api.session(_config(False, flight)).model(model).build()
        lat = run_latency(model, size, placement, True, session=sess,
                          iters=6, skip=2)
        return {
            "latency": lat,
            "now": sess.now,
            "event_count": sess.sim.event_count,
            "counters": dict(sess.counters),
        }

    off, on = fp(False), fp(True)
    assert on == off

    # the flight run actually recorded complete lifecycles
    sess = api.session(_config(False, True)).model(model).build()
    run_latency(model, size, placement, True, session=sess, iters=6, skip=2)
    recs = sess.flight_records()
    assert recs and all(r.complete for r in recs)
    proto = "rndv" if size >= 4096 else "eager"
    assert all(r.protocol == proto for r in recs)
    if proto == "rndv":
        assert sess.flight_summary()["delayed_posting_seconds"] >= 0.0


@pytest.mark.parametrize("model,seed", [("openmpi", 0), ("ampi", 1)])
def test_mixed_workload_flight_fingerprint(model, seed):
    """Flight on/off fingerprints also match under mixed wildcard matching."""
    plan = make_plan(seed, n_msgs=30)

    def fp(flight):
        sess = api.session(_config(False, flight)).model(model).build()
        payloads, finish = {}, {}
        done = sess.launch(_make_program(plan, sess.sim, payloads, finish))
        sess.run_until(done, max_events=50_000_000)
        return {
            "payloads": payloads,
            "finish_times": finish,
            "now": sess.now,
            "event_count": sess.sim.event_count,
            "counters": dict(sess.counters),
        }

    assert fp(True) == fp(False)


# ---------------------------------------------------------------------------
# resource telemetry: on/off fingerprints across all four models
# ---------------------------------------------------------------------------

def _telemetry_config(enabled):
    return MachineConfig.summit(nodes=2).with_telemetry(enabled)


@pytest.mark.parametrize("model", ["charm", "ampi", "openmpi", "charm4py"])
@pytest.mark.parametrize("placement,size", [("intra", 8), ("inter", 256 * 1024)])
def test_osu_latency_telemetry_fingerprint(model, placement, size):
    """Telemetry sampling must not perturb the simulation by a single bit."""

    def fp(telemetry):
        sess = api.session(_telemetry_config(telemetry)).model(model).build()
        lat = run_latency(model, size, placement, True, session=sess,
                          iters=6, skip=2)
        return {
            "latency": lat,
            "now": sess.now,
            "event_count": sess.sim.event_count,
            "counters": dict(sess.counters),
        }

    off, on = fp(False), fp(True)
    assert on == off

    # the telemetry run actually recorded series (and the off run cannot)
    sess = api.session(_telemetry_config(True)).model(model).build()
    run_latency(model, size, placement, True, session=sess, iters=6, skip=2)
    doc = sess.timeline()
    assert doc["enabled"] and doc["series"]
    if size >= 4096:  # tiny messages may bypass the modeled links entirely
        assert any(name.startswith("link.") for name in doc["series"])


@pytest.mark.parametrize("model,seed", [("openmpi", 0), ("ampi", 1)])
def test_mixed_workload_telemetry_fingerprint(model, seed):
    plan = make_plan(seed, n_msgs=30)

    def fp(telemetry):
        sess = api.session(_telemetry_config(telemetry)).model(model).build()
        payloads, finish = {}, {}
        done = sess.launch(_make_program(plan, sess.sim, payloads, finish))
        sess.run_until(done, max_events=50_000_000)
        return {
            "payloads": payloads,
            "finish_times": finish,
            "now": sess.now,
            "event_count": sess.sim.event_count,
            "counters": dict(sess.counters),
        }

    assert fp(True) == fp(False)


@pytest.mark.parametrize("model", ["ampi", "charm4py"])
def test_osu_bandwidth_fingerprint(model):
    def fp(trace):
        sess = api.session(_config(trace)).model(model).build()
        bw = run_bandwidth(model, 64 * 1024, "inter", True, session=sess,
                           loops=2, skip=1, window=8)
        return {
            "bw": bw,
            "now": sess.now,
            "event_count": sess.sim.event_count,
            "counters": dict(sess.counters),
        }

    off, on = fp(False), fp(True)
    assert on == off
    assert off["bw"] > 0
