"""Tests for Charm4py: channels, futures, coroutines, Python costs."""

import pytest

from repro.charm4py import Charm4py, PyChare
from repro.config import KB, MachineConfig, MB
from repro.sim.primitives import SimEvent


@pytest.fixture
def c4p():
    return Charm4py(MachineConfig.summit(nodes=2))


class Pair(PyChare):
    def __init__(self, out):
        self.out = out

    def run_host(self, partner):
        ch = self.c4p.channel(self, partner)
        if self.thisIndex == 0:
            yield ch.send({"greeting": "hi"})
            reply = yield ch.recv()
            self.out["reply"] = reply
        else:
            msg = yield ch.recv()
            self.out["got"] = msg
            yield ch.send("ack")

    def run_device(self, partner, size):
        cuda = self.c4p.cuda
        ch = self.c4p.channel(self, partner)
        buf = cuda.malloc(self.gpu, size)
        if self.thisIndex == 0:
            buf.data[:] = 6
            yield ch.send(buf, size)
        else:
            yield ch.recv(buf, size)
            self.out["ok"] = bool((buf.data == 6).all())


class TestChannels:
    def test_host_object_roundtrip(self, c4p):
        out = {}
        arr = c4p.create_array(Pair, 2, out, mapping=lambda i: i)
        arr[0].run_host(arr[1])
        arr[1].run_host(arr[0])
        c4p.charm.run(max_events=200000)
        assert out["got"] == {"greeting": "hi"} and out["reply"] == "ack"

    @pytest.mark.parametrize("size", [256, 64 * KB])
    def test_device_buffer_transfer(self, c4p, size):
        out = {}
        arr = c4p.create_array(Pair, 2, out, mapping=lambda i: i)
        arr[0].run_device(arr[1], size)
        arr[1].run_device(arr[0], size)
        c4p.charm.run(max_events=200000)
        assert out["ok"]

    def test_channel_ordering(self, c4p):
        out = {"got": []}

        class Ordered(PyChare):
            def __init__(self, out):
                self.out = out

            def run(self, partner):
                ch = self.c4p.channel(self, partner)
                if self.thisIndex == 0:
                    for i in range(5):
                        yield ch.send(i)
                else:
                    for _ in range(5):
                        v = yield ch.recv()
                        self.out["got"].append(v)

        arr = c4p.create_array(Ordered, 2, out, mapping=lambda i: i)
        arr[0].run(arr[1])
        arr[1].run(arr[0])
        c4p.charm.run(max_events=200000)
        assert out["got"] == list(range(5))

    def test_device_send_signature_enforced(self, c4p):
        out = {}
        arr = c4p.create_array(Pair, 2, out, mapping=lambda i: i)
        chare = c4p.charm.chares[arr[0].chare_id]
        ch = c4p.channel(chare, arr[1])
        buf = c4p.cuda.malloc(0, 64)
        with pytest.raises(TypeError):
            ch.send(buf)  # missing size
        with pytest.raises(ValueError):
            ch.send(buf, 128)  # exceeds buffer

    def test_device_recv_signature_enforced(self, c4p):
        out = {}
        arr = c4p.create_array(Pair, 2, out, mapping=lambda i: i)
        chare = c4p.charm.chares[arr[0].chare_id]
        ch = c4p.channel(chare, arr[1])
        with pytest.raises(TypeError):
            ch.recv(c4p.cuda.malloc_host(0, 8), 8)  # host buffer

    def test_host_packet_into_device_recv_raises(self, c4p):
        class Bad(PyChare):
            def __init__(self):
                pass

            def run(self, partner):
                ch = self.c4p.channel(self, partner)
                if self.thisIndex == 0:
                    yield ch.send("host-object")
                else:
                    buf = self.c4p.cuda.malloc(self.gpu, 64)
                    yield ch.recv(buf, 64)

        arr = c4p.create_array(Bad, 2, mapping=lambda i: i)
        arr[0].run(arr[1])
        arr[1].run(arr[0])
        with pytest.raises(TypeError):
            c4p.charm.run(max_events=200000)


class TestFutures:
    def test_future_fulfilment_resumes_coroutine(self, c4p):
        out = {}

        class Waiter(PyChare):
            def __init__(self, fut):
                self.fut = fut

            def wait(self):
                v = yield self.fut.get()
                out["value"] = v
                out["time"] = self.c4p.sim.now

        fut = c4p.make_future()
        p = c4p.create_chare(Waiter, 0, fut)
        p.wait()
        c4p.sim.schedule(5e-6, fut.send, 99)
        c4p.charm.run(max_events=200000)
        assert out["value"] == 99
        # fulfilment pays the python-side cost
        assert out["time"] >= 5e-6 + c4p.rt.future_fulfill_overhead

    def test_future_state(self, c4p):
        fut = c4p.make_future()
        assert not fut.fulfilled
        fut.send("v")
        c4p.charm.run()
        assert fut.fulfilled


class TestPythonCosts:
    def test_entry_dispatch_pays_python_overhead(self):
        """The same entry-method exchange is slower through Charm4py than
        through raw Charm++ — the interpreter/Cython cost of Fig. 9."""
        from repro.charm import Charm, Chare

        class Bounce(Chare):
            def __init__(self, done):
                self.done = done
                self.n = 0

            def hit(self, partner):
                self.n += 1
                if self.n >= 10:
                    if not self.done.triggered:
                        self.done.succeed(self.charm.time)
                    return
                partner.hit(self.thisProxy)

        def run_charm():
            charm = Charm(MachineConfig.summit(nodes=1))
            done = SimEvent(charm.sim)
            a = charm.create_chare(Bounce, 0, done)
            b = charm.create_chare(Bounce, 1, done)
            a.hit(b)  # seed
            return charm.run_until(done, max_events=100000)

        class PyBounce(PyChare, Bounce):
            pass

        def run_c4p():
            c4p = Charm4py(MachineConfig.summit(nodes=1))
            done = SimEvent(c4p.sim)
            a = c4p.create_chare(PyBounce, 0, done)
            b = c4p.create_chare(PyBounce, 1, done)
            a.hit(b)
            return c4p.run_until(done, max_events=100000)

        assert run_c4p() > run_charm()

    def test_host_payload_serialisation_scales_with_size(self, c4p):
        big = c4p.cython.serialize_cost(4 * MB)
        small = c4p.cython.serialize_cost(1 * KB)
        assert big > 100 * small

    def test_cython_crossing_counted(self, c4p):
        before = c4p.cython.crossings
        c4p.cython.call_cost()
        assert c4p.cython.crossings == before + 1
