"""Tests for the Jacobi3D proxy app: decomposition, correctness, timing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.jacobi3d.charm_impl import run_charm_jacobi
from repro.apps.jacobi3d.charm4py_impl import run_charm4py_jacobi
from repro.apps.jacobi3d.common import initial_field
from repro.apps.jacobi3d.decomposition import (
    DIRS,
    Decomposition,
    best_grid,
    opposite,
    weak_scaling_domain,
)
from repro.apps.jacobi3d.kernels import jacobi_reference_step
from repro.apps.jacobi3d.mpi_impl import run_ampi_jacobi, run_openmpi_jacobi
from repro.config import MachineConfig


class TestDecomposition:
    def test_best_grid_divides_domain(self):
        grid = best_grid(6, (1536, 1536, 1536))
        assert sorted(grid) == [1, 2, 3]

    def test_best_grid_minimises_surface(self):
        # for a cube and p=8 the optimum is 2x2x2
        assert best_grid(8, (64, 64, 64)) == (2, 2, 2)

    def test_indivisible_rejected(self):
        with pytest.raises(ValueError):
            best_grid(7, (10, 10, 10))

    def test_weak_scaling_doubles_xyz_in_order(self):
        assert weak_scaling_domain(1536, 1) == (1536, 1536, 1536)
        assert weak_scaling_domain(1536, 2) == (3072, 1536, 1536)
        assert weak_scaling_domain(1536, 4) == (3072, 3072, 1536)
        assert weak_scaling_domain(1536, 8) == (3072, 3072, 3072)
        assert weak_scaling_domain(1536, 256) == (12288, 12288, 6144)

    def test_weak_scaling_requires_power_of_two(self):
        with pytest.raises(ValueError):
            weak_scaling_domain(1536, 3)

    def test_coords_rank_roundtrip(self):
        d = Decomposition.create((24, 24, 24), 12)
        for r in range(d.n_blocks):
            assert d.rank_of(*d.coords(r)) == r

    def test_neighbor_symmetry(self):
        d = Decomposition.create((24, 24, 24), 12)
        for r in range(d.n_blocks):
            for direction, n in d.neighbors(r):
                assert d.neighbor(n, opposite(direction)) == r

    def test_boundary_blocks_have_no_outside_neighbors(self):
        d = Decomposition.create((12, 12, 12), 6)
        assert d.neighbor(0, "-x") is None
        assert d.neighbor(0, "-y") is None

    def test_face_bytes(self):
        d = Decomposition.create((12, 24, 48), 6)  # grid divides
        bx, by, bz = d.block
        assert d.face_bytes("+x") == by * bz * 8
        assert d.face_bytes("-z") == bx * by * 8

    def test_interior_block_has_six_neighbors(self):
        d = Decomposition.create((12, 12, 12), 27)
        center = d.rank_of(1, 1, 1)
        assert len(d.neighbors(center)) == 6

    @given(
        p=st.sampled_from([6, 12, 24, 48]),
        edge=st.sampled_from([12, 24, 48]),
    )
    @settings(max_examples=20, deadline=None)
    def test_blocks_tile_domain_exactly(self, p, edge):
        d = Decomposition.create((edge, edge, edge), p)
        px, py, pz = d.grid
        bx, by, bz = d.block
        assert px * bx == edge and py * by == edge and pz * bz == edge
        assert d.n_blocks == p
        # every cell belongs to exactly one block
        assert d.cells_per_block * d.n_blocks == edge ** 3

    def test_halo_bytes_counts_all_faces(self):
        d = Decomposition.create((12, 12, 12), 27)
        center = d.rank_of(1, 1, 1)
        assert d.halo_bytes(center) == 6 * d.face_bytes("+x")


RUNNERS = {
    "charm": run_charm_jacobi,
    "ampi": run_ampi_jacobi,
    "openmpi": run_openmpi_jacobi,
    "charm4py": run_charm4py_jacobi,
}


def reference_solution(domain, iters):
    decomp = Decomposition.create(domain, 6)
    u = np.zeros(tuple(d + 2 for d in domain))
    u[1:-1, 1:-1, 1:-1] = initial_field(decomp)
    for _ in range(iters):
        u = jacobi_reference_step(u)
    return u[1:-1, 1:-1, 1:-1]


class TestFunctionalCorrectness:
    @pytest.mark.parametrize("model", sorted(RUNNERS))
    @pytest.mark.parametrize("gpu_aware", [True, False])
    def test_matches_reference(self, model, gpu_aware):
        domain = (12, 12, 12)
        cfg = MachineConfig.summit(nodes=1)
        decomp = Decomposition.create(domain, 6)
        col = RUNNERS[model](cfg, decomp, gpu_aware=gpu_aware, iters=3, warmup=0,
                             functional=True)
        got = col.assemble(decomp)
        ref = reference_solution(domain, 3)
        assert np.allclose(got, ref)

    def test_two_node_decomposition_correct(self):
        domain = (24, 12, 12)
        cfg = MachineConfig.summit(nodes=2)
        decomp = Decomposition.create(domain, 12)
        col = run_charm_jacobi(cfg, decomp, gpu_aware=True, iters=2, warmup=0,
                               functional=True)
        assert np.allclose(col.assemble(decomp), reference_solution(domain, 2))

    def test_overdecomposition_correct(self):
        domain = (24, 12, 12)
        cfg = MachineConfig.summit(nodes=1)
        decomp = Decomposition.create(domain, 12)  # 2 blocks per PE
        col = run_charm_jacobi(cfg, decomp, gpu_aware=True, iters=2, warmup=0,
                               functional=True, blocks_per_pe=2)
        assert np.allclose(col.assemble(decomp), reference_solution(domain, 2))


class TestTimingCollection:
    def test_timings_populated_and_positive(self):
        cfg = MachineConfig.summit(nodes=1)
        decomp = Decomposition.create((12, 12, 12), 6)
        col = run_charm_jacobi(cfg, decomp, gpu_aware=True, iters=4, warmup=1,
                               functional=False)
        assert col.avg_iter_time() > 0
        assert 0 < col.avg_comm_time() < col.avg_iter_time()

    def test_block_count_mismatch_rejected(self):
        cfg = MachineConfig.summit(nodes=1)
        decomp = Decomposition.create((12, 12, 12), 12)
        with pytest.raises(ValueError):
            run_charm_jacobi(cfg, decomp, gpu_aware=True)

    def test_double_report_rejected(self):
        from repro.apps.jacobi3d.common import BlockTimings, ResultCollector
        from repro.sim.engine import Simulator

        col = ResultCollector(Simulator(), n_blocks=2, warmup=0)
        col.report(0, BlockTimings([1.0], [0.5]))
        with pytest.raises(RuntimeError):
            col.report(0, BlockTimings([1.0], [0.5]))

    def test_mismatched_iteration_counts_detected(self):
        from repro.apps.jacobi3d.common import BlockTimings, ResultCollector
        from repro.sim.engine import Simulator

        col = ResultCollector(Simulator(), n_blocks=2, warmup=0)
        col.report(0, BlockTimings([1.0], [0.5]))
        col.report(1, BlockTimings([1.0, 2.0], [0.5, 0.6]))
        with pytest.raises(RuntimeError):
            col.avg_iter_time()


class TestPaperShapes:
    def test_gpu_aware_faster_at_one_node(self):
        """Fig. 14-16, 1 node: D comm is several times faster than H."""
        from repro.apps.jacobi3d.driver import run_jacobi

        d = run_jacobi("charm", nodes=1, gpu_aware=True, iters=2, warmup=1)
        h = run_jacobi("charm", nodes=1, gpu_aware=False, iters=2, warmup=1)
        assert h.comm_time / d.comm_time > 3
        assert h.iter_time > d.iter_time

    def test_comm_share_grows_with_scale(self):
        from repro.apps.jacobi3d.driver import run_jacobi

        small = run_jacobi("charm", nodes=1, gpu_aware=True, iters=2, warmup=1)
        large = run_jacobi("charm", nodes=4, gpu_aware=True, iters=2, warmup=1)
        assert large.comm_time / large.iter_time > small.comm_time / small.iter_time
