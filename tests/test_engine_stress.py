"""Property-style stress tests for the slot-based event core.

Randomized (seeded) schedule/cancel workloads are replayed on both the new
slot core (:class:`repro.sim.engine.Simulator`) and the retained old heap
core (:class:`repro.sim.reference.ReferenceSimulator`); the firing order,
firing times, clock and event counts must match exactly.  The reference
core is the golden oracle until the slot core has soaked, after which both
it and these comparisons can be deleted.

The calendar-lane tests force engagement with tiny thresholds so the
bucket fast lane — normally reserved for paper-scale agendas — is exercised
end to end (engage, bucket advance, disengage) and shown to be bit-exact
against plain-heap order.
"""

import random

import pytest

from repro.sim.engine import Simulator
from repro.sim.reference import ReferenceSimulator


class _Workload:
    """One deterministic schedule/cancel workload driven by a seeded RNG.

    Both engines replay the same seed; every RNG draw happens inside event
    callbacks, so the draw sequence (and thus the whole workload) is
    identical iff the engines fire events in the same order — any
    divergence shows up as a differing log.
    """

    #: quantized delays: heavy tie traffic plus zero-delay chains
    DELAYS = (0.0, 0.0, 1e-9, 2.5e-7, 2.5e-7, 1e-6, 3e-6, 1e-4, 0.5)

    def __init__(self, sim, seed: int) -> None:
        self.sim = sim
        self.rng = random.Random(seed)
        self.log = []
        self.handles = []
        self.next_id = 0
        self.budget = 3000  # total events allowed to spawn children

    def seed_events(self, n: int) -> None:
        for _ in range(n):
            self._spawn(self.rng.choice(self.DELAYS))

    def _spawn(self, delay: float) -> None:
        eid = self.next_id
        self.next_id += 1
        self.handles.append(self.sim.schedule(delay, self._fire, eid))

    def _fire(self, eid: int) -> None:
        self.log.append((eid, self.sim.now))
        self.budget -= 1
        if self.budget <= 0:
            return
        r = self.rng.random()
        if r < 0.45:
            self._spawn(self.rng.choice(self.DELAYS))
            if r < 0.15:  # occasional burst: more same-instant ties
                self._spawn(0.0)
        elif r < 0.65 and self.handles:
            # cancel a random handle: may be pending, fired, or already
            # cancelled (double-cancel and cancel-after-fire paths)
            self.rng.choice(self.handles).cancel()
        elif r < 0.75:
            self.sim.schedule_at(self.sim.now + self.rng.choice(self.DELAYS),
                                 self._fire, self._alloc_id())

    def _alloc_id(self) -> int:
        eid = self.next_id
        self.next_id += 1
        return eid


def _run_workload(sim, seed: int, roots: int = 200):
    w = _Workload(sim, seed)
    w.seed_events(roots)
    sim.run(max_events=50_000)
    return w.log, sim.now, sim.event_count


@pytest.mark.parametrize("seed", [0, 1, 7, 42, 1234, 99991])
def test_firing_order_matches_reference(seed):
    new_log, new_now, new_count = _run_workload(Simulator(), seed)
    ref_log, ref_now, ref_count = _run_workload(ReferenceSimulator(), seed)
    assert new_log == ref_log
    assert new_now == ref_now  # bit-equal, not approx
    assert new_count == ref_count


@pytest.mark.parametrize("seed", [3, 17, 2024])
def test_firing_order_matches_reference_with_calendar_forced(seed):
    sim = Simulator()
    # force the calendar lane to engage (and fold back) inside a workload
    # the plain heap would otherwise serve alone
    sim._CALENDAR_ENGAGE = 64
    sim._CALENDAR_DISENGAGE = 16
    sim._engage_at = 64
    new_log, new_now, new_count = _run_workload(sim, seed, roots=500)
    ref_log, ref_now, ref_count = _run_workload(ReferenceSimulator(), seed,
                                                roots=500)
    assert new_log == ref_log
    assert new_now == ref_now
    assert new_count == ref_count


def test_calendar_lane_engages_and_disengages():
    sim = Simulator()
    sim._CALENDAR_ENGAGE = 64
    sim._CALENDAR_DISENGAGE = 16
    sim._engage_at = 64
    fired = []
    rng = random.Random(5)
    expect = []
    for i in range(1000):
        d = rng.random() * 1e-3
        expect.append((d, i))
        sim.schedule(d, fired.append, i)
    assert sim._engaged  # the push volume crossed the engage threshold
    sim.run()
    assert fired == [i for _, i in sorted(expect)]
    assert not sim._engaged  # drained agendas fold back to the plain heap
    assert sim.pending_events == 0
    assert len(sim._free) == len(sim._fn)  # every slot reclaimed


def test_calendar_lane_handles_ties_and_infinite_times():
    sim = Simulator()
    sim._CALENDAR_ENGAGE = 32
    sim._CALENDAR_DISENGAGE = 8
    sim._engage_at = 32
    fired = []
    for i in range(50):
        sim.schedule(1.0, fired.append, i)  # all-tied: engagement refused
    for i in range(50, 100):
        sim.schedule(float(i), fired.append, i)
    h = sim.schedule(float("inf"), fired.append, "never")
    sim.run(until=99.0)
    assert fired == list(range(100))
    h.cancel()
    sim.run()
    assert fired == list(range(100))


def test_degenerate_spread_backs_off_then_engages():
    sim = Simulator()
    sim._CALENDAR_ENGAGE = 32
    sim._CALENDAR_DISENGAGE = 8
    sim._engage_at = 32
    # first wave is all-tied: _engage must refuse and double the trigger
    for i in range(40):
        sim.schedule(1.0, lambda: None)
    assert not sim._engaged
    assert sim._engage_at == 64
    # a spread-out second wave crosses the doubled trigger and engages
    for i in range(40):
        sim.schedule(1.0 + i * 0.01, lambda: None)
    assert sim._engaged
    sim.run()
    assert sim.pending_events == 0
