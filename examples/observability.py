#!/usr/bin/env python3
"""Observability tour: span-tree tracing, metrics, and timeline export.

Builds a traced AMPI session through the :mod:`repro.api` facade, runs an
OSU-style device ping-pong, then shows the three outputs of the
observability subsystem:

1. the hierarchical span tree (model -> machine -> UCX protocol),
2. the metrics snapshot (counters, size/latency histograms, per-layer
   time — the input of the §IV-B1 overhead-anatomy decomposition),
3. the flight recorder: per-message transfer lifecycles and the
   delayed-posting cost of metadata-gated rendezvous transfers,
4. the critical-path layer-blame report,
5. a Chrome-trace JSON timeline, viewable at https://ui.perfetto.dev.

Run:  python examples/observability.py [timeline.json]
"""

import sys

import repro.api as api
from repro.apps.osu.runner import run_latency
from repro.config import MachineConfig


def show_tree(tracer, span, depth=0, max_depth=3):
    dur = f"{span.duration * 1e6:7.2f} us" if span.end_time is not None else "  (open)"
    print(f"  {'  ' * depth}{span.category}/{span.name:<18} {dur}")
    if depth < max_depth:
        for child in tracer.span_children(span):
            show_tree(tracer, child, depth + 1, max_depth)


def main():
    cfg = MachineConfig.summit(nodes=2).with_trace(True).with_flight(True)
    sess = api.session(cfg).model("ampi").build()

    lat = run_latency("ampi", 4096, "inter", True, session=sess, iters=8, skip=2)
    print(f"AMPI inter-node 4 KiB device latency: {lat * 1e6:.2f} us\n")

    print("== span tree (first round trip) ==")
    for root in sess.tracer.span_roots()[:4]:
        show_tree(sess.tracer, root)

    snap = sess.metrics_snapshot()
    print("\n== metrics snapshot ==")
    n = snap["counters"]["converse.send_device"]
    print(f"device messages: {n}")
    print("per-message CPU time by layer:")
    for cat, t in sorted(snap["time_by_category"].items()):
        print(f"  {cat:>10}: {t / n * 1e6:6.2f} us")
    sizes = snap["histograms"]["ucx.send_size_bytes"]
    print(f"send sizes observed: {sizes['count']} "
          f"(mean {sizes['sum'] / sizes['count']:.0f} B)")

    print("\n== flight recorder: delayed-posting cost ==")
    agg = sess.flight_summary()
    for proto in ("rndv", "eager"):
        p = agg["by_protocol"][proto]
        print(f"  {proto:>5}: {p['n']:3d} transfers, delayed-posting "
              f"{p['delayed_posting_seconds'] * 1e6:6.2f} us total "
              f"(max {p['max_delayed_posting_seconds'] * 1e6:.2f} us), "
              f"{p['unexpected']} unexpected arrivals")
    print(f"  posting-order inversions: {agg['posting_inversions']}")

    # eager transfers complete without waiting for the receiver: an 8 B
    # intra-node run shows zero delayed-posting cost by construction
    eager_sess = api.session(cfg).model("ampi").build()
    run_latency("ampi", 8, "intra", True, session=eager_sess, iters=8, skip=2)
    eagg = eager_sess.flight_summary()
    print(f"  (8 B intra run: eager delayed-posting "
          f"{eagg['delayed_posting_seconds'] * 1e6:.2f} us — always zero)")

    print("\n== critical-path layer blame ==")
    print(sess.critical_path().format())

    out = sys.argv[1] if len(sys.argv) > 1 else "timeline.json"
    path = sess.export_chrome_trace(out)
    print(f"\ntimeline written to {path} — open it at https://ui.perfetto.dev")


if __name__ == "__main__":
    main()
