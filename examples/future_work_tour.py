#!/usr/bin/env python3
"""A tour of the paper's future-work items, implemented and measurable.

The paper's §VI sketches four directions; this repository builds them all:

1. GPU-data collectives translated to point-to-point calls
   (``allreduce_device`` with on-GPU combine kernels);
2. pre-posted device receives (what user-provided tags would enable),
   quantified against the metadata-delayed design;
3. overdecomposition for communication/computation overlap in Jacobi3D;
4. what a GPUDirect-RDMA fabric would buy over Summit's pipelined staging.

Run:  python examples/future_work_tour.py
"""

import numpy as np

from repro.bench.figures import (
    ablation_early_post,
    ablation_gpudirect,
    ablation_overdecomposition,
)
import repro.api as api
from repro.config import MachineConfig, MB


def demo_device_allreduce():
    print("== 1. GPU-data allreduce over point-to-point ==")
    sess = api.session(MachineConfig.summit(nodes=2)).model("ampi").build()
    charm, ampi = sess.charm, sess.lib
    results = {}

    def program(mpi):
        buf = mpi.charm.cuda.malloc(mpi.gpu, 1024)
        buf.data.view(np.float64)[:] = float(mpi.rank)
        yield from mpi.allreduce_device(buf, 1024, "sum")
        results[mpi.rank] = float(buf.data.view(np.float64)[0])

    charm.run_until(ampi.launch(program), max_events=10_000_000)
    expect = sum(range(ampi.n_ranks))
    ok = all(v == expect for v in results.values())
    print(f"   {ampi.n_ranks} GPUs allreduce(sum): every rank holds "
          f"{expect} on device  [{'ok' if ok else 'WRONG'}]")
    print(f"   finished at t={charm.time * 1e6:.1f} us\n")


def demo_hierarchical_allreduce():
    print("== 1b. topology-aware algorithm selection at scale ==")
    # 64 ranks / 11 nodes / 1 MB: the selector decomposes the allreduce in
    # two levels — NVLink reduce-scatter+gather inside each node, an IB
    # tree among node leaders — because the link model prices it below
    # every flat algorithm.  Force flat to see what that choice is worth.
    times = {}
    for label, knobs in (("auto (hierarchical)", {}),
                         ("best flat", {"hierarchical_enabled": False})):
        sess = (api.session(MachineConfig.summit(nodes=11))
                .model("ampi").ranks(64).trace()
                .collectives(**knobs).build())

        def program(rank):
            buf = rank.charm.cuda.malloc(rank.gpu, 1 * MB)
            yield from rank.allreduce_device(buf, 1 * MB)

        sess.run_until(sess.launch(program), max_events=100_000_000)
        times[label] = sess.now
        summary = sess.collectives_summary()
        picked = [k.split(".")[-1] for k in summary["invocations"]
                  if k.startswith("allreduce.")]
        print(f"   {label:20}: {sess.now * 1e6:7.1f} us "
              f"(ran {picked[0]}; intra {summary['intra_time_us']:.0f} us, "
              f"inter {summary['inter_time_us']:.0f} us of phase time)")
    speedup = times["best flat"] / times["auto (hierarchical)"]
    print(f"   two-level decomposition is {speedup:.2f}x faster at "
          f"64 ranks x 1 MB\n")


def demo_early_post():
    print("== 2. pre-posted receives vs metadata-delayed posting ==")
    r = ablation_early_post(size=1 * MB, quiet=True)
    print(f"   1 MB device rendezvous, receive pre-posted : "
          f"{r['pre_posted_us']:8.2f} us")
    print(f"   ... posted after the metadata message      : "
          f"{r['metadata_delayed_us']:8.2f} us")
    print(f"   delayed-posting penalty                    : "
          f"{r['penalty_us']:8.2f} us\n")


def demo_overdecomposition():
    print("== 3. overdecomposition (blocks per PE) on Jacobi3D, 2 nodes ==")
    r = ablation_overdecomposition(blocks_per_pe=(1, 2, 4), nodes=2, quiet=True)
    base = r[1]
    for bpp, t in r.items():
        print(f"   {bpp} block(s)/PE: {t:7.3f} ms/iter "
              f"({t / base:4.2f}x of the no-overdecomposition run)")
    print()


def demo_gpudirect():
    print("== 4. pipelined host staging vs a GPUDirect-RDMA fabric ==")
    r = ablation_gpudirect(size=4 * MB, quiet=True)
    print(f"   4 MB inter-node device rendezvous, pipelined: "
          f"{r['pipelined_us']:8.2f} us")
    print(f"   ... with GPUDirect RDMA                     : "
          f"{r['gpudirect_us']:8.2f} us\n")


if __name__ == "__main__":
    demo_device_allreduce()
    demo_hierarchical_allreduce()
    demo_early_post()
    demo_overdecomposition()
    demo_gpudirect()
