#!/usr/bin/env python3
"""Jacobi3D weak scaling, host-staging vs GPU-aware (mini Fig. 14).

Runs the Charm++ Jacobi3D proxy application at increasing node counts with
the paper's weak-scaling rule (1536 cubed base domain, doubled in x, y, z
order) and prints overall and communication time per iteration.  Also
demonstrates the *functional* mode: a small grid is checked cell-for-cell
against a sequential reference before the timing runs.

Run:  python examples/jacobi3d_scaling.py
"""

import numpy as np

from repro.apps.jacobi3d import Decomposition, jacobi_reference_step, run_jacobi
from repro.apps.jacobi3d.charm_impl import run_charm_jacobi
from repro.apps.jacobi3d.common import initial_field
from repro.config import MachineConfig


def verify_small_grid():
    """Functional check: the distributed sweep equals the serial one."""
    domain = (12, 12, 12)
    decomp = Decomposition.create(domain, 6)
    col = run_charm_jacobi(MachineConfig.summit(nodes=1), decomp, gpu_aware=True,
                           iters=3, warmup=0, functional=True)
    got = col.assemble(decomp)

    u = np.zeros(tuple(d + 2 for d in domain))
    u[1:-1, 1:-1, 1:-1] = initial_field(decomp)
    for _ in range(3):
        u = jacobi_reference_step(u)
    assert np.allclose(got, u[1:-1, 1:-1, 1:-1]), "distributed != serial!"
    print("functional check on a 12^3 grid: distributed == serial  [ok]\n")


def main():
    verify_small_grid()

    print(f"{'nodes':>6} {'domain':>20} {'H overall':>11} {'D overall':>11} "
          f"{'H comm':>9} {'D comm':>9} {'comm speedup':>13}")
    for nodes in (1, 2, 4, 8):
        d = run_jacobi("charm", nodes=nodes, scaling="weak", gpu_aware=True,
                       iters=3, warmup=1)
        h = run_jacobi("charm", nodes=nodes, scaling="weak", gpu_aware=False,
                       iters=3, warmup=1)
        print(f"{nodes:>6} {str(d.domain):>20} "
              f"{h.iter_time * 1e3:>9.2f}ms {d.iter_time * 1e3:>9.2f}ms "
              f"{h.comm_time * 1e3:>7.2f}ms {d.comm_time * 1e3:>7.2f}ms "
              f"{h.comm_time / d.comm_time:>12.1f}x")
    print("\n(times per iteration; compare with paper Fig. 14a/b)")


if __name__ == "__main__":
    main()
