#!/usr/bin/env python3
"""Quickstart: GPU-aware entry-method invocation in (simulated) Charm++.

Builds a two-node Summit machine, creates two chares on different GPUs, and
sends a GPU buffer from one to the other through the UCX machine layer —
the paper's Fig. 4 flow: ``nocopydevice`` parameter, ``CkDeviceBuffer``
wrapper, post entry method naming the destination buffer, regular entry
method running once the GPU data has landed.

Run:  python examples/quickstart.py
"""

import repro.api as api
from repro.charm import Chare, CkDeviceBuffer
from repro.config import MachineConfig


class Receiver(Chare):
    """The paper's ``MyChare``: a post entry method + a regular entry."""

    def __init__(self, nbytes):
        # destination GPU buffer, allocated on this chare's GPU
        self.recv_gpu_data = self.charm.cuda.malloc(self.gpu, nbytes)

    def recv_post(self, posts, sender_name):
        # (2) post entry method: set the destination GPU buffer before the
        # runtime posts the tagged receive
        print(f"  [post ] incoming GPU buffer of {posts[0].size} B "
              f"(tag 0x{posts[0].tag:016x} from PE {posts[0].src_pe})")
        posts[0].buffer = self.recv_gpu_data

    def recv(self, data, sender_name):
        # (3) regular entry method: GPU data is available
        print(f"  [entry] GPU data from {sender_name!r} arrived at "
              f"t={self.charm.time * 1e6:.2f} us; "
              f"payload check: first byte = {data.data[0]}")


class Sender(Chare):
    def __init__(self, nbytes):
        self.send_gpu_data = self.charm.cuda.malloc(self.gpu, nbytes)
        self.send_gpu_data.data[:] = 42  # something recognisable

    def go(self, peer):
        # (1) sender: wrap the GPU buffer — the nocopydevice parameter
        print(f"  [send ] chare on PE {self.pe} (GPU {self.gpu}) sends "
              f"{self.send_gpu_data.size} B of device memory")
        peer.recv(CkDeviceBuffer.wrap(self.send_gpu_data), "sender-chare")


def main():
    nbytes = 64 * 1024

    # one PE per GPU on a 2-node simulated Summit (12 GPUs), built through
    # the unified facade (repro.api works the same for all four models)
    sess = api.session(MachineConfig.summit(nodes=2)).model("charm").build()
    charm = sess.lib
    print(f"machine: {charm.cfg.topology.nodes} nodes, "
          f"{charm.cfg.topology.total_gpus} GPUs, {charm.n_pes} PEs")

    sender = charm.create_chare(Sender, pe=0, nbytes=nbytes)
    receiver = charm.create_chare(Receiver, pe=7, nbytes=nbytes)  # other node

    sender.go(receiver)
    charm.run()

    print(f"done at t={charm.time * 1e6:.2f} us simulated")
    print(f"UCX device sends: {charm.layer.device_sends}, "
          f"device recvs: {charm.layer.device_recvs}")


if __name__ == "__main__":
    main()
