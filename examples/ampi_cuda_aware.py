#!/usr/bin/env python3
"""CUDA-aware MPI with AMPI: a 1-D halo exchange plus collectives.

Each rank owns a slab of a 1-D field on its GPU, exchanges boundary cells
with its neighbours by passing **device buffers straight to MPI calls**
(paper SIII-C: "GPU buffers can be directly provided to AMPI communication
primitives ... like any CUDA-aware MPI implementation"), then reduces a
convergence metric with an allreduce built over point-to-point.

Run:  python examples/ampi_cuda_aware.py
"""

import numpy as np

import repro.api as api
from repro.config import MachineConfig

CELLS_PER_RANK = 1024
ITERS = 5


def program(mpi):
    cuda = mpi.charm.cuda
    nbytes = CELLS_PER_RANK * 8
    halo_bytes = 8

    # the rank's slab lives on its GPU; halo cells at each end
    slab = cuda.malloc(mpi.gpu, nbytes)
    field = slab.data.view(np.float64)
    field[:] = float(mpi.rank)

    left_halo = cuda.malloc(mpi.gpu, halo_bytes)
    right_halo = cuda.malloc(mpi.gpu, halo_bytes)
    left_edge = cuda.malloc(mpi.gpu, halo_bytes)
    right_edge = cuda.malloc(mpi.gpu, halo_bytes)

    left = mpi.rank - 1 if mpi.rank > 0 else None
    right = mpi.rank + 1 if mpi.rank < mpi.size - 1 else None

    for it in range(ITERS):
        # pack edges (in real code: tiny pack kernels)
        left_edge.data.view(np.float64)[0] = field[0]
        right_edge.data.view(np.float64)[0] = field[-1]

        reqs = []
        if left is not None:
            reqs.append(mpi.irecv(left_halo, halo_bytes, src=left, tag=it))
            reqs.append(mpi.isend(left_edge, halo_bytes, dst=left, tag=it))
        if right is not None:
            reqs.append(mpi.irecv(right_halo, halo_bytes, src=right, tag=it))
            reqs.append(mpi.isend(right_edge, halo_bytes, dst=right, tag=it))
        yield mpi.waitall(reqs)

        # Jacobi-ish relaxation on the slab interior + halo boundaries
        lh = left_halo.data.view(np.float64)[0] if left is not None else field[0]
        rh = right_halo.data.view(np.float64)[0] if right is not None else field[-1]
        padded = np.concatenate(([lh], field, [rh]))
        field[:] = 0.5 * (padded[:-2] + padded[2:])

        # global residual via allreduce (collective over pt2pt)
        local = float(np.abs(np.diff(field)).sum())
        total = yield from mpi.allreduce(local, "sum")
        if mpi.rank == 0:
            print(f"  iter {it}: global residual {total:10.4f} "
                  f"at t={mpi.sim.now * 1e6:9.2f} us")

    # gather the mean of every slab at rank 0
    means = yield from mpi.gather(float(field.mean()), root=0)
    if mpi.rank == 0:
        print(f"  slab means: {[f'{m:.3f}' for m in means]}")


def main():
    sess = api.session(MachineConfig.summit(nodes=2)).model("ampi").build()
    ampi = sess.lib
    print(f"running {ampi.n_ranks} CUDA-aware AMPI ranks "
          f"({sess.config.topology.nodes} nodes)")
    done = sess.launch(program)
    sess.run_until(done, max_events=10_000_000)
    print(f"finished at t={sess.now * 1e3:.3f} ms simulated")


if __name__ == "__main__":
    main()
