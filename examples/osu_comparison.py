#!/usr/bin/env python3
"""Mini Fig. 10/12: GPU-aware vs host-staging across all four models.

Sweeps a few message sizes and prints intra-node latency and bandwidth for
Charm++, AMPI, OpenMPI, and Charm4py — the comparison at the heart of the
paper's evaluation.  (Use ``repro-figures fig10 fig12`` for the full
ladders.)

Run:  python examples/osu_comparison.py
"""

from repro.apps.osu import run_bandwidth, run_latency
from repro.config import KB, MB

SIZES = [64, 4 * KB, 256 * KB, 4 * MB]
MODELS = ["charm", "ampi", "openmpi", "charm4py"]


def main():
    print("== one-way latency, intra-node (us) ==")
    header = f"{'size':>8}" + "".join(f"{m + '-' + v:>14}" for m in MODELS for v in "HD")
    print(header)
    for size in SIZES:
        row = f"{size:>8}"
        for model in MODELS:
            for aware in (False, True):
                lat = run_latency(model, size, "intra", aware, iters=10, skip=2)
                row += f"{lat * 1e6:>14.2f}"
        print(row)

    print("\n== bandwidth, intra-node (GB/s) ==")
    print(header)
    for size in SIZES:
        row = f"{size:>8}"
        for model in MODELS:
            for aware in (False, True):
                bw = run_bandwidth(model, size, "intra", aware, loops=3, skip=1)
                row += f"{bw / 1e9:>14.2f}"
        print(row)

    print("\n(-H = host staging, -D = GPU-aware; compare with paper Figs. 10/12)")


if __name__ == "__main__":
    main()
