#!/usr/bin/env python3
"""The paper's Fig. 8: channel ping-pong, host-staging vs GPU-aware.

Two Charm4py chares exchange a GPU buffer through a channel, once with the
``gpu_direct`` flag off (explicit ``CudaDtoH``/``CudaHtoD`` staging) and once
with it on (device buffers straight into ``channel.send``/``recv``).  The
printed timings show why the paper bothered.

Run:  python examples/charm4py_channels.py
"""

import repro.api as api
from repro.charm4py import PyChare
from repro.config import MachineConfig, MB
from repro.sim.primitives import SimEvent


class PingPong(PyChare):
    def __init__(self, size, iters, gpu_direct, done):
        self.size = size
        self.iters = iters
        self.gpu_direct = gpu_direct
        self.done = done
        cuda = self.c4p.cuda
        self.stream = cuda.create_stream(self.gpu)
        self.d_send_data = cuda.malloc(self.gpu, size)
        self.d_recv_data = cuda.malloc(self.gpu, size)
        node = self.charm.pe_object(self.pe).node
        self.h_send_data = cuda.malloc_host(node, size)
        self.h_recv_data = cuda.malloc_host(node, size)

    def run(self, partner):
        charm, cuda = self.c4p, self.c4p.cuda
        channel = charm.channel(self, partner)
        t0 = charm.sim.now

        for _ in range(self.iters):
            i_send = self.thisIndex == 0
            for phase in ("send", "recv") if i_send else ("recv", "send"):
                if phase == "send":
                    if not self.gpu_direct:
                        # Host-staging mechanism (not GPU-aware):
                        # transfer GPU buffer to host memory and send
                        cuda.memcpy_dtoh(self.h_send_data, self.d_send_data,
                                         self.stream, self.size)
                        yield cuda.stream_synchronize(self.stream)
                        yield channel.send(self.h_send_data)
                    else:
                        # GPU-aware communication: GPU buffers directly
                        yield channel.send(self.d_send_data, self.size)
                else:
                    if not self.gpu_direct:
                        h = yield channel.recv()
                        self.h_recv_data.copy_from(h, self.size)
                        cuda.memcpy_htod(self.d_recv_data, self.h_recv_data,
                                         self.stream, self.size)
                        yield cuda.stream_synchronize(self.stream)
                    else:
                        yield channel.recv(self.d_recv_data, self.size)

        if self.thisIndex == 0:
            self.done.succeed((charm.sim.now - t0) / (2 * self.iters))


def run_once(gpu_direct: bool, size: int) -> float:
    sess = api.session(MachineConfig.summit(nodes=1)).model("charm4py").build()
    c4p = sess.lib
    done = SimEvent(c4p.sim)
    pair = c4p.create_array(PingPong, 2, size, 10, gpu_direct, done,
                            mapping=lambda i: i)
    pair[0].run(pair[1])
    pair[1].run(pair[0])
    return c4p.run_until(done, max_events=2_000_000)


def main():
    print(f"{'size':>8} {'host-staging (us)':>20} {'gpu-aware (us)':>18} {'speedup':>9}")
    for size in (4 * 1024, 256 * 1024, 4 * MB):
        staged = run_once(gpu_direct=False, size=size)
        direct = run_once(gpu_direct=True, size=size)
        print(f"{size:>8} {staged * 1e6:>20.2f} {direct * 1e6:>18.2f} "
              f"{staged / direct:>8.1f}x")


if __name__ == "__main__":
    main()
