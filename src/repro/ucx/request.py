"""Non-blocking operation handles (the ``ucs_status_ptr_t`` of the model)."""

from __future__ import annotations

import enum
from typing import Any, Callable, Optional

from repro.sim.engine import Simulator
from repro.sim.primitives import SimEvent
from repro.ucx.status import UcsStatus


class RequestKind(enum.Enum):
    SEND = "send"
    RECV = "recv"


class UcxRequest:
    """Handle for one in-flight ``tag_send_nb`` / ``tag_recv_nb``.

    ``event`` is a :class:`SimEvent` that processes may yield on; ``cb`` (the
    UCP completion callback) is invoked from "progress context" — i.e. at the
    simulated instant of completion.  ``info`` carries the matched tag and
    received length for receives, mirroring ``ucp_tag_recv_info_t``.
    """

    __slots__ = (
        "sim", "kind", "tag", "size", "cb", "event",
        "status", "info", "posted_at", "completed_at", "span", "op",
    )

    def __init__(
        self,
        sim: Simulator,
        kind: RequestKind,
        tag: int,
        size: int,
        cb: Optional[Callable[["UcxRequest"], None]] = None,
    ) -> None:
        self.sim = sim
        self.kind = kind
        self.tag = tag
        self.size = size
        self.cb = cb
        self.event = SimEvent(sim, name=f"ucx.{kind.value}")
        self.status = UcsStatus.INPROGRESS
        self.info: Any = None
        self.posted_at = sim.now
        self.completed_at: Optional[float] = None
        # observability: the tracing span covering this request, if any
        self.span: Any = None
        # which API created the request: "tag" (cancellable) or "am"
        self.op = "tag"

    @property
    def completed(self) -> bool:
        return self.status is not UcsStatus.INPROGRESS

    def complete(self, status: UcsStatus = UcsStatus.OK, info: Any = None) -> None:
        if self.completed:
            raise RuntimeError("request completed twice")
        self.status = status
        self.info = info
        self.completed_at = self.sim.now
        if self.cb is not None:
            self.cb(self)
        self.event.succeed(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<UcxRequest {self.kind.value} tag=0x{self.tag:x} size={self.size} "
            f"{self.status.name}>"
        )
