"""UCP stream API: ordered, connection-oriented byte streams.

The paper (§II-B) notes UCX exposes GPU-aware communication through both
its *tagged* and *stream* APIs; the machine layer uses the tagged API, but
the stream API is part of the substrate, so it is modelled here: per-
endpoint ordered delivery with no tag matching — receives consume bytes in
arrival order (``ucp_stream_send_nb`` / ``ucp_stream_recv_nb``).

Implementation: each (sender worker, receiver worker) direction owns a FIFO
of arrived-but-unconsumed messages plus a FIFO of pending receives.  The
transports and costs are exactly the tagged protocols' (eager below the
memory-type threshold, rendezvous above), reusing the same machinery.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple

from repro.hardware.memory import Buffer
from repro.ucx.request import UcxRequest
from repro.ucx.status import UcxError


class _StreamState:
    """Receiver-side state of one directed stream."""

    __slots__ = ("arrived", "pending")

    def __init__(self) -> None:
        # arrived: (payload source buffer snapshot, size)
        self.arrived: Deque[Tuple[Buffer, int]] = deque()
        self.pending: Deque[Tuple[Buffer, int, UcxRequest]] = deque()


class StreamChannel:
    """Stream facility attached to a pair of workers.

    Built *on top of* the tagged machinery: each direction gets a private
    tag space (a reserved high tag with a per-message sequence number), so
    ordering and transports come for free and the semantics exposed to the
    user are purely stream-like.
    """

    #: tag namespace for stream traffic (top of the 64-bit space)
    _STREAM_TAG_BASE = 0xF << 60

    def __init__(self, local, remote) -> None:
        self.local = local
        self.remote = remote
        self._send_seq = 0
        self._recv_seq = 0

    def _next_send_tag(self) -> int:
        tag = (
            self._STREAM_TAG_BASE
            | (self.local.worker_id & 0xFFFF) << 32
            | (self._send_seq & 0xFFFFFFFF)
        )
        self._send_seq += 1
        return tag

    def _next_recv_tag(self) -> int:
        tag = (
            self._STREAM_TAG_BASE
            | (self.remote.worker_id & 0xFFFF) << 32
            | (self._recv_seq & 0xFFFFFFFF)
        )
        self._recv_seq += 1
        return tag

    def send_nb(self, buf: Buffer, size: int, cb=None) -> UcxRequest:
        """``ucp_stream_send_nb``: append ``size`` bytes to the stream."""
        ep = self.local.ep(self.remote.worker_id)
        return self.local.tag_send_nb(ep, buf, size, self._next_send_tag(), cb=cb)

    def recv_nb(self, buf: Buffer, size: int, cb=None) -> UcxRequest:
        """``ucp_stream_recv_nb``: consume the next message of the stream.

        Stream semantics are strictly ordered: the n-th receive matches the
        n-th send, whatever its tag-free payload is."""
        return self.local.tag_recv_nb(buf, size, self._next_recv_tag(), cb=cb)


def stream_pair(worker_a, worker_b) -> Tuple[StreamChannel, StreamChannel]:
    """Create the two endpoints of a bidirectional stream between workers."""
    if worker_a.ctx is not worker_b.ctx:
        raise UcxError("stream endpoints must share a UCP context")
    return StreamChannel(worker_a, worker_b), StreamChannel(worker_b, worker_a)
