"""UCP context: global UCX state shared by all workers of the simulation."""

from __future__ import annotations

from typing import Dict, Optional

from repro.hardware.cuda import CudaRuntime
from repro.hardware.gdrcopy import GdrCopy
from repro.hardware.topology import Machine


class UcpContext:
    """Owns protocol configuration, the GDRCopy handle, and the worker
    registry.  One context per simulated job (mirrors ``ucp_context_h``)."""

    def __init__(self, machine: Machine, cuda: Optional[CudaRuntime] = None) -> None:
        from repro.ucx.worker import UcpWorker  # local import: cycle guard

        self.machine = machine
        self.sim = machine.sim
        self.cfg = machine.cfg.ucx
        self.cuda = cuda if cuda is not None else CudaRuntime(machine)
        self.gdrcopy = GdrCopy(machine.sim, self.cfg)
        injector = machine.fault_injector
        if injector is not None and injector.gdrcopy_probe_fails():
            # probe failure is a context-init-time event, as with the real
            # library dlopen: every worker of this context loses the fast path
            self.gdrcopy.forced_unavailable = True
            machine.tracer.count("fault", "gdrcopy_forced_off")
        self._workers: Dict[int, "UcpWorker"] = {}
        # Memoized per-size staging-copy times, one table per staging path
        # (host memcpy / GDRCopy BAR1 / no-GDR cudaMemcpy staging).  The
        # underlying expressions are pure functions of static config, and
        # benchmark loops revisit a handful of sizes (see
        # repro.ucx.protocols.common.staging_copy_time).
        self.staging_time_cache: Dict[tuple, float] = {}
        # NIC registration cache: buffers already pinned for RDMA (keyed by
        # address).  Repeat rendezvous from the same user buffer skip the
        # registration cost, as with UCX's rcache.
        self.reg_cache: set = set()
        # registrations die with the buffer: address reuse after free must
        # not be treated as still-pinned (mirrors the device-side
        # GpuPointerCache invalidation)
        machine.add_host_free_hook(lambda buf: self.reg_cache.discard(buf.address))
        # -- endpoint/registration lifecycle (all default-off) ----------------
        # First-touch peer mappings: (buffer base address, worker pair).
        # Mapping a device buffer into a peer's transport (IPC open + IB
        # registration of the window) is charged once per pair; pooled
        # buffers share their slab's base, so a whole pool maps per peer
        # once.  Pool *returns* never run free hooks, so reuse keeps the
        # mapping warm; only real frees (trim, direct free) invalidate.
        self.mapping_cost = self.cfg.mapping_cost
        self.mapping_enabled = self.mapping_cost > 0.0
        # Insertion-ordered dict used as an LRU set: a mapping hit moves its
        # key to the back when a capacity cap is configured, and overflow
        # evicts the front (least-recently-touched).  ``max_mappings=None``
        # never reorders or evicts — behaviour (and fingerprints) identical
        # to the unbounded set it replaces.
        self.map_cache: Dict[tuple, None] = {}
        self.map_limit = self.cfg.max_mappings
        self._map_by_base: Dict[int, set] = {}
        self._map_by_pair: Dict[tuple, set] = {}
        self.ep_setup_cost = self.cfg.ep_setup_cost
        self.ep_limit = self.cfg.max_endpoints
        self.ep_lifecycle_enabled = (
            self.ep_setup_cost > 0.0 or self.ep_limit is not None
        )
        if self.mapping_enabled:
            machine.add_device_free_hook(self._drop_base_mappings)
            machine.add_host_free_hook(self._drop_base_mappings)
        self._worker_cls = UcpWorker
        # resource telemetry (repro.obs.timeline): endpoint-table size,
        # mapping-cache size, eviction/connect churn
        self.telemetry = machine.tracer.timeline
        self.ep_total = 0  # endpoints across all workers (live, not closed)

    # -- first-touch peer mappings -----------------------------------------------
    @staticmethod
    def _base_address(buf) -> int:
        return buf.address if buf.base is None else buf.base.address

    def mapping_charge(self, buf, worker_a: int, worker_b: int) -> float:
        """Cost of having ``buf``'s base allocation mapped for the
        ``worker_a``<->``worker_b`` pair: ``mapping_cost`` on first touch,
        0 afterwards.  Call only when :attr:`mapping_enabled`."""
        pair = (worker_a, worker_b) if worker_a <= worker_b else (worker_b, worker_a)
        base = self._base_address(buf)
        key = (base, pair)
        if key in self.map_cache:
            if self.map_limit is not None:
                # LRU touch — only tracked when a cap can actually evict
                del self.map_cache[key]
                self.map_cache[key] = None
            self.machine.tracer.count("ucx", "mapping_hit")
            return 0.0
        if self.map_limit is not None and len(self.map_cache) >= self.map_limit:
            victim = next(iter(self.map_cache))
            self._drop_mapping_keys((victim,))
            self.machine.tracer.count("ucx", "mapping_evicted")
            if self.telemetry.enabled:
                self.telemetry.bump("ucx.mapping_evictions")
        self.map_cache[key] = None
        self._map_by_base.setdefault(base, set()).add(key)
        self._map_by_pair.setdefault(pair, set()).add(key)
        self.machine.tracer.count("ucx", "mapping_new")
        if self.telemetry.enabled:
            self.telemetry.sample("ucx.mapping_cache", len(self.map_cache),
                                  "entries")
        return self.mapping_cost

    def _drop_mapping_keys(self, keys) -> None:
        for key in keys:
            self.map_cache.pop(key, None)
            base, pair = key
            for index, idx_key in ((self._map_by_base, base),
                                   (self._map_by_pair, pair)):
                bucket = index.get(idx_key)
                if bucket is not None:
                    bucket.discard(key)
                    if not bucket:
                        del index[idx_key]
        if self.telemetry.enabled:
            self.telemetry.sample("ucx.mapping_cache", len(self.map_cache),
                                  "entries")

    def _drop_base_mappings(self, buf) -> None:
        """Real free of a buffer: its mappings die (free-hook callback)."""
        keys = self._map_by_base.get(self._base_address(buf))
        if keys:
            self._drop_mapping_keys(list(keys))

    def drop_pair_mappings(self, worker_a: int, worker_b: int) -> None:
        """An endpoint between the pair closed (LRU eviction): the peer
        mappings established through it are torn down with it."""
        pair = (worker_a, worker_b) if worker_a <= worker_b else (worker_b, worker_a)
        keys = self._map_by_pair.get(pair)
        if keys:
            self._drop_mapping_keys(list(keys))

    def create_worker(self, worker_id: int, node: int, socket: int = 0) -> "UcpWorker":
        """Create (or return) the worker with this id, pinned to ``node``
        (``socket`` selects the NIC rail for its host traffic)."""
        if worker_id in self._workers:
            existing = self._workers[worker_id]
            if existing.node != node:
                raise ValueError(
                    f"worker {worker_id} already exists on node {existing.node}"
                )
            return existing
        w = self._worker_cls(self, worker_id, node, socket)
        self._workers[worker_id] = w
        return w

    def worker(self, worker_id: int) -> "UcpWorker":
        return self._workers[worker_id]

    @property
    def worker_count(self) -> int:
        return len(self._workers)
