"""UCP context: global UCX state shared by all workers of the simulation."""

from __future__ import annotations

from typing import Dict, Optional

from repro.hardware.cuda import CudaRuntime
from repro.hardware.gdrcopy import GdrCopy
from repro.hardware.topology import Machine


class UcpContext:
    """Owns protocol configuration, the GDRCopy handle, and the worker
    registry.  One context per simulated job (mirrors ``ucp_context_h``)."""

    def __init__(self, machine: Machine, cuda: Optional[CudaRuntime] = None) -> None:
        from repro.ucx.worker import UcpWorker  # local import: cycle guard

        self.machine = machine
        self.sim = machine.sim
        self.cfg = machine.cfg.ucx
        self.cuda = cuda if cuda is not None else CudaRuntime(machine)
        self.gdrcopy = GdrCopy(machine.sim, self.cfg)
        injector = machine.fault_injector
        if injector is not None and injector.gdrcopy_probe_fails():
            # probe failure is a context-init-time event, as with the real
            # library dlopen: every worker of this context loses the fast path
            self.gdrcopy.forced_unavailable = True
            machine.tracer.count("fault", "gdrcopy_forced_off")
        self._workers: Dict[int, "UcpWorker"] = {}
        # Memoized per-size staging-copy times, one table per staging path
        # (host memcpy / GDRCopy BAR1 / no-GDR cudaMemcpy staging).  The
        # underlying expressions are pure functions of static config, and
        # benchmark loops revisit a handful of sizes (see
        # repro.ucx.protocols.common.staging_copy_time).
        self.staging_time_cache: Dict[tuple, float] = {}
        # NIC registration cache: buffers already pinned for RDMA (keyed by
        # address).  Repeat rendezvous from the same user buffer skip the
        # registration cost, as with UCX's rcache.
        self.reg_cache: set = set()
        # registrations die with the buffer: address reuse after free must
        # not be treated as still-pinned (mirrors the device-side
        # GpuPointerCache invalidation)
        machine.add_host_free_hook(lambda buf: self.reg_cache.discard(buf.address))
        self._worker_cls = UcpWorker

    def create_worker(self, worker_id: int, node: int, socket: int = 0) -> "UcpWorker":
        """Create (or return) the worker with this id, pinned to ``node``
        (``socket`` selects the NIC rail for its host traffic)."""
        if worker_id in self._workers:
            existing = self._workers[worker_id]
            if existing.node != node:
                raise ValueError(
                    f"worker {worker_id} already exists on node {existing.node}"
                )
            return existing
        w = self._worker_cls(self, worker_id, node, socket)
        self._workers[worker_id] = w
        return w

    def worker(self, worker_id: int) -> "UcpWorker":
        return self._workers[worker_id]

    @property
    def worker_count(self) -> int:
        return len(self._workers)
