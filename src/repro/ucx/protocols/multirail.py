"""Striped bulk transfers across multiple rails with graph-batched launches.

The rendezvous protocols hand an eligible bulk transfer (multirail enabled,
size >= ``MultirailConfig.min_bytes``, >= 2 usable rails from the
:class:`~repro.hardware.rails.RailPlanner`) to :func:`striped_transfer`,
which

* splits the message into ``chunk_bytes`` chunks (last chunk carries the
  remainder),
* assigns chunks to rails with a deterministic bandwidth-weighted greedy
  rule — each chunk goes to the rail that would finish its share soonest
  (``(assigned + chunk) / rail_bandwidth``, ties to the lower rail index),
  so a slow sideband rail only receives work while it actually shortens the
  critical path,
* keeps at most ``window`` chunks in flight per rail (queued chunks start
  from the completion callback of earlier ones), and
* completes a single barrier event when every chunk has landed — the
  caller's matching/flight-record/FIN handling is identical to the
  single-route path.

Launch-cost model (the CUDA-graphs half of the multi-path paper): each
chunk is a separate copy launch.  Individually launched chunks pay
``CudaConfig.memcpy_launch_overhead`` per chunk; with
``MultirailConfig.graph_launch`` the chunks are captured into one CUDA
graph — a single ``graph_launch_overhead`` up front and the much smaller
``graph_per_chunk_cost`` per chunk node.  Per-chunk costs ride
``path_transfer``'s ``extra_time`` (they extend each chunk's link hold, the
copy-engine occupancy of a kernel-driven chunk), while the one-time graph
launch delays the first chunk kick without occupying any link.

Determinism: chunk sizes, rail assignment and issue order are pure
functions of (size, config, rail set); completions fire in simulator event
order.  Two identical runs interleave chunks identically (pinned by
``tests/test_multirail.py``).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.hardware.links import path_transfer
from repro.sim.primitives import SimEvent

__all__ = ["plan_striping", "split_chunks", "assign_chunks", "striped_transfer"]


def plan_striping(machine, src_loc, dst_loc, size: int):
    """The usable rail set for this transfer, or ``None`` to stay on the
    seed's single route.  Counts ``ucx.rail.fallback_single`` when a
    normally-multirail pair degrades to one rail (links down)."""
    mr = machine.cfg.multirail
    if not mr.enabled or size < mr.min_bytes:
        return None
    planner = machine.rail_planner
    if len(planner.rails(src_loc, dst_loc)) < 2:
        return None  # pair has no alternate path at all
    usable = planner.usable_rails(src_loc, dst_loc)
    if len(usable) < 2:
        machine.tracer.count("ucx", "rail.fallback_single")
        return None
    queues = assign_chunks(split_chunks(size, mr.chunk_bytes),
                           [rail.bandwidth for rail in usable])
    if sum(1 for q in queues if q) < 2:
        # greedy keeps every chunk on the fast rail at this size: striping
        # would only add chunking + launch overhead, so stay on the seed
        # route (break-even sizes never regress below single-rail)
        machine.tracer.count("ucx", "rail.single_assigned")
        return None
    return usable


def split_chunks(size: int, chunk_bytes: int) -> List[int]:
    """Chunk sizes of one striped transfer (all ``chunk_bytes`` but the
    remainder-carrying last)."""
    nchunks = math.ceil(size / chunk_bytes)
    sizes = [chunk_bytes] * (nchunks - 1)
    sizes.append(size - chunk_bytes * (nchunks - 1))
    return sizes


def assign_chunks(
    chunk_sizes: Sequence[int], bandwidths: Sequence[float]
) -> List[List[int]]:
    """Greedy bandwidth-weighted assignment: per-rail chunk-size queues.

    Chunks are considered in order; each goes to the rail minimizing
    ``(assigned + chunk) / bandwidth`` (the rail's finish time with the
    chunk added), ties to the lower rail index.  A rail slower than the
    marginal cost of loading rail 0 further receives nothing — striping
    never loses to the single-rail plan by more than one chunk's
    granularity.
    """
    assigned = [0] * len(bandwidths)
    queues: List[List[int]] = [[] for _ in bandwidths]
    for csize in chunk_sizes:
        best = 0
        best_t = (assigned[0] + csize) / bandwidths[0]
        for r in range(1, len(bandwidths)):
            t = (assigned[r] + csize) / bandwidths[r]
            if t < best_t:
                best, best_t = r, t
        assigned[best] += csize
        queues[best].append(csize)
    return queues


def launch_costs(cfg, nchunks: int) -> Tuple[float, float]:
    """(one-time, per-chunk) launch cost under the graph-batching knob."""
    cuda = cfg.cuda
    if cfg.multirail.graph_launch:
        return cuda.graph_launch_overhead, cuda.graph_per_chunk_cost
    return 0.0, cuda.memcpy_launch_overhead


def striped_transfer(
    sim,
    machine,
    rails,
    size: int,
    parent_span=None,
    tag: Optional[int] = None,
) -> SimEvent:
    """Move ``size`` bytes across ``rails``; returns the completion barrier.

    Mirrors :func:`~repro.hardware.links.path_transfer`'s contract (one
    event, succeeds when all data has landed) so rendezvous callers swap it
    in without touching their completion handling.
    """
    cfg = machine.cfg
    mr = cfg.multirail
    tracer = machine.tracer
    telem = sim.telemetry

    chunk_sizes = split_chunks(size, mr.chunk_bytes)
    queues = assign_chunks(chunk_sizes, [rail.bandwidth for rail in rails])
    upfront, per_chunk = launch_costs(cfg, len(chunk_sizes))

    tracer.count("ucx", "rail.striped")
    for r, (rail, queue) in enumerate(zip(rails, queues)):
        if queue:
            tracer.count("ucx", f"rail.{rail.index}.chunks", len(queue))
            tracer.count("ucx", f"rail.{rail.index}.bytes", sum(queue))
    if telem is not None:
        telem.bump("ucx.rail.striped_transfers")

    barrier = SimEvent(sim, name="multirail_barrier")
    remaining = [len(chunk_sizes)]

    def _chunk_landed() -> None:
        remaining[0] -= 1
        if remaining[0] == 0:
            barrier.succeed(None)

    def _run_rail(rail, queue: List[int]) -> None:
        if tracer.enabled:
            rail_sp = tracer.span(
                "ucx.rail", f"rail{rail.index}", parent=parent_span,
                rail=rail.index, chunks=len(queue), bytes=sum(queue), tag=tag,
            )
        else:
            rail_sp = None
        state = {"next": 0, "live": 0}

        def _done(_ev) -> None:
            state["live"] -= 1
            if telem is not None:
                telem.sample(f"ucx.rail.{rail.index}.inflight_chunks",
                             state["live"], "chunks")
            _chunk_landed()
            if state["next"] < len(queue):
                _issue()
            elif state["live"] == 0 and rail_sp is not None:
                rail_sp.end()

        def _issue() -> None:
            # chunks beyond the in-flight window start from completion
            # callbacks, bounding queued link acquisitions per rail
            while state["next"] < len(queue) and state["live"] < mr.window:
                csize = queue[state["next"]]
                state["next"] += 1
                state["live"] += 1
                if telem is not None:
                    telem.sample(f"ucx.rail.{rail.index}.inflight_chunks",
                                 state["live"], "chunks")
                with tracer.under(rail_sp):
                    done = path_transfer(sim, rail.route, csize,
                                         extra_time=per_chunk)
                done.add_callback(_done)

        _issue()

    def _start() -> None:
        for rail, queue in zip(rails, queues):
            if queue:
                _run_rail(rail, queue)

    if upfront > 0.0:
        # graph capture+launch happens once, before any chunk kicks; it is
        # driver work and occupies no link
        sim.schedule(upfront, _start)
    else:
        _start()
    return barrier
