"""Chunk-pipelined host staging for inter-node device rendezvous.

When a rendezvous transfer crosses nodes and touches device memory (and
GPUDirect RDMA is not available — the Summit configuration the paper ran),
UCX stages the data through host bounce buffers in chunks: DtoH of chunk
*i+1* overlaps the NIC transfer of chunk *i*, which overlaps HtoD of chunk
*i-1*.  With double buffering the steady-state rate is the bottleneck link
(the NIC), and the ends contribute one fill and one drain of a single chunk
through the staging links.

Total time modelled::

    fill  = chunk / dtoh_bw            (first chunk reaches host memory)
    wire  = size / nic_bw              (steady state, the bottleneck)
    drain = chunk / htod_bw            (last chunk leaves host memory)
    odds  = nchunks * per_chunk_cost   (progress calls, DMA kicks)

The occupancy charged to the links is handled by the caller (the full
device route is held for the wire time); this module only computes the
*extra* time beyond bottleneck serialisation.
"""

from __future__ import annotations

import math

from repro.config import MachineConfig


def pipeline_chunks(cfg: MachineConfig, size: int) -> int:
    """Number of staging chunks a pipelined transfer of ``size`` bytes uses."""
    if size <= 0:
        return 0
    return math.ceil(size / cfg.ucx.pipeline_chunk)


def pipeline_extra_time(cfg: MachineConfig, size: int) -> float:
    """Extra latency of the pipelined path beyond ``size / nic_bw``."""
    ucx = cfg.ucx
    topo = cfg.topology
    chunk = min(ucx.pipeline_chunk, size) if size > 0 else 0
    if chunk == 0:
        return 0.0
    nchunks = pipeline_chunks(cfg, size)
    fill = chunk / topo.nvlink.bandwidth
    drain = chunk / topo.nvlink.bandwidth
    odds = nchunks * ucx.pipeline_per_chunk_cost
    return fill + drain + odds


def pipeline_mapping_time(ctx, src, dst, src_worker: int,
                          dst_worker: int) -> float:
    """First-touch mapping charges of the staged path (see
    ``UcpContext.mapping_charge``): each *device* endpoint's buffer must be
    registered with the staging transport once per (buffer base, peer) pair
    before its bounce copies can run.  Pooled buffers share their slab's
    base, so a pool pays this once per peer; direct allocation pays it for
    every fresh buffer.  Call only when ``ctx.mapping_enabled``."""
    cost = 0.0
    if src.on_device:
        cost += ctx.mapping_charge(src, src_worker, dst_worker)
    if dst.on_device:
        cost += ctx.mapping_charge(dst, src_worker, dst_worker)
    return cost


def pipeline_effective_bandwidth(cfg: MachineConfig, size: int) -> float:
    """Achieved bandwidth of the pipelined path for ``size`` bytes —
    used by tests to assert the bandwidth knee position."""
    if size <= 0:
        return 0.0
    wire = size / cfg.topology.nic.bandwidth
    total = wire + pipeline_extra_time(cfg, size) + cfg.topology.nic.latency
    return size / total
