"""Intra-node device rendezvous over CUDA IPC.

UCX maps the peer's device buffer via a CUDA IPC handle (cached after first
open — the cache the paper's introduction cites as one of the optimisations
a hand-rolled implementation must reinvent) and performs a direct
NVLink/X-Bus copy.  The data route itself is charged by the caller; this
module provides the IPC-specific setup cost.
"""

from __future__ import annotations

from repro.hardware.memory import Buffer


def ipc_setup_cost(ctx, opener_gpu: int, src_buf: Buffer) -> float:
    """Cost of obtaining a mapped pointer to ``src_buf`` on ``opener_gpu``.

    First open of a given (GPU, buffer) pair pays the driver's expensive
    ``cudaIpcOpenMemHandle``; subsequent transfers hit the handle cache.
    """
    handle = ctx.cuda.ipc_get_handle(src_buf)
    cost = ctx.cuda.ipc_open_cost(opener_gpu, handle)
    cached = cost == ctx.cuda.cfg.ipc_cached_open_cost
    ctx.machine.tracer.count("cuda_ipc", "open_cached" if cached else "open_new")
    return cost
