"""Intra-node device rendezvous over CUDA IPC.

UCX maps the peer's device buffer via a CUDA IPC handle (cached after first
open — the cache the paper's introduction cites as one of the optimisations
a hand-rolled implementation must reinvent) and performs a direct
NVLink/X-Bus copy.  The data route itself is charged by the caller; this
module provides the IPC-specific setup cost.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.hardware.memory import Buffer


def ipc_setup_cost(ctx, opener_gpu: int, src_buf: Buffer,
                   peer_pair: Optional[Tuple[int, int]] = None) -> float:
    """Cost of obtaining a mapped pointer to ``src_buf`` on ``opener_gpu``.

    First open of a given (GPU, buffer) pair pays the driver's expensive
    ``cudaIpcOpenMemHandle``; subsequent transfers hit the handle cache.
    Both the handle cache and the peer-mapping charge key on the *base*
    allocation, so size-class blocks of one pool slab open/map once.

    ``peer_pair`` names the (sender worker, receiver worker) pair for the
    first-touch mapping model (``UcxConfig.mapping_cost``): mapping the
    peer allocation into the opener's address space is charged per
    (buffer base, pair) on top of the driver open.
    """
    handle = ctx.cuda.ipc_get_handle(src_buf)
    cost = ctx.cuda.ipc_open_cost(opener_gpu, handle)
    cached = cost == ctx.cuda.cfg.ipc_cached_open_cost
    ctx.machine.tracer.count("cuda_ipc", "open_cached" if cached else "open_new")
    if peer_pair is not None and ctx.mapping_enabled:
        cost += ctx.mapping_charge(src_buf, peer_pair[0], peer_pair[1])
    return cost
