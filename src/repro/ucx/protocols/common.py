"""Shared cost helpers for the protocol implementations."""

from __future__ import annotations

from repro.hardware.memory import Buffer
from repro.hardware.topology import Machine


def staging_copy_time(ctx, buf: Buffer, size: int) -> float:
    """Time to move ``size`` bytes between ``buf`` and a host bounce buffer
    on the same node, as done by eager protocols on each side.

    * host buffers: a plain memcpy at host memory speed;
    * device buffers with GDRCopy: the low-latency BAR1 copy;
    * device buffers without GDRCopy: a cudaMemcpy-based staging path that
      pays driver launch/sync overheads (the slow world the paper warns
      about when UCX fails to detect GDRCopy).
    """
    # Each branch is a pure function of static config, memoized per size in
    # the context (keyed by path so a mid-run GDRCopy availability change
    # cannot serve a stale branch).  The cached value is computed with the
    # exact expression of the uncached path, so timing is bit-identical.
    cache = ctx.staging_time_cache
    if not buf.on_device:
        key = ("host", size)
        t = cache.get(key)
        if t is None:
            t = ctx.machine.cfg.topology.host_mem.transfer_time(size)
            cache[key] = t
        return t
    if ctx.gdrcopy.available:
        ctx.gdrcopy.copies += 1  # the statistic still counts every copy
        key = ("gdr", size)
        t = cache.get(key)
        if t is None:
            t = ctx.gdrcopy.copy_time(size)
            cache[key] = t
        return t
    key = ("nogdr", size)
    t = cache.get(key)
    if t is None:
        t = (
            ctx.cfg.no_gdr_staging_overhead
            + ctx.machine.cfg.cuda.memcpy_launch_overhead
            + ctx.machine.cfg.topology.nvlink.transfer_time(size)
        )
        cache[key] = t
    return t


def do_staged_copy(dst: Buffer, src: Buffer, size: int) -> None:
    """Functional payload movement for a staged (eager) hop."""
    dst.copy_from(src, size)


def host_location_of(machine: Machine, node: int):
    return machine.host_location(node)
