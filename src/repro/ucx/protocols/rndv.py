"""Rendezvous protocol: RTS control message, receiver-driven fetch, FIN.

The *lane* for the bulk data is chosen at match time, when both buffer
locations are known (mirroring UCX's receiver-side rendezvous decision):

===============================  ============================================
endpoints                        lane
===============================  ============================================
host <-> host, same node         CMA/xpmem single copy through host memory
host <-> host, across nodes      RDMA get over the NICs
device <-> device, same node     CUDA IPC direct copy over NVLink/X-Bus
any device, across nodes         chunk-pipelined host staging (default) or
                                 GPUDirect RDMA when configured
device <-> host, same node       DMA over the GPU's NVLink
===============================  ============================================

The full data route is occupied for the bottleneck serialisation time, so
concurrent rendezvous transfers contend realistically (six GPUs pushing
halos through one NIC serialize there).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.hardware.links import path_transfer
from repro.hardware.memory import Buffer
from repro.obs.tracing import NULL_SPAN
from repro.ucx.constants import CTRL_MSG_BYTES
from repro.ucx.protocols.cuda_ipc import ipc_setup_cost
from repro.ucx.protocols.multirail import plan_striping, striped_transfer
from repro.ucx.protocols.pipeline import (
    pipeline_chunks,
    pipeline_extra_time,
    pipeline_mapping_time,
)
from repro.ucx.request import UcxRequest
from repro.ucx.status import UcsStatus
from repro.ucx.wire import WireKind, WireMessage, next_rndv_id

if TYPE_CHECKING:  # pragma: no cover
    from repro.ucx.worker import PostedRecv, UcpWorker


def start_send(
    worker: "UcpWorker",
    remote: "UcpWorker",
    buf: Buffer,
    size: int,
    tag: int,
    req: UcxRequest,
    wire_seq=None,
    pre_cost: float = 0.0,
) -> None:
    """Send the RTS; the request completes when the FIN returns.

    ``pre_cost`` carries one-time endpoint-setup work (0.0 when the
    lifecycle model is off; adding an exact zero leaves delays bit-equal).
    """
    rndv_id = next_rndv_id()
    worker.pending_rndv_sends[rndv_id] = req
    worker._rndv_remote[rndv_id] = remote.worker_id
    msg = WireMessage(
        kind=WireKind.RTS,
        tag=tag,
        size=size,
        src_worker=worker.worker_id,
        src_buf=buf,
        rndv_id=rndv_id,
        sent_at=worker.sim.now,
        src_was_device=buf.on_device,
        wire_seq=wire_seq,
    )
    delay = worker._rts_post_cost + pre_cost
    tracer = worker.ctx.machine.tracer
    if tracer.enabled:
        sp = tracer.span("ucx.rndv", "rndv_rts", size=size, tag=tag,
                         device=buf.on_device)

        def _rts() -> None:
            sp.end()
            worker.transmit(remote, msg, CTRL_MSG_BYTES)

        worker.sim.schedule(delay, _rts)
    else:
        worker.sim.schedule(delay, worker.transmit, remote, msg, CTRL_MSG_BYTES)


def start_transfer(
    worker: "UcpWorker",
    msg: WireMessage,
    posted: "PostedRecv",
    pre_delay: float,
) -> None:
    """Receiver matched an RTS: fetch the data, complete, send FIN."""
    ctx = worker.ctx
    cfg = ctx.cfg
    machine = ctx.machine
    sim = worker.sim
    # the receiver is committed from here on: the sender can no longer
    # cancel this rendezvous (see UcpWorker.cancel)
    ctx.worker(msg.src_worker)._rndv_started.add(msg.rndv_id)

    if msg.size > posted.size:
        trunc_flight = machine.tracer.flight

        def _truncate() -> None:
            # close the flight record: a truncated transfer never reaches
            # completed(), and leaving it open would absorb the stages of
            # the next same-tag transfer
            if trunc_flight.enabled:
                trunc_flight.failed(msg.tag, "truncated")
            posted.req.complete(UcsStatus.ERR_MESSAGE_TRUNCATED, (msg.tag, msg.size))
            # release the sender too: the rendezvous is over
            fin = WireMessage(
                kind=WireKind.FIN, tag=msg.tag, size=0,
                src_worker=worker.worker_id, rndv_id=msg.rndv_id, sent_at=sim.now,
            )
            worker.transmit(ctx.worker(msg.src_worker), fin, CTRL_MSG_BYTES)

        sim.schedule(pre_delay, _truncate)
        return

    src, dst = msg.src_buf, posted.buf
    src_loc = machine.location_of(src)
    dst_loc = machine.location_of(dst)
    inter_node = src_loc.node != dst_loc.node
    any_device = src.on_device or dst.on_device

    # Setup costs delay the start of the bulk transfer but do NOT occupy
    # the wire: IPC handle opening and page registration are CPU/driver
    # work, and the pipeline's fill/drain stages run on the staging NVLinks
    # while the NIC carries earlier chunks of other messages.
    setup = cfg.rndv_rts_cost  # receiver-side RTR/control handling
    pipelined = inter_node and any_device and not cfg.gpudirect_rdma
    ipc_fallback = False
    if not inter_node and src.on_device and dst.on_device:
        injector = machine.fault_injector
        if injector is not None and injector.ipc_open_fails():
            # cuIpcOpenMemHandle failed: fall back to pipelined staging
            # through host memory instead of mapping the peer buffer
            ipc_fallback = True
            machine.tracer.count("fault", "fallback_pipeline")
            setup += pipeline_extra_time(machine.cfg, msg.size)
            if ctx.mapping_enabled:
                setup += pipeline_mapping_time(ctx, src, dst,
                                               msg.src_worker, worker.worker_id)
        else:
            setup += ipc_setup_cost(ctx, dst.device, src,
                                    peer_pair=(msg.src_worker, worker.worker_id))
            if ctx.mapping_enabled:
                # the receiver's own buffer is registered back to the peer
                # for the FIN'd direct copy — same first-touch rule
                setup += ctx.mapping_charge(dst, msg.src_worker, worker.worker_id)
    elif pipelined:
        setup += pipeline_extra_time(machine.cfg, msg.size)
        if ctx.mapping_enabled:
            setup += pipeline_mapping_time(ctx, src, dst,
                                           msg.src_worker, worker.worker_id)
    elif inter_node and any_device:
        # GPUDirect-RDMA lane: the NIC maps both device buffers (GDR window
        # registration), first touch per (buffer base, peer) pair
        if ctx.mapping_enabled:
            if src.on_device:
                setup += ctx.mapping_charge(src, msg.src_worker, worker.worker_id)
            if dst.on_device:
                setup += ctx.mapping_charge(dst, msg.src_worker, worker.worker_id)
    elif inter_node and not any_device:
        # RDMA get of unregistered host pages: pin them with the NIC first
        # (once per buffer -- the registration cache keeps them pinned)
        if src.address not in ctx.reg_cache:
            ctx.reg_cache.add(src.address)
            setup += cfg.host_rndv_reg_overhead

    if ipc_fallback:
        # intra-node staging route: source GPU link down to host memory,
        # then up the destination GPU's link
        node = machine.nodes[src_loc.node]
        route = [
            node.nvlink_tx[machine.local_gpu(src.device)],
            node.host_mem,
            node.nvlink_rx[machine.local_gpu(dst.device)],
        ]
    elif pipelined:
        # chunked host staging decouples the GPU links from the wire: the
        # NVLink hops overlap the NIC chunk-by-chunk (their cost is the
        # fill/drain above), so the bulk occupies only the NIC segment,
        # entering/leaving through the endpoints' socket rails.
        src_sock = machine.socket_of_gpu(src.device) if src.on_device else src_loc.socket
        dst_sock = machine.socket_of_gpu(dst.device) if dst.on_device else dst_loc.socket
        route = machine.route(
            machine.host_location(src_loc.node, src_sock),
            machine.host_location(dst_loc.node, dst_sock),
        )
    else:
        route = machine.route(src_loc, dst_loc)

    # Multi-rail striping (default off).  Eligible lanes hand the bulk to
    # the striped engine over the rail set sampled here, at commit time
    # (like the bandwidth windows, sampled at start-of-transfer).  The GDR
    # lane is excluded — its route shares the endpoints' NVLink hops, which
    # capacity-1 serialize any chunks — as is the ipc_fallback path (a
    # degraded mode, kept on the seed route).  For the pipelined lane the
    # rails are the NIC pairs of the staged host endpoints, matching the
    # single-rail bulk route above.
    stripe_rails = None
    if machine.cfg.multirail.enabled and not ipc_fallback:
        if pipelined:
            stripe_rails = plan_striping(
                machine,
                machine.host_location(src_loc.node, src_sock),
                machine.host_location(dst_loc.node, dst_sock),
                msg.size,
            )
        elif not (inter_node and any_device):
            stripe_rails = plan_striping(machine, src_loc, dst_loc, msg.size)

    tracer = machine.tracer
    flight = tracer.flight
    if tracer.enabled or flight.enabled:
        if pipelined or ipc_fallback:
            lane = "pipeline"
        elif not inter_node and src.on_device and dst.on_device:
            lane = "cuda_ipc"
        elif inter_node:
            lane = "rdma_get"
        else:
            lane = "cma"
        if flight.enabled:
            flight.lane(msg.tag, lane)
    if tracer.enabled:
        attrs = {"size": msg.size, "tag": msg.tag, "lane": lane}
        if pipelined or ipc_fallback:
            attrs["chunks"] = pipeline_chunks(machine.cfg, msg.size)
        if stripe_rails is not None:
            attrs["rails"] = len(stripe_rails)
        sp = tracer.span("ucx.rndv", "rndv_fetch", parent=posted.req.span, **attrs)
    else:
        sp = NULL_SPAN

    wire_sp = [NULL_SPAN]

    def _begin() -> None:
        if tracer.enabled:
            wire_sp[0] = tracer.span("link", "rndv_data", parent=sp,
                                     tag=msg.tag, bytes=msg.size)
        if stripe_rails is not None:
            done = striped_transfer(sim, machine, stripe_rails, msg.size,
                                    parent_span=wire_sp[0], tag=msg.tag)
        else:
            done = path_transfer(sim, route, msg.size)
        done.add_callback(_data_arrived)

    def _data_arrived(_ev) -> None:
        dst.copy_from(src, msg.size)
        wire_sp[0].end()
        sp.end()
        if flight.enabled:
            flight.completed(msg.tag)
        posted.req.complete(UcsStatus.OK, (msg.tag, msg.size))
        fin = WireMessage(
            kind=WireKind.FIN,
            tag=msg.tag,
            size=0,
            src_worker=worker.worker_id,
            rndv_id=msg.rndv_id,
            sent_at=sim.now,
        )
        worker.transmit(ctx.worker(msg.src_worker), fin, CTRL_MSG_BYTES)

    sim.schedule(pre_delay + setup, _begin)


def finish_send(worker: "UcpWorker", msg: WireMessage) -> None:
    """FIN arrived back at the sender: complete the pending send request."""
    req = worker.pending_rndv_sends.pop(msg.rndv_id, None)
    if req is None:
        if msg.rndv_id in worker._rndv_done or msg.rndv_id in worker._rndv_cancelled:
            # duplicate or late FIN for a rendezvous that already ended
            # (sender timed out, or the FIN was stalled and retransmitted)
            worker.ctx.machine.tracer.count("ucx", "late_fin_ignored")
            return
        raise RuntimeError(f"FIN for unknown rendezvous id {msg.rndv_id}")
    worker._rndv_done.add(msg.rndv_id)
    flight = worker.ctx.machine.tracer.flight
    if flight.enabled:
        flight.send_completed(msg.tag)
    req.complete(UcsStatus.OK)
