"""Eager protocol: payload travels with the message through bounce buffers.

Sender side: copy the payload into a host bounce buffer (memcpy for host
memory, GDRCopy for device memory), push it onto the wire, and complete the
send request immediately after the copy-in (the source buffer is reusable).

Receiver side: on match, copy out of the bounce into the destination buffer
(again memcpy or GDRCopy by memory type) and complete the receive.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.hardware.memory import Buffer
from repro.ucx.constants import CTRL_MSG_BYTES
from repro.ucx.protocols.common import staging_copy_time
from repro.ucx.request import UcxRequest
from repro.ucx.status import UcsStatus
from repro.ucx.wire import WireKind, WireMessage

if TYPE_CHECKING:  # pragma: no cover
    from repro.ucx.worker import PostedRecv, UcpWorker


def start_send(
    worker: "UcpWorker",
    remote: "UcpWorker",
    buf: Buffer,
    size: int,
    tag: int,
    req: UcxRequest,
    wire_seq=None,
    pre_cost: float = 0.0,
) -> None:
    """Begin an eager send from ``worker`` to ``remote``.

    ``pre_cost`` carries one-time endpoint-setup work (0.0 when the
    lifecycle model is off; adding an exact zero leaves delays bit-equal).
    """
    ctx = worker.ctx
    copy_in = staging_copy_time(ctx, buf, size)
    if ctx.mapping_enabled and buf.on_device:
        # device eager stages through the GDRCopy BAR1 window: the window
        # registration is per (buffer base, peer) and cached like any
        # other mapping — first touch pays, reuse (pooled blocks) is free
        pre_cost += ctx.mapping_charge(buf, worker.worker_id, remote.worker_id)
    delay = worker._send_post_cost + copy_in + pre_cost
    tracer = ctx.machine.tracer
    sp = tracer.span(
        "ucx.eager", "eager_send", size=size, tag=tag, device=buf.on_device
    )

    # The bounce travels with the message; by delivery time it logically
    # lives in the receiver's host memory.
    bounce = ctx.machine.alloc_host(remote.node, max(size, 1))
    bounce.copy_from(buf, size)
    msg = WireMessage(
        kind=WireKind.EAGER,
        tag=tag,
        size=size,
        src_worker=worker.worker_id,
        bounce=bounce,
        sent_at=worker.sim.now,
        src_was_device=buf.on_device,
        wire_seq=wire_seq,
    )

    def _copied() -> None:
        sp.end()
        if req.completed:
            # cancelled while staging: the payload never ships, but the
            # assigned wire_seq slot must still be consumed at the receiver
            # or the pair's ordered stream stalls behind it forever
            slot = WireMessage(
                kind=WireKind.ERR, tag=tag, size=0,
                src_worker=worker.worker_id, sent_at=worker.sim.now,
                wire_seq=msg.wire_seq, failed_kind=None,
            )
            worker.transmit(remote, slot, CTRL_MSG_BYTES)
            return
        flight = ctx.machine.tracer.flight
        if flight.enabled:
            flight.send_completed(tag)
        req.complete(UcsStatus.OK)
        worker.transmit(remote, msg)

    worker.sim.schedule(delay, _copied)


def finish_recv(
    worker: "UcpWorker",
    msg: WireMessage,
    posted: "PostedRecv",
    pre_delay: float,
) -> None:
    """Complete a matched eager receive: copy out of the bounce, finish."""
    ctx = worker.ctx
    if msg.size > posted.size:
        trunc_flight = ctx.machine.tracer.flight

        def _truncate() -> None:
            # close the flight record (same leak as the rendezvous
            # truncation path: an open record would absorb the next
            # same-tag transfer's stages)
            if trunc_flight.enabled:
                trunc_flight.failed(msg.tag, "truncated")
            posted.req.complete(UcsStatus.ERR_MESSAGE_TRUNCATED, (msg.tag, msg.size))

        worker.sim.schedule(pre_delay, _truncate)
        return
    copy_out = staging_copy_time(ctx, posted.buf, msg.size)
    tracer = ctx.machine.tracer
    sp = tracer.span(
        "ucx.eager", "eager_recv",
        size=msg.size, tag=msg.tag, device=posted.buf.on_device,
        parent=posted.req.span,
    )

    def _done() -> None:
        posted.buf.copy_from(msg.bounce, msg.size)
        sp.end()
        flight = ctx.machine.tracer.flight
        if flight.enabled:
            flight.completed(msg.tag)
        posted.req.complete(UcsStatus.OK, (msg.tag, msg.size))

    worker.sim.schedule(pre_delay + copy_out, _done)
