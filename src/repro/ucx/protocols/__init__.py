"""UCP protocol implementations: eager, rendezvous, and the device
transports (GDRCopy eager, CUDA-IPC rendezvous, pipelined host staging).

The split mirrors how UCX layers UCP protocols over UCT transports:

* :mod:`repro.ucx.protocols.select` — choose eager vs rendezvous from the
  source memory type and size thresholds (``UCX_RNDV_THRESH``-style).
* :mod:`repro.ucx.protocols.eager` — copy-in / wire / copy-out; device
  buffers stage through GDRCopy (or slow cudaMemcpy staging when GDRCopy is
  not detected — the paper's §IV-B1 caveat).
* :mod:`repro.ucx.protocols.rndv` — RTS control message, receiver-driven
  data fetch, FIN back to the sender.  The data path is chosen at *match*
  time from both buffers' locations.
* :mod:`repro.ucx.protocols.cuda_ipc` — intra-node device rendezvous cost
  (IPC handle open/cache + NVLink/X-Bus route).
* :mod:`repro.ucx.protocols.pipeline` — inter-node device rendezvous via
  chunked host staging with double buffering.
"""

from repro.ucx.protocols.select import Protocol, choose_send_protocol

__all__ = ["Protocol", "choose_send_protocol"]
