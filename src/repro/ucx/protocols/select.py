"""Eager/rendezvous selection (the UCP side of ``UCX_RNDV_THRESH``).

The choice depends only on the *source* buffer's memory type and the size:

* host memory: eager below ``host_rndv_threshold``, rendezvous at/above;
* device memory: eager below ``device_eager_threshold`` (GDRCopy territory),
  rendezvous at/above.

How the rendezvous data actually moves (CMA, RDMA, CUDA IPC, pipelined
staging) is decided at match time by :mod:`repro.ucx.protocols.rndv`, once
both endpoints' locations are known — as in UCX, where the receiver picks
the rendezvous lane.
"""

from __future__ import annotations

import enum

from repro.config import UcxConfig
from repro.hardware.memory import Buffer


class Protocol(enum.Enum):
    EAGER = "eager"
    RNDV = "rndv"


def choose_send_protocol(cfg: UcxConfig, buf: Buffer, size: int) -> Protocol:
    """Pick eager or rendezvous for a send of ``size`` bytes from ``buf``."""
    if size < 0:
        raise ValueError("negative send size")
    threshold = cfg.device_eager_threshold if buf.on_device else cfg.host_rndv_threshold
    return Protocol.EAGER if size < threshold else Protocol.RNDV
