"""UCS-style status codes (the subset the model produces)."""

from __future__ import annotations

import enum


class UcsStatus(enum.IntEnum):
    OK = 0
    INPROGRESS = 1
    ERR_CANCELED = -16
    ERR_MESSAGE_TRUNCATED = -10
    # allocation failed (device memory or pool cap exhausted)
    ERR_NO_MEMORY = -4
    # a frame exhausted its retransmit budget (fault injection territory)
    ERR_ENDPOINT_TIMEOUT = -20


class UcxError(RuntimeError):
    """Raised for misuse of the UCP model API."""
