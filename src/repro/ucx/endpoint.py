"""UCP endpoints: a connection from one worker to another."""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.ucx.worker import UcpWorker


class UcpEndpoint:
    """Sender-side handle to a remote worker.

    Real UCX endpoints encapsulate transport resources; here the endpoint
    just pins the (local, remote) worker pair and counts traffic, since
    transport selection happens per message in the protocol layer.
    """

    def __init__(self, local: "UcpWorker", remote: "UcpWorker") -> None:
        self.local = local
        self.remote = remote
        self.messages_sent = 0
        self.bytes_sent = 0
        # Lazy wireup (UcxConfig.ep_setup_cost): creating the endpoint object
        # is free, as with ucp_ep_create's deferred connection — the first
        # message through it pays the connection-setup charge and flips this.
        self.established = False
        # set when the worker LRU-closes the endpoint (UcxConfig.max_endpoints);
        # a closed endpoint must not be reused
        self.closed = False

    def mark_established(self) -> float:
        """First traffic through the endpoint: returns the one-time
        connection-setup charge (0.0 when already established or when the
        lifecycle model is disabled)."""
        if self.established:
            return 0.0
        self.established = True
        ctx = self.local.ctx
        if not ctx.ep_lifecycle_enabled:
            return 0.0
        ctx.machine.tracer.count("ucx", "ep_connect")
        if ctx.telemetry.enabled:
            ctx.telemetry.bump("ucx.ep_connects")
        return ctx.ep_setup_cost

    @property
    def is_loopback(self) -> bool:
        return self.local.worker_id == self.remote.worker_id

    @property
    def same_node(self) -> bool:
        return self.local.node == self.remote.node

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<UcpEndpoint {self.local.worker_id}->{self.remote.worker_id}>"
