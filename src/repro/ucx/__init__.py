"""A functional, timed model of UCX's UCP tagged API.

Implements the semantics the Charm++ UCX machine layer relies on:

* workers with tag matching (posted-receive and unexpected-message queues,
  wildcard masks, FIFO ordering),
* endpoints between workers,
* ``tag_send_nb`` / ``tag_recv_nb`` with eager and rendezvous protocols,
* transport selection by memory type and locality: shared-memory /CMA for
  host buffers, GDRCopy-based eager and CUDA-IPC rendezvous for intra-node
  device buffers, RDMA and chunk-pipelined host staging for inter-node
  transfers (exactly the transports §IV-B1 of the paper describes UCX
  choosing on Summit).

Timing comes from :class:`repro.config.UcxConfig` plus the link topology;
payloads move functionally so tests can assert data integrity end to end.
"""

from repro.ucx.constants import WIRE_HEADER_BYTES, TAG_MASK_FULL
from repro.ucx.status import UcsStatus
from repro.ucx.request import UcxRequest
from repro.ucx.context import UcpContext
from repro.ucx.endpoint import UcpEndpoint
from repro.ucx.worker import UcpWorker

__all__ = [
    "TAG_MASK_FULL",
    "UcpContext",
    "UcpEndpoint",
    "UcpWorker",
    "UcsStatus",
    "UcxRequest",
    "WIRE_HEADER_BYTES",
]
