"""Wire message descriptors exchanged between workers."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Optional

from repro.hardware.memory import Buffer


class WireKind(enum.Enum):
    EAGER = "eager"  # payload travels with the message (in a bounce buffer)
    RTS = "rts"  # rendezvous ready-to-send (descriptor of the source)
    FIN = "fin"  # rendezvous completion notification back to the sender
    ERR = "err"  # endpoint-error notification (a frame's sender gave up)


_rndv_ids = itertools.count(1)


def next_rndv_id() -> int:
    return next(_rndv_ids)


@dataclass
class WireMessage:
    """One message as seen by the destination worker.

    ``size`` is the payload size (not counting protocol headers).  For EAGER
    the payload sits in ``bounce`` (a host buffer at the *receiver* by the
    time the message is delivered — the model moves it with the message).
    For RTS, ``src_buf`` references the registered source region the
    receiver will fetch from.
    """

    kind: WireKind
    tag: int
    size: int
    src_worker: int
    bounce: Optional[Buffer] = None
    src_buf: Optional[Buffer] = None
    rndv_id: int = 0
    sent_at: float = 0.0
    src_was_device: bool = False
    #: per-(sender, receiver) wire sequence for matchable messages (EAGER,
    #: RTS).  Transports deliver both on one ordered QP, so matching order
    #: must follow send order even though small control frames physically
    #: overtake bulk data in the link model.  None = unsequenced (FIN).
    wire_seq: Optional[int] = None
    #: for ERR notifications: which frame kind timed out.  An ERR for a
    #: sequenced frame inherits its wire_seq (the receiver must consume the
    #: slot or the ordered stream stalls forever); an ERR for a FIN carries
    #: the rndv_id so the original sender's pending request can fail.
    failed_kind: Optional[WireKind] = None
