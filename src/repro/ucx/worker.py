"""UCP workers: tag matching and message dispatch.

One worker per process/PE (the paper's non-SMP configuration).  The worker
owns the two matching queues of the UCP tagged API:

* **posted receives** — entries from ``tag_recv_nb`` not yet matched;
* **unexpected messages** — arrived eager payloads and rendezvous RTS
  descriptors with no matching posted receive yet.

Matching is FIFO with wildcard masks: an incoming tag ``t`` matches a posted
entry ``(tag, mask)`` iff ``t & mask == tag & mask``.  This ordering
guarantee is what the Charm++ machine layer's per-(PE, counter) device tags
rely on for correctness.

Both queues are :class:`~repro.core.matchq.IndexedMatchQueue` instances by
default (hash buckets on the full tag, wildcard-mask fallback list), so the
host-side lookup is O(1) amortised for full-mask traffic while the *modeled*
``tag_match_cost * scanned`` delay still charges the virtual linear-scan
length.  ``UcxConfig.indexed_matching=False`` selects the reference linear
lists; simulated results are bit-identical either way.

Fault injection and recovery
----------------------------

When the machine carries a non-empty :class:`~repro.faults.plan.FaultPlan`,
every non-loopback frame consults the :class:`~repro.faults.injector.
FaultInjector` before hitting the wire.  A faulted frame is retransmitted
after an exponential-backoff wait; a frame that exhausts its budget makes
the sender *give up*: the pending request (if any) fails with
``ERR_ENDPOINT_TIMEOUT`` and a ``WireKind.ERR`` notification is delivered
to the peer.  The notification models the peer's own timeout firing for the
same frame — the model's failure detector is symmetric — so it travels
out-of-band (zero extra delay, never itself faulted).  Sequenced ERR frames
inherit the lost frame's ``wire_seq``: the ordered per-pair stream *must*
consume every slot or it stalls behind the loss forever.  Receivers drop
retransmit duplicates by sequence number (already-delivered or held).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set

from repro.core.matchq import make_match_queue
from repro.faults.injector import CORRUPT, STALL
from repro.hardware.links import path_transfer
from repro.hardware.memory import Buffer
from repro.obs.metrics import LATENCY_BUCKETS
from repro.obs.tracing import NULL_SPAN
from repro.ucx.constants import (
    CTRL_MSG_BYTES,
    LOOPBACK_LATENCY,
    TAG_MASK_FULL,
    WIRE_HEADER_BYTES,
)
from repro.ucx.endpoint import UcpEndpoint
from repro.ucx.protocols import eager as eager_proto
from repro.ucx.protocols import rndv as rndv_proto
from repro.ucx.protocols.select import Protocol, choose_send_protocol
from repro.ucx.request import RequestKind, UcxRequest
from repro.ucx.status import UcsStatus, UcxError
from repro.ucx.wire import WireKind, WireMessage


@dataclass
class PostedRecv:
    """One entry of the posted-receive (expected) queue."""

    tag: int
    mask: int
    buf: Buffer
    size: int
    req: UcxRequest

    def matches(self, incoming_tag: int) -> bool:
        return (incoming_tag & self.mask) == (self.tag & self.mask)


class UcpWorker:
    """One communication endpoint owner; see module docstring."""

    def __init__(self, ctx, worker_id: int, node: int, socket: int = 0) -> None:
        self.ctx = ctx
        self.sim = ctx.sim
        self.worker_id = worker_id
        self.node = node
        self.socket = socket
        indexed = ctx.cfg.indexed_matching
        self.posted = make_match_queue(indexed)
        self.unexpected = make_match_queue(indexed)
        telemetry = ctx.telemetry
        if telemetry.enabled:
            self.posted.depth_probe = telemetry.queue_probe(
                "matchq.ucx.posted")
            self.unexpected.depth_probe = telemetry.queue_probe(
                "matchq.ucx.unexpected")
        self.pending_rndv_sends: Dict[int, UcxRequest] = {}
        self._endpoints: Dict[int, UcpEndpoint] = {}
        # per-directed-pair wire sequencing: matchable messages (EAGER/RTS)
        # are processed in send order even when control frames physically
        # arrive first (ordered-QP semantics)
        self._tx_seq: Dict[int, int] = {}
        self._rx_next: Dict[int, int] = {}
        self._rx_held: Dict[int, Dict[int, WireMessage]] = {}
        # the AM (host-message) stream is sequenced independently
        self._am_tx_seq: Dict[int, int] = {}
        self._am_rx_next: Dict[int, int] = {}
        self._am_rx_held: Dict[int, dict] = {}
        # rendezvous lifecycle, for cancellation and loss recovery:
        # ids that finished (FIN seen / gave up) so late or duplicate FINs
        # are ignored; ids the local sender cancelled; ids whose receiver
        # already committed to the data fetch (cancellation fails); and
        # which remote each locally-initiated id was addressed to
        self._rndv_done: Set[int] = set()
        self._rndv_cancelled: Set[int] = set()
        self._rndv_started: Set[int] = set()
        self._rndv_remote: Dict[int, int] = {}
        # Composite per-operation cost constants, each summed exactly once
        # here.  Float addition is not associative, so semantically-equal
        # delays derived at different call sites must come from these shared
        # sums rather than re-adding the config fields locally (the engine's
        # tie-break rule; see the repro.sim.engine docstring) — and the hot
        # path saves the re-derivation.
        cfg = ctx.cfg
        self._send_post_cost = cfg.send_overhead + cfg.request_alloc_cost
        self._recv_post_cost = cfg.recv_overhead + cfg.request_alloc_cost
        self._rts_post_cost = (
            cfg.send_overhead + cfg.request_alloc_cost + cfg.rndv_rts_cost
        )
        # per-size host staging-copy times (benchmark loops and halo
        # exchanges revisit a handful of sizes)
        self._host_copy_times: Dict[int, float] = {}
        # statistics
        self.sends = 0
        self.recvs = 0
        self.unexpected_hits = 0
        self.expected_hits = 0
        # total virtual scan length over all matches (what a linear scan
        # would have inspected); the modeled matching delay is proportional
        self.tag_scans = 0

    def _host_copy_time(self, size: int) -> float:
        """Memoized host-memory staging-copy time for ``size`` bytes."""
        t = self._host_copy_times.get(size)
        if t is None:
            t = self.ctx.machine.cfg.topology.host_mem.transfer_time(size)
            self._host_copy_times[size] = t
        return t

    # -- endpoints ------------------------------------------------------------
    def ep(self, remote_id: int) -> UcpEndpoint:
        """Get (and cache) the endpoint to ``remote_id``.

        With a connection limit configured (``UcxConfig.max_endpoints``) the
        cache is LRU: opening an endpoint past the limit closes the
        least-recently-used one first — dropping the peer mappings
        established through it, so reconnecting later pays setup and
        mapping again (production connection-count pressure)."""
        ep = self._endpoints.get(remote_id)
        if ep is not None:
            if self.ctx.ep_limit is not None:
                # dict preserves insertion order: re-insert to mark recency
                del self._endpoints[remote_id]
                self._endpoints[remote_id] = ep
            return ep
        limit = self.ctx.ep_limit
        if limit is not None and len(self._endpoints) >= limit:
            self._evict_lru_endpoint()
        ep = UcpEndpoint(self, self.ctx.worker(remote_id))
        self._endpoints[remote_id] = ep
        self.ctx.ep_total += 1
        if self.ctx.telemetry.enabled:
            self.ctx.telemetry.sample("ucx.ep_table", self.ctx.ep_total,
                                      "endpoints")
        return ep

    def _evict_lru_endpoint(self) -> None:
        victim_id = next(iter(self._endpoints))
        victim = self._endpoints.pop(victim_id)
        victim.closed = True
        self.ctx.ep_total -= 1
        self.ctx.machine.tracer.count("ucx", "ep_evicted")
        if self.ctx.telemetry.enabled:
            self.ctx.telemetry.bump("ucx.ep_evictions")
            self.ctx.telemetry.sample("ucx.ep_table", self.ctx.ep_total,
                                      "endpoints")
        if self.ctx.mapping_enabled:
            self.ctx.drop_pair_mappings(self.worker_id, victim_id)

    # -- public API -------------------------------------------------------------
    def tag_send_nb(
        self,
        ep: UcpEndpoint,
        buf: Buffer,
        size: int,
        tag: int,
        cb=None,
    ) -> UcxRequest:
        """``ucp_tag_send_nb``: non-blocking tagged send."""
        if ep.local is not self:
            raise UcxError("endpoint does not belong to this worker")
        if size > buf.size:
            raise UcxError(f"send size {size} exceeds buffer size {buf.size}")
        self.sends += 1
        ep.messages_sent += 1
        ep.bytes_sent += size
        cfg = self.ctx.cfg
        req = UcxRequest(self.sim, RequestKind.SEND, tag, size, cb)
        proto = choose_send_protocol(cfg, buf, size)
        tracer = self.ctx.machine.tracer
        tracer.count("ucx", "send")
        tracer.charge("ucx", self._send_post_cost)
        flight = tracer.flight
        if flight.enabled and buf.on_device:
            # direct-UCX device sends (OpenMPI) have no machine-layer record
            flight.ensure(tag, src_pe=self.worker_id,
                          dst_pe=ep.remote.worker_id, size=size)
            flight.ucx_send(tag, proto.value)
        if tracer.enabled:
            sp = tracer.span("ucx", "tag_send", tag=tag, size=size, proto=proto.value)
            req.span = sp
            tracer.observe("ucx.send_size_bytes", size)
            _user_cb = req.cb

            def _send_done(r, _sp=sp, _cb=_user_cb):
                _sp.end()
                tracer.observe(
                    "ucx.send_latency_seconds",
                    r.completed_at - r.posted_at,
                    LATENCY_BUCKETS,
                )
                if _cb is not None:
                    _cb(r)

            req.cb = _send_done
        else:
            sp = NULL_SPAN
        # lazy wireup: the endpoint's first message pays connection setup
        # (0.0 when the lifecycle model is off — adding it then is exact)
        pre = ep.mark_established() if self.ctx.ep_lifecycle_enabled else 0.0
        # matching order follows the tag_send_nb call order, whatever the
        # protocols' differing pre-send delays do to physical arrival order
        seq = self._tx_seq.get(ep.remote.worker_id, 0)
        self._tx_seq[ep.remote.worker_id] = seq + 1
        with tracer.under(sp):
            if proto is Protocol.EAGER:
                eager_proto.start_send(self, ep.remote, buf, size, tag, req,
                                       wire_seq=seq, pre_cost=pre)
            else:
                rndv_proto.start_send(self, ep.remote, buf, size, tag, req,
                                      wire_seq=seq, pre_cost=pre)
        return req

    def tag_recv_nb(
        self,
        buf: Buffer,
        size: int,
        tag: int,
        mask: int = TAG_MASK_FULL,
        cb=None,
    ) -> UcxRequest:
        """``ucp_tag_recv_nb``: post a tagged receive.

        Scans the unexpected queue first (FIFO); on a hit the protocol
        completion runs with the accumulated matching cost as its delay.
        """
        if size > buf.size:
            raise UcxError(f"recv size {size} exceeds buffer size {buf.size}")
        self.recvs += 1
        cfg = self.ctx.cfg
        req = UcxRequest(self.sim, RequestKind.RECV, tag, size, cb)
        posted = PostedRecv(tag, mask, buf, size, req)
        base = self._recv_post_cost
        tracer = self.ctx.machine.tracer
        tracer.count("ucx", "recv")
        tracer.charge("ucx", base)
        if tracer.enabled:
            sp = tracer.span("ucx", "tag_recv", tag=tag, size=size)
            req.span = sp
            _user_cb = req.cb

            def _recv_done(r, _sp=sp, _cb=_user_cb):
                _sp.end()
                tracer.observe(
                    "ucx.recv_latency_seconds",
                    r.completed_at - r.posted_at,
                    LATENCY_BUCKETS,
                )
                if _cb is not None:
                    _cb(r)

            req.cb = _recv_done

        # unexpected messages carry concrete tags (their queue key); a
        # full-mask receive is an exact lookup, a masked one falls back to
        # the FIFO scan.
        lookup = (tag & TAG_MASK_FULL) if mask == TAG_MASK_FULL else None
        msg, scanned = self.unexpected.match(
            lookup, lambda m: (m.tag & mask) == (tag & mask)
        )
        if msg is not None:
            self.unexpected_hits += 1
            self.tag_scans += scanned
            tracer.count("ucx", "unexpected_hit")
            tracer.charge("ucx", cfg.tag_match_cost * scanned)
            if tracer.enabled:
                tracer.span(
                    "ucx.match", "tag_match",
                    tag=msg.tag, scanned=scanned, unexpected=True,
                ).close_at(self.sim.now + cfg.tag_match_cost * scanned)
            if tracer.flight.enabled:
                tracer.flight.matched(msg.tag, posted_at=req.posted_at,
                                      unexpected=True)
            delay = base + cfg.tag_match_cost * scanned
            self._dispatch_match(msg, posted, delay)
            return req

        self.posted.append(
            posted, key=((tag & TAG_MASK_FULL) if mask == TAG_MASK_FULL else None)
        )
        return req

    def tag_probe_nb(self, tag: int, mask: int = TAG_MASK_FULL):
        """``ucp_tag_probe_nb``: peek the unexpected queue for a matching
        message without consuming it.  Returns ``(tag, size)`` or ``None``."""
        lookup = (tag & TAG_MASK_FULL) if mask == TAG_MASK_FULL else None
        msg = self.unexpected.peek(
            lookup, lambda m: (m.tag & mask) == (tag & mask)
        )
        return None if msg is None else (msg.tag, msg.size)

    def cancel(self, req: UcxRequest) -> bool:
        """``ucp_request_cancel``.

        * A posted **receive** is cancellable until it matches.
        * An **eager send** is cancellable until its payload has been staged
          onto the wire (the copy-in window).
        * A **rendezvous send** is cancellable until the receiver commits to
          the data fetch: while the RTS is in flight or sitting unmatched in
          the peer's unexpected queue, cancellation retracts it.

        A successful cancel completes the request with ``ERR_CANCELED``
        (closing its tracing span through the completion callback) and
        cleans up the flight record so a reposted same-tag operation does
        not inherit the cancelled one's stages.  Returns ``True`` iff the
        request was cancelled.
        """
        if req.completed:
            return False
        tracer = self.ctx.machine.tracer
        flight = tracer.flight
        if req.kind is RequestKind.RECV:
            if self.posted.remove_first(lambda p: p.req is req) is None:
                return False
            tracer.count("ucx", "cancel_recv")
            if flight.enabled:
                flight.recv_cancelled(req.tag)
            req.complete(UcsStatus.ERR_CANCELED)
            return True
        if getattr(req, "op", "tag") == "am":
            return False  # AM sends are not cancellable (no UCP handle)
        for rid, pending in self.pending_rndv_sends.items():
            if pending is not req:
                continue
            if rid in self._rndv_started:
                return False  # receiver is already fetching the data
            del self.pending_rndv_sends[rid]
            # the RTS still consumes its wire_seq slot at the receiver (it
            # is dropped there, see _process_in_order), so the ordered
            # stream keeps flowing past the cancelled message
            self._rndv_cancelled.add(rid)
            self._rndv_done.add(rid)
            remote_id = self._rndv_remote.get(rid)
            if remote_id is not None:
                # retract the RTS if it sits unmatched at the peer
                self.ctx.worker(remote_id).unexpected.remove_first(
                    lambda m: m.kind is WireKind.RTS and m.rndv_id == rid
                )
            tracer.count("ucx", "cancel_send")
            if flight.enabled:
                flight.cancelled(req.tag)
            req.complete(UcsStatus.ERR_CANCELED)
            return True
        # an eager send still staging its payload; the copy-in closure sees
        # the completed request and emits a slot-consuming ERR frame instead
        # of the payload
        tracer.count("ucx", "cancel_send")
        if flight.enabled:
            flight.cancelled(req.tag)
        req.complete(UcsStatus.ERR_CANCELED)
        return True

    # -- active-message host path -----------------------------------------------
    #
    # The Charm++ UCX machine layer moves ordinary host messages over UCP
    # with preposted wildcard buffers.  Rather than fabricate those buffers,
    # the model provides an AM-style path with the *same cost structure* as
    # the tagged protocols (eager copy-in/wire/copy-out below the host
    # rendezvous threshold; RTS + single-copy fetch above it) that delivers
    # to a worker-level handler installed by the machine layer.

    def set_am_handler(self, handler) -> None:
        """Install the callable invoked as ``handler(payload, size, src_id)``
        when an AM host message is delivered to this worker."""
        self._am_handler = handler

    def set_am_error_handler(self, handler) -> None:
        """Install the callable invoked as ``handler(size, src_id)`` when an
        AM host message from ``src_id`` is detected as lost (its sender
        exhausted the retransmit budget).  Without one, a loss raises."""
        self._am_error_handler = handler

    def am_send(self, ep: UcpEndpoint, size: int, payload=None) -> UcxRequest:
        """Send a host message of ``size`` bytes carrying ``payload`` (any
        Python object; not copied) to ``ep.remote``'s AM handler."""
        if ep.local is not self:
            raise UcxError("endpoint does not belong to this worker")
        self.sends += 1
        ep.messages_sent += 1
        ep.bytes_sent += size
        cfg = self.ctx.cfg
        req = UcxRequest(self.sim, RequestKind.SEND, 0, size, None)
        req.op = "am"
        remote = ep.remote
        tracer = self.ctx.machine.tracer
        tracer.count("ucx", "am_send")
        tracer.charge("ucx", self._send_post_cost)
        if tracer.enabled:
            sp = tracer.span(
                "ucx", "am_send",
                size=size, rndv=size >= cfg.host_rndv_threshold,
            )
            req.span = sp
            req.cb = lambda r, _sp=sp: _sp.end()

        # both AM protocols share one per-pair sequence stream: delivery
        # follows send order even across the eager/rendezvous boundary (a
        # small message sent after a large one must not overtake its fetch)
        seq = self._am_tx_seq.get(remote.worker_id, 0)
        self._am_tx_seq[remote.worker_id] = seq + 1

        # first traffic through the endpoint pays lazy connection setup
        pre = ep.mark_established() if self.ctx.ep_lifecycle_enabled else 0.0
        if size < cfg.host_rndv_threshold:
            # eager: copy-in, wire, copy-out
            copy = self._host_copy_time(size)
            delay = self._send_post_cost + copy + pre

            def _send_eager() -> None:
                req.complete()
                self._am_wire(remote, size, payload, extra_rx=copy, seq=seq)

            self.sim.schedule(delay, _send_eager)
        else:
            # rendezvous: RTS, then a single-copy fetch of the data
            delay = self._rts_post_cost + pre

            def _send_rts() -> None:
                self._am_wire(
                    remote, CTRL_MSG_BYTES, None, rndv=(size, payload, req), seq=seq
                )

            self.sim.schedule(delay, _send_rts)
        return req

    def _am_wire(
        self,
        remote: "UcpWorker",
        nbytes: int,
        payload,
        extra_rx: float = 0.0,
        rndv=None,
        seq=None,
        attempt: int = 0,
    ) -> None:
        machine = self.ctx.machine
        tracer = machine.tracer
        if remote.worker_id == self.worker_id:
            if tracer.enabled:
                sp = tracer.span("link", "am_wire", bytes=nbytes)
                self.sim.schedule(
                    LOOPBACK_LATENCY,
                    lambda: (sp.end(),
                             self._am_arrive(remote, nbytes, payload, extra_rx, rndv, seq)),
                )
            else:
                self.sim.schedule(
                    LOOPBACK_LATENCY, self._am_arrive, remote, nbytes, payload, extra_rx, rndv, seq
                )
            return
        injector = machine.fault_injector
        if injector is None:
            self._am_put_on_wire(remote, nbytes, payload, extra_rx, rndv, seq)
            return
        fault = injector.frame_fault(
            self.worker_id, remote.worker_id, "am", self.sim.now
        )
        if fault is None:
            self._am_put_on_wire(remote, nbytes, payload, extra_rx, rndv, seq)
            return
        verb, stall = fault
        if verb == STALL:
            # late, not lost: deliver with the stall added; if the stall
            # outlives the retry timer the sender also retransmits, and the
            # receiver dedups the duplicate by sequence number
            self._am_put_on_wire(
                remote, nbytes, payload, extra_rx, rndv, seq, extra_time=stall
            )
            if attempt < injector.max_retries and stall >= injector.retry_wait(attempt):
                self._am_schedule_retransmit(
                    remote, nbytes, payload, extra_rx, rndv, seq, injector, attempt
                )
            return
        if verb == CORRUPT:
            # the frame occupies the wire but fails its integrity check
            route = machine.route(
                machine.host_location(self.node, self.socket),
                machine.host_location(remote.node, remote.socket),
            )
            path_transfer(self.sim, route, nbytes + WIRE_HEADER_BYTES)
        if attempt >= injector.max_retries:
            self._am_give_up(remote, nbytes, rndv, seq)
            return
        self._am_schedule_retransmit(
            remote, nbytes, payload, extra_rx, rndv, seq, injector, attempt
        )

    def _am_put_on_wire(
        self,
        remote: "UcpWorker",
        nbytes: int,
        payload,
        extra_rx: float,
        rndv,
        seq,
        extra_time: float = 0.0,
    ) -> None:
        machine = self.ctx.machine
        tracer = machine.tracer
        route = machine.route(
            machine.host_location(self.node, self.socket),
            machine.host_location(remote.node, remote.socket),
        )
        if tracer.enabled:
            sp = tracer.span("link", "am_wire", bytes=nbytes)
            path_transfer(
                self.sim, route, nbytes + WIRE_HEADER_BYTES, extra_time=extra_time
            ).add_callback(
                lambda _ev: (sp.end(),
                             self._am_arrive(remote, nbytes, payload, extra_rx, rndv, seq))
            )
        else:
            path_transfer(
                self.sim, route, nbytes + WIRE_HEADER_BYTES, extra_time=extra_time
            ).add_callback(
                lambda _ev: self._am_arrive(remote, nbytes, payload, extra_rx, rndv, seq)
            )

    def _am_schedule_retransmit(
        self, remote, nbytes, payload, extra_rx, rndv, seq, injector, attempt
    ) -> None:
        tracer = self.ctx.machine.tracer
        tracer.count("fault", "retransmit")
        if tracer.timeline.enabled:
            tracer.timeline.bump("fault.retransmits")
        wait = injector.retry_wait(attempt)
        if tracer.enabled:
            tracer.span(
                "fault", "retransmit_wait", kind="am", attempt=attempt,
            ).close_at(self.sim.now + wait)
        self.sim.schedule(
            wait, self._am_wire, remote, nbytes, payload, extra_rx, rndv, seq,
            attempt + 1,
        )

    def _am_give_up(self, remote: "UcpWorker", nbytes: int, rndv, seq) -> None:
        """The retransmit budget for an AM frame is exhausted."""
        tracer = self.ctx.machine.tracer
        tracer.count("fault", "endpoint_timeout")
        if rndv is not None:
            size, _payload, send_req = rndv
            if not send_req.completed:
                send_req.complete(UcsStatus.ERR_ENDPOINT_TIMEOUT)
            lost = size
        else:
            lost = nbytes
        if seq is not None:
            # the receiver must consume the sequence slot or its ordered AM
            # stream stalls behind the lost message forever; a "lost" entry
            # surfaces the error at delivery order
            self.sim.schedule(
                0.0, remote._am_enqueue, self.worker_id, seq, ("lost", lost)
            )

    def _am_arrive(self, remote: "UcpWorker", nbytes: int, payload, extra_rx: float, rndv, seq=None) -> None:
        cfg = self.ctx.cfg
        machine = self.ctx.machine
        src = self.worker_id
        if rndv is None:
            if seq is None:
                remote._am_deliver(nbytes, payload, src, cfg.progress_overhead + extra_rx)
                return
            remote._am_enqueue(src, seq, ("msg", nbytes, payload, extra_rx))
            return
        size, data_payload, send_req = rndv
        if seq is not None and not remote._am_reserve(src, seq):
            # duplicate RTS from a stall-retransmit race: one fetch only
            machine.tracer.count("fault", "duplicate_dropped")
            return
        # receiver fetches the data with a single copy (CMA within a node,
        # RDMA get across nodes; the latter pins the pages first -- a CPU/
        # driver cost that delays the get without occupying the wire)
        route = machine.route(
            machine.host_location(self.node, self.socket),
            machine.host_location(remote.node, remote.socket),
        )
        reg = cfg.host_rndv_reg_overhead if remote.node != self.node else 0.0

        def _fetched(_ev) -> None:
            if not send_req.completed:
                send_req.complete()
            if seq is None:
                remote._am_deliver(size, data_payload, src, cfg.progress_overhead)
            else:
                remote._am_enqueue(
                    src, seq, ("msg", size, data_payload, 0.0), reserved=True
                )

        tracer = machine.tracer

        def _start_fetch() -> None:
            if tracer.enabled:
                sp = tracer.span("link", "am_fetch", bytes=size)
                path_transfer(self.sim, route, size).add_callback(
                    lambda _ev: (sp.end(), _fetched(_ev))
                )
            else:
                path_transfer(self.sim, route, size).add_callback(_fetched)

        self.sim.schedule(
            cfg.progress_overhead + cfg.rndv_rts_cost + reg, _start_fetch
        )

    # -- AM receive ordering ------------------------------------------------------
    #
    # Held entries per source are tagged tuples:
    #   ("msg", nbytes, payload, extra_rx)  — ready to deliver
    #   ("pending",)                        — rendezvous fetch in progress
    #   ("lost", nbytes)                    — sender gave up on this slot

    def _am_reserve(self, src: int, seq: int) -> bool:
        """Claim ``seq`` for an in-progress rendezvous fetch.  Returns False
        when the slot was already delivered, reserved, or filled (the frame
        is a retransmit duplicate)."""
        if seq < self._am_rx_next.get(src, 0):
            return False
        held = self._am_rx_held.setdefault(src, {})
        if seq in held:
            return False
        held[seq] = ("pending",)
        return True

    def _am_enqueue(self, src: int, seq: int, entry, reserved: bool = False) -> None:
        """File ``entry`` under ``seq`` and deliver everything now in order.
        Duplicates (slot already delivered or occupied) are dropped unless
        the caller holds the slot's reservation."""
        held = self._am_rx_held.setdefault(src, {})
        if not reserved:
            if seq < self._am_rx_next.get(src, 0) or seq in held:
                self.ctx.machine.tracer.count("fault", "duplicate_dropped")
                return
        held[seq] = entry
        self._am_drain(src)

    def _am_drain(self, src: int) -> None:
        cfg = self.ctx.cfg
        held = self._am_rx_held.get(src)
        while held:
            nxt = self._am_rx_next.get(src, 0)
            entry = held.get(nxt)
            if entry is None or entry[0] == "pending":
                return
            del held[nxt]
            self._am_rx_next[src] = nxt + 1
            if entry[0] == "lost":
                tracer = self.ctx.machine.tracer
                tracer.count("fault", "am_message_lost")
                handler = getattr(self, "_am_error_handler", None)
                if handler is None:
                    raise UcxError(
                        f"worker {self.worker_id}: AM message from {src} lost "
                        f"({entry[1]} bytes) and no AM error handler installed"
                    )
                handler(entry[1], src)
                continue
            _kind, nbytes, payload, extra_rx = entry
            self._am_deliver(nbytes, payload, src, cfg.progress_overhead + extra_rx)

    def _am_deliver(self, size: int, payload, src_id: int, delay: float) -> None:
        handler = getattr(self, "_am_handler", None)
        if handler is None:
            raise UcxError(f"worker {self.worker_id} has no AM handler installed")
        # keep handler invocation order consistent with delivery order: a
        # drained held message must not fire before its predecessor just
        # because its copy-out is cheaper
        if not hasattr(self, "_am_last_deliver"):
            self._am_last_deliver = {}
        at = max(self.sim.now + delay, self._am_last_deliver.get(src_id, 0.0))
        self._am_last_deliver[src_id] = at
        self.sim.schedule(at - self.sim.now, handler, payload, size, src_id)

    # -- wire ----------------------------------------------------------------------
    def transmit(
        self,
        remote: "UcpWorker",
        msg: WireMessage,
        wire_bytes: Optional[int] = None,
    ) -> None:
        """Push ``msg`` onto the wire towards ``remote``.

        Control and eager messages travel host-to-host (device payloads were
        staged by the eager protocol before transmit).  Loopback bypasses
        the link fabric.  With fault injection active, non-loopback frames
        go through the retransmit machinery; ERR notifications are exempt
        (they model the symmetric timeout, not a frame).
        """
        nbytes = (wire_bytes if wire_bytes is not None else msg.size) + WIRE_HEADER_BYTES
        tracer = self.ctx.machine.tracer
        if remote.worker_id == self.worker_id:
            if tracer.enabled:
                sp = tracer.span("link", "wire", kind=msg.kind.name,
                                 tag=msg.tag, bytes=nbytes)
                self.sim.schedule(
                    LOOPBACK_LATENCY, lambda: (sp.end(), remote._on_wire(msg))
                )
            else:
                self.sim.schedule(LOOPBACK_LATENCY, remote._on_wire, msg)
            return
        injector = self.ctx.machine.fault_injector
        if injector is not None and msg.kind is not WireKind.ERR:
            self._transmit_faulty(remote, msg, nbytes, injector, 0)
            return
        self._put_on_wire(remote, msg, nbytes)

    def _put_on_wire(
        self, remote: "UcpWorker", msg: WireMessage, nbytes: int,
        extra_time: float = 0.0,
    ) -> None:
        machine = self.ctx.machine
        tracer = machine.tracer
        route = machine.route(
            machine.host_location(self.node), machine.host_location(remote.node)
        )
        if tracer.enabled:
            sp = tracer.span("link", "wire", kind=msg.kind.name,
                             tag=msg.tag, bytes=nbytes)
            path_transfer(self.sim, route, nbytes, extra_time=extra_time).add_callback(
                lambda _ev: (sp.end(), remote._on_wire(msg))
            )
        else:
            path_transfer(self.sim, route, nbytes, extra_time=extra_time).add_callback(
                lambda _ev: remote._on_wire(msg)
            )

    def _transmit_faulty(
        self, remote: "UcpWorker", msg: WireMessage, nbytes: int, injector, attempt: int
    ) -> None:
        fault = injector.frame_fault(
            self.worker_id, remote.worker_id, msg.kind.value, self.sim.now
        )
        if fault is None:
            self._put_on_wire(remote, msg, nbytes)
            return
        verb, stall = fault
        if verb == STALL:
            # late, not lost: deliver with the stall added; when the stall
            # outlives the retry timer, the sender retransmits anyway and
            # the receiver drops whichever copy arrives second
            self._put_on_wire(remote, msg, nbytes, extra_time=stall)
            if attempt < injector.max_retries and stall >= injector.retry_wait(attempt):
                self._schedule_retransmit(remote, msg, nbytes, injector, attempt)
            return
        if verb == CORRUPT:
            # the frame occupies the wire but fails its integrity check
            machine = self.ctx.machine
            route = machine.route(
                machine.host_location(self.node), machine.host_location(remote.node)
            )
            path_transfer(self.sim, route, nbytes)
        if attempt >= injector.max_retries:
            self._give_up(remote, msg)
            return
        self._schedule_retransmit(remote, msg, nbytes, injector, attempt)

    def _schedule_retransmit(
        self, remote: "UcpWorker", msg: WireMessage, nbytes: int, injector, attempt: int
    ) -> None:
        tracer = self.ctx.machine.tracer
        tracer.count("fault", "retransmit")
        if tracer.timeline.enabled:
            tracer.timeline.bump("fault.retransmits")
        flight = tracer.flight
        if flight.enabled and msg.kind in (WireKind.EAGER, WireKind.RTS):
            flight.retransmitted(msg.tag)
        wait = injector.retry_wait(attempt)
        if tracer.enabled:
            tracer.span(
                "fault", "retransmit_wait",
                kind=msg.kind.name, tag=msg.tag, attempt=attempt,
            ).close_at(self.sim.now + wait)
        self.sim.schedule(
            wait, self._transmit_faulty, remote, msg, nbytes, injector, attempt + 1
        )

    def _give_up(self, remote: "UcpWorker", msg: WireMessage) -> None:
        """A tagged-path frame exhausted its retransmit budget."""
        tracer = self.ctx.machine.tracer
        tracer.count("fault", "endpoint_timeout")
        flight = tracer.flight
        if msg.kind is WireKind.FIN:
            # the lost FIN's destination is the original rendezvous sender:
            # surface the timeout on its still-pending send request
            err = WireMessage(
                kind=WireKind.ERR, tag=msg.tag, size=msg.size,
                src_worker=self.worker_id, rndv_id=msg.rndv_id,
                sent_at=self.sim.now, failed_kind=WireKind.FIN,
            )
            self.sim.schedule(0.0, remote._on_wire, err)
            return
        if flight.enabled:
            flight.failed(msg.tag, "endpoint_timeout")
        if msg.kind is WireKind.RTS:
            req = self.pending_rndv_sends.pop(msg.rndv_id, None)
            self._rndv_done.add(msg.rndv_id)
            if req is not None and not req.completed:
                req.complete(UcsStatus.ERR_ENDPOINT_TIMEOUT)
        err = WireMessage(
            kind=WireKind.ERR, tag=msg.tag, size=msg.size,
            src_worker=self.worker_id, rndv_id=msg.rndv_id,
            sent_at=self.sim.now, wire_seq=msg.wire_seq, failed_kind=msg.kind,
        )
        self.sim.schedule(0.0, remote._on_wire, err)

    def _on_wire(self, msg: WireMessage) -> None:
        """A message arrived (called at its simulated arrival instant)."""
        tracer = self.ctx.machine.tracer
        tracer.count("ucx", "arrive")
        tracer.charge("ucx", self.ctx.cfg.progress_overhead)
        if msg.kind is WireKind.ERR and msg.failed_kind is WireKind.FIN:
            # a FIN addressed to us was lost: our rendezvous send will never
            # see its completion notification — fail it
            req = self.pending_rndv_sends.pop(msg.rndv_id, None)
            self._rndv_done.add(msg.rndv_id)
            if req is not None and not req.completed:
                req.complete(UcsStatus.ERR_ENDPOINT_TIMEOUT)
            return
        if msg.kind is WireKind.FIN:
            rndv_proto.finish_send(self, msg)
            return
        # enforce per-pair matching order: hold early arrivals until their
        # predecessors on the same directed pair have been processed, and
        # drop retransmit duplicates (slot already delivered or held)
        src = msg.src_worker
        if msg.wire_seq is not None:
            expected = self._rx_next.get(src, 0)
            if msg.wire_seq < expected or msg.wire_seq in self._rx_held.get(src, {}):
                tracer.count("fault", "duplicate_dropped")
                return
            if msg.wire_seq != expected:
                self._rx_held.setdefault(src, {})[msg.wire_seq] = msg
                return
        self._process_in_order(msg)
        held = self._rx_held.get(src)
        while held:
            nxt = self._rx_next.get(src, 0)
            follow = held.pop(nxt, None)
            if follow is None:
                break
            self._process_in_order(follow)

    def _process_in_order(self, msg: WireMessage) -> None:
        cfg = self.ctx.cfg
        src = msg.src_worker
        if msg.wire_seq is not None:
            self._rx_next[src] = msg.wire_seq + 1
        if msg.kind is WireKind.ERR and msg.failed_kind is None:
            # slot consumer for a cancelled eager send: the sequence
            # advances but there is nothing to match
            self.ctx.machine.tracer.count("ucx", "cancelled_frame_slot")
            return
        if msg.kind is WireKind.RTS and msg.rndv_id in self.ctx.worker(src)._rndv_cancelled:
            # the sender cancelled while the RTS was in flight: consume the
            # sequence slot but never match the descriptor
            self.ctx.machine.tracer.count("ucx", "cancelled_rts_dropped")
            return
        base = cfg.progress_overhead
        # posted receives with a full mask are bucketed under their tag;
        # masked receives live in the wildcard fallback and are checked via
        # the predicate — FIFO order across both is preserved by slot order.
        posted, scanned = self.posted.match(
            msg.tag & TAG_MASK_FULL, lambda p: p.matches(msg.tag)
        )
        if posted is not None:
            self.expected_hits += 1
            self.tag_scans += scanned
            tracer = self.ctx.machine.tracer
            tracer.count("ucx", "expected_hit")
            tracer.charge("ucx", cfg.tag_match_cost * scanned)
            if tracer.enabled:
                tracer.span(
                    "ucx.match", "tag_match",
                    tag=msg.tag, scanned=scanned, unexpected=False,
                ).close_at(self.sim.now + cfg.tag_match_cost * scanned)
            if tracer.flight.enabled:
                tracer.flight.matched(msg.tag, posted_at=posted.req.posted_at,
                                      unexpected=False)
            delay = base + cfg.tag_match_cost * scanned
            self._dispatch_match(msg, posted, delay)
            return
        self.unexpected.append(msg, key=msg.tag & TAG_MASK_FULL)

    def _dispatch_match(self, msg: WireMessage, posted: PostedRecv, delay: float) -> None:
        if msg.kind is WireKind.EAGER:
            eager_proto.finish_recv(self, msg, posted, delay)
        elif msg.kind is WireKind.RTS:
            rndv_proto.start_transfer(self, msg, posted, delay)
        elif msg.kind is WireKind.ERR:
            # the peer exhausted its retransmit budget for the frame this
            # receive would have consumed
            self.sim.schedule(
                delay, posted.req.complete,
                UcsStatus.ERR_ENDPOINT_TIMEOUT, (msg.tag, msg.size),
            )
        else:  # pragma: no cover - defensive
            raise UcxError(f"unmatchable wire kind {msg.kind}")
