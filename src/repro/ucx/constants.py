"""Wire-level constants of the UCP model."""

#: Bytes of protocol header prepended to every wire message (UCP + UCT).
WIRE_HEADER_BYTES = 64

#: Size of rendezvous control messages (RTS / RTR / FIN) on the wire.
CTRL_MSG_BYTES = 64

#: Full-precision tag mask (exact match).
TAG_MASK_FULL = (1 << 64) - 1

#: Loopback delivery delay for sends where source and destination are the
#: same worker (no NIC involvement, just a queue hop).
LOOPBACK_LATENCY = 0.08e-6
