"""Indexed FIFO matching queues for the tag-matching hot path.

Both matching engines of the reproduction — the UCP worker's
posted/unexpected queues (:mod:`repro.ucx.worker`) and AMPI's
``(comm, src, tag)`` queues (:mod:`repro.ampi.matching`) — historically were
plain Python lists scanned linearly on every arrival/post.  That is faithful
to the *semantics* of UCX and AMPI matching but makes the host-side cost of
a simulation step O(queue length), which dominates wall-clock at large PE
counts with many outstanding messages.

This module provides two interchangeable queue implementations:

* :class:`LinearMatchQueue` — the reference implementation: a FIFO list with
  an O(n) scan, kept for golden comparisons and as executable documentation
  of the semantics.
* :class:`IndexedMatchQueue` — exact-key hash buckets plus a wildcard
  fallback list, the structure real UCX (and the MPICH tag-matching
  extensions) use.  Exact lookups are O(1) amortised.

Both preserve *bit-identical matching order and modeled cost*:

* every entry carries a per-queue FIFO **slot** (a monotonically increasing
  sequence number); when an exact-bucket candidate and a wildcard candidate
  both match, the one with the smaller slot wins — exactly what a linear
  FIFO scan would have picked;
* the **virtual scan length** (how many live entries a linear scan would
  have inspected up to and including the match) is still reported for every
  match, via a Fenwick tree over live slots, so the modeled
  ``tag_match_cost * scanned`` delay is unchanged even though the host-side
  lookup no longer performs that scan.

Contract for keys: an entry filed under key ``K`` must match *exactly* the
lookups performed with key ``K`` (full-mask UCP tags; wildcard-free
``(comm, src, tag)`` triples).  Entries that can match more than one key
(masked tags, ``ANY_SOURCE``/``ANY_TAG`` receives) are filed with
``key=None`` and live in the wildcard fallback list; lookups that can match
more than one key pass ``key=None`` and fall back to a full FIFO scan.
``pred`` is the ground-truth match predicate and is always honoured for
wildcard entries/lookups.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

__all__ = ["LinearMatchQueue", "IndexedMatchQueue", "make_match_queue"]


class LinearMatchQueue:
    """Reference FIFO queue: linear scan, O(n) per match (seed semantics)."""

    __slots__ = ("_items", "depth_probe")

    def __init__(self) -> None:
        self._items: List[Any] = []
        #: optional telemetry hook: called with +1/-1 on insert/remove
        #: (see repro.obs.timeline.Telemetry.queue_probe); observation-only
        self.depth_probe: Optional[Callable[[int], None]] = None

    def append(self, item: Any, key: Any = None) -> None:
        self._items.append(item)
        if self.depth_probe is not None:
            self.depth_probe(1)

    def match(
        self, key: Any, pred: Callable[[Any], bool]
    ) -> Tuple[Optional[Any], int]:
        """Remove and return the first entry satisfying ``pred``.

        Returns ``(item, scanned)`` where ``scanned`` is the 1-based position
        of the match in FIFO order, or ``(None, len(queue))`` when nothing
        matches (the whole queue was scanned).
        """
        items = self._items
        for i, item in enumerate(items):
            if pred(item):
                del items[i]
                if self.depth_probe is not None:
                    self.depth_probe(-1)
                return item, i + 1
        return None, len(items)

    def peek(self, key: Any, pred: Callable[[Any], bool]) -> Optional[Any]:
        for item in self._items:
            if pred(item):
                return item
        return None

    def remove_first(self, pred: Callable[[Any], bool]) -> Optional[Any]:
        """Remove and return the first entry satisfying ``pred`` (identity
        scans — e.g. cancellation); no modeled cost is attached."""
        items = self._items
        for i, item in enumerate(items):
            if pred(item):
                del items[i]
                if self.depth_probe is not None:
                    self.depth_probe(-1)
                return item
        return None

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._items)


class _Fenwick:
    """Binary indexed tree over slot liveness (1 = live, 0 = removed).

    ``rank(slot)`` — the number of live slots at positions ``<= slot`` — is
    exactly the 1-based position a linear FIFO scan would have reported for
    the entry at ``slot``, which is what keeps the modeled scan cost of the
    indexed queue bit-identical to the linear one.
    """

    __slots__ = ("_tree", "_n")

    def __init__(self) -> None:
        self._tree: List[int] = [0]  # 1-based; _tree[0] unused
        self._n = 0

    def append(self, value: int) -> None:
        """Extend the tree by one slot holding ``value`` (O(log n))."""
        self._n += 1
        i = self._n
        lb = i & -i
        # _tree[i] covers the range (i - lb, i]; everything but the new
        # element is already summed in existing prefixes.
        s = self.prefix(i - 1) - self.prefix(i - lb)
        self._tree.append(s + value)

    def add(self, slot: int, delta: int) -> None:
        """Add ``delta`` at 0-based ``slot``."""
        i = slot + 1
        tree = self._tree
        n = self._n
        while i <= n:
            tree[i] += delta
            i += i & -i

    def prefix(self, i: int) -> int:
        """Sum of 1-based positions ``1..i``."""
        tree = self._tree
        s = 0
        while i > 0:
            s += tree[i]
            i -= i & -i
        return s

    def rank(self, slot: int) -> int:
        """Number of live slots at 0-based positions ``<= slot``."""
        return self.prefix(slot + 1)

    @classmethod
    def all_live(cls, n: int) -> "_Fenwick":
        """Build a tree of ``n`` slots, all live (O(n))."""
        fen = cls.__new__(cls)
        fen._n = n
        fen._tree = [0] + [(i & -i) for i in range(1, n + 1)]
        return fen


class IndexedMatchQueue:
    """Hash-bucketed FIFO matching queue with a wildcard fallback list.

    Removed entries are tombstoned (``None``) and physically compacted once
    they outnumber the live entries, so slots stay small and iteration stays
    amortised O(live).  Bucket deques and the wildcard list hold slot indices
    and are cleaned lazily.
    """

    __slots__ = ("_slots", "_keys", "_buckets", "_wild", "_fen", "_live",
                 "_dead", "depth_probe")

    #: tombstones tolerated before a physical compaction
    _COMPACT_SLACK = 64

    def __init__(self) -> None:
        self._slots: List[Any] = []  # item, or None once removed
        self._keys: List[Any] = []  # key the item was filed under
        self._buckets: Dict[Any, deque] = {}
        self._wild: List[int] = []  # slots of wildcard entries, FIFO
        self._fen = _Fenwick()
        self._live = 0
        self._dead = 0
        #: optional telemetry hook: called with +1/-1 on insert/remove
        self.depth_probe: Optional[Callable[[int], None]] = None

    # -- mutation -----------------------------------------------------------
    def append(self, item: Any, key: Any = None) -> None:
        slot = len(self._slots)
        self._slots.append(item)
        self._keys.append(key)
        self._fen.append(1)
        self._live += 1
        if self.depth_probe is not None:
            self.depth_probe(1)
        if key is None:
            self._wild.append(slot)
        else:
            bucket = self._buckets.get(key)
            if bucket is None:
                self._buckets[key] = deque((slot,))
            else:
                bucket.append(slot)

    def _kill(self, slot: int) -> Any:
        item = self._slots[slot]
        self._slots[slot] = None
        self._fen.add(slot, -1)
        self._live -= 1
        self._dead += 1
        if self.depth_probe is not None:
            self.depth_probe(-1)
        if self._dead > self._live + self._COMPACT_SLACK:
            self._compact()
        return item

    def _compact(self) -> None:
        live = [
            (k, it) for k, it in zip(self._keys, self._slots) if it is not None
        ]
        self._slots = [it for _k, it in live]
        self._keys = [k for k, _it in live]
        self._buckets = {}
        self._wild = []
        for slot, (k, _it) in enumerate(live):
            if k is None:
                self._wild.append(slot)
            else:
                bucket = self._buckets.get(k)
                if bucket is None:
                    self._buckets[k] = deque((slot,))
                else:
                    bucket.append(slot)
        self._fen = _Fenwick.all_live(len(live))
        self._dead = 0

    # -- candidate search ----------------------------------------------------
    def _bucket_head(self, key: Any) -> Optional[int]:
        """Earliest live slot filed under ``key`` (lazily dropping dead)."""
        bucket = self._buckets.get(key)
        if not bucket:
            return None
        slots = self._slots
        while bucket:
            slot = bucket[0]
            if slots[slot] is not None:
                return slot
            bucket.popleft()
        del self._buckets[key]
        return None

    def _first_wild(self, pred: Callable[[Any], bool], before: Optional[int]) -> Optional[int]:
        """Earliest live wildcard slot ``< before`` whose item satisfies
        ``pred``; dead wildcard slots met on the way are dropped."""
        wild = self._wild
        slots = self._slots
        i = 0
        while i < len(wild):
            slot = wild[i]
            item = slots[slot]
            if item is None:
                wild.pop(i)
                continue
            if before is not None and slot >= before:
                return None
            if pred(item):
                return slot
            i += 1
        return None

    def _find(self, key: Any, pred: Callable[[Any], bool]) -> Optional[int]:
        if key is None:
            # wildcard lookup: semantics require the earliest live entry of
            # *any* key that satisfies pred — a genuine FIFO scan.
            for slot, item in enumerate(self._slots):
                if item is not None and pred(item):
                    return slot
            return None
        exact = self._bucket_head(key)
        wild = self._first_wild(pred, before=exact)
        if wild is not None:
            return wild  # _first_wild only returns slots earlier than exact
        return exact

    # -- queries -------------------------------------------------------------
    def match(
        self, key: Any, pred: Callable[[Any], bool]
    ) -> Tuple[Optional[Any], int]:
        """Remove and return the FIFO-first matching entry.

        Returns ``(item, scanned)`` with ``scanned`` the virtual linear-scan
        length (1-based rank of the match among live entries), or
        ``(None, live_count)`` on a miss.
        """
        slot = self._find(key, pred)
        if slot is None:
            return None, self._live
        scanned = self._fen.rank(slot)
        if self._keys[slot] is None:
            try:
                self._wild.remove(slot)
            except ValueError:  # pragma: no cover - already lazily dropped
                pass
        return self._kill(slot), scanned

    def peek(self, key: Any, pred: Callable[[Any], bool]) -> Optional[Any]:
        slot = self._find(key, pred)
        return None if slot is None else self._slots[slot]

    def remove_first(self, pred: Callable[[Any], bool]) -> Optional[Any]:
        for slot, item in enumerate(self._slots):
            if item is not None and pred(item):
                return self._kill(slot)
        return None

    def __len__(self) -> int:
        return self._live

    def __iter__(self) -> Iterator[Any]:
        return (item for item in self._slots if item is not None)


def make_match_queue(indexed: bool = True):
    """Factory used by the UCP worker and the AMPI match engine."""
    return IndexedMatchQueue() if indexed else LinearMatchQueue()
