"""The UCX machine layer (LRTS) — the paper's §III-A.

Lowest layer of the Charm++ runtime stack, directly interfacing the
(simulated) interconnect through UCP workers.  Two paths:

* **host messages** — the pre-existing route: Converse hands a packed
  message down, the machine layer moves it with UCP and the destination
  PE's scheduler picks it out of the message queue.
* **device buffers** — this work's extension: ``lrts_send_device`` assigns
  a ``UCX_MSG_TAG_DEVICE`` tag from the per-PE generator (Fig. 3), stores it
  in the caller's ``CmiDeviceBuffer`` metadata (to be packed with the host
  message), and pushes the GPU buffer into ``ucp_tag_send_nb``;
  ``lrts_recv_device`` posts ``ucp_tag_recv_nb`` for an incoming GPU buffer
  and routes completion to the handler registered for the posting model
  (``DeviceRecvType`` -> Charm++/AMPI/Charm4py), mirroring the paper's
  per-model receive handlers.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.config import MachineConfig
from repro.core.device_buffer import CmiDeviceBuffer, DeviceRdmaOp, DeviceRecvType
from repro.core.device_tags import TagGenerator
from repro.hardware.cuda import CudaRuntime
from repro.hardware.topology import Machine
from repro.ucx.context import UcpContext
from repro.ucx.request import UcxRequest
from repro.ucx.status import UcsStatus


class UcxMachineLayer:
    """LRTS implementation over :mod:`repro.ucx` (one worker per PE)."""

    def __init__(
        self,
        machine: Machine,
        n_pes: int,
        pe_node: List[int],
        cuda: Optional[CudaRuntime] = None,
        pe_socket: Optional[List[int]] = None,
    ) -> None:
        if len(pe_node) != n_pes:
            raise ValueError("pe_node must have one entry per PE")
        if pe_socket is None:
            pe_socket = [machine.socket_of_gpu(pe) for pe in range(n_pes)]
        self.machine = machine
        self.sim = machine.sim
        self.cfg: MachineConfig = machine.cfg
        self.ucp = UcpContext(machine, cuda)
        self.cuda = self.ucp.cuda
        self.n_pes = n_pes
        self.workers = [
            self.ucp.create_worker(pe, pe_node[pe], pe_socket[pe]) for pe in range(n_pes)
        ]
        self.tag_gens = [TagGenerator(pe, self.cfg.tags) for pe in range(n_pes)]
        self._recv_handlers: Dict[DeviceRecvType, Callable[[DeviceRdmaOp], None]] = {}
        self._deliver: Optional[Callable] = None
        self._error_handler: Optional[Callable[[str, int, UcsStatus], None]] = None
        # Shared composite LRTS posting costs, summed once (the engine's
        # tie-break rule; see the repro.sim.engine docstring).  The posting
        # *delays* below deliberately keep their three-term form
        # ``departure_delay + overhead + alloc``: regrouping onto these
        # constants would change the float bits whenever the PE is busy
        # (``departure_delay`` is usually nonzero mid-iteration).
        rt = self.cfg.runtime
        self._send_device_charge = rt.lrts_send_device_overhead + rt.heap_alloc_cost
        self._recv_device_charge = rt.lrts_recv_device_overhead + rt.heap_alloc_cost
        # statistics for the overhead-anatomy experiment (§IV-B1)
        self.device_sends = 0
        self.device_recvs = 0
        for w in self.workers:
            w.set_am_handler(self._on_host_message)

    def matching_stats(self) -> Dict[str, int]:
        """Aggregate tag-matching statistics over all workers.

        ``tag_scans`` is the total *virtual* scan length (entries a linear
        FIFO scan would have inspected across all matches) — the quantity the
        modeled ``tag_match_cost`` delay is charged on, and therefore
        invariant under ``UcxConfig.indexed_matching``.
        """
        stats = {
            "sends": 0,
            "recvs": 0,
            "expected_hits": 0,
            "unexpected_hits": 0,
            "tag_scans": 0,
        }
        for w in self.workers:
            stats["sends"] += w.sends
            stats["recvs"] += w.recvs
            stats["expected_hits"] += w.expected_hits
            stats["unexpected_hits"] += w.unexpected_hits
            stats["tag_scans"] += w.tag_scans
        return stats

    # -- wiring -------------------------------------------------------------------
    def attach(self, deliver: Callable[[int, object], None]) -> None:
        """Install the upcall that places an arrived host message on the
        destination PE's queue: ``deliver(dst_pe, msg)``."""
        self._deliver = deliver

    def register_device_recv_handler(
        self, recv_type: DeviceRecvType, handler: Callable[[DeviceRdmaOp], None]
    ) -> None:
        self._recv_handlers[recv_type] = handler

    def set_error_handler(
        self, handler: Callable[[str, int, UcsStatus], None]
    ) -> None:
        """Install the layer-level communication-error upcall, invoked as
        ``handler(kind, tag, status)`` with kind "send"/"recv" when a device
        transfer fails and the op carries no ``on_error`` of its own.
        Without one, a failed device receive raises (the seed behaviour)."""
        self._error_handler = handler

    def _route_error(self, kind: str, tag: int, status: UcsStatus) -> None:
        self.machine.tracer.count("machine", "device_error")
        if self._error_handler is not None:
            self._error_handler(kind, tag, status)
            return
        raise RuntimeError(f"device {kind} failed: {status.name} (tag {tag})")

    # -- host path -------------------------------------------------------------------
    def send_host_message(self, src_pe: int, dst_pe: int, msg, wire_bytes: int,
                          departure_delay: float = 0.0) -> None:
        """Move a packed Converse message to ``dst_pe``'s queue."""
        worker = self.workers[src_pe]
        ep = worker.ep(dst_pe)
        if departure_delay > 0.0:
            self.sim.schedule(departure_delay, worker.am_send, ep, wire_bytes, (dst_pe, msg))
        else:
            worker.am_send(ep, wire_bytes, (dst_pe, msg))

    def _on_host_message(self, payload, size: int, src_worker: int) -> None:
        dst_pe, msg = payload
        if self._deliver is None:
            raise RuntimeError("machine layer not attached to Converse")
        self._deliver(dst_pe, msg)

    # -- device path (the paper's API) ---------------------------------------------
    def lrts_send_device(
        self,
        src_pe: int,
        dst_pe: int,
        dev_buf: CmiDeviceBuffer,
        departure_delay: float = 0.0,
        on_complete: Optional[Callable[[], None]] = None,
        on_error: Optional[Callable[[UcsStatus], None]] = None,
    ) -> int:
        """``LrtsSendDevice``: assign the device tag, store it in the
        metadata object, and send the GPU buffer through UCP.  Returns the
        tag (also written to ``dev_buf.tag``)."""
        rt = self.cfg.runtime
        tag = self.tag_gens[src_pe].next_device_tag()
        dev_buf.tag = tag
        dev_buf.src_pe = src_pe
        self.device_sends += 1
        worker = self.workers[src_pe]
        ep = worker.ep(dst_pe)
        delay = departure_delay + rt.lrts_send_device_overhead + rt.heap_alloc_cost
        tracer = self.machine.tracer
        tracer.count("machine", "send_device")
        tracer.charge("machine", self._send_device_charge)
        if tracer.flight.enabled:
            # data is ready at the sender from this call on; the flight
            # recorder measures posting delay against this instant
            tracer.flight.begin(tag, src_pe=src_pe, dst_pe=dst_pe,
                                size=dev_buf.size)
        sp = tracer.span(
            "machine", "lrts_send_device",
            src_pe=src_pe, dst_pe=dst_pe, size=dev_buf.size, tag=tag,
        )

        def _complete(_req: UcxRequest) -> None:
            sp.end()
            if _req.status is not UcsStatus.OK:
                if on_error is not None:
                    on_error(_req.status)
                else:
                    self._route_error("send", tag, _req.status)
                return
            if on_complete is not None:
                on_complete()

        def _launch() -> None:
            with tracer.under(sp):
                worker.tag_send_nb(ep, dev_buf.ptr, dev_buf.size, tag, cb=_complete)

        self.sim.schedule(delay, _launch)
        return tag

    def lrts_recv_device(self, pe: int, op: DeviceRdmaOp, departure_delay: float = 0.0) -> None:
        """``LrtsRecvDevice``: post the tagged receive for incoming GPU data;
        on completion, invoke the registered handler for ``op.recv_type``."""
        rt = self.cfg.runtime
        handler = self._recv_handlers.get(op.recv_type)
        if handler is None:
            raise RuntimeError(f"no device recv handler registered for {op.recv_type}")
        self.device_recvs += 1
        worker = self.workers[pe]
        tracer = self.machine.tracer
        tracer.count("machine", "recv_device")
        tracer.charge("machine", self._recv_device_charge)
        if tracer.flight.enabled:
            tracer.flight.recv_posted(op.tag)
        sp = tracer.span(
            "machine", "lrts_recv_device",
            pe=pe, size=op.size, tag=op.tag, recv_type=op.recv_type.name,
        )

        def _complete(req: UcxRequest) -> None:
            # close the span on every outcome: an error must not leak it
            sp.end()
            if req.status is not UcsStatus.OK:
                if op.on_error is not None:
                    op.on_error(op, req.status)
                else:
                    self._route_error("recv", op.tag, req.status)
                return
            if op.on_complete is not None:
                op.on_complete(op)
            handler(op)

        delay = departure_delay + rt.lrts_recv_device_overhead + rt.heap_alloc_cost

        def _post() -> None:
            with tracer.under(sp):
                worker.tag_recv_nb(op.dest, op.size, op.tag, cb=_complete)

        self.sim.schedule(delay, _post)
