"""Metadata objects for GPU communication (paper Figs. 5 and the
``LrtsRecvDevice`` signature of §III-A).

``CmiDeviceBuffer`` is the Converse-layer view of one GPU buffer being sent:
source buffer, size, and the UCP tag assigned by the machine layer.
``CkDeviceBuffer`` adds the Charm++-core fields (a completion callback).
``DeviceRdmaOp`` is what a *receiver* hands to ``LrtsRecvDevice``: the
destination buffer plus the sender's tag, along with a ``DeviceRecvType``
that selects which programming model's handler runs on completion.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.hardware.memory import Buffer


class DeviceRecvType(enum.IntEnum):
    """Which model posted the receive; selects the completion handler
    invoked by the machine layer once the GPU data has arrived."""

    CHARM = 1
    AMPI = 2
    CHARM4PY = 3


@dataclass
class CmiDeviceBuffer:
    """Converse-layer metadata for one source GPU buffer (paper Fig. 5).

    ``tag`` is 0 until the UCX machine layer assigns one in
    ``LrtsSendDevice``; afterwards the struct rides inside the host-side
    message so the receiver can post the matching tagged receive.
    """

    ptr: Buffer  # source GPU buffer
    size: int
    tag: int = 0
    src_pe: int = -1

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError("device buffer size must be positive")
        if self.size > self.ptr.size:
            raise ValueError(
                f"send size {self.size} exceeds buffer size {self.ptr.size}"
            )
        if not self.ptr.on_device:
            raise ValueError("CmiDeviceBuffer wraps device memory only")


@dataclass
class CkDeviceBuffer(CmiDeviceBuffer):
    """Charm++-core metadata: adds the completion callback (CkCallback)."""

    cb: Optional[Callable[[], None]] = None

    @classmethod
    def wrap(cls, buf: Buffer, size: Optional[int] = None,
             cb: Optional[Callable[[], None]] = None) -> "CkDeviceBuffer":
        """Convenience used at entry-method invocation sites:
        ``peer.recv(CkDeviceBuffer.wrap(gpu_data), ...)``."""
        return cls(ptr=buf, size=size if size is not None else buf.size, cb=cb)


@dataclass
class DeviceRdmaOp:
    """Receive descriptor passed to ``LrtsRecvDevice`` (paper §III-A).

    Carries everything needed to post ``ucp_tag_recv_nb``: destination GPU
    buffer, expected size, and the tag set by the sender; plus the handler
    context of the posting model.
    """

    dest: Buffer
    size: int
    tag: int
    recv_type: DeviceRecvType
    on_complete: Optional[Callable[["DeviceRdmaOp"], None]] = None
    # invoked as ``on_error(op, status)`` when the receive fails (cancelled,
    # truncated, endpoint timeout); without one the machine layer falls back
    # to its layer-level error handler, then to raising
    on_error: Optional[Callable[["DeviceRdmaOp", Any], None]] = None
    context: Any = None  # model-specific (e.g. the pending entry invocation)

    def __post_init__(self) -> None:
        if not self.dest.on_device:
            raise ValueError("DeviceRdmaOp destination must be device memory")
        if self.size > self.dest.size:
            raise ValueError(
                f"recv size {self.size} exceeds destination size {self.dest.size}"
            )
