"""Tag generation for GPU communication (paper Fig. 3).

A 64-bit UCP tag is split into three fields::

    | MSG_BITS (4) | PE_BITS (default 32) | CNT_BITS (default 28) |

``MSG_BITS`` differentiates message *types* — the paper adds the
``UCX_MSG_TAG_DEVICE`` type for inter-GPU transfers so the device-data path
never collides with host-side messaging.  The remainder is the source PE
index plus a per-PE monotonically increasing counter (wrapping at
``2**CNT_BITS``), making every in-flight device transfer uniquely
addressable.  The split is user-configurable (:class:`repro.config.TagConfig`)
"to accommodate different scaling configurations".
"""

from __future__ import annotations

import enum
from typing import Tuple

from repro.config import TagConfig


class MsgType(enum.IntEnum):
    """Values of the MSG_BITS field.

    The pre-existing machine layer used tag types for host messaging; this
    work adds :attr:`DEVICE` (paper: ``UCX_MSG_TAG_DEVICE``).
    """

    HOST = 0x1  # ordinary Converse/Charm++ host-side messages
    AM = 0x2  # active-message style short control traffic
    DEVICE = 0x3  # GPU-GPU transfers introduced by this work
    PROBE = 0x4  # reserved for diagnostics


def make_tag(msg_type: MsgType, pe: int, count: int, cfg: TagConfig = TagConfig()) -> int:
    """Compose a 64-bit tag from its three fields.

    Raises :class:`ValueError` if ``pe`` does not fit in ``PE_BITS``;
    ``count`` is wrapped modulo ``2**CNT_BITS`` (counters are long-running).
    """
    if pe < 0 or pe >= (1 << cfg.pe_bits):
        raise ValueError(f"PE {pe} does not fit in {cfg.pe_bits} bits")
    if count < 0:
        raise ValueError("count must be non-negative")
    count %= 1 << cfg.cnt_bits
    if int(msg_type) >= (1 << cfg.msg_bits):
        raise ValueError(f"msg type {msg_type} does not fit in {cfg.msg_bits} bits")
    return (
        (int(msg_type) << (cfg.pe_bits + cfg.cnt_bits))
        | (pe << cfg.cnt_bits)
        | count
    )


def decode_tag(tag: int, cfg: TagConfig = TagConfig()) -> Tuple[MsgType, int, int]:
    """Split a tag back into ``(msg_type, pe, count)``."""
    if tag < 0 or tag >= (1 << 64):
        raise ValueError("tag must be an unsigned 64-bit value")
    cnt_mask = (1 << cfg.cnt_bits) - 1
    pe_mask = (1 << cfg.pe_bits) - 1
    count = tag & cnt_mask
    pe = (tag >> cfg.cnt_bits) & pe_mask
    msg = tag >> (cfg.pe_bits + cfg.cnt_bits)
    return MsgType(msg), pe, count


#: Full-precision tag mask: receives posted by the device path match exactly.
TAG_MASK_FULL = (1 << 64) - 1


def msg_type_mask(cfg: TagConfig = TagConfig()) -> int:
    """Mask selecting only the MSG_BITS field (used by the wildcard receive
    loop of the machine layer to take all host messages regardless of
    source PE or counter)."""
    return ((1 << cfg.msg_bits) - 1) << (cfg.pe_bits + cfg.cnt_bits)


class TagGenerator:
    """Per-PE device-tag source: increments the PE's counter per transfer.

    ``LrtsSendDevice`` calls :meth:`next_device_tag`; uniqueness holds until
    ``2**CNT_BITS`` transfers are simultaneously in flight from one PE,
    which the default 28 bits makes unreachable in practice.
    """

    def __init__(self, pe: int, cfg: TagConfig = TagConfig()) -> None:
        self.pe = pe
        self.cfg = cfg
        self._counter = 0

    @property
    def counter(self) -> int:
        return self._counter

    def next_device_tag(self) -> int:
        tag = make_tag(MsgType.DEVICE, self.pe, self._counter, self.cfg)
        self._counter = (self._counter + 1) % (1 << self.cfg.cnt_bits)
        return tag

    def host_tag(self) -> int:
        """Tag under which ordinary host messages destined to any PE travel
        (matched with :func:`msg_type_mask` wildcards on the receiver)."""
        return make_tag(MsgType.HOST, self.pe, 0, self.cfg)
