"""The paper's primary contribution: the GPU-aware UCX machine layer.

Three pieces:

* :mod:`repro.core.device_tags` — the 64-bit tag generation scheme of the
  paper's Fig. 3 (``MSG_BITS | PE_BITS | CNT_BITS``) that separates the
  device-data path from host-side messaging.
* :mod:`repro.core.device_buffer` — the metadata objects of Fig. 5
  (``CmiDeviceBuffer`` / ``CkDeviceBuffer`` / ``DeviceRdmaOp``) exchanged
  between communication endpoints to support message-driven execution.
* :mod:`repro.core.machine_ucx` — the UCX machine layer itself, exposing
  ``LrtsSendDevice`` / ``LrtsRecvDevice`` plus the host-message path that
  Converse uses for everything else.
"""

from repro.core.device_tags import MsgType, TagGenerator, decode_tag, make_tag
from repro.core.device_buffer import (
    CkDeviceBuffer,
    CmiDeviceBuffer,
    DeviceRdmaOp,
    DeviceRecvType,
)
from repro.core.machine_ucx import UcxMachineLayer

__all__ = [
    "CkDeviceBuffer",
    "CmiDeviceBuffer",
    "DeviceRdmaOp",
    "DeviceRecvType",
    "MsgType",
    "TagGenerator",
    "UcxMachineLayer",
    "decode_tag",
    "make_tag",
]
