"""Congestion attribution: the "network weather" report over telemetry.

Where the critical-path analyzer (:mod:`repro.obs.critical_path`) blames
the layers of one worst-case message, this module ranks the *shared
resources* the whole run fought over: which links accumulated the most
acquisition-wait time, which span categories were doing the waiting,
when each link sat at full occupancy (saturation windows), and whether
the endpoint LRU is thrashing (evicting about as fast as it connects).

Everything here is derived after the fact from the aggregates
:class:`repro.obs.timeline.Telemetry` keeps while enabled — building the
report never touches the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = [
    "LinkCongestion",
    "CongestionReport",
    "congestion_report",
]

#: evictions below this are warm-up noise, not thrash
_THRASH_MIN_EVICTIONS = 8
#: thrash = evictions at least this fraction of connects
_THRASH_EVICT_RATIO = 0.5


@dataclass
class LinkCongestion:
    """Per-link contention facts for one run."""

    name: str
    busy_time: float            # seconds >=1 slot held (bulk transfers)
    busy_frac: float            # busy_time / run duration
    wait_time: float            # total acquisition-wait charged to this link
    wait_count: int             # number of waits this link blocked
    transfers: int              # total acquisitions
    waiters: Dict[str, float] = field(default_factory=dict)
    saturated_time: float = 0.0
    saturation_windows: List[Tuple[float, float]] = field(default_factory=list)
    saturation_truncated: bool = False


@dataclass
class CongestionReport:
    duration: float             # simulated seconds covered
    links: List[LinkCongestion]         # every link with any activity
    top_contended: List[LinkCongestion]  # wait_time > 0, ranked
    endpoint_thrash: Dict[str, float]
    retransmits: int

    def format(self, top_n: int = 5) -> str:
        lines = [f"# congestion report over {self.duration * 1e3:.3f} ms "
                 f"simulated"]
        top = self.top_contended[:top_n]
        if not top:
            lines.append("  no acquisition waits recorded — links never "
                         "contended")
        else:
            lines.append(f"  top contended links ({len(top)} of "
                         f"{len(self.top_contended)} with waits):")
            for lc in top:
                lines.append(
                    f"    {lc.name:24s} wait {lc.wait_time * 1e6:10.1f} us "
                    f"({lc.wait_count} waits)  busy {lc.busy_frac * 100:5.1f}% "
                    f" saturated {lc.saturated_time * 1e6:10.1f} us "
                    f"in {len(lc.saturation_windows)}"
                    f"{'+' if lc.saturation_truncated else ''} windows")
                for cat, t in sorted(lc.waiters.items(),
                                     key=lambda kv: (-kv[1], kv[0])):
                    lines.append(f"      waited-on by {cat:16s} "
                                 f"{t * 1e6:10.1f} us")
        th = self.endpoint_thrash
        if th["thrashing"]:
            lines.append(
                f"  endpoint LRU THRASHING: {int(th['evictions'])} evictions "
                f"vs {int(th['connects'])} connects "
                f"({th['eviction_rate']:.0f}/s vs {th['connect_rate']:.0f}/s)")
        else:
            lines.append(
                f"  endpoint LRU healthy: {int(th['evictions'])} evictions vs "
                f"{int(th['connects'])} connects")
        if self.retransmits:
            lines.append(f"  fault layer: {self.retransmits} retransmits")
        return "\n".join(lines)


def congestion_report(tracer, top_n: int = 5) -> CongestionReport:
    """Build a :class:`CongestionReport` from a session's tracer.

    Requires telemetry to have been enabled for the run
    (``SessionBuilder.telemetry()`` / ``MachineConfig.with_telemetry()``).
    """
    telem = tracer.timeline
    if not telem.enabled:
        raise RuntimeError(
            "telemetry was not enabled for this run; build the session "
            "with .telemetry() (or pass --timeline-out/--congestion on "
            "the CLI) and re-run")
    now = telem.sim.now
    duration = now if now > 0 else 0.0
    saturation = telem.saturation_view()

    names = set(telem.links) | set(telem.link_wait_time) | set(saturation)
    links: List[LinkCongestion] = []
    for name in sorted(names):
        res = telem.links.get(name)
        busy = res.utilisation() * duration if res is not None else 0.0
        sat = saturation.get(name, {})
        links.append(LinkCongestion(
            name=name,
            busy_time=busy,
            busy_frac=busy / duration if duration else 0.0,
            wait_time=telem.link_wait_time.get(name, 0.0),
            wait_count=telem.link_wait_count.get(name, 0),
            transfers=res.total_acquisitions if res is not None else 0,
            waiters=dict(telem.link_waiters.get(name, {})),
            saturated_time=sat.get("time", 0.0),
            saturation_windows=list(sat.get("windows", [])),
            saturation_truncated=sat.get("truncated", False),
        ))
    links.sort(key=lambda lc: (-lc.wait_time, -lc.busy_time, lc.name))
    top = [lc for lc in links if lc.wait_time > 0.0][:max(top_n, 0)]

    metrics = tracer.metrics
    evictions = metrics.counter("ucx", "ep_evicted")
    connects = metrics.counter("ucx", "ep_connect")
    thrash = {
        "evictions": float(evictions),
        "connects": float(connects),
        "eviction_rate": evictions / duration if duration else 0.0,
        "connect_rate": connects / duration if duration else 0.0,
        "thrashing": bool(
            evictions >= _THRASH_MIN_EVICTIONS
            and evictions >= _THRASH_EVICT_RATIO * max(connects, 1)),
    }
    return CongestionReport(
        duration=duration,
        links=links,
        top_contended=top,
        endpoint_thrash=thrash,
        retransmits=metrics.counter("fault", "retransmit"),
    )
