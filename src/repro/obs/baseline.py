"""Performance-baseline store and regression gate.

Because the simulator is deterministic, a run's modeled results are a
*fingerprint* of the code: one-way latencies, final simulated time, event
counts, counters and the flight recorder's aggregate delayed-posting cost
are bit-stable across hosts and runs.  This module persists those
fingerprints for a small suite of fast, representative workloads
(``BENCH_baseline.json`` at the repo root) and re-derives them on demand:

* ``record`` — run the suite, write the baseline file;
* ``check`` — run the suite again and compare against the stored
  baseline: integer quantities (event counts, counters, inversions) must
  match exactly, modeled times within a relative tolerance.

Any code change that shifts a modeled latency, schedules a different
number of events or bumps a counter outside tolerance trips the gate —
the CI hook the ROADMAP's "every PR makes a hot path measurably faster
or enables that" needs to be enforceable.

CLI: ``python -m repro.bench.baseline record|check`` (see
:mod:`repro.bench.baseline`).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.config import KB, MB, MachineConfig

__all__ = [
    "BASELINE_SCHEMA",
    "DEFAULT_BASELINE_PATH",
    "DEFAULT_ATOL",
    "WALLCLOCK_BUDGETS",
    "WORKLOADS",
    "BaselineReport",
    "collect_baseline",
    "check_baseline",
    "load_baseline",
    "save_baseline",
    "run_workload",
]

BASELINE_SCHEMA = 1

#: Committed at the repository root.
DEFAULT_BASELINE_PATH = "BENCH_baseline.json"

#: Default relative tolerance for modeled times (floats); integers exact.
DEFAULT_RTOL = 0.01

#: Absolute floor for float comparisons.  A pure relative tolerance makes
#: every near-zero quantity (e.g. a delayed-posting cost that should be
#: exactly 0 µs) an automatic mismatch on any sub-rounding jitter, while a
#: large hidden floor would mask real regressions of small quantities —
#: this explicit value only absorbs float noise far below any modeled cost.
DEFAULT_ATOL = 1e-12

#: Named fault plans referenced by 4-tuple workload specs.  Deterministic
#: by construction (seeded), so faulty runs fingerprint just as stably as
#: clean ones — retransmit/drop counters included.
_FAULT_PLANS = {
    "lossy": None,  # built lazily below to keep this module import-light
}


def _fault_plan(key: str):
    plan = _FAULT_PLANS.get(key)
    if plan is None:
        from repro.faults import FaultPlan

        if key != "lossy":
            raise KeyError(f"unknown baseline fault plan {key!r}")
        plan = FaultPlan.lossy(drop_p=0.08, seed=1234)
        _FAULT_PLANS[key] = plan
    return plan


#: name -> (model, size, placement[, fault_plan]).  Small-message intra-node
#: points cover every model's eager path cheaply; the inter-node 64 KB points
#: exercise the rendezvous protocols (and therefore nonzero delayed-posting
#: cost); the ``_lossy`` point pins the fault-injection recovery path
#: (seeded drops, retransmits, backoff waits) to a fingerprint.
WORKLOADS: Dict[str, Tuple] = {
    "osu_latency_charm_intra_8": ("charm", 8, "intra"),
    "osu_latency_ampi_intra_8": ("ampi", 8, "intra"),
    "osu_latency_openmpi_intra_8": ("openmpi", 8, "intra"),
    "osu_latency_charm4py_intra_8": ("charm4py", 8, "intra"),
    "osu_latency_charm_inter_64K": ("charm", 64 * KB, "inter"),
    "osu_latency_ampi_inter_64K": ("ampi", 64 * KB, "inter"),
    "osu_latency_ampi_inter_64K_lossy": ("ampi", 64 * KB, "inter", "lossy"),
    # Paper-scale Jacobi3D scaling sweeps (§IV-C at 256 nodes): each entry
    # runs a node ladder and pins the *scaling shape* — one fingerprint per
    # ladder point, compared recursively.  Weak ladders start at 4 nodes;
    # strong ladders at 8 (the fixed 3072³ domain does not fit fewer GPUs).
    "jacobi_charm_weak_256": ("jacobi", "charm", "weak", (4, 64, 256)),
    "jacobi_charm_strong_256": ("jacobi", "charm", "strong", (8, 64, 256)),
    "jacobi_ampi_weak_256": ("jacobi", "ampi", "weak", (4, 64, 256)),
    "jacobi_ampi_strong_256": ("jacobi", "ampi", "strong", (8, 64, 256)),
    "jacobi_charm4py_weak_256": ("jacobi", "charm4py", "weak", (4, 64, 256)),
    "jacobi_charm4py_strong_256": ("jacobi", "charm4py", "strong", (8, 64, 256)),
    # Device-collective fingerprints: one 64-rank 1 MB allreduce across 11
    # nodes, flat (hierarchical disabled, auto-selected flat algorithm) vs
    # hierarchical (two-level NVLink/IB decomposition).  The gate asserts
    # the hierarchical run stays *faster* than the flat one — the PR's
    # headline crossover, pinned as data.
    "coll_allreduce_ampi_64r_1M_flat": ("coll", "flat"),
    "coll_allreduce_ampi_64r_1M_hier": ("coll", "hier"),
    # Dask-style GPU dataframe shuffle (all-to-all, O(ranks²) communicator
    # pairs) with first-touch mapping/endpoint-setup costs enabled: the
    # pooled-allocator ablation.  ``_pool`` routes chunks through the slab
    # pool (mappings amortised to the first round); ``_direct`` allocates
    # fresh buffers every round and pays them again.  The gate asserts the
    # pooled run stays faster by the amortisation margin.
    "shuffle_ampi_4n_pool": ("shuffle", "ampi", True, 4),
    "shuffle_ampi_4n_direct": ("shuffle", "ampi", False, 4),
    "shuffle_charm4py_4n_pool": ("shuffle", "charm4py", True, 4),
    "shuffle_charm4py_4n_direct": ("shuffle", "charm4py", False, 4),
    "shuffle_openmpi_2n_pool": ("shuffle", "openmpi", True, 2),
    "shuffle_openmpi_2n_direct": ("shuffle", "openmpi", False, 2),
    # Endpoint-thrash regime (PR 8 follow-on): the same pooled shuffle with
    # ``max_endpoints`` far below the peer count (4 slots for 11 peers per
    # worker), so every round LRU-closes and reconnects endpoints — and
    # re-pays the peer mappings dropped with them.  The fingerprint pins
    # the churn counters (``ucx.ep_evicted``/``ucx.ep_connect``) and the
    # much larger modeled time; the congestion report flags this run as
    # thrashing (gated in benchmarks/test_telemetry_smoke.py).
    "shuffle_ampi_2n_thrash": ("shuffle", "ampi", True, 2, "thrash"),
    # Multirail striping ablation (PR 10): one 4 MB intra-node AMPI
    # bandwidth point three ways — single-rail (the Fig. 12 NVLink
    # ceiling), striped across the alternate-brick/host-memory sideband
    # with graph-batched launches, and striped with every alternate-brick
    # link held down by a factor-0.0 fault window (graceful fallback: the
    # planner excludes the dead rail and the modeled time returns to the
    # single-rail fingerprint).  The gate asserts the striped run beats
    # single-rail and the rail-down run matches it.
    "bw_ampi_intra_4M_singlerail": ("bw_mr", "off"),
    "bw_ampi_intra_4M_multirail": ("bw_mr", "on"),
    "bw_ampi_intra_4M_multirail_raildown": ("bw_mr", "raildown"),
}

_ITERS = 6
_SKIP = 2

#: Jacobi ladder points run the minimum that still exercises the steady
#: state (warmup iteration excluded from the averages).
_JACOBI_ITERS = 2
_JACOBI_WARMUP = 1

#: Per-workload wall-clock budgets (seconds), asserted by ``check``: a
#: paper-scale workload that silently regresses into a minutes-long run
#: fails the gate even if its modeled fingerprint is intact.  Budgets are
#: ~3x the observed wall-clock so only real regressions trip them.
DEFAULT_WALLCLOCK_BUDGET = 30.0
WALLCLOCK_BUDGETS: Dict[str, float] = {
    name: 90.0 for name in WORKLOADS if name.startswith("jacobi_")
}
WALLCLOCK_BUDGETS.update(
    {name: 60.0 for name in WORKLOADS if name.startswith("coll_")}
)
WALLCLOCK_BUDGETS.update(
    {name: 60.0 for name in WORKLOADS if name.startswith("shuffle_")}
)
# The thrash regime schedules far more work (reconnects + re-mappings) than
# the healthy shuffles; the telemetry soak smoke is budgeted here too so CI
# treats a runaway soak like any other wall-clock regression (the soak test
# reads its own budget from this table).
WALLCLOCK_BUDGETS["shuffle_ampi_2n_thrash"] = 60.0
WALLCLOCK_BUDGETS["soak_telemetry_smoke"] = 120.0
WALLCLOCK_BUDGETS.update(
    {name: 60.0 for name in WORKLOADS if name.startswith("bw_")}
)

#: Shape of the collective baseline points (see the ``coll_*`` workloads).
_COLL_RANKS = 64
_COLL_NODES = 11
_COLL_NBYTES = 1 << 20

#: Shape of the shuffle ablation points (see the ``shuffle_*`` workloads):
#: six all-to-all rounds with first-touch charges large enough that the
#: direct allocator's re-mapping cost dominates — the regime the pooled
#: allocator exists for (RMM under dask-cuda).
_SHUFFLE_ROUNDS = 6
_SHUFFLE_MAPPING_COST = 1e-3
_SHUFFLE_EP_SETUP_COST = 2e-5
#: endpoint cap of the ``_thrash`` variant: far below the 11 peers each
#: worker talks to in the 2-node all-to-all, forcing sustained LRU churn
_THRASH_MAX_ENDPOINTS = 4


def _run_shuffle_workload(spec: Tuple, config: Optional[MachineConfig]) -> Dict:
    import repro.api as api
    from repro.apps.shuffle.driver import run_shuffle

    _, model, pooled, nodes = spec[:4]
    thrash = len(spec) > 4 and spec[4] == "thrash"
    cfg = config if config is not None else MachineConfig.summit(nodes=2)
    cfg = (cfg.with_nodes(nodes).with_virtual_payload().with_flight(True)
           .with_pool(pooled)
           .with_ucx(mapping_cost=_SHUFFLE_MAPPING_COST,
                     ep_setup_cost=_SHUFFLE_EP_SETUP_COST,
                     max_endpoints=_THRASH_MAX_ENDPOINTS if thrash else None))
    builder = api.session(cfg).model(model)
    if model != "charm4py":
        builder = builder.ranks(cfg.topology.total_gpus)
    sess = builder.build()
    result = run_shuffle(model, rounds=_SHUFFLE_ROUNDS, session=sess)
    fp = sess.baseline_fingerprint()
    fp["shuffle_time_us"] = result.total_time * 1e6
    fp["bytes_moved"] = result.bytes_moved
    fp["chunks_moved"] = result.chunks_moved
    return fp


#: Shape of the multirail ablation points (see the ``bw_mr_*`` workloads):
#: the Fig. 12 peak size, a short windowed loop (enough for the striped
#: steady state without jacobi-scale wall-clock).
_BW_MR_SIZE = 4 * MB
_BW_MR_LOOPS = 2
_BW_MR_WINDOW = 16


def _run_bw_mr_workload(spec: Tuple, config: Optional[MachineConfig]) -> Dict:
    import repro.api as api
    from repro.apps.osu.runner import run_bandwidth

    variant = spec[1]
    cfg = config if config is not None else MachineConfig.summit(nodes=2)
    cfg = cfg.with_flight(True)
    if variant != "off":
        cfg = cfg.with_multirail()
    if variant == "raildown":
        from repro.faults import FaultPlan

        # every alternate-brick link down for the whole run: no seed route
        # traverses them, so only the rail planner sees the outage
        cfg = cfg.with_faults(FaultPlan.rail_down("n*.nvlalt*"))
    sess = api.session(cfg).model("ampi").build()
    bw = run_bandwidth("ampi", _BW_MR_SIZE, "intra", True, session=sess,
                       loops=_BW_MR_LOOPS, skip=1, window=_BW_MR_WINDOW)
    fp = sess.baseline_fingerprint()
    fp["bandwidth_gbs"] = bw / 1e9
    return fp


def _run_coll_workload(spec: Tuple, config: Optional[MachineConfig]) -> Dict:
    import repro.api as api

    variant = spec[1]
    cfg = config if config is not None else MachineConfig.summit(nodes=2)
    # virtual payloads: the fingerprint pins modeled time, not numerics
    cfg = cfg.with_nodes(_COLL_NODES).with_virtual_payload().with_flight(True)
    if variant == "flat":
        cfg = cfg.with_collectives(hierarchical_enabled=False)
    sess = api.session(cfg).model("ampi").ranks(_COLL_RANKS).build()

    def program(rank):
        buf = rank.charm.cuda.malloc(rank.gpu, _COLL_NBYTES)
        yield from rank.allreduce_device(buf, _COLL_NBYTES)

    sess.run_until(sess.launch(program), max_events=200_000_000)
    return sess.baseline_fingerprint()


def _run_jacobi_workload(spec: Tuple, config: Optional[MachineConfig]) -> Dict:
    import repro.api as api
    from repro.apps.jacobi3d.driver import run_jacobi

    _, model, scaling, ladder = spec
    base_cfg = config if config is not None else MachineConfig.summit(nodes=2)
    points: Dict[str, Dict] = {}
    for nodes in ladder:
        # virtual payloads: timing-identical (tests/test_virtual_payload.py)
        # but skips every dead-weight memcpy of the paper-scale domains
        cfg = base_cfg.with_nodes(nodes).with_virtual_payload().with_flight(True)
        sess = api.session(cfg).model(model).build()
        result = run_jacobi(model, nodes=nodes, scaling=scaling,
                            iters=_JACOBI_ITERS, warmup=_JACOBI_WARMUP,
                            session=sess)
        fp = sess.baseline_fingerprint()
        fp["iter_time_us"] = result.iter_time * 1e6
        fp["comm_time_us"] = result.comm_time * 1e6
        points[f"n{nodes}"] = fp
    return points


def run_workload(name: str, config: Optional[MachineConfig] = None) -> Dict:
    """Run one named workload and return its fingerprint dict.

    OSU workloads return one flat fingerprint; jacobi sweep workloads
    return one fingerprint per ladder point (``{"n4": {...}, ...}``),
    which ``check`` compares recursively.
    """
    import repro.api as api
    from repro.apps.osu.runner import run_latency

    spec = WORKLOADS.get(name)
    if spec is None:
        raise KeyError(
            f"unknown baseline workload {name!r}; known: {sorted(WORKLOADS)}"
        )
    if spec[0] == "jacobi":
        return _run_jacobi_workload(spec, config)
    if spec[0] == "coll":
        return _run_coll_workload(spec, config)
    if spec[0] == "shuffle":
        return _run_shuffle_workload(spec, config)
    if spec[0] == "bw_mr":
        return _run_bw_mr_workload(spec, config)
    model, size, placement = spec[:3]
    cfg = (config if config is not None else MachineConfig.summit(nodes=2))
    if len(spec) == 4:
        cfg = cfg.with_faults(_fault_plan(spec[3]))
    # flight recording feeds the posting fingerprint; it is observation-only
    # so the modeled quantities are identical to a plain run
    sess = api.session(cfg.with_flight(True)).model(model).build()
    latency = run_latency(model, size, placement, True,
                          session=sess, iters=_ITERS, skip=_SKIP)
    fp = sess.baseline_fingerprint()
    fp["latency_us"] = latency * 1e6
    return fp


def collect_baseline(
    config: Optional[MachineConfig] = None,
    workloads: Optional[List[str]] = None,
) -> Dict:
    """Run the suite and return the baseline document (JSON-ready)."""
    names = list(WORKLOADS) if workloads is None else list(workloads)
    return {
        "schema": BASELINE_SCHEMA,
        "rtol": DEFAULT_RTOL,
        "atol": DEFAULT_ATOL,
        "entries": {name: run_workload(name, config) for name in names},
    }


def save_baseline(doc: Dict, path: Union[str, Path]) -> Path:
    path = Path(path)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path


def load_baseline(path: Union[str, Path]) -> Dict:
    doc = json.loads(Path(path).read_text())
    if doc.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"baseline schema {doc.get('schema')!r} != supported {BASELINE_SCHEMA}"
        )
    return doc


@dataclass
class BaselineReport:
    """Outcome of one ``check`` run."""

    compared: int = 0
    failures: List[str] = field(default_factory=list)
    #: wall-clock seconds spent per checked workload
    wallclock: Dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failures

    def format(self) -> str:
        head = (f"baseline check: {self.compared} workload(s), "
                f"{len(self.failures)} failure(s), "
                f"{sum(self.wallclock.values()):.1f}s wall-clock")
        return "\n".join([head] + [f"  FAIL {f}" for f in self.failures])


def _compare_value(where: str, base, cur, rtol: float, atol: float,
                   failures: List[str]) -> None:
    if isinstance(base, dict) and isinstance(cur, dict):
        for key in sorted(set(base) | set(cur)):
            if key not in base:
                failures.append(f"{where}.{key}: new quantity (not in baseline)")
            elif key not in cur:
                failures.append(f"{where}.{key}: missing from current run")
            else:
                _compare_value(f"{where}.{key}", base[key], cur[key],
                               rtol, atol, failures)
        return
    if isinstance(base, bool) or isinstance(cur, bool):
        if base != cur:
            failures.append(f"{where}: {base!r} -> {cur!r}")
        return
    if isinstance(base, int) and isinstance(cur, int):
        if base != cur:
            failures.append(f"{where}: {base} -> {cur} (exact match required)")
        return
    if isinstance(base, (int, float)) and isinstance(cur, (int, float)):
        # modeled times: relative tolerance plus the explicit absolute
        # floor (see DEFAULT_ATOL) so exact zeros compare clean without
        # masking regressions of small-but-real quantities
        tol = rtol * max(abs(base), abs(cur)) + atol
        if abs(cur - base) > tol:
            drift = (cur - base) / base * 100.0 if base else float("inf")
            failures.append(
                f"{where}: {base:.6g} -> {cur:.6g} "
                f"({drift:+.2f}%, rtol={rtol}, atol={atol:g})"
            )
        return
    if base != cur:
        failures.append(f"{where}: {base!r} -> {cur!r}")


def check_baseline(
    doc: Dict,
    config: Optional[MachineConfig] = None,
    rtol: Optional[float] = None,
    atol: Optional[float] = None,
    budgets: Optional[Dict[str, float]] = None,
) -> BaselineReport:
    """Re-run every workload named in ``doc`` and compare fingerprints.

    Besides fingerprint drift, each workload's wall-clock is asserted
    against its budget (``budgets`` overrides :data:`WALLCLOCK_BUDGETS`;
    a budget of ``None`` disables the assertion for that workload).
    """
    if rtol is None:
        rtol = float(doc.get("rtol", DEFAULT_RTOL))
    if atol is None:
        atol = float(doc.get("atol", DEFAULT_ATOL))
    if budgets is None:
        budgets = WALLCLOCK_BUDGETS
    report = BaselineReport()
    for name, base_fp in sorted(doc.get("entries", {}).items()):
        if name not in WORKLOADS:
            report.failures.append(f"{name}: workload no longer defined")
            continue
        start = time.perf_counter()
        cur_fp = run_workload(name, config)
        elapsed = time.perf_counter() - start
        report.wallclock[name] = elapsed
        report.compared += 1
        budget = budgets.get(name, DEFAULT_WALLCLOCK_BUDGET)
        if budget is not None and elapsed > budget:
            report.failures.append(
                f"{name}: wall-clock {elapsed:.1f}s exceeded the "
                f"{budget:.1f}s budget"
            )
        _compare_value(name, base_fp, cur_fp, rtol, atol, report.failures)
    if not doc.get("entries"):
        report.failures.append("baseline has no entries")
    return report
