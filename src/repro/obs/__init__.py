"""Structured observability: span trees, typed metrics, timeline export,
message-lifecycle flight recording and critical-path analysis.

Usage (normally reached through :mod:`repro.api`)::

    import repro.api as api

    sess = api.session(MachineConfig.summit()).model("ampi").trace().flight().build()
    ...  # run a workload
    sess.export_chrome_trace("timeline.json")   # open in ui.perfetto.dev
    snap = sess.metrics_snapshot()              # plain-dict counters/times
    recs = sess.flight_records()                # per-message lifecycles
    print(sess.critical_path().format())        # layer-blame report

See :mod:`repro.obs.tracing` for the span API and the determinism contract,
:mod:`repro.obs.metrics` for the registry, :mod:`repro.obs.export` for the
Chrome-trace format notes, :mod:`repro.obs.flight` for the flight-record
schema, :mod:`repro.obs.critical_path` for the blame algorithm and
:mod:`repro.obs.baseline` for the perf-regression baseline store.
"""

from repro.obs.baseline import (
    BaselineReport,
    check_baseline,
    collect_baseline,
)
from repro.obs.congestion import (
    CongestionReport,
    LinkCongestion,
    congestion_report,
)
from repro.obs.critical_path import (
    CriticalPathReport,
    Segment,
    critical_path,
)
from repro.obs.export import (
    chrome_trace,
    export_chrome_trace,
    metrics_snapshot,
    validate_chrome_trace,
)
from repro.obs.flight import FlightRecord, FlightRecorder
from repro.obs.metrics import (
    LATENCY_BUCKETS,
    SIZE_BUCKETS,
    Histogram,
    MetricsRegistry,
)
from repro.obs.timeline import (
    Telemetry,
    TimeSeries,
    timeline_dict,
)
from repro.obs.tracing import (
    NULL_SPAN,
    Span,
    TraceRecord,
    Tracer,
)

__all__ = [
    "BaselineReport",
    "check_baseline",
    "collect_baseline",
    "CongestionReport",
    "LinkCongestion",
    "congestion_report",
    "CriticalPathReport",
    "Segment",
    "critical_path",
    "chrome_trace",
    "export_chrome_trace",
    "metrics_snapshot",
    "validate_chrome_trace",
    "FlightRecord",
    "FlightRecorder",
    "LATENCY_BUCKETS",
    "SIZE_BUCKETS",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "Span",
    "Telemetry",
    "TimeSeries",
    "timeline_dict",
    "TraceRecord",
    "Tracer",
]
