"""Structured observability: span trees, typed metrics, timeline export.

Usage (normally reached through :mod:`repro.api`)::

    import repro.api as api

    sess = api.session(MachineConfig.summit()).model("ampi").trace().build()
    ...  # run a workload
    sess.export_chrome_trace("timeline.json")   # open in ui.perfetto.dev
    snap = sess.metrics_snapshot()              # plain-dict counters/times

See :mod:`repro.obs.tracing` for the span API and the determinism contract,
:mod:`repro.obs.metrics` for the registry, :mod:`repro.obs.export` for the
Chrome-trace format notes.
"""

from repro.obs.export import (
    chrome_trace,
    export_chrome_trace,
    metrics_snapshot,
    validate_chrome_trace,
)
from repro.obs.metrics import (
    LATENCY_BUCKETS,
    SIZE_BUCKETS,
    Histogram,
    MetricsRegistry,
)
from repro.obs.tracing import (
    NULL_SPAN,
    Span,
    TraceRecord,
    Tracer,
    reset_deprecation_warnings,
)

__all__ = [
    "chrome_trace",
    "export_chrome_trace",
    "metrics_snapshot",
    "validate_chrome_trace",
    "LATENCY_BUCKETS",
    "SIZE_BUCKETS",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "Span",
    "TraceRecord",
    "Tracer",
    "reset_deprecation_warnings",
]
