"""Resource-telemetry timelines: bounded time-series over simulated time.

While spans and flight records answer "where did this one message spend
its time", the telemetry subsystem answers "what was the system doing
over time": per-link busy fraction and in-flight bytes, match-queue
depths, simulator agenda occupancy, pool occupancy/fragmentation,
endpoint-table churn and retransmit counts — each sampled into a
:class:`TimeSeries` ring buffer whose memory stays O(capacity) no matter
how long the run is.

Decimation contract
-------------------
A series of capacity ``C`` accepts every ``stride``-th offered sample
(``stride`` starts at 1).  When the retained buffer would exceed ``C``
points it drops every other retained point (``times[::2]``) and doubles
``stride``.  Because retained points always sit at offered-indices that
are multiples of ``stride``, halving keeps exactly the points at
multiples of the *new* stride — so the buffer is a uniform subsample of
everything offered so far, the first point is never dropped, and two
identical runs decimate identically.  The most recent offered sample is
additionally remembered out-of-band and appended by :meth:`points`, so
the last value is never lost either.  Exact ``count/min/max/mean`` are
tracked over *all* offered samples; percentiles are computed over the
retained subsample.

Determinism contract (same as tracing / flight recording, enforced by
``tests/test_obs_golden.py`` and ``tests/test_soak_telemetry.py``):
telemetry code never calls ``sim.schedule``, never changes a modeled
delay, and never feeds back into any decision the simulation makes —
enabling it cannot perturb fingerprints by a single bit.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

__all__ = [
    "DEFAULT_CAPACITY",
    "TimeSeries",
    "Telemetry",
    "timeline_dict",
]

DEFAULT_CAPACITY = 512


class TimeSeries:
    """One bounded series of ``(time, value)`` samples with deterministic
    halve-resolution-on-full decimation."""

    __slots__ = ("name", "unit", "capacity", "times", "values", "stride",
                 "offered", "vmin", "vmax", "vsum", "_last_t", "_last_v")

    def __init__(self, name: str, capacity: int = DEFAULT_CAPACITY,
                 unit: str = "") -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.name = name
        self.unit = unit
        self.capacity = capacity
        self.times: List[float] = []
        self.values: List[float] = []
        self.stride = 1
        self.offered = 0          # samples offered (retained or not)
        self.vmin: Optional[float] = None
        self.vmax: Optional[float] = None
        self.vsum = 0.0
        self._last_t = 0.0
        self._last_v = 0.0

    def sample(self, t: float, v: float) -> None:
        idx = self.offered
        self.offered = idx + 1
        if self.vmin is None or v < self.vmin:
            self.vmin = v
        if self.vmax is None or v > self.vmax:
            self.vmax = v
        self.vsum += v
        self._last_t = t
        self._last_v = v
        if idx % self.stride:
            return
        self.times.append(t)
        self.values.append(v)
        if len(self.times) > self.capacity:
            self.times = self.times[::2]
            self.values = self.values[::2]
            self.stride *= 2

    def __len__(self) -> int:
        return len(self.times)

    def points(self) -> List[Tuple[float, float]]:
        """Retained points plus the most recent offered sample (if it was
        decimated away)."""
        pts = list(zip(self.times, self.values))
        if self.offered and (
            not pts or pts[-1] != (self._last_t, self._last_v)
        ):
            pts.append((self._last_t, self._last_v))
        return pts

    @property
    def mean(self) -> float:
        return self.vsum / self.offered if self.offered else 0.0

    def percentile(self, q: float) -> float:
        """Percentile over the retained subsample (nearest-rank)."""
        pts = self.points()
        if not pts:
            return 0.0
        vals = sorted(v for _, v in pts)
        rank = min(len(vals) - 1, int(q * (len(vals) - 1) + 0.5))
        return vals[rank]

    def stats(self) -> Dict[str, float]:
        return {
            "count": self.offered,
            "retained": len(self.times),
            "min": self.vmin if self.vmin is not None else 0.0,
            "max": self.vmax if self.vmax is not None else 0.0,
            "mean": self.mean,
            "p99": self.percentile(0.99),
            "last": self._last_v if self.offered else 0.0,
        }


class Telemetry:
    """Registry of named :class:`TimeSeries` plus the aggregates the
    congestion report is built from.

    Disabled by default: every public entry point returns immediately
    when ``enabled`` is False, and the instrumentation sites themselves
    are guarded so the off-path cost is one attribute check.
    """

    def __init__(self, sim, enabled: bool = False,
                 capacity: int = DEFAULT_CAPACITY) -> None:
        self.sim = sim
        self.enabled = enabled
        self.capacity = capacity
        self.series: Dict[str, TimeSeries] = {}
        #: the Tracer's ambient span stack (wired by Tracer.__init__) —
        #: used to attribute link waits to the span category that blocked.
        self.ambient_stack: Optional[list] = None
        self._init_state()

    def _init_state(self) -> None:
        # congestion-attribution aggregates, all bounded by link count
        self.link_wait_time: Dict[str, float] = {}
        self.link_wait_count: Dict[str, int] = {}
        self.link_waiters: Dict[str, Dict[str, float]] = {}
        self.links: Dict[str, object] = {}   # name -> hardware Resource
        self.saturation: Dict[str, Dict] = {}
        self._sat_since: Dict[str, float] = {}
        self._sat_window_cap = 64
        self._inflight: Dict[str, int] = {}
        self._inflight_total = 0
        self._counts: Dict[str, float] = {}
        self._queue_totals: Dict[str, int] = {}
        self._pool_state: Dict[int, Tuple[int, int, int]] = {}

    def reset(self) -> None:
        self.series.clear()
        self._init_state()

    # -- core sampling -------------------------------------------------------
    def _series(self, name: str, unit: str) -> TimeSeries:
        ts = self.series.get(name)
        if ts is None:
            ts = self.series[name] = TimeSeries(name, self.capacity, unit)
        return ts

    def sample(self, name: str, value: float, unit: str = "") -> None:
        if not self.enabled:
            return
        self._series(name, unit).sample(self.sim.now, value)

    def bump(self, name: str, n: float = 1, unit: str = "count") -> None:
        """Cumulative counter sampled as a monotone series (evictions,
        connects, retransmits)."""
        if not self.enabled:
            return
        total = self._counts.get(name, 0) + n
        self._counts[name] = total
        self._series(name, unit).sample(self.sim.now, total)

    def counter(self, name: str) -> float:
        return self._counts.get(name, 0)

    # -- probe factories (wired once, each call-site pays one None-check) ----
    def queue_probe(self, name: str) -> Callable[[int], None]:
        """Returns ``probe(delta)`` maintaining and sampling the depth of
        the named queue (shared total per name across queue instances)."""
        def probe(delta: int) -> None:
            totals = self._queue_totals
            depth = totals.get(name, 0) + delta
            totals[name] = depth
            self._series(name, "items").sample(self.sim.now, depth)

        return probe

    def engine_probe(self, sim) -> Callable[[], None]:
        def probe() -> None:
            now = sim.now
            self._series("engine.pending_events", "events").sample(
                now, sim.pending_events)
            self._series("engine.calendar_engaged", "bool").sample(
                now, 1.0 if sim.calendar_engaged else 0.0)

        return probe

    def pool_probe(self, gpu: int) -> Callable[[int, int, int], None]:
        """Returns ``probe(live_bytes, slab_bytes, slabs)`` aggregating all
        instrumented pools into machine-wide occupancy series."""
        state = self._pool_state

        def probe(live_bytes: int, slab_bytes: int, slabs: int) -> None:
            state[gpu] = (live_bytes, slab_bytes, slabs)
            live = slab = n = 0
            for lb, sb, ns in state.values():
                live += lb
                slab += sb
                n += ns
            self.sample("pool.occupancy_bytes", live, "bytes")
            self.sample("pool.slab_bytes", slab, "bytes")
            self.sample("pool.slabs", n, "slabs")
            frag = 1.0 - live / slab if slab else 0.0
            self.sample("pool.fragmentation", frag, "frac")

        return probe

    # -- link instrumentation (called from hardware/links.py) ----------------
    def ambient_category(self) -> str:
        stack = self.ambient_stack
        if stack:
            return stack[-1].category or "untraced"
        return "untraced"

    def link_acquired(self, links, size: int, waited: float,
                      blocker: Optional[str], category: str) -> None:
        now = self.sim.now
        if waited > 0.0 and blocker is not None:
            self.link_wait_time[blocker] = (
                self.link_wait_time.get(blocker, 0.0) + waited)
            self.link_wait_count[blocker] = (
                self.link_wait_count.get(blocker, 0) + 1)
            by_cat = self.link_waiters.setdefault(blocker, {})
            by_cat[category] = by_cat.get(category, 0.0) + waited
            self.sample("net.acq_wait_us", waited * 1e6, "us")
        self._inflight_total += size
        self.sample("net.inflight_bytes", self._inflight_total, "bytes")
        inflight = self._inflight
        for link in links:
            name = link.name
            self.links.setdefault(name, link)
            infl = inflight.get(name, 0) + size
            inflight[name] = infl
            self.sample(f"link.{name}.busy", link.utilisation(), "frac")
            self.sample(f"link.{name}.inflight", infl, "bytes")
            if link.in_use >= link.capacity and name not in self._sat_since:
                self._sat_since[name] = now

    def link_released(self, links, size: int) -> None:
        """Called just *before* the links are released (release hooks run
        synchronously and may re-acquire)."""
        now = self.sim.now
        self._inflight_total -= size
        self.sample("net.inflight_bytes", self._inflight_total, "bytes")
        inflight = self._inflight
        for link in links:
            name = link.name
            infl = inflight.get(name, 0) - size
            inflight[name] = infl
            self.sample(f"link.{name}.busy", link.utilisation(), "frac")
            self.sample(f"link.{name}.inflight", infl, "bytes")
            if link.in_use - 1 < link.capacity:
                start = self._sat_since.pop(name, None)
                if start is not None:
                    self._close_saturation(name, start, now)

    def _close_saturation(self, name: str, start: float, end: float) -> None:
        rec = self.saturation.setdefault(
            name, {"time": 0.0, "count": 0, "windows": [],
                   "truncated": False})
        rec["time"] += end - start
        wins = rec["windows"]
        if wins and wins[-1][1] == start:
            # back-to-back handoff at full occupancy: extend, don't split
            wins[-1] = (wins[-1][0], end)
        elif len(wins) < self._sat_window_cap:
            wins.append((start, end))
            rec["count"] += 1
        else:
            rec["truncated"] = True
            rec["count"] += 1

    def saturation_view(self) -> Dict[str, Dict]:
        """Saturation records with any still-open window closed against
        ``sim.now`` (non-destructively)."""
        out = {k: {"time": v["time"], "count": v["count"],
                   "windows": list(v["windows"]),
                   "truncated": v["truncated"]}
               for k, v in self.saturation.items()}
        now = self.sim.now
        for name, start in self._sat_since.items():
            rec = out.setdefault(
                name, {"time": 0.0, "count": 0, "windows": [],
                       "truncated": False})
            rec["time"] += now - start
            if len(rec["windows"]) < self._sat_window_cap:
                rec["windows"].append((start, now))
                rec["count"] += 1
        return out


def timeline_dict(telemetry: Telemetry) -> Dict:
    """JSON-ready view of every series (what ``--timeline-out`` writes and
    ``python -m repro.bench.timeline summary`` reads)."""
    return {
        "enabled": telemetry.enabled,
        "now": telemetry.sim.now,
        "capacity": telemetry.capacity,
        "series": {
            name: {
                "unit": ts.unit,
                "stats": ts.stats(),
                "points": [[t, v] for t, v in ts.points()],
            }
            for name, ts in sorted(telemetry.series.items())
        },
    }
