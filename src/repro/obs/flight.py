"""Message-lifecycle flight recorder for device transfers.

Every device transfer in the paper's machine layer walks the same chain:
``LrtsSendDevice`` enqueue -> tag assignment -> host metadata send ->
metadata arrival -> ``LrtsRecvDevice`` posted -> UCP protocol selected
(eager / rendezvous) -> tag match -> transfer complete.  The flight
recorder captures that chain per message as a typed
:class:`FlightRecord` with simulated timestamps, so analyses can answer
"where did the latency of this transfer go?" message by message.

The headline derived quantity is the **delayed-posting cost**: the time
from data-ready-at-sender (the ``LrtsSendDevice`` call) until the
receiver posts its ``LrtsRecvDevice``.  For rendezvous transfers this
interval is exposed latency — the RTS sits in the unexpected queue and
no data moves until the receive is posted — and it is exactly the tax
the paper attributes to metadata-gated posting (host metadata must
arrive and be scheduled before the post can happen).  For eager
transfers the payload travels regardless of the post, so the cost is
defined as zero.

Determinism contract (enforced by ``tests/test_obs_golden.py``): the
recorder never calls ``sim.schedule``, never changes a modeled delay and
never touches the metrics counters — simulated results are bit-identical
with recording on or off.  All hook sites guard with
``if flight.enabled:`` so the disabled hot path pays one attribute load.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["FlightRecord", "FlightRecorder"]


@dataclass
class FlightRecord:
    """Lifecycle of one tagged device transfer (times in simulated seconds;
    ``None`` marks a stage the message never reached)."""

    tag: int
    src_pe: int
    dst_pe: int
    size: int
    seq: int  # recorder-global begin order (deterministic)
    enqueued_at: float  # LrtsSendDevice call == data ready at sender
    metadata_sent_at: Optional[float] = None  # host metadata message enqueued
    metadata_arrived_at: Optional[float] = None  # metadata handler ran at receiver
    recv_posted_at: Optional[float] = None  # LrtsRecvDevice call
    ucx_send_at: Optional[float] = None  # ucp_tag_send_nb entered
    ucx_recv_posted_at: Optional[float] = None  # ucp_tag_recv_nb entered
    matched_at: Optional[float] = None
    matched_unexpected: Optional[bool] = None  # send beat the receive post
    send_completed_at: Optional[float] = None
    completed_at: Optional[float] = None  # data landed in the dest buffer
    protocol: Optional[str] = None  # "eager" | "rndv"
    lane: Optional[str] = None  # rendezvous transport lane
    # fault stage: retransmissions suffered, receive-side cancellations of
    # earlier posts, and the terminal error ("endpoint_timeout",
    # "truncated", "cancelled") when the transfer never completed
    retransmits: int = 0
    recv_cancels: int = 0
    error: Optional[str] = None
    failed_at: Optional[float] = None

    # -- derived -----------------------------------------------------------------
    @property
    def posted_at(self) -> Optional[float]:
        """When the receive was posted: the machine-layer post when the
        transfer went through ``LrtsRecvDevice``, else the raw UCP post
        (direct-UCX models like OpenMPI)."""
        if self.recv_posted_at is not None:
            return self.recv_posted_at
        return self.ucx_recv_posted_at

    @property
    def posting_delay(self) -> Optional[float]:
        """Signed data-ready-to-posted interval (negative when the receive
        was pre-posted, as OpenMPI's direct tag path allows)."""
        posted = self.posted_at
        if posted is None:
            return None
        return posted - self.enqueued_at

    @property
    def delayed_posting_cost(self) -> float:
        """Exposed latency attributable to late posting.  Zero for eager
        transfers (payload moves without a posted receive) and for
        pre-posted rendezvous; otherwise the data-ready-to-posted gap."""
        if self.protocol != "rndv":
            return 0.0
        delay = self.posting_delay
        if delay is None or delay <= 0.0:
            return 0.0
        return delay

    @property
    def metadata_gap(self) -> Optional[float]:
        """Flight time of the host metadata message (send to handler)."""
        if self.metadata_sent_at is None or self.metadata_arrived_at is None:
            return None
        return self.metadata_arrived_at - self.metadata_sent_at

    @property
    def complete(self) -> bool:
        return self.completed_at is not None

    def to_dict(self) -> Dict:
        """JSON-ready dict (timestamps in seconds, derived fields included)."""
        return {
            "tag": self.tag,
            "src_pe": self.src_pe,
            "dst_pe": self.dst_pe,
            "size": self.size,
            "seq": self.seq,
            "protocol": self.protocol,
            "lane": self.lane,
            "enqueued_at": self.enqueued_at,
            "metadata_sent_at": self.metadata_sent_at,
            "metadata_arrived_at": self.metadata_arrived_at,
            "recv_posted_at": self.recv_posted_at,
            "ucx_send_at": self.ucx_send_at,
            "ucx_recv_posted_at": self.ucx_recv_posted_at,
            "matched_at": self.matched_at,
            "matched_unexpected": self.matched_unexpected,
            "send_completed_at": self.send_completed_at,
            "completed_at": self.completed_at,
            "posting_delay": self.posting_delay,
            "delayed_posting_cost": self.delayed_posting_cost,
            "complete": self.complete,
            "retransmits": self.retransmits,
            "recv_cancels": self.recv_cancels,
            "error": self.error,
            "failed_at": self.failed_at,
        }


class FlightRecorder:
    """Collects :class:`FlightRecord` s for one simulated machine.

    Tags are unique per in-flight device message on the machine-layer path
    (per-PE counters), but direct-UCX models reuse application tags across
    iterations and may keep several same-tag sends in flight.  The recorder
    therefore keeps a FIFO list of open records per tag and applies each
    stage update to the oldest record still missing that stage — valid
    because UCP tag matching itself is FIFO per tag.
    """

    def __init__(self, sim, enabled: bool = False) -> None:
        self.sim = sim
        self.enabled = enabled
        self._open: Dict[int, List[FlightRecord]] = {}
        self._done: List[FlightRecord] = []
        self._next_seq = 0

    # -- record creation ----------------------------------------------------------
    def begin(self, tag: int, src_pe: int, dst_pe: int, size: int) -> None:
        """Open a record at ``sim.now`` (the ``LrtsSendDevice`` call)."""
        if not self.enabled:
            return
        rec = FlightRecord(
            tag=tag, src_pe=src_pe, dst_pe=dst_pe, size=size,
            seq=self._next_seq, enqueued_at=self.sim.now,
        )
        self._next_seq += 1
        self._open.setdefault(tag, []).append(rec)

    def ensure(self, tag: int, src_pe: int, dst_pe: int, size: int) -> None:
        """Open a record unless one for ``tag`` is already in flight — the
        entry point for device sends that bypass the machine layer and call
        ``ucp_tag_send_nb`` directly (OpenMPI)."""
        if not self.enabled:
            return
        if self._open.get(tag):
            return
        self.begin(tag, src_pe, dst_pe, size)

    # -- stage updates ------------------------------------------------------------
    def _first_missing(self, tag: int, attr: str) -> Optional[FlightRecord]:
        for rec in self._open.get(tag, ()):
            if getattr(rec, attr) is None:
                return rec
        return None

    def metadata_sent(self, tag: int) -> None:
        rec = self._first_missing(tag, "metadata_sent_at")
        if rec is not None:
            rec.metadata_sent_at = self.sim.now

    def metadata_arrived(self, tag: int) -> None:
        rec = self._first_missing(tag, "metadata_arrived_at")
        if rec is not None:
            rec.metadata_arrived_at = self.sim.now

    def recv_posted(self, tag: int) -> None:
        rec = self._first_missing(tag, "recv_posted_at")
        if rec is not None:
            rec.recv_posted_at = self.sim.now

    def ucx_send(self, tag: int, protocol: str) -> None:
        rec = self._first_missing(tag, "ucx_send_at")
        if rec is not None:
            rec.ucx_send_at = self.sim.now
            rec.protocol = protocol

    def matched(self, tag: int, posted_at: float, unexpected: bool) -> None:
        """Record the tag match; ``posted_at`` is the original
        ``ucp_tag_recv_nb`` time of the matching request (which, for
        pre-posted receives, predates the match)."""
        rec = self._first_missing(tag, "matched_at")
        if rec is not None:
            rec.matched_at = self.sim.now
            rec.matched_unexpected = unexpected
            rec.ucx_recv_posted_at = posted_at

    def lane(self, tag: int, lane: str) -> None:
        rec = self._first_missing(tag, "lane")
        if rec is not None:
            rec.lane = lane

    def send_completed(self, tag: int) -> None:
        rec = self._first_missing(tag, "send_completed_at")
        if rec is not None:
            rec.send_completed_at = self.sim.now

    def completed(self, tag: int) -> None:
        """Data landed in the destination buffer; finalize the record."""
        rec = self._first_missing(tag, "completed_at")
        if rec is None:
            return
        rec.completed_at = self.sim.now
        self._close(rec)

    def _close(self, rec: FlightRecord) -> None:
        lst = self._open[rec.tag]
        lst.remove(rec)
        if not lst:
            del self._open[rec.tag]
        self._done.append(rec)

    # -- fault stage --------------------------------------------------------------
    def retransmitted(self, tag: int) -> None:
        """One frame of this transfer was faulted and rescheduled."""
        rec = self._first_missing(tag, "completed_at")
        if rec is not None:
            rec.retransmits += 1

    def failed(self, tag: int, error: str) -> None:
        """The transfer terminally failed (timeout, truncation, or send
        cancellation): record why and close the record so it cannot absorb
        the stages of the next same-tag transfer."""
        rec = self._first_missing(tag, "failed_at")
        if rec is None:
            return
        rec.error = error
        rec.failed_at = self.sim.now
        self._close(rec)

    def cancelled(self, tag: int) -> None:
        """The sender cancelled the transfer before the payload shipped."""
        self.failed(tag, "cancelled")

    def recv_cancelled(self, tag: int) -> None:
        """A posted receive for ``tag`` was cancelled before matching: roll
        the record's posting stages back so a repost fills them afresh (the
        transfer itself is still in flight from the sender's side)."""
        for rec in self._open.get(tag, ()):
            if rec.matched_at is None and (
                rec.recv_posted_at is not None or rec.ucx_recv_posted_at is not None
            ):
                rec.recv_posted_at = None
                rec.ucx_recv_posted_at = None
                rec.recv_cancels += 1
                return

    # -- queries ------------------------------------------------------------------
    def records(self) -> List[FlightRecord]:
        """All records (completed and still-open), in begin order."""
        out = list(self._done)
        for lst in self._open.values():
            out.extend(lst)
        out.sort(key=lambda r: r.seq)
        return out

    def aggregate(self) -> Dict:
        """JSON-ready summary: per-protocol counts/bytes/delayed-posting
        totals plus posting-order inversions (receives posted out of the
        senders' enqueue order for the same (src, dst) pair — each one is
        a message some later message's receive overtook)."""
        recs = self.records()
        by_proto = {
            p: {
                "n": 0,
                "bytes": 0,
                "delayed_posting_seconds": 0.0,
                "max_delayed_posting_seconds": 0.0,
                "unexpected": 0,
            }
            for p in ("eager", "rndv")
        }
        other = 0
        total_cost = 0.0
        for rec in recs:
            bucket = by_proto.get(rec.protocol)
            if bucket is None:
                other += 1
                continue
            cost = rec.delayed_posting_cost
            bucket["n"] += 1
            bucket["bytes"] += rec.size
            bucket["delayed_posting_seconds"] += cost
            if cost > bucket["max_delayed_posting_seconds"]:
                bucket["max_delayed_posting_seconds"] = cost
            if rec.matched_unexpected:
                bucket["unexpected"] += 1
            total_cost += cost
        return {
            "n_records": len(recs),
            "n_complete": sum(1 for r in recs if r.complete),
            "n_unclassified": other,
            "by_protocol": by_proto,
            "delayed_posting_seconds": total_cost,
            "posting_inversions": self.posting_inversions(recs),
        }

    @staticmethod
    def posting_inversions(recs: List[FlightRecord]) -> int:
        """Count receives posted out of send order: within each
        (src, dst) pair, messages ordered by enqueue time whose receive was
        posted earlier than a predecessor's."""
        groups: Dict[tuple, List[FlightRecord]] = {}
        for rec in recs:
            if rec.posted_at is None:
                continue
            groups.setdefault((rec.src_pe, rec.dst_pe), []).append(rec)
        inversions = 0
        for group in groups.values():
            group.sort(key=lambda r: (r.enqueued_at, r.seq))
            high = None
            for rec in group:
                posted = rec.posted_at
                if high is not None and posted < high:
                    inversions += 1
                if high is None or posted > high:
                    high = posted
        return inversions

    def reset(self) -> None:
        self._open.clear()
        self._done.clear()
        self._next_seq = 0
