"""Critical-path extraction and layer-blame over the span tree.

The span tree records *what* each layer was doing; this module answers
*which layer the wall clock was waiting on*.  The model: at any simulated
instant the latency-critical work is the **deepest** span active at that
instant, where "deepest" is the span that started last (ties broken by
span id, i.e. creation order) — a child span always starts at or after
its parent, so the most recently started active span is the innermost
operation actually progressing the transfer.  Instants covered by no
span are blamed on ``uninstrumented`` (modeled scheduling/handler delays
that carry no span of their own).

The sweep produces a sequence of :class:`Segment` s — the critical chain
— and folds them into a per-layer blame report:

========================  =====================================================
layer                     span sources
========================  =====================================================
``model``                 ampi / openmpi / charm / charm4py API spans
``machine``               machine layer (``Lrts*Device``, host message hand-off)
``ucx_protocol``          ucp tag send/recv, eager copies, rendezvous driving
``matching``              ``ucx.match`` tag-matching spans
``host_metadata``         converse spans + the AM path that carries metadata
                          (``am_send`` + its wire/fetch time)
``link``                  bulk data wire time (``link`` spans)
``fault_recovery``        retransmit backoff waits (``fault`` spans)
``collective``            device-collective root spans (``coll``)
``coll_intra``            intra-node ops of device collectives (``coll.intra``)
``coll_inter``            inter-node ops of device collectives (``coll.inter``)
``uninstrumented``        gaps covered by no span
========================  =====================================================

Pure analysis: reads the tracer, never schedules events, never mutates
spans.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = ["Segment", "CriticalPathReport", "critical_path", "layer_of"]


def layer_of(category: str, name: str) -> str:
    """Map a span's (category, name) to a blame layer."""
    if category == "fault":
        # retransmit backoff waits and other injected-fault recovery time
        return "fault_recovery"
    if category == "link":
        return "host_metadata" if name in ("am_wire", "am_fetch") else "link"
    if category == "ucx" and name == "am_send":
        return "host_metadata"
    if category == "ucx.match":
        return "matching"
    if category == "ucx" or category.startswith("ucx."):
        return "ucx_protocol"
    if category == "machine":
        return "machine"
    if category == "converse":
        return "host_metadata"
    if category == "coll.intra":
        return "coll_intra"
    if category == "coll.inter":
        return "coll_inter"
    if category == "coll":
        return "collective"
    if category in ("ampi", "openmpi", "charm", "charm4py", "osu", "jacobi3d"):
        return "model"
    return "other"


@dataclass(frozen=True)
class Segment:
    """One link of the critical chain: ``[start, end)`` blamed on one span."""

    start: float
    end: float
    layer: str
    category: str
    name: str

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class CriticalPathReport:
    """Critical chain over ``[t0, t1]`` plus the per-layer blame totals."""

    t0: float
    t1: float
    segments: List[Segment]
    blame: Dict[str, float]

    @property
    def total(self) -> float:
        return self.t1 - self.t0

    def format(self, unit: float = 1e-6, unit_name: str = "us") -> str:
        """Human-readable blame table (largest share first)."""
        lines = [
            f"critical path over [{self.t0 / unit:.2f}, {self.t1 / unit:.2f}] "
            f"{unit_name} ({self.total / unit:.2f} {unit_name}, "
            f"{len(self.segments)} segments)"
        ]
        total = self.total or 1.0
        for layer, secs in sorted(self.blame.items(), key=lambda kv: (-kv[1], kv[0])):
            lines.append(
                f"  {layer:<15} {secs / unit:>10.2f} {unit_name}  "
                f"({100.0 * secs / total:5.1f}%)"
            )
        return "\n".join(lines)


def critical_path(tracer, t0: Optional[float] = None,
                  t1: Optional[float] = None) -> CriticalPathReport:
    """Extract the critical chain from ``tracer``'s spans over ``[t0, t1]``
    (defaulting to the full recorded window) and blame it per layer.

    Spans still open are treated as extending to ``t1``.  Raises
    :class:`ValueError` when no spans were recorded (tracing disabled).
    """
    spans = tracer.spans
    if not spans:
        raise ValueError(
            "critical_path: no spans recorded — build the session with "
            "tracing enabled (config.with_trace() / builder.trace())"
        )
    if t0 is None:
        t0 = min(s.start for s in spans)
    if t1 is None:
        t1 = max(
            max((s.end_time for s in spans if s.end_time is not None),
                default=t0),
            max(s.start for s in spans),
        )
    if t1 < t0:
        raise ValueError(f"critical_path: empty window [{t0}, {t1}]")

    # clamp spans to the window; open spans extend to t1
    intervals: List[Tuple[float, float, object]] = []
    boundaries = {t0, t1}
    for s in spans:
        end = s.end_time if s.end_time is not None else t1
        start = max(s.start, t0)
        end = min(end, t1)
        if end <= start:
            continue
        intervals.append((start, end, s))
        boundaries.add(start)
        boundaries.add(end)
    times = sorted(boundaries)

    # sweep: between two adjacent boundaries the active set is constant, and
    # every active span covers the whole sub-interval (boundaries include all
    # starts and ends).  A max-heap on (start, sid) yields the deepest one;
    # spans whose end has passed are lazily discarded.
    intervals.sort(key=lambda iv: (iv[0], iv[2].sid))
    heap: List[Tuple[float, int, float, object]] = []  # (-start, -sid, end, span)
    segments: List[Segment] = []
    blame: Dict[str, float] = {}
    idx = 0
    n = len(intervals)
    for a, b in zip(times, times[1:]):
        while idx < n and intervals[idx][0] <= a:
            start, end, s = intervals[idx]
            heapq.heappush(heap, (-start, -s.sid, end, s))
            idx += 1
        while heap and heap[0][2] <= a:
            heapq.heappop(heap)
        if heap:
            s = heap[0][3]
            layer = layer_of(s.category, s.name)
            category, name = s.category, s.name
        else:
            layer, category, name = "uninstrumented", "", ""
        blame[layer] = blame.get(layer, 0.0) + (b - a)
        last = segments[-1] if segments else None
        if (last is not None and last.end == a
                and (last.layer, last.category, last.name) == (layer, category, name)):
            segments[-1] = Segment(last.start, b, layer, category, name)
        else:
            segments.append(Segment(a, b, layer, category, name))
    return CriticalPathReport(t0=t0, t1=t1, segments=segments, blame=blame)
