"""Hierarchical span-tree tracing for the simulator.

Replaced the flat ``span_begin``/``span_end`` pairs of the original
:class:`repro.sim.trace.Tracer` (removed after their deprecation cycle)
with first-class :class:`Span` objects:

* ``with tracer.span("ucx", "tag_send", size=n):`` — synchronous spans that
  nest lexically (the tracer keeps an active-span stack, so a span opened
  inside another becomes its child);
* ``sp = tracer.span(...)`` + ``sp.end()`` — spans whose lifetime crosses
  simulator events (a send that completes when the FIN arrives);
* ``with tracer.under(sp):`` — re-activate an open span as the ambient
  parent inside a *later* scheduled callback, so work the simulator runs
  on behalf of that operation still nests under it.

Determinism contract (enforced by ``tests/test_obs_golden.py``): tracing
code never calls ``sim.schedule``, never changes a modeled delay, and the
per-event counters are incremented identically whether tracing is enabled
or not.  With tracing disabled every ``tracer.span(...)`` returns the
shared :data:`NULL_SPAN` — no allocation, no bookkeeping — keeping the hot
path near-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.flight import FlightRecorder
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeline import DEFAULT_CAPACITY as TELEMETRY_CAPACITY
from repro.obs.timeline import Telemetry

__all__ = [
    "NULL_SPAN",
    "Span",
    "TraceRecord",
    "Tracer",
]


@dataclass
class TraceRecord:
    """One flat trace event (the ``emit`` API, kept for point events)."""

    time: float
    category: str
    event: str
    detail: Dict = field(default_factory=dict)


class _NullSpan:
    """Shared sink for all span operations while tracing is disabled."""

    __slots__ = ()

    sid = -1
    parent_sid = -1
    category = ""
    name = ""
    start = 0.0
    end_time = None
    attrs: Dict = {}

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None

    def end(self, **attrs) -> None:
        return None

    def close_at(self, time: float, **attrs) -> None:
        return None

    def annotate(self, **attrs) -> None:
        return None

    def __bool__(self) -> bool:
        return False

    def __repr__(self) -> str:
        return "<NULL_SPAN>"


NULL_SPAN = _NullSpan()


class Span:
    """One node of the span tree: ``[start, end_time]`` in simulated seconds,
    linked to its parent by ``parent_sid``."""

    __slots__ = ("_tracer", "sid", "parent_sid", "category", "name",
                 "start", "end_time", "attrs")

    def __init__(self, tracer: "Tracer", sid: int, parent_sid: int,
                 category: str, name: str, start: float, attrs: Dict) -> None:
        self._tracer = tracer
        self.sid = sid
        self.parent_sid = parent_sid
        self.category = category
        self.name = name
        self.start = start
        self.end_time: Optional[float] = None
        self.attrs = attrs

    # -- context-manager form (synchronous nesting) ------------------------------
    def __enter__(self) -> "Span":
        self._tracer._stack.append(self)
        return self

    def __exit__(self, *exc) -> None:
        stack = self._tracer._stack
        if stack and stack[-1] is self:
            stack.pop()
        self.end()

    # -- explicit form (lifetime crosses simulator events) ------------------------
    def end(self, **attrs) -> None:
        """Close the span at the current simulated time (idempotent)."""
        if self.end_time is not None:
            return
        if attrs:
            self.attrs.update(attrs)
        tracer = self._tracer
        self.end_time = tracer.sim.now
        tracer._time_acc[self.category] = (
            tracer._time_acc.get(self.category, 0.0) + self.end_time - self.start
        )

    def close_at(self, time: float, **attrs) -> None:
        """Close the span at an explicit simulated time (idempotent).

        Observation-only: lets instrumentation record a modeled interval
        whose endpoint is already known (e.g. the charged tag-match cost)
        without scheduling a simulator event to call ``end()`` there —
        scheduling from tracing code would break the determinism contract.
        """
        if self.end_time is not None:
            return
        if attrs:
            self.attrs.update(attrs)
        if time < self.start:
            time = self.start
        tracer = self._tracer
        self.end_time = time
        tracer._time_acc[self.category] = (
            tracer._time_acc.get(self.category, 0.0) + time - self.start
        )

    def annotate(self, **attrs) -> None:
        self.attrs.update(attrs)

    @property
    def duration(self) -> float:
        return (self.end_time if self.end_time is not None else self.start) - self.start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.category}/{self.name} sid={self.sid} "
                f"parent={self.parent_sid} [{self.start}, {self.end_time}])")


class _Under:
    """``with tracer.under(span):`` — push an existing open span as the
    ambient parent without re-entering or ending it."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._stack.append(self._span)
        return self._span

    def __exit__(self, *exc) -> None:
        stack = self._tracer._stack
        if stack and stack[-1] is self._span:
            stack.pop()


class _NullContext:
    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return NULL_SPAN

    def __exit__(self, *exc) -> None:
        return None


_NULL_CTX = _NullContext()


class Tracer:
    """Span-tree tracer + metrics registry for one simulated machine.

    Cheap to keep around disabled: ``count`` is a dict increment, ``span``
    returns :data:`NULL_SPAN`, ``charge``/``emit`` return immediately.
    """

    def __init__(self, sim, enabled: bool = False, flight: bool = False,
                 telemetry: bool = False,
                 telemetry_capacity: int = TELEMETRY_CAPACITY) -> None:
        self.sim = sim
        self.enabled = enabled
        self.metrics = MetricsRegistry()
        self.flight = FlightRecorder(sim, enabled=flight)
        self.timeline = Telemetry(sim, enabled=telemetry,
                                  capacity=telemetry_capacity)
        self.records: List[TraceRecord] = []
        self.spans: List[Span] = []
        self._stack: List[Span] = []
        # link waits are attributed to the ambient span's category
        self.timeline.ambient_stack = self._stack
        self._next_sid = 0
        # category -> accumulated span time
        self._time_acc: Dict[str, float] = {}

    # -- span tree ----------------------------------------------------------------
    def span(self, category: str, name: Optional[str] = None,
             parent: Optional[Span] = None, **attrs) -> Span:
        """Open a span at ``sim.now``.  Use as a context manager for
        synchronous nesting, or keep the handle and call ``.end()`` when the
        operation completes in a later simulator event.

        ``parent`` overrides the ambient active-span stack (used to link a
        receive-side span to the posted request it completes)."""
        if not self.enabled:
            return NULL_SPAN
        if parent is None:
            stack = self._stack
            parent_sid = stack[-1].sid if stack else -1
        else:
            parent_sid = parent.sid
        sid = self._next_sid
        self._next_sid = sid + 1
        sp = Span(self, sid, parent_sid, category, name or category,
                  self.sim.now, attrs)
        self.spans.append(sp)
        return sp

    def under(self, span: Optional[Span]):
        """Context manager making ``span`` the ambient parent (no-op for
        ``None``/``NULL_SPAN`` or when tracing is disabled)."""
        if not self.enabled or span is None or span is NULL_SPAN:
            return _NULL_CTX
        return _Under(self, span)

    @property
    def active_span(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    def span_children(self, span: Span) -> List[Span]:
        return [s for s in self.spans if s.parent_sid == span.sid]

    def span_roots(self) -> List[Span]:
        return [s for s in self.spans if s.parent_sid == -1]

    # -- metrics shims (identical on/off so fingerprints cannot diverge) -----------
    def count(self, category: str, event: str, n: int = 1) -> None:
        self.metrics.inc(category, event, n)

    def charge(self, category: str, seconds: float) -> None:
        """Attribute modeled CPU time to a layer (enabled-only; simulated
        delays are computed before this call and never depend on it)."""
        if self.enabled:
            self.metrics.add_time(category, seconds)

    def observe(self, name: str, value: float, bounds=None) -> None:
        if self.enabled:
            if bounds is None:
                self.metrics.observe(name, value)
            else:
                self.metrics.observe(name, value, bounds)

    # -- flat point events (legacy emit API, still supported) ----------------------
    def emit(self, category: str, event: str, **detail) -> None:
        self.metrics.inc(category, event)
        if self.enabled:
            self.records.append(TraceRecord(self.sim.now, category, event, detail))

    @property
    def counters(self):
        return self.metrics.counters

    def filter(self, category: Optional[str] = None,
               event: Optional[str] = None) -> List[TraceRecord]:
        out = []
        for r in self.records:
            if category is not None and r.category != category:
                continue
            if event is not None and r.event != event:
                continue
            out.append(r)
        return out

    # -- span time accounting --------------------------------------------------------
    def time_in(self, category: str) -> float:
        """Total simulated time spent inside *ended* spans of ``category``
        (overlapping spans double-count, as the legacy API did)."""
        return self._time_acc.get(category, 0.0)

    # -- lifecycle ------------------------------------------------------------------------
    def reset(self) -> None:
        self.records.clear()
        self.spans.clear()
        self._stack.clear()
        self._next_sid = 0
        self._time_acc.clear()
        self.metrics.reset()
        self.flight.reset()
        self.timeline.reset()
