"""Exporters: Chrome-trace/Perfetto JSON timelines and metrics snapshots.

The Chrome trace-event format (``chrome://tracing`` / https://ui.perfetto.dev)
requires that, within one ``(pid, tid)`` track, ``B``/``E`` duration events
form a properly nested stack.  Simulator spans are *not* stack-disciplined
per se — sends overlap receives, rendezvous transfers outlive the calls that
started them — so the exporter assigns spans to virtual "lanes" greedily:
a span joins the first lane where it nests inside every still-open span,
otherwise it opens a new lane.  Each lane becomes one ``tid``, every lane's
event stream is stack-balanced and time-ordered by construction, and lanes
are merged into a single ``ts``-monotone event list.

Timestamps are simulated time converted to microseconds (the unit the
Chrome trace viewer expects).
"""

from __future__ import annotations

import json
from heapq import merge
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.obs.tracing import Tracer

__all__ = [
    "chrome_trace",
    "export_chrome_trace",
    "metrics_snapshot",
    "validate_chrome_trace",
]


def _span_events_by_lane(tracer: Tracer) -> List[List[Dict]]:
    spans = sorted(tracer.spans, key=lambda s: (s.start, s.sid))
    # Spans still open at export time are exported as if they ended at the
    # latest known instant (never before their own start), flagged with
    # args["incomplete"] — deterministic and always stack-balanced, instead
    # of the zero-duration events open spans used to silently collapse to.
    t_max = 0.0
    for sp in spans:
        t_max = max(t_max, sp.start,
                    sp.end_time if sp.end_time is not None else sp.start)
    # per lane: parallel lists of event dicts and a stack of (span, end) still open
    lane_events: List[List[Dict]] = []
    lane_stacks: List[List[tuple]] = []

    def _emit(lane: int, ph: str, span, ts: float) -> None:
        ev = {
            "name": span.name,
            "cat": span.category,
            "ph": ph,
            "ts": ts * 1e6,
            "pid": 0,
            "tid": lane,
        }
        if ph == "B":
            args = dict(span.attrs)
            args["sid"] = span.sid
            if span.parent_sid >= 0:
                args["parent_sid"] = span.parent_sid
            if span.end_time is None:
                args["incomplete"] = True
            ev["args"] = args
        lane_events[lane].append(ev)

    for sp in spans:
        start = sp.start
        end = sp.end_time if sp.end_time is not None else max(start, t_max)
        placed = False
        for lane, stack in enumerate(lane_stacks):
            # close spans that ended at or before this start
            while stack and stack[-1][1] <= start:
                done, done_end = stack.pop()
                _emit(lane, "E", done, done_end)
            if not stack or stack[-1][1] >= end:
                _emit(lane, "B", sp, start)
                stack.append((sp, end))
                placed = True
                break
        if not placed:
            lane_events.append([])
            lane_stacks.append([])
            lane = len(lane_stacks) - 1
            _emit(lane, "B", sp, start)
            lane_stacks[lane].append((sp, end))
    for lane, stack in enumerate(lane_stacks):
        while stack:
            done, done_end = stack.pop()
            _emit(lane, "E", done, done_end)
    return lane_events


def _counter_events(tracer: Tracer) -> List[Dict]:
    """Telemetry series as Chrome-trace counter (``"ph": "C"``) events —
    one Perfetto counter track per series, rendered alongside the span
    lanes.  Empty when telemetry is disabled."""
    timeline = getattr(tracer, "timeline", None)
    if timeline is None or not timeline.enabled:
        return []
    out: List[Dict] = []
    for name in sorted(timeline.series):
        ts = timeline.series[name]
        for t, v in ts.points():
            out.append({
                "name": name,
                "cat": "telemetry",
                "ph": "C",
                "ts": t * 1e6,
                "pid": 0,
                "tid": 0,
                "args": {"value": v},
            })
    out.sort(key=lambda e: e["ts"])
    return out


def chrome_trace(tracer: Tracer, process_name: str = "repro-sim") -> Dict:
    """Render the tracer's span tree as a Chrome trace-event JSON dict."""
    lane_events = _span_events_by_lane(tracer)
    meta: List[Dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for lane in range(len(lane_events)):
        meta.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": lane,
                "args": {"name": f"lane {lane}"},
            }
        )
    events = meta + list(
        merge(*lane_events, _counter_events(tracer), key=lambda e: e["ts"])
    )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {"metrics": tracer.metrics.snapshot()},
    }


def export_chrome_trace(
    tracer: Tracer, path: Union[str, Path], process_name: str = "repro-sim"
) -> Path:
    """Write the Chrome-trace JSON to ``path`` and return it."""
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(tracer, process_name=process_name)))
    return path


def metrics_snapshot(tracer: Tracer) -> Dict:
    """Plain-dict snapshot of the tracer's metrics registry (stable schema:
    ``counters`` / ``gauges`` / ``histograms`` / ``time_by_category``)."""
    return tracer.metrics.snapshot()


def validate_chrome_trace(trace: Dict) -> Dict:
    """Validate a Chrome-trace dict: required keys, monotone ``ts``,
    matched ``B``/``E`` pairs per ``(pid, tid)`` track, and well-formed
    counter (``C``) events (numeric ``args`` values).  Returns summary
    stats; raises :class:`ValueError` on any violation.

    Deterministic by construction: an empty trace validates (all-zero
    stats), zero-duration spans (``B``/``E`` at the same ``ts``) validate,
    and malformed events fail with a message naming the event index and
    the violated rule.
    """
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        raise ValueError("trace must be a dict with a 'traceEvents' list")
    events = trace["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("'traceEvents' must be a list")
    stacks: Dict[tuple, List[str]] = {}
    categories = set()
    counter_series = set()
    last_ts: Optional[float] = None
    n_spans = 0
    n_counters = 0
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise ValueError(
                f"event {i} must be a dict, got {type(ev).__name__}"
            )
        for req in ("name", "ph", "pid", "tid"):
            if req not in ev:
                raise ValueError(f"event {i} missing required key {req!r}")
        ph = ev["ph"]
        if ph == "M":
            continue
        if ph not in ("B", "E", "C"):
            raise ValueError(f"event {i}: unsupported phase {ph!r}")
        if "ts" not in ev:
            raise ValueError(f"event {i} missing required key 'ts'")
        ts = ev["ts"]
        if isinstance(ts, bool) or not isinstance(ts, (int, float)):
            raise ValueError(
                f"event {i}: 'ts' must be a number, got {ts!r}"
            )
        if last_ts is not None and ts < last_ts:
            raise ValueError(
                f"event {i}: non-monotone ts ({ts} after {last_ts})"
            )
        last_ts = ts
        if ph == "C":
            args = ev.get("args")
            if not isinstance(args, dict) or not args:
                raise ValueError(
                    f"event {i}: counter event needs a non-empty 'args' dict"
                )
            for key, value in args.items():
                if isinstance(value, bool) or not isinstance(
                    value, (int, float)
                ):
                    raise ValueError(
                        f"event {i}: counter value {key!r} must be a "
                        f"number, got {value!r}"
                    )
            counter_series.add(ev["name"])
            n_counters += 1
            continue
        track = (ev["pid"], ev["tid"])
        stack = stacks.setdefault(track, [])
        if ph == "B":
            stack.append(ev["name"])
            categories.add(ev.get("cat", ""))
            n_spans += 1
        else:
            if not stack:
                raise ValueError(f"event {i}: 'E' with empty stack on {track}")
            opened = stack.pop()
            if opened != ev["name"]:
                raise ValueError(
                    f"event {i}: 'E' name {ev['name']!r} does not match "
                    f"open 'B' {opened!r} on {track}"
                )
    for track, stack in stacks.items():
        if stack:
            raise ValueError(f"unclosed 'B' events on track {track}: {stack}")
    return {
        "n_events": len(events),
        "n_spans": n_spans,
        "n_tracks": len(stacks),
        "categories": categories,
        "n_counter_events": n_counters,
        "counter_series": counter_series,
    }
