"""Typed metrics registry: counters, gauges, histograms, per-layer time.

The registry subsumes the tuple-keyed counter dict that used to live inside
:class:`~repro.obs.tracing.Tracer` while keeping its near-free fast path:
counters are a plain dict keyed by the ``(category, event)`` tuple (no
f-string formatting or ``Counter`` hashing per event) and the dotted-key
:class:`collections.Counter` view is materialised lazily on read.

On top of the counters the registry adds the typed instruments the
observability subsystem needs:

* **gauges** — last-written values (queue depths, cache sizes);
* **histograms** — fixed bucket ladders for message sizes
  (:data:`SIZE_BUCKETS`, the OSU power-of-two ladder) and latencies
  (:data:`LATENCY_BUCKETS`, a 1-2-5 ladder in seconds);
* **per-category simulated time** — the modeled CPU cost each layer charges
  (:meth:`MetricsRegistry.add_time`), which is how the §IV-B1 overhead
  anatomy attributes AMPI time *outside* UCX from one traced run.

Everything is observation-only: no method touches the simulator, so metrics
can never perturb simulated clocks or event ordering.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple

#: Message-size ladder (bytes): the OSU sweep's powers of two, 1 B .. 4 MiB.
#: Values above the last bound land in the implicit +inf bucket.
SIZE_BUCKETS: Tuple[int, ...] = tuple(1 << i for i in range(23))

#: Latency ladder (seconds): 1-2-5 steps from 0.5 us to 10 ms.
LATENCY_BUCKETS: Tuple[float, ...] = tuple(
    us * 1e-6
    for us in (0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000)
)


class Histogram:
    """Fixed-bucket histogram: ``bounds`` are inclusive upper edges in
    ascending order, plus an implicit overflow bucket."""

    __slots__ = ("name", "bounds", "counts", "count", "total")

    def __init__(self, name: str, bounds: Sequence[float]) -> None:
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("histogram bounds must be strictly increasing")
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
        }


class MetricsRegistry:
    """Counters, gauges, histograms and per-layer time for one simulation."""

    def __init__(self) -> None:
        # (category, event) -> count; the per-message hot path writes here
        self._counts: Dict[Tuple[str, str], int] = {}
        self._counters_view: Optional[Counter] = None
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}
        # category -> modeled simulated seconds charged by that layer
        self._times: Dict[str, float] = {}

    # -- counters (hot path) -------------------------------------------------
    def inc(self, category: str, event: str, n: int = 1) -> None:
        key = (category, event)
        counts = self._counts
        counts[key] = counts.get(key, 0) + n
        self._counters_view = None

    def counter(self, category: str, event: str) -> int:
        return self._counts.get((category, event), 0)

    @property
    def counters(self) -> Counter:
        """Counter view keyed ``"category.event"`` (built lazily on read)."""
        view = self._counters_view
        if view is None:
            view = Counter({f"{c}.{e}": n for (c, e), n in self._counts.items()})
            self._counters_view = view
        return view

    # -- gauges ----------------------------------------------------------------
    def set_gauge(self, name: str, value: float) -> None:
        self._gauges[name] = value

    def gauge(self, name: str) -> Optional[float]:
        return self._gauges.get(name)

    # -- histograms -------------------------------------------------------------
    def histogram(self, name: str, bounds: Sequence[float] = SIZE_BUCKETS) -> Histogram:
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram(name, bounds)
        return hist

    def observe(
        self, name: str, value: float, bounds: Sequence[float] = SIZE_BUCKETS
    ) -> None:
        self.histogram(name, bounds).observe(value)

    # -- per-layer time ----------------------------------------------------------
    def add_time(self, category: str, seconds: float) -> None:
        times = self._times
        times[category] = times.get(category, 0.0) + seconds

    def time_in(self, category: str) -> float:
        return self._times.get(category, 0.0)

    # -- export -------------------------------------------------------------------
    def snapshot(self) -> Dict:
        """Plain-dict snapshot (the stable export format; JSON-serialisable)."""
        return {
            "counters": {f"{c}.{e}": n for (c, e), n in self._counts.items()},
            "gauges": dict(self._gauges),
            "histograms": {n: h.snapshot() for n, h in self._histograms.items()},
            "time_by_category": dict(self._times),
        }

    def reset(self) -> None:
        self._counts.clear()
        self._counters_view = None
        self._gauges.clear()
        self._histograms.clear()
        self._times.clear()
