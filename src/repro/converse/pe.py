"""Processing elements: one scheduler + message queue each.

The paper's experiments run the non-SMP build — one CPU core is the single
PE of each process, one process per GPU.  A :class:`Pe` therefore owns a
message queue, a scheduler process that drains it, and (by construction) a
1:1 association with a GPU.

CPU-time accounting
-------------------
Charm++ entry methods are run-to-completion callables: they cannot yield to
the simulator.  Costs accrued *inside* a handler are therefore charged to a
per-PE debt counter (:meth:`charge`); the scheduler advances simulated time
by the accumulated debt after the handler returns, before picking up the
next message.  Asynchronous operations started inside a handler (sends)
capture the debt-at-call-time as their departure delay, so a send issued
after 2 μs of marshalling leaves 2 μs later — first-order-correct CPU
serialisation without continuation gymnastics.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.primitives import SimQueue, Timeout
from repro.sim.process import Process


class Pe:
    """One processing element (CPU core + its GPU)."""

    def __init__(self, converse: "Converse", index: int, node: int, gpu: Optional[int]) -> None:  # noqa: F821
        self.converse = converse
        self.sim = converse.sim
        self.index = index
        self.node = node
        self.gpu = gpu
        self.queue: SimQueue = SimQueue(self.sim, name=f"pe{index}.queue")
        self._debt = 0.0
        self.messages_processed = 0
        self.busy_time = 0.0
        self._scheduler = Process(self.sim, self._scheduler_loop(), name=f"pe{index}.sched")

    # -- CPU-time debt ---------------------------------------------------------
    def charge(self, cost: float) -> None:
        """Accrue CPU time from inside a run-to-completion handler."""
        if cost < 0:
            raise ValueError("cannot charge negative time")
        self._debt += cost

    def current_delay(self) -> float:
        """Debt accrued so far in the current handler — the departure delay
        async operations started now should observe."""
        return self._debt

    def take_debt(self) -> float:
        debt, self._debt = self._debt, 0.0
        return debt

    def work(self, cost: float) -> Timeout:
        """For process contexts (AMPI ranks, Charm4py coroutines): a yieldable
        event representing ``cost`` seconds of CPU work on this PE."""
        return Timeout(self.sim, cost)

    # -- scheduling ---------------------------------------------------------------
    def enqueue(self, msg) -> None:
        self.queue.put(msg)

    def _scheduler_loop(self):
        cfg = self.converse.runtime_cfg
        while True:
            msg = yield self.queue.get()
            yield Timeout(self.sim, cfg.scheduler_pickup_overhead)
            self.messages_processed += 1
            start = self.sim.now
            continuation = self.converse.dispatch(self, msg)
            debt = self.take_debt()
            if debt > 0.0:
                yield Timeout(self.sim, debt)
            if continuation is not None:
                # A *threaded* entry method (Charm++ [threaded] / Charm4py
                # coroutine): the handler returned a generator that may block
                # on CUDA synchronisation, channel receives, or futures.
                # Real runtimes run these on user-level threads: the PE's
                # scheduler resumes pumping messages whenever the coroutine
                # suspends.  We model that by running the continuation as a
                # concurrent process; its CPU costs are charged through the
                # Timeouts it yields.
                Process(self.sim, continuation, name=f"pe{self.index}.threaded")
            self.busy_time += (self.sim.now - start) + cfg.scheduler_pickup_overhead
