"""Converse: the Charm++ runtime's portable messaging and scheduling layer.

Sits between the programming models (Charm++/AMPI/Charm4py cores) and the
machine layer (:mod:`repro.core.machine_ucx`).  Provides processing elements
(PEs) with message queues and schedulers, the ``CmiMessage`` envelope, and
the ``Cmi*`` messaging entry points — including ``CmiSendDevice``, the
Converse-level hook of the paper's GPU-aware path (Fig. 6).
"""

from repro.converse.message import CmiMessage
from repro.converse.pe import Pe
from repro.converse.cmi import Converse

__all__ = ["CmiMessage", "Converse", "Pe"]
