"""The Converse runtime: PEs, handler registry, and the Cmi* entry points.

Converse is where layer-specific headers are "added or extracted" (paper
Fig. 1): programming models register named handlers; :meth:`Converse.dispatch`
routes each arriving :class:`CmiMessage` to its handler on the owning PE.
``CmiSendDevice``/``CmiRecvDevice`` forward to the machine layer, adding the
Converse-level metadata handling costs.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.config import MachineConfig
from repro.converse.message import CmiMessage
from repro.converse.pe import Pe
from repro.core.device_buffer import CmiDeviceBuffer, DeviceRdmaOp
from repro.core.machine_ucx import UcxMachineLayer
from repro.hardware.topology import Machine


class Converse:
    """One Converse instance spanning all PEs of the simulated job."""

    def __init__(self, machine: Machine, machine_layer: UcxMachineLayer,
                 pe_node: List[int], pe_gpu: List[Optional[int]]) -> None:
        self.machine = machine
        self.sim = machine.sim
        self.cfg: MachineConfig = machine.cfg
        self.runtime_cfg = machine.cfg.runtime
        self.layer = machine_layer
        self.pes: List[Pe] = [
            Pe(self, i, pe_node[i], pe_gpu[i]) for i in range(len(pe_node))
        ]
        self._handlers: Dict[str, Callable[[Pe, CmiMessage], None]] = {}
        machine_layer.attach(self._deliver)

    @property
    def n_pes(self) -> int:
        return len(self.pes)

    # -- handlers -------------------------------------------------------------
    def register_handler(self, name: str, fn: Callable[[Pe, CmiMessage], None]) -> None:
        if name in self._handlers:
            raise ValueError(f"handler {name!r} already registered")
        self._handlers[name] = fn

    def dispatch(self, pe: Pe, msg: CmiMessage):
        """Run the handler; if it returns a generator (a *threaded* entry
        method), hand it back to the PE scheduler to drive as a process."""
        handler = self._handlers.get(msg.handler)
        if handler is None:
            raise RuntimeError(f"no Converse handler named {msg.handler!r}")
        return handler(pe, msg)

    def _deliver(self, dst_pe: int, msg: CmiMessage) -> None:
        self.pes[dst_pe].enqueue(msg)

    # -- messaging -----------------------------------------------------------------
    def cmi_send(self, src_pe: int, msg: CmiMessage) -> None:
        """Send a packed host-side message (``CmiSyncSendAndFree`` moral
        equivalent).  The departure observes the sending PE's current CPU
        debt, so marshalling time sequences correctly before injection."""
        rt = self.runtime_cfg
        wire = msg.wire_size(rt.converse_header_bytes, rt.device_metadata_bytes)
        pe = self.pes[src_pe]
        tracer = self.machine.tracer
        tracer.count("converse", "send")
        with tracer.span("converse", "cmi_send", handler=msg.handler, bytes=wire):
            self.layer.send_host_message(
                src_pe, msg.dst_pe, msg, wire, departure_delay=pe.current_delay()
            )

    def cmi_send_device(
        self,
        src_pe: int,
        dst_pe: int,
        dev_buf: CmiDeviceBuffer,
        on_complete: Optional[Callable[[], None]] = None,
        on_error: Optional[Callable] = None,
    ) -> int:
        """``CmiSendDevice`` (paper Fig. 6, step 2): hand the GPU buffer to
        the machine layer; the assigned tag lands in ``dev_buf.tag``."""
        pe = self.pes[src_pe]
        tracer = self.machine.tracer
        tracer.count("converse", "send_device")
        with tracer.span(
            "converse", "cmi_send_device",
            src_pe=src_pe, dst_pe=dst_pe, size=dev_buf.size,
        ):
            return self.layer.lrts_send_device(
                src_pe, dst_pe, dev_buf,
                departure_delay=pe.current_delay(),
                on_complete=on_complete,
                on_error=on_error,
            )

    def cmi_recv_device(self, pe_index: int, op: DeviceRdmaOp) -> None:
        """``CmiRecvDevice``: post the receive for announced GPU data."""
        pe = self.pes[pe_index]
        tracer = self.machine.tracer
        tracer.count("converse", "recv_device")
        with tracer.span("converse", "cmi_recv_device", pe=pe_index, size=op.size):
            self.layer.lrts_recv_device(
                pe_index, op, departure_delay=pe.current_delay()
            )
