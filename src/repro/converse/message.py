"""The CmiMessage envelope.

A Converse message carries a registered handler name, an opaque payload (the
layers above put entry-method invocations, AMPI envelopes, or Charm4py
channel packets here), the host-side byte size it occupies on the wire, and
— for GPU-aware sends — the list of :class:`CmiDeviceBuffer` metadata
objects whose tags were assigned by ``LrtsSendDevice`` (the paper's "pack
with host-side data and send" step).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, List

from repro.core.device_buffer import CmiDeviceBuffer

_msg_ids = itertools.count(1)


@dataclass
class CmiMessage:
    """One host-side message between PEs."""

    handler: str  # registered Converse handler name
    payload: Any  # opaque to Converse
    host_bytes: int  # user payload bytes on the host side (0 if none)
    src_pe: int
    dst_pe: int
    device_bufs: List[CmiDeviceBuffer] = field(default_factory=list)
    msg_id: int = field(default_factory=lambda: next(_msg_ids))

    def wire_size(self, header_bytes: int, device_metadata_bytes: int) -> int:
        """Total host-side bytes: payload + Converse/Charm headers + the
        serialized CkDeviceBuffer metadata riding along."""
        return (
            self.host_bytes
            + header_bytes
            + device_metadata_bytes * len(self.device_bufs)
        )
