"""Deterministic fault plans: *what* goes wrong, *where*, and *when*.

A :class:`FaultPlan` is a frozen, JSON-serialisable description of every
fault a run should experience:

* :class:`LinkFaultRule` — per-directed-worker-pair transient frame faults
  (drop / corrupt / stall) on the wire between two UCP workers, optionally
  restricted to a frame-kind subset (``eager``/``rts``/``fin``/``am``), a
  simulated-time window, and a budget of at most ``max_faults`` hits;
* :class:`BandwidthWindow` — a degraded-bandwidth interval for links whose
  name matches an ``fnmatch`` pattern (``"n0.nic*"``), scaling their
  bandwidth by ``factor`` while active;
* forced capability failures: ``fail_ipc_open`` (every CUDA-IPC handle
  open fails, forcing the pipelined host-staging fallback) and
  ``fail_gdrcopy_probe`` (UCX "fails to find" GDRCopy at startup — the
  paper's §IV-B1 observation, injectable instead of config-only);
* the recovery parameters: retransmit ``retry_timeout`` with exponential
  ``retry_backoff`` and ``max_retries`` before a frame's sender gives up
  and surfaces ``UCS_ERR_ENDPOINT_TIMEOUT``.

Determinism contract: every random draw of the injection machinery comes
from one ``random.Random(plan.seed)`` stream consumed in simulated event
order, so the same plan always yields the same faults; an **empty** plan
(``FaultPlan().empty``) builds no injector at all and is bit-identical to
running without one (enforced by ``tests/test_faults.py`` goldens).

This module is import-light on purpose (stdlib only): ``repro.config``
embeds a plan in :class:`~repro.config.MachineConfig` without a cycle.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields
from typing import Optional, Tuple

__all__ = ["ANY_WORKER", "FRAME_KINDS", "LinkFaultRule", "BandwidthWindow", "FaultPlan"]

#: Wildcard for :class:`LinkFaultRule` endpoints: matches every worker.
ANY_WORKER = -1

#: Frame kinds a :class:`LinkFaultRule` may name (empty tuple = all kinds).
#: ``eager``/``rts``/``fin`` are the tagged-path frames; ``am`` is the
#: active-message host path (metadata and host payloads).
FRAME_KINDS = ("eager", "rts", "fin", "am")

_INF = float("inf")


@dataclass(frozen=True)
class LinkFaultRule:
    """Transient frame faults on the directed worker pair ``src -> dst``.

    Probabilities are per frame *attempt* (retransmissions re-roll), drawn
    in order drop, corrupt, stall from the plan's seeded stream.  A
    stalled frame is delivered ``stall_seconds`` late — long stalls race
    the sender's retransmit timer and produce genuine duplicates for the
    receiver to dedup.  ``t0``/``t1`` bound the active window in simulated
    seconds; ``max_faults`` (0 = unlimited) caps the rule's total hits,
    which is how a *transient* outage is expressed.
    """

    src: int = ANY_WORKER
    dst: int = ANY_WORKER
    kinds: Tuple[str, ...] = ()  # empty = all of FRAME_KINDS
    drop_p: float = 0.0
    corrupt_p: float = 0.0
    stall_p: float = 0.0
    stall_seconds: float = 100e-6
    t0: float = 0.0
    t1: float = _INF
    max_faults: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.kinds, tuple):  # freeze JSON lists
            object.__setattr__(self, "kinds", tuple(self.kinds))
        for name in ("drop_p", "corrupt_p", "stall_p"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p!r}")
        unknown = sorted(set(self.kinds) - set(FRAME_KINDS))
        if unknown:
            raise ValueError(
                f"unknown frame kind(s) {unknown}; valid: {list(FRAME_KINDS)}"
            )
        if self.stall_seconds < 0.0:
            raise ValueError("stall_seconds must be >= 0")
        if self.t1 < self.t0:
            raise ValueError(f"window end {self.t1} precedes start {self.t0}")
        if self.max_faults < 0:
            raise ValueError("max_faults must be >= 0 (0 = unlimited)")

    def applies(self, src: int, dst: int, kind: str, now: float) -> bool:
        return (
            (self.src == ANY_WORKER or self.src == src)
            and (self.dst == ANY_WORKER or self.dst == dst)
            and (not self.kinds or kind in self.kinds)
            and self.t0 <= now < self.t1
        )


@dataclass(frozen=True)
class BandwidthWindow:
    """Scale the bandwidth of links matching ``pattern`` by ``factor``
    during ``[t0, t1)`` — a congested or degraded-cable interval.  The
    pattern is an :func:`fnmatch.fnmatch` glob over link names as built by
    :mod:`repro.hardware.topology` (e.g. ``"n0.nic*"`` for node 0's NIC
    rails, ``"*.xbus.*"`` for every X-Bus).

    A factor of exactly ``0.0`` marks the matching links **down** for the
    window: the multirail rail planner excludes rails containing a down
    link (graceful fallback to the remaining rails), and the link layer
    raises on any bulk transfer whose regular route traverses one —
    zero-bandwidth occupancy has no finite completion time."""

    pattern: str
    factor: float
    t0: float = 0.0
    t1: float = _INF

    def __post_init__(self) -> None:
        if not 0.0 <= self.factor <= 1.0:
            raise ValueError(f"factor must be in [0, 1], got {self.factor!r}")
        if self.t1 < self.t0:
            raise ValueError(f"window end {self.t1} precedes start {self.t0}")

    def active(self, name: str, now: float) -> bool:
        from fnmatch import fnmatch

        return self.t0 <= now < self.t1 and fnmatch(name, self.pattern)


@dataclass(frozen=True)
class FaultPlan:
    """The full, seeded fault schedule of one run (see module docstring)."""

    seed: int = 0
    link_rules: Tuple[LinkFaultRule, ...] = ()
    bandwidth_windows: Tuple[BandwidthWindow, ...] = ()
    fail_ipc_open: bool = False
    fail_gdrcopy_probe: bool = False
    # recovery parameters: wait retry_timeout * retry_backoff**attempt
    # before retransmitting; give up (ERR_ENDPOINT_TIMEOUT) after
    # max_retries retransmissions of the same frame.
    retry_timeout: float = 50e-6
    retry_backoff: float = 2.0
    max_retries: int = 6

    def __post_init__(self) -> None:
        # tolerate lists from from_dict/JSON by freezing them to tuples
        if not isinstance(self.link_rules, tuple):
            object.__setattr__(self, "link_rules", tuple(self.link_rules))
        if not isinstance(self.bandwidth_windows, tuple):
            object.__setattr__(
                self, "bandwidth_windows", tuple(self.bandwidth_windows)
            )
        if self.retry_timeout <= 0.0:
            raise ValueError("retry_timeout must be > 0")
        if self.retry_backoff < 1.0:
            raise ValueError("retry_backoff must be >= 1")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")

    @property
    def empty(self) -> bool:
        """True when the plan injects nothing at all.  Empty plans build no
        injector — runs are bit-identical to runs with no plan."""
        return (
            not self.link_rules
            and not self.bandwidth_windows
            and not self.fail_ipc_open
            and not self.fail_gdrcopy_probe
        )

    # -- convenience constructors ---------------------------------------------
    @classmethod
    def lossy(cls, drop_p: float, seed: int = 0, kinds: Tuple[str, ...] = (),
              **overrides) -> "FaultPlan":
        """Uniform lossy fabric: every frame (of ``kinds``, default all)
        between every worker pair is dropped with probability ``drop_p``."""
        return cls(
            seed=seed,
            link_rules=(LinkFaultRule(drop_p=drop_p, kinds=kinds),),
            **overrides,
        )

    @classmethod
    def rail_down(cls, pattern: str, t0: float = 0.0, t1: float = _INF,
                  seed: int = 0, **overrides) -> "FaultPlan":
        """One-rail-down plan: links matching ``pattern`` are down (factor
        0.0) during ``[t0, t1)``.  The multirail rail planner drops rails
        containing a down link, so striped transfers degrade gracefully to
        the surviving rails (e.g. ``pattern="n*.nvlalt*"`` downs every
        secondary NVLink brick, forcing single-rail intra-node traffic)."""
        return cls(
            seed=seed,
            bandwidth_windows=(BandwidthWindow(pattern, 0.0, t0, t1),),
            **overrides,
        )

    @classmethod
    def endpoint_down(cls, src: int, dst: int, from_t: float,
                      seed: int = 0, **overrides) -> "FaultPlan":
        """Hard endpoint failure: from ``from_t`` on, every frame from
        ``src`` to ``dst`` is lost — senders exhaust their retries and
        surface ``ERR_ENDPOINT_TIMEOUT``."""
        return cls(
            seed=seed,
            link_rules=(LinkFaultRule(src=src, dst=dst, drop_p=1.0, t0=from_t),),
            **overrides,
        )

    # -- (de)serialisation ------------------------------------------------------
    def to_dict(self) -> dict:
        doc = asdict(self)
        doc["link_rules"] = [asdict(r) for r in self.link_rules]
        doc["bandwidth_windows"] = [asdict(w) for w in self.bandwidth_windows]
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "FaultPlan":
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(doc) - known)
        if unknown:
            raise ValueError(
                f"unknown FaultPlan field(s) {unknown}; valid: {sorted(known)}"
            )
        doc = dict(doc)
        doc["link_rules"] = tuple(
            r if isinstance(r, LinkFaultRule) else LinkFaultRule(**_de_inf(r))
            for r in doc.get("link_rules", ())
        )
        doc["bandwidth_windows"] = tuple(
            w if isinstance(w, BandwidthWindow) else BandwidthWindow(**_de_inf(w))
            for w in doc.get("bandwidth_windows", ())
        )
        return cls(**doc)

    def to_json(self, indent: Optional[int] = 2) -> str:
        # json.dumps renders float('inf') as the non-standard literal
        # Infinity; map it to null for portability and back in from_json
        def _enc(v):
            if isinstance(v, dict):
                return {k: _enc(x) for k, x in v.items()}
            if isinstance(v, list):
                return [_enc(x) for x in v]
            if v == _INF:
                return None
            return v

        return json.dumps(_enc(self.to_dict()), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, spec: str) -> "FaultPlan":
        """CLI helper (``--fault-plan``): ``spec`` is inline JSON when it
        starts with ``{``, otherwise the path of a JSON plan file."""
        text = spec.strip()
        if not text.startswith("{"):
            with open(spec) as fh:
                text = fh.read()
        return cls.from_json(text)


def _de_inf(doc: dict) -> dict:
    """Undo the JSON encoding of open-ended windows (``t1: null`` -> inf)."""
    out = dict(doc)
    if out.get("t1") is None:
        out["t1"] = _INF
    return out
