"""Deterministic, seeded fault injection for the simulated UCX stack.

Public surface::

    from repro.faults import FaultPlan, LinkFaultRule, BandwidthWindow

    plan = FaultPlan.lossy(drop_p=0.08, seed=42)
    cfg = MachineConfig.summit(nodes=2).with_faults(plan)

See :mod:`repro.faults.plan` for the plan schema and determinism contract,
:mod:`repro.faults.injector` for the runtime decision engine.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    ANY_WORKER,
    FRAME_KINDS,
    BandwidthWindow,
    FaultPlan,
    LinkFaultRule,
)

__all__ = [
    "ANY_WORKER",
    "FRAME_KINDS",
    "BandwidthWindow",
    "FaultInjector",
    "FaultPlan",
    "LinkFaultRule",
]
