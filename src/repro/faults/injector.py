"""The runtime half of fault injection: plan in, seeded decisions out.

One :class:`FaultInjector` is built per :class:`~repro.hardware.topology.
Machine` when its config carries a non-empty :class:`~repro.faults.plan.
FaultPlan`.  The UCP worker consults it per outgoing frame
(:meth:`frame_fault`), the link layer per bulk transfer
(:meth:`bandwidth_factor`), and the UCP context once at startup for the
forced capability failures.

All randomness comes from ``random.Random(plan.seed)`` consumed in
simulated event order — the simulator is deterministic, so the decision
stream is too.  Counters go through ``tracer.count`` (always-on metrics),
so fault statistics appear in ``Session.metrics_snapshot()`` whether or
not tracing is enabled, identically in both modes.
"""

from __future__ import annotations

import random
from typing import Optional, Tuple

from repro.faults.plan import FaultPlan

__all__ = ["FaultInjector"]

#: ``frame_fault`` verdicts: ``None`` (clean) or (verb, stall_seconds).
DROP = "drop"
CORRUPT = "corrupt"
STALL = "stall"


class FaultInjector:
    """Seeded per-run fault decision engine (see module docstring)."""

    def __init__(self, plan: FaultPlan, tracer) -> None:
        if plan.empty:
            raise ValueError("empty FaultPlan builds no injector by contract")
        self.plan = plan
        self.tracer = tracer
        self.rng = random.Random(plan.seed)
        # per-rule hit budgets (index-aligned with plan.link_rules)
        self._hits = [0] * len(plan.link_rules)

    # -- frame faults (wire layer) ---------------------------------------------
    def frame_fault(
        self, src: int, dst: int, kind: str, now: float
    ) -> Optional[Tuple[str, float]]:
        """Decide the fate of one frame attempt from worker ``src`` to
        worker ``dst``.  Returns ``None`` (deliver normally) or
        ``(verb, stall_seconds)`` with verb in drop/corrupt/stall.  Rules
        are consulted in plan order; the first hit wins.  Draws happen
        only for rules that match, keeping unrelated traffic's absence of
        draws stable when a plan adds a narrow rule."""
        for i, rule in enumerate(self.plan.link_rules):
            if not rule.applies(src, dst, kind, now):
                continue
            if rule.max_faults and self._hits[i] >= rule.max_faults:
                continue
            verdict = None
            if rule.drop_p and self.rng.random() < rule.drop_p:
                verdict = (DROP, 0.0)
            elif rule.corrupt_p and self.rng.random() < rule.corrupt_p:
                verdict = (CORRUPT, 0.0)
            elif rule.stall_p and self.rng.random() < rule.stall_p:
                verdict = (STALL, rule.stall_seconds)
            if verdict is not None:
                self._hits[i] += 1
                self.tracer.count("fault", verdict[0])
                return verdict
        return None

    # -- retry schedule ----------------------------------------------------------
    @property
    def max_retries(self) -> int:
        return self.plan.max_retries

    def retry_wait(self, attempt: int) -> float:
        """Backoff before retransmission number ``attempt + 1``."""
        return self.plan.retry_timeout * (self.plan.retry_backoff ** attempt)

    # -- degraded bandwidth (link layer) ----------------------------------------
    def bandwidth_factor(self, link_name: str, now: float) -> float:
        """Effective bandwidth multiplier for ``link_name`` at ``now``
        (the most degraded matching window wins; 1.0 = unimpaired)."""
        factor = 1.0
        for w in self.plan.bandwidth_windows:
            if w.active(link_name, now) and w.factor < factor:
                factor = w.factor
        return factor

    def link_down(self, link_name: str, now: float) -> bool:
        """True when a factor-0.0 window holds the link down at ``now``
        (the rail planner's usability probe)."""
        return self.bandwidth_factor(link_name, now) <= 0.0

    # -- forced capability failures ----------------------------------------------
    def ipc_open_fails(self) -> bool:
        """Every CUDA-IPC handle open fails (rendezvous falls back to
        pipelined host staging); counted per affected transfer."""
        if self.plan.fail_ipc_open:
            self.tracer.count("fault", "ipc_open_failed")
            return True
        return False

    def gdrcopy_probe_fails(self) -> bool:
        """The one-shot startup probe: UCX "fails to find" GDRCopy."""
        return self.plan.fail_gdrcopy_probe
