"""MPI Jacobi3D — one program, two libraries (AMPI §IV-C2 + OpenMPI ref).

The rank program is identical for AMPI and OpenMPI (that is AMPI's point);
only the library object differs.  GPU-aware mode passes device buffers
straight to ``MPI_Isend``/``MPI_Irecv`` like any CUDA-aware MPI; host
staging adds the explicit ``cudaMemcpy`` ladder.
"""

from __future__ import annotations

import repro.api as api
from repro.apps.jacobi3d.common import BlockState, BlockTimings, ResultCollector, halo_tag
from repro.apps.jacobi3d.decomposition import DIRS, Decomposition, opposite


def jacobi_mpi_program(mpi, decomp: Decomposition, gpu_aware: bool, iters: int,
                       warmup: int, functional: bool, collector: ResultCollector):
    if mpi.rank >= decomp.n_blocks:
        return
    st = BlockState(mpi.charm.cuda, mpi.gpu, decomp, mpi.rank, functional)
    timings = BlockTimings()
    nbrs = st.neighbors
    for it in range(warmup + iters):
        t0 = mpi.sim.now
        parity = it % 2
        yield st.pack(parity)
        tc0 = mpi.sim.now
        if gpu_aware:
            reqs = [
                mpi.irecv(st.d_ghost[d][parity], st.face_bytes(d), src=nbr,
                          tag=halo_tag(DIRS.index(d), it))
                for d, nbr in nbrs
            ]
            reqs += [
                mpi.isend(st.d_send[d][parity], st.face_bytes(d), dst=nbr,
                          tag=halo_tag(DIRS.index(opposite(d)), it))
                for d, nbr in nbrs
            ]
            yield mpi.waitall(reqs)
        else:
            yield st.stage_out(parity)
            reqs = [
                mpi.irecv(st.h_recv[d], st.face_bytes(d), src=nbr,
                          tag=halo_tag(DIRS.index(d), it))
                for d, nbr in nbrs
            ]
            reqs += [
                mpi.isend(st.h_send[d], st.face_bytes(d), dst=nbr,
                          tag=halo_tag(DIRS.index(opposite(d)), it))
                for d, nbr in nbrs
            ]
            yield mpi.waitall(reqs)
            for d, _nbr in nbrs:
                st.cuda.memcpy_htod(
                    st.d_ghost[d][parity], st.h_recv[d], st.stream, st.face_bytes(d)
                )
            yield st.cuda.stream_synchronize(st.stream)
        tcomm = mpi.sim.now - tc0
        yield st.unpack(parity)
        yield st.compute()
        st.swap()
        timings.iter_times.append(mpi.sim.now - t0)
        timings.comm_times.append(tcomm)
    collector.report(mpi.rank, timings, st.u)


def run_ampi_jacobi(config, decomp: Decomposition, gpu_aware: bool, iters: int = 5,
                    warmup: int = 1, functional: bool = False,
                    session=None) -> ResultCollector:
    sess = session if session is not None else api.session(config).model("ampi").build()
    if decomp.n_blocks != sess.lib.n_ranks:
        raise ValueError(f"{decomp.n_blocks} blocks but {sess.lib.n_ranks} ranks")
    collector = ResultCollector(sess.sim, decomp.n_blocks, warmup)
    done = sess.launch(
        jacobi_mpi_program, decomp, gpu_aware, iters, warmup, functional, collector
    )
    sess.run_until(done, max_events=200_000_000)
    return collector


def run_openmpi_jacobi(config, decomp: Decomposition, gpu_aware: bool, iters: int = 5,
                       warmup: int = 1, functional: bool = False,
                       session=None) -> ResultCollector:
    sess = session if session is not None else api.session(config).model("openmpi").build()
    if decomp.n_blocks != sess.lib.n_ranks:
        raise ValueError(f"{decomp.n_blocks} blocks but {sess.lib.n_ranks} ranks")
    collector = ResultCollector(sess.sim, decomp.n_blocks, warmup)
    done = sess.launch(
        jacobi_mpi_program, decomp, gpu_aware, iters, warmup, functional, collector
    )
    sess.run_until(done, max_events=200_000_000)
    return collector
