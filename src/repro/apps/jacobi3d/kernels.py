"""Jacobi3D GPU kernels: cost models plus functional NumPy bodies.

At paper scale (hundreds of millions of cells per GPU) the buffers are
virtual and only the roofline cost matters; for correctness tests the same
kernels carry functional bodies that move real data, so the distributed
result can be checked cell-for-cell against :func:`jacobi_reference_step`.

Cost model: the 7-point stencil is memory-bound.  Effective DRAM traffic is
~2 doubles per cell (one streaming read of ``u``, one write of ``u_new``;
neighbour reads hit cache) — 16 B/cell, which lands the 1536³/6-GPU base
block at ~11 ms/iteration on a V100, matching the scale of the paper's
Fig. 14a.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.hardware.gpu import Kernel

#: effective DRAM bytes per cell for the 7-point Jacobi sweep
STENCIL_BYTES_PER_CELL = 16
#: flops per cell (6 adds + 1 multiply)
STENCIL_FLOPS_PER_CELL = 7

_FACE_SLICES = {
    "-x": (slice(0, 1), slice(None), slice(None)),
    "+x": (slice(-1, None), slice(None), slice(None)),
    "-y": (slice(None), slice(0, 1), slice(None)),
    "+y": (slice(None), slice(-1, None), slice(None)),
    "-z": (slice(None), slice(None), slice(0, 1)),
    "+z": (slice(None), slice(None), slice(-1, None)),
}

_GHOST_SLICES = {
    "-x": (0, slice(1, -1), slice(1, -1)),
    "+x": (-1, slice(1, -1), slice(1, -1)),
    "-y": (slice(1, -1), 0, slice(1, -1)),
    "+y": (slice(1, -1), -1, slice(1, -1)),
    "-z": (slice(1, -1), slice(1, -1), 0),
    "+z": (slice(1, -1), slice(1, -1), -1),
}


def pack_kernel(direction: str, face_bytes: int,
                u: Optional[np.ndarray] = None,
                out: Optional[np.ndarray] = None) -> Kernel:
    """Copy one interior face of ``u`` (ghosted array) into a send buffer."""

    def body() -> None:
        if u is None or out is None:
            return
        interior = u[1:-1, 1:-1, 1:-1]
        face = interior[_FACE_SLICES[direction]]
        out.reshape(-1)[: face.size] = face.reshape(-1)

    return Kernel(
        name=f"pack{direction}",
        bytes_moved=2 * face_bytes,
        body=body if u is not None else None,
    )


def unpack_kernel(direction: str, face_bytes: int,
                  u: Optional[np.ndarray] = None,
                  src: Optional[np.ndarray] = None) -> Kernel:
    """Copy a received halo into the ghost shell of ``u``."""

    def body() -> None:
        if u is None or src is None:
            return
        ghost = u[_GHOST_SLICES[direction]]
        ghost[...] = src.reshape(-1)[: ghost.size].reshape(ghost.shape)

    return Kernel(
        name=f"unpack{direction}",
        bytes_moved=2 * face_bytes,
        body=body if u is not None else None,
    )


def stencil_kernel(cells: int,
                   u: Optional[np.ndarray] = None,
                   u_new: Optional[np.ndarray] = None) -> Kernel:
    """One Jacobi sweep over ``cells`` interior points."""

    def body() -> None:
        if u is None or u_new is None:
            return
        u_new[1:-1, 1:-1, 1:-1] = (
            u[:-2, 1:-1, 1:-1] + u[2:, 1:-1, 1:-1]
            + u[1:-1, :-2, 1:-1] + u[1:-1, 2:, 1:-1]
            + u[1:-1, 1:-1, :-2] + u[1:-1, 1:-1, 2:]
        ) / 6.0

    return Kernel(
        name="jacobi",
        bytes_moved=cells * STENCIL_BYTES_PER_CELL,
        flops=cells * STENCIL_FLOPS_PER_CELL,
        body=body if u is not None else None,
    )


def jacobi_reference_step(u: np.ndarray) -> np.ndarray:
    """Sequential reference: one Jacobi sweep of a ghosted array (ghost
    cells held fixed — Dirichlet boundary).  Returns the new ghosted array."""
    out = u.copy()
    out[1:-1, 1:-1, 1:-1] = (
        u[:-2, 1:-1, 1:-1] + u[2:, 1:-1, 1:-1]
        + u[1:-1, :-2, 1:-1] + u[1:-1, 2:, 1:-1]
        + u[1:-1, 1:-1, :-2] + u[1:-1, 1:-1, 2:]
    ) / 6.0
    return out
