"""Jacobi3D driver: weak/strong scaling runs and the CLI."""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.apps.jacobi3d.charm_impl import run_charm_jacobi
from repro.apps.jacobi3d.charm4py_impl import run_charm4py_jacobi
from repro.apps.jacobi3d.decomposition import Decomposition, weak_scaling_domain
from repro.apps.jacobi3d.mpi_impl import run_ampi_jacobi, run_openmpi_jacobi
from repro.config import MachineConfig

#: paper §IV-C: weak-scaling base domain edge (1536³ doubles), strong 3072³
WEAK_BASE = 1536
STRONG_DOMAIN = (3072, 3072, 3072)

_RUNNERS = {
    "charm": run_charm_jacobi,
    "ampi": run_ampi_jacobi,
    "openmpi": run_openmpi_jacobi,
    "charm4py": run_charm4py_jacobi,
}


@dataclass(frozen=True)
class JacobiResult:
    model: str
    gpu_aware: bool
    nodes: int
    domain: Tuple[int, int, int]
    iter_time: float  # average overall time per iteration (seconds)
    comm_time: float  # average communication time per iteration (seconds)


def run_jacobi(
    model: str,
    nodes: int = 1,
    scaling: str = "weak",
    gpu_aware: bool = True,
    iters: int = 4,
    warmup: int = 1,
    config: Optional[MachineConfig] = None,
    domain: Optional[Tuple[int, int, int]] = None,
    functional: bool = False,
    base: int = WEAK_BASE,
    session=None,
    **runner_kwargs,
) -> JacobiResult:
    """Run one Jacobi3D configuration and return per-iteration timings.

    ``scaling='weak'`` grows the domain from ``base``³ with the node count
    (paper Fig. 14-16 a/b); ``scaling='strong'`` fixes 3072³ (c/d).  An
    explicit ``domain`` overrides both (used by the functional tests).
    Pass a pre-built :class:`repro.api.Session` (e.g. with tracing enabled)
    via ``session`` to run on it instead of constructing a fresh machine.
    """
    if model not in _RUNNERS:
        raise ValueError(f"unknown model {model!r}; pick from {sorted(_RUNNERS)}")
    if session is not None:
        cfg = session.config
    else:
        cfg = config if config is not None else MachineConfig.summit(nodes=nodes)
    if domain is None:
        domain = (
            weak_scaling_domain(base, nodes) if scaling == "weak" else STRONG_DOMAIN
        )
    bpp = runner_kwargs.get("blocks_per_pe", 1)
    p = cfg.topology.total_gpus * bpp
    if bpp > 1:
        # Overdecomposition with locality: keep the PE-level grid of the
        # bpp=1 run and slice each PE's block into bpp z-slabs, so the
        # node-boundary cut is unchanged and only overlap/granularity vary.
        from repro.apps.jacobi3d.decomposition import best_grid

        px, py, pz = best_grid(cfg.topology.total_gpus, domain)
        if domain[2] % (pz * bpp) == 0:
            decomp = Decomposition(domain=domain, grid=(px, py, pz * bpp))
            runner_kwargs["mapping"] = (
                lambda i: (i % px) + px * (((i // px) % py) + py * ((i // (px * py)) // bpp))
            )
        else:
            decomp = Decomposition.create(domain, p)
    else:
        decomp = Decomposition.create(domain, p)
    collector = _RUNNERS[model](
        cfg, decomp, gpu_aware, iters=iters, warmup=warmup,
        functional=functional, session=session, **runner_kwargs,
    )
    return JacobiResult(
        model=model,
        gpu_aware=gpu_aware,
        nodes=cfg.topology.nodes,
        domain=domain,
        iter_time=collector.avg_iter_time(),
        comm_time=collector.avg_comm_time(),
    )


#: Node ladders used by ``--sweep`` (and mirrored by the baseline gate's
#: jacobi workloads): weak scaling from 4 nodes, strong from 8 (the fixed
#: 3072³ domain does not fit the GPU memory of fewer nodes).
SWEEP_WEAK_LADDER = (4, 64, 256)
SWEEP_STRONG_LADDER = (8, 64, 256)
SWEEP_MODELS = ("charm", "ampi", "charm4py")


def run_sweep(
    max_nodes: int = 256,
    models: Tuple[str, ...] = SWEEP_MODELS,
    iters: int = 2,
    warmup: int = 1,
    gpu_aware: bool = True,
) -> dict:
    """The paper-scale scaling sweep (§IV-C): every model in ``models``
    across the weak and strong node ladders up to ``max_nodes``.

    Runs with virtual payloads (timing-identical, no data movement — see
    ``MachineConfig.virtual_payload``) so the 256-node points stay cheap.
    Returns ``{(model, scaling, nodes): JacobiResult}``.
    """
    results = {}
    for model in models:
        for scaling, ladder in (("weak", SWEEP_WEAK_LADDER),
                                ("strong", SWEEP_STRONG_LADDER)):
            for nodes in ladder:
                if nodes > max_nodes:
                    continue
                cfg = MachineConfig.summit(nodes=nodes).with_virtual_payload()
                results[(model, scaling, nodes)] = run_jacobi(
                    model, nodes=nodes, scaling=scaling, gpu_aware=gpu_aware,
                    iters=iters, warmup=warmup, config=cfg,
                )
    return results


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description="Jacobi3D proxy app (simulated)")
    parser.add_argument("model", nargs="?", choices=sorted(_RUNNERS),
                        help="model to run (omit with --sweep to run "
                             "charm, ampi and charm4py)")
    parser.add_argument("--nodes", type=int, default=1)
    parser.add_argument("--sweep", action="store_true",
                        help="run the paper-scale weak+strong scaling sweep "
                             "up to --nodes for charm/ampi/charm4py (or just "
                             "the named model) and print a table")
    parser.add_argument("--scaling", choices=["weak", "strong"], default="weak")
    parser.add_argument("--host-staging", action="store_true")
    parser.add_argument("--iters", type=int, default=4)
    parser.add_argument("--trace-out", metavar="PATH", default=None,
                        help="write a Chrome-trace timeline of the run "
                             "(open in ui.perfetto.dev)")
    parser.add_argument("--flight-out", metavar="PATH", default=None,
                        help="write the flight-recorder JSON (per-message "
                             "halo-exchange lifecycles + aggregate)")
    parser.add_argument("--blame", action="store_true",
                        help="print the critical-path layer-blame report "
                             "and delayed-posting summary")
    parser.add_argument("--fault-plan", metavar="PLAN", default=None,
                        help="deterministic fault plan: inline JSON (starts "
                             "with '{') or a JSON file path; see "
                             "repro.faults.FaultPlan")
    parser.add_argument("--timeline-out", metavar="PATH", default=None,
                        help="write the resource-telemetry timeline JSON "
                             "(inspect with python -m repro.bench.timeline "
                             "summary)")
    parser.add_argument("--congestion", action="store_true",
                        help="print the congestion-attribution report "
                             "(top contended links, endpoint thrash)")
    args = parser.parse_args(argv)

    if args.sweep:
        models = (args.model,) if args.model else SWEEP_MODELS
        print(f"# Jacobi3D scaling sweep up to {args.nodes} nodes "
              f"(models: {', '.join(models)}; virtual payloads)")
        print(f"{'model':9s} {'scaling':7s} {'nodes':>5s} "
              f"{'iter_ms':>9s} {'comm_ms':>9s}")
        for (model, scaling, nodes), r in run_sweep(
            max_nodes=args.nodes, models=models, iters=args.iters,
            gpu_aware=not args.host_staging,
        ).items():
            print(f"{model:9s} {scaling:7s} {nodes:5d} "
                  f"{r.iter_time * 1e3:9.3f} {r.comm_time * 1e3:9.3f}")
        return

    if args.model is None:
        parser.error("model is required unless --sweep is given")

    fault_plan = None
    cfg = MachineConfig.summit(nodes=args.nodes)
    if args.fault_plan:
        from repro.faults import FaultPlan

        fault_plan = FaultPlan.load(args.fault_plan)
        cfg = cfg.with_faults(fault_plan)

    sess = None
    want_telemetry = args.timeline_out or args.congestion
    if (args.trace_out or args.flight_out or args.blame
            or fault_plan is not None or want_telemetry):
        import repro.api as api

        if args.trace_out or args.flight_out or args.blame:
            cfg = cfg.with_trace(True).with_flight(True)
        if want_telemetry:
            cfg = cfg.with_telemetry(True)
        sess = api.session(cfg).model(args.model).build()
    result = run_jacobi(
        args.model, nodes=args.nodes, scaling=args.scaling,
        gpu_aware=not args.host_staging, iters=args.iters,
        config=cfg, session=sess,
    )
    variant = "H" if args.host_staging else "D"
    print(f"# Jacobi3D {args.model}-{variant}, {args.nodes} nodes, "
          f"{args.scaling} scaling, domain {result.domain}")
    print(f"overall time per iteration: {result.iter_time * 1e3:9.3f} ms")
    print(f"comm    time per iteration: {result.comm_time * 1e3:9.3f} ms")
    if args.trace_out:
        path = sess.export_chrome_trace(args.trace_out)
        print(f"# trace written to {path}")
    if args.flight_out:
        import json

        doc = {
            "records": [r.to_dict() for r in sess.flight_records()],
            "aggregate": sess.flight_summary(),
        }
        with open(args.flight_out, "w") as f:
            json.dump(doc, f, indent=2)
        print(f"# flight records written to {args.flight_out}")
    if args.blame:
        agg = sess.flight_summary()
        print("# layer blame")
        print(sess.critical_path().format())
        for proto in ("rndv", "eager"):
            p = agg["by_protocol"][proto]
            print(f"# {proto}: n={p['n']}, delayed-posting "
                  f"{p['delayed_posting_seconds'] * 1e6:.2f} us total "
                  f"(max {p['max_delayed_posting_seconds'] * 1e6:.2f} us)")
    if args.timeline_out:
        path = sess.export_timeline(args.timeline_out)
        print(f"# telemetry timeline written to {path}")
    if args.congestion:
        print(sess.congestion_report().format())
    if fault_plan is not None:
        counters = sess.metrics_snapshot()["counters"]
        faults = {k: v for k, v in sorted(counters.items())
                  if k.startswith("fault.")}
        print("# fault counters: "
              + (", ".join(f"{k}={v}" for k, v in faults.items()) or "none"))


if __name__ == "__main__":
    main()
