"""Cuboid domain decomposition minimising communication surface.

The domain (nx, ny, nz) is split across P blocks arranged in a (px, py, pz)
process grid with ``px*py*pz == P``, chosen to minimise the total halo
surface per block — the paper's "decomposed into equal-size cuboid blocks,
minimizing surface area".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

DIRS = ("-x", "+x", "-y", "+y", "-z", "+z")

_OPPOSITE = {"-x": "+x", "+x": "-x", "-y": "+y", "+y": "-y", "-z": "+z", "+z": "-z"}


def opposite(direction: str) -> str:
    return _OPPOSITE[direction]


def _factor_triples(p: int) -> Iterator[Tuple[int, int, int]]:
    for px in range(1, p + 1):
        if p % px:
            continue
        rest = p // px
        for py in range(1, rest + 1):
            if rest % py:
                continue
            yield px, py, rest // py


def best_grid(p: int, domain: Tuple[int, int, int]) -> Tuple[int, int, int]:
    """Process grid dividing ``domain`` exactly, minimising block surface."""
    nx, ny, nz = domain
    best: Optional[Tuple[int, int, int]] = None
    best_surface = float("inf")
    for px, py, pz in _factor_triples(p):
        if nx % px or ny % py or nz % pz:
            continue
        bx, by, bz = nx // px, ny // py, nz // pz
        surface = 2 * (bx * by + by * bz + bx * bz)
        if surface < best_surface:
            best_surface = surface
            best = (px, py, pz)
    if best is None:
        raise ValueError(f"no process grid of {p} blocks divides domain {domain}")
    return best


def weak_scaling_domain(base: int, nodes: int) -> Tuple[int, int, int]:
    """The paper's weak-scaling rule: base³ doubled "in x, y, z order" as the
    node count doubles (nodes must be a power of two)."""
    if nodes < 1 or nodes & (nodes - 1):
        raise ValueError("weak scaling is defined for power-of-two node counts")
    dims = [base, base, base]
    k = nodes.bit_length() - 1  # number of doublings
    for i in range(k):
        dims[i % 3] *= 2
    return tuple(dims)  # type: ignore[return-value]


@dataclass(frozen=True)
class Decomposition:
    """Block layout of one Jacobi3D run."""

    domain: Tuple[int, int, int]
    grid: Tuple[int, int, int]
    dtype_bytes: int = 8  # doubles

    @classmethod
    def create(cls, domain: Tuple[int, int, int], p: int) -> "Decomposition":
        return cls(domain=domain, grid=best_grid(p, domain))

    @property
    def n_blocks(self) -> int:
        px, py, pz = self.grid
        return px * py * pz

    @property
    def block(self) -> Tuple[int, int, int]:
        return (
            self.domain[0] // self.grid[0],
            self.domain[1] // self.grid[1],
            self.domain[2] // self.grid[2],
        )

    @property
    def cells_per_block(self) -> int:
        bx, by, bz = self.block
        return bx * by * bz

    def coords(self, rank: int) -> Tuple[int, int, int]:
        px, py, pz = self.grid
        if not 0 <= rank < self.n_blocks:
            raise ValueError(f"rank {rank} out of range")
        return rank % px, (rank // px) % py, rank // (px * py)

    def rank_of(self, x: int, y: int, z: int) -> int:
        px, py, _pz = self.grid
        return x + px * (y + py * z)

    def neighbor(self, rank: int, direction: str) -> Optional[int]:
        """Neighbouring block in ``direction``, or None at a domain face."""
        x, y, z = self.coords(rank)
        px, py, pz = self.grid
        step = {"-x": (-1, 0, 0), "+x": (1, 0, 0), "-y": (0, -1, 0),
                "+y": (0, 1, 0), "-z": (0, 0, -1), "+z": (0, 0, 1)}[direction]
        nx_, ny_, nz_ = x + step[0], y + step[1], z + step[2]
        if not (0 <= nx_ < px and 0 <= ny_ < py and 0 <= nz_ < pz):
            return None
        return self.rank_of(nx_, ny_, nz_)

    def neighbors(self, rank: int) -> List[Tuple[str, int]]:
        out = []
        for d in DIRS:
            n = self.neighbor(rank, d)
            if n is not None:
                out.append((d, n))
        return out

    def face_bytes(self, direction: str) -> int:
        bx, by, bz = self.block
        cells = {"x": by * bz, "y": bx * bz, "z": bx * by}[direction[1]]
        return cells * self.dtype_bytes

    def halo_bytes(self, rank: int) -> int:
        """Total bytes this block sends per iteration."""
        return sum(self.face_bytes(d) for d, _ in self.neighbors(rank))
