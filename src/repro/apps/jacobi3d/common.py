"""Shared per-block state and result collection for the Jacobi3D variants."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.apps.jacobi3d.decomposition import Decomposition
from repro.apps.jacobi3d.kernels import pack_kernel, stencil_kernel, unpack_kernel
from repro.hardware.cuda import CudaRuntime
from repro.hardware.memory import Buffer
from repro.sim.primitives import SimEvent


def initial_field(decomp: Decomposition) -> np.ndarray:
    """Deterministic nonzero initial condition over the global domain —
    a smooth product of sines, so functional tests exercise real halo data."""
    nx, ny, nz = decomp.domain
    x = np.sin(2.0 * np.pi * np.arange(nx) / nx)
    y = np.cos(2.0 * np.pi * np.arange(ny) / ny)
    z = np.sin(4.0 * np.pi * np.arange(nz) / nz) + 1.5
    return x[:, None, None] * y[None, :, None] * z[None, None, :]


def initial_block(decomp: Decomposition, rank: int) -> np.ndarray:
    """This block's slice of :func:`initial_field`."""
    bx, by, bz = decomp.block
    x, y, z = decomp.coords(rank)
    return initial_field(decomp)[
        x * bx:(x + 1) * bx, y * by:(y + 1) * by, z * bz:(z + 1) * bz
    ]


class BlockState:
    """Device/host buffers and kernels of one Jacobi block.

    ``functional=True`` materialises real NumPy arrays (small grids only):
    the ghosted field ``u``/``u_new``, per-face send buffers and ghost
    buffers, so tests can verify the distributed sweep bit-for-bit.  At
    paper scale everything is virtual (size-only) and only the cost model
    runs.  Send and ghost buffers are double-buffered by iteration parity
    so a fast neighbour's next-iteration halo never clobbers in-flight data.
    """

    def __init__(
        self,
        cuda: CudaRuntime,
        gpu: int,
        decomp: Decomposition,
        rank: int,
        functional: bool = False,
    ) -> None:
        self.cuda = cuda
        self.gpu = gpu
        self.decomp = decomp
        self.rank = rank
        self.functional = functional
        self.node = cuda.machine.node_of_gpu(gpu)
        self.stream = cuda.create_stream(gpu)
        self.neighbors = decomp.neighbors(rank)
        bx, by, bz = decomp.block
        cells = decomp.cells_per_block

        if functional:
            self.u: Optional[np.ndarray] = np.zeros((bx + 2, by + 2, bz + 2))
            x0, y0, z0 = decomp.coords(rank)
            self.u[1:-1, 1:-1, 1:-1] = initial_block(decomp, rank)
            self.u_new: Optional[np.ndarray] = self.u.copy()
        else:
            self.u = self.u_new = None
        # interior field on the device (cost/capacity accounting)
        self.d_field = cuda.malloc(gpu, 2 * cells * decomp.dtype_bytes, materialize=False)

        self.d_send: Dict[str, List[Buffer]] = {}
        self.d_ghost: Dict[str, List[Buffer]] = {}
        self.h_send: Dict[str, Buffer] = {}
        self.h_recv: Dict[str, Buffer] = {}
        for d, _nbr in self.neighbors:
            fb = decomp.face_bytes(d)
            self.d_send[d] = [cuda.malloc(gpu, fb, materialize=functional) for _ in range(2)]
            self.d_ghost[d] = [cuda.malloc(gpu, fb, materialize=functional) for _ in range(2)]
            self.h_send[d] = cuda.malloc_host(self.node, fb, materialize=functional)
            self.h_recv[d] = cuda.malloc_host(self.node, fb, materialize=functional)

    # -- helpers -------------------------------------------------------------
    def _arr(self, buf: Buffer) -> Optional[np.ndarray]:
        return buf.data.view(np.float64) if (self.functional and buf.data is not None) else None

    def face_bytes(self, d: str) -> int:
        return self.decomp.face_bytes(d)

    # -- phases (each returns a stream-synchronised completion event) ------------
    def pack(self, parity: int) -> SimEvent:
        """Pack every outgoing face into its send buffer."""
        for d, _ in self.neighbors:
            buf = self.d_send[d][parity]
            k = pack_kernel(d, self.face_bytes(d), self.u, self._arr(buf))
            self.cuda.launch(self.gpu, k, self.stream)
        return self.cuda.stream_synchronize(self.stream)

    def unpack(self, parity: int) -> SimEvent:
        for d, _ in self.neighbors:
            buf = self.d_ghost[d][parity]
            k = unpack_kernel(d, self.face_bytes(d), self.u, self._arr(buf))
            self.cuda.launch(self.gpu, k, self.stream)
        return self.cuda.stream_synchronize(self.stream)

    def compute(self) -> SimEvent:
        k = stencil_kernel(self.decomp.cells_per_block, self.u, self.u_new)
        self.cuda.launch(self.gpu, k, self.stream)
        return self.cuda.stream_synchronize(self.stream)

    def residual(self) -> SimEvent:
        """Launch the residual kernel (max |u_new - u| over the interior);
        the completion event's local result is read via :attr:`last_residual`.
        Functional mode computes the real value; virtual mode costs only."""
        from repro.hardware.gpu import Kernel

        self.last_residual = 0.0

        def body() -> None:
            if self.u is not None and self.u_new is not None:
                diff = np.abs(
                    self.u_new[1:-1, 1:-1, 1:-1] - self.u[1:-1, 1:-1, 1:-1]
                )
                self.last_residual = float(diff.max())

        k = Kernel(
            "residual",
            bytes_moved=2 * self.decomp.cells_per_block * self.decomp.dtype_bytes,
            body=body if self.functional else None,
        )
        if not self.functional:
            # at paper scale there is no data; keep a deterministic proxy
            self.last_residual = 1.0
        self.cuda.launch(self.gpu, k, self.stream)
        return self.cuda.stream_synchronize(self.stream)

    def swap(self) -> None:
        if self.functional:
            self.u, self.u_new = self.u_new, self.u

    # -- host staging (the -H variants) ----------------------------------------
    def stage_out(self, parity: int) -> SimEvent:
        """DtoH-copy every packed face into host staging buffers."""
        for d, _ in self.neighbors:
            self.cuda.memcpy_dtoh(
                self.h_send[d], self.d_send[d][parity], self.stream, self.face_bytes(d)
            )
        return self.cuda.stream_synchronize(self.stream)

    def stage_in(self, d: str, parity: int) -> SimEvent:
        """HtoD-copy one received face from host staging to the ghost buffer."""
        self.cuda.memcpy_htod(
            self.d_ghost[d][parity], self.h_recv[d], self.stream, self.face_bytes(d)
        )
        return self.cuda.stream_synchronize(self.stream)


@dataclass
class BlockTimings:
    iter_times: List[float] = field(default_factory=list)
    comm_times: List[float] = field(default_factory=list)


class ResultCollector:
    """Gathers per-block timings (and final fields in functional mode)."""

    def __init__(self, sim, n_blocks: int, warmup: int) -> None:
        self.n_blocks = n_blocks
        self.warmup = warmup
        self.timings: Dict[int, BlockTimings] = {}
        self.fields: Dict[int, np.ndarray] = {}
        self.done = SimEvent(sim, name="jacobi.done")

    def report(self, rank: int, timings: BlockTimings,
               field_arr: Optional[np.ndarray] = None) -> None:
        if rank in self.timings:
            raise RuntimeError(f"block {rank} reported twice")
        self.timings[rank] = timings
        if field_arr is not None:
            self.fields[rank] = field_arr
        if len(self.timings) == self.n_blocks:
            self.done.succeed(None)

    # -- aggregation ------------------------------------------------------------
    def _per_iteration_max(self, attr: str) -> List[float]:
        counts = {len(getattr(t, attr)) for t in self.timings.values()}
        if len(counts) != 1:
            raise RuntimeError("blocks measured different iteration counts")
        n = counts.pop()
        return [
            max(getattr(t, attr)[i] for t in self.timings.values())
            for i in range(self.warmup, n)
        ]

    def avg_iter_time(self) -> float:
        times = self._per_iteration_max("iter_times")
        return sum(times) / len(times)

    def avg_comm_time(self) -> float:
        times = self._per_iteration_max("comm_times")
        return sum(times) / len(times)

    def assemble(self, decomp: Decomposition) -> np.ndarray:
        """Stitch the interior of every block's field into the global array
        (functional mode only)."""
        nx, ny, nz = decomp.domain
        out = np.zeros((nx, ny, nz))
        bx, by, bz = decomp.block
        for rank, u in self.fields.items():
            x, y, z = decomp.coords(rank)
            out[x * bx:(x + 1) * bx, y * by:(y + 1) * by, z * bz:(z + 1) * bz] = (
                u[1:-1, 1:-1, 1:-1]
            )
        return out


def halo_tag(direction_index: int, iteration: int) -> int:
    """MPI tag encoding (direction, iteration) for the halo exchange."""
    return 700 + direction_index * 64 + (iteration % 64)
