"""Jacobi3D: the paper's proxy application (§IV-C).

The Jacobi iterative method on a 3-D domain of doubles, decomposed into
equal-size cuboid blocks (minimising surface area), one block per PE/GPU.
Each block exchanges up to six halo faces with its neighbours per
iteration — either directly from GPU buffers (``-D``) or staged through
host memory (``-H``) — then runs the stencil kernel on the GPU.  Weak
scaling starts from a 1536³ base domain, doubling x, y, z in turn; strong
scaling fixes 3072³.  No convergence checks by default: the paper isolates
point-to-point communication performance, and so do we — but a reduction-
based residual check is implemented as an extension (``check_interval`` /
``tolerance`` on the Charm++ runner).

Implemented for all four models; AMPI and OpenMPI share one program.
"""

from repro.apps.jacobi3d.decomposition import Decomposition, weak_scaling_domain
from repro.apps.jacobi3d.driver import run_jacobi
from repro.apps.jacobi3d.kernels import (
    jacobi_reference_step,
    pack_kernel,
    stencil_kernel,
    unpack_kernel,
)

__all__ = [
    "Decomposition",
    "jacobi_reference_step",
    "pack_kernel",
    "run_jacobi",
    "stencil_kernel",
    "unpack_kernel",
    "weak_scaling_domain",
]
