"""Charm++ Jacobi3D (paper §IV-C1).

One chare per PE/GPU (no overdecomposition by default, matching §IV-A;
pass ``blocks_per_pe > 1`` through the driver for the overlap ablation of
the paper's future work).  The main loop is a ``[threaded]`` entry method;
halos arrive through ``halo``/``halo_h`` entry methods — GPU-aware with
``CkDeviceBuffer`` + post entry methods, or host-staged with explicit
``cudaMemcpy``.
"""

from __future__ import annotations

from typing import Dict, Tuple

import repro.api as api
from repro.apps.jacobi3d.common import BlockState, BlockTimings, ResultCollector
from repro.apps.jacobi3d.decomposition import Decomposition, opposite
from repro.charm import Chare, CkDeviceBuffer
from repro.sim.primitives import SimEvent


class JacobiBlock(Chare):
    def __init__(self, decomp: Decomposition, gpu_aware: bool, iters: int,
                 warmup: int, functional: bool, collector: ResultCollector,
                 check_interval: int = 0, tolerance: float = 0.0):
        self.decomp = decomp
        self.gpu_aware = gpu_aware
        self.iters = iters
        self.warmup = warmup
        self.collector = collector
        # convergence checking (extension; the paper runs a fixed iteration
        # count "without convergence checks" to isolate communication)
        self.check_interval = check_interval
        self.tolerance = tolerance
        self.state = BlockState(
            self.charm.cuda, self.gpu, decomp, self.thisIndex, functional
        )
        self.timings = BlockTimings()
        self._halo_counts: Dict[int, int] = {}
        self._halo_waiter: Tuple[int, int, SimEvent] | None = None
        self._residual_event: SimEvent | None = None

    # -- halo arrival accounting ---------------------------------------------
    def _arrived(self, it: int) -> None:
        self._halo_counts[it] = self._halo_counts.get(it, 0) + 1
        if self._halo_waiter is not None:
            wit, needed, ev = self._halo_waiter
            if wit == it and self._halo_counts[it] == needed:
                self._halo_waiter = None
                ev.succeed(None)

    def _wait_halos(self, it: int, needed: int) -> SimEvent:
        ev = SimEvent(self.charm.sim, name=f"halos.it{it}")
        if self._halo_counts.get(it, 0) == needed:
            ev.succeed(None)
        else:
            self._halo_waiter = (it, needed, ev)
        return ev

    # -- main loop ([threaded]) ---------------------------------------------------
    def start(self, peers):
        st = self.state
        self._peers_proxy = peers
        nbrs = st.neighbors
        for it in range(self.warmup + self.iters):
            t0 = self.charm.time
            parity = it % 2
            yield st.pack(parity)
            tc0 = self.charm.time
            if self.gpu_aware:
                for d, nbr in nbrs:
                    peers[nbr].halo(
                        CkDeviceBuffer.wrap(st.d_send[d][parity]),
                        opposite(d), it, parity, st.face_bytes(d),
                    )
            else:
                yield st.stage_out(parity)
                for d, nbr in nbrs:
                    peers[nbr].halo_h(st.h_send[d], opposite(d), it, parity)
            yield self._wait_halos(it, len(nbrs))
            self._halo_counts.pop(it, None)
            tcomm = self.charm.time - tc0
            yield st.unpack(parity)
            yield st.compute()
            if self.check_interval and (it + 1) % self.check_interval == 0:
                # global max-residual: tree reduction to element 0, which
                # broadcasts the verdict back (the extension the paper's
                # fixed-iteration runs deliberately omit)
                yield st.residual()
                self._residual_event = SimEvent(self.charm.sim, name="residual")
                from repro.charm import CkCallback

                self.charm.reductions.contribute(
                    self, st.last_residual, "max",
                    CkCallback(proxy=peers[0], method="residual_done"),
                )
                global_residual = yield self._residual_event
                st.swap()
                self.timings.iter_times.append(self.charm.time - t0)
                self.timings.comm_times.append(tcomm)
                if global_residual < self.tolerance:
                    break
                continue
            st.swap()
            self.timings.iter_times.append(self.charm.time - t0)
            self.timings.comm_times.append(tcomm)
        self.collector.report(self.thisIndex, self.timings, st.u)

    # -- convergence plumbing ------------------------------------------------
    def residual_done(self, value):
        """Runs on element 0: broadcast the global residual to all blocks."""
        self._peers_proxy.release(value)

    def release(self, value):
        ev, self._residual_event = self._residual_event, None
        if ev is not None:
            ev.succeed(value)

    # -- GPU-aware halo reception -----------------------------------------------
    def halo_post(self, posts, direction, it, parity, nbytes):
        posts[0].buffer = self.state.d_ghost[direction][parity]

    def halo(self, data, direction, it, parity, nbytes):
        self._arrived(it)

    # -- host-staged halo reception ([threaded]: blocks on the HtoD copy) --------
    def halo_h(self, host_data, direction, it, parity):
        st = self.state
        st.h_recv[direction].copy_from(host_data, st.face_bytes(direction))
        yield st.stage_in(direction, parity)
        self._arrived(it)


def run_charm_jacobi(
    config,
    decomp: Decomposition,
    gpu_aware: bool,
    iters: int = 5,
    warmup: int = 1,
    functional: bool = False,
    blocks_per_pe: int = 1,
    mapping=None,
    check_interval: int = 0,
    tolerance: float = 0.0,
    session=None,
) -> ResultCollector:
    sess = session if session is not None else api.session(config).model("charm").build()
    charm = sess.lib
    n = decomp.n_blocks
    if n != charm.n_pes * blocks_per_pe:
        raise ValueError(
            f"{n} blocks but {charm.n_pes} PEs x {blocks_per_pe} blocks/PE"
        )
    collector = ResultCollector(charm.sim, n, warmup)
    peers = charm.create_array(
        JacobiBlock, n, decomp, gpu_aware, iters, warmup, functional, collector,
        check_interval, tolerance,
        mapping=mapping if mapping is not None else (lambda i: i // blocks_per_pe),
    )
    for i in range(n):
        peers[i].start(peers)
    charm.run_until(collector.done, max_events=200_000_000)
    return collector
