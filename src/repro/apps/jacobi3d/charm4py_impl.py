"""Charm4py Jacobi3D (paper §IV-C3): channels between neighbouring chares.

Each block is a coroutine chare holding one channel per neighbour; the
per-iteration exchange is the paper's Fig. 8 pattern — GPU-aware sends of
device buffers, or host staging with explicit CUDA copies.
"""

from __future__ import annotations

import repro.api as api
from repro.apps.jacobi3d.common import BlockState, BlockTimings, ResultCollector
from repro.apps.jacobi3d.decomposition import Decomposition
from repro.charm4py import PyChare


class JacobiBlockPy(PyChare):
    def __init__(self, decomp: Decomposition, gpu_aware: bool, iters: int,
                 warmup: int, functional: bool, collector: ResultCollector):
        self.decomp = decomp
        self.gpu_aware = gpu_aware
        self.iters = iters
        self.warmup = warmup
        self.collector = collector
        self.state = BlockState(
            self.c4p.cuda, self.gpu, decomp, self.thisIndex, functional
        )
        self.timings = BlockTimings()

    def run(self, peers):
        st = self.state
        c4p = self.c4p
        nbrs = st.neighbors
        chans = {d: c4p.channel(self, peers[nbr]) for d, nbr in nbrs}
        for it in range(self.warmup + self.iters):
            t0 = c4p.sim.now
            parity = it % 2
            yield st.pack(parity)
            tc0 = c4p.sim.now
            if self.gpu_aware:
                for d, _nbr in nbrs:
                    yield chans[d].send(st.d_send[d][parity], st.face_bytes(d))
                for d, _nbr in nbrs:
                    yield chans[d].recv(st.d_ghost[d][parity], st.face_bytes(d))
            else:
                yield st.stage_out(parity)
                for d, _nbr in nbrs:
                    yield chans[d].send(st.h_send[d])
                for d, _nbr in nbrs:
                    h = yield chans[d].recv()
                    st.h_recv[d].copy_from(h, st.face_bytes(d))
                    yield st.stage_in(d, parity)
            tcomm = c4p.sim.now - tc0
            yield st.unpack(parity)
            yield st.compute()
            st.swap()
            self.timings.iter_times.append(c4p.sim.now - t0)
            self.timings.comm_times.append(tcomm)
        self.collector.report(self.thisIndex, self.timings, st.u)


def run_charm4py_jacobi(config, decomp: Decomposition, gpu_aware: bool,
                        iters: int = 5, warmup: int = 1,
                        functional: bool = False, session=None) -> ResultCollector:
    sess = session if session is not None else api.session(config).model("charm4py").build()
    c4p = sess.lib
    n = decomp.n_blocks
    if n != c4p.charm.n_pes:
        raise ValueError(f"{n} blocks but {c4p.charm.n_pes} PEs")
    collector = ResultCollector(c4p.sim, n, warmup)
    peers = c4p.create_array(
        JacobiBlockPy, n, decomp, gpu_aware, iters, warmup, functional, collector,
        mapping=lambda i: i,
    )
    for i in range(n):
        peers[i].run(peers)
    c4p.run_until(collector.done, max_events=200_000_000)
    return collector
