"""Dask-style all-to-all dataframe shuffle over the GPU-aware models.

The production workload the pooled-allocator / endpoint-lifecycle model
exists for ("Efficient MPI-based Communication for GPU-Accelerated Dask
Applications"): every rank repartitions its dataframe chunk to every other
rank, round after round, driving O(ranks²) communicator pairs.  With
first-touch mapping costs enabled, a pooled allocator amortises the
per-(buffer, peer) registrations to one wave; direct allocation pays them
again every round.
"""

from repro.apps.shuffle.common import ShufflePlan, ShuffleResult, chunk_bytes
from repro.apps.shuffle.driver import run_shuffle

__all__ = ["ShufflePlan", "ShuffleResult", "chunk_bytes", "run_shuffle"]
