"""AMPI / OpenMPI shuffle: one rank program shared by both models.

Per round, every rank posts one irecv per peer (per-source tags, exact
matching), allocates and isends one skewed chunk per peer, waits for the
full window, then frees every buffer.  With the pooled allocator the frees
are pool returns and the next round reuses the same blocks — same
addresses, warm registrations/mappings; with the direct allocator every
round allocates fresh buffers and (when the mapping model is on) pays the
first-touch peer mappings again.
"""

from __future__ import annotations

from repro.apps.shuffle.common import (
    ShuffleCollector,
    ShufflePlan,
    chunk_bytes,
    shuffle_tag,
)


def shuffle_mpi_program(mpi, plan: ShufflePlan, collector: ShuffleCollector):
    """Generator rank program (works for AmpiRank and OmpiRank alike)."""
    me = mpi.rank
    tracer = mpi.charm.machine.tracer
    peers = [r for r in range(plan.n_ranks) if r != me]
    moved = 0
    chunks = 0
    for rnd in range(plan.rounds):
        tracer.count("shuffle", "round_start")
        sp = tracer.span("shuffle", "round", rank=me, round=rnd) \
            if tracer.enabled else None
        reqs = []
        bufs = []
        for src in peers:
            nbytes = chunk_bytes(plan, rnd, src, me)
            rb = mpi.alloc_device(nbytes)
            bufs.append(rb)
            reqs.append(mpi.irecv(rb, nbytes, src=src,
                                  tag=shuffle_tag(rnd, src)))
        for dst in peers:
            nbytes = chunk_bytes(plan, rnd, me, dst)
            sb = mpi.alloc_device(nbytes)
            bufs.append(sb)
            reqs.append(mpi.isend(sb, nbytes, dst, tag=shuffle_tag(rnd, me)))
            tracer.count("shuffle", "chunk_sent")
            moved += nbytes
            chunks += 1
        yield mpi.waitall(reqs)
        for buf in bufs:
            mpi.free_device(buf)
        if sp is not None:
            sp.end()
        collector.report_round(rnd, mpi.sim.now)
    collector.report_rank(moved, chunks)
