"""Shuffle driver: one entry point over the three models, plus the CLI.

``run_shuffle`` runs one all-to-all shuffle and returns a
:class:`~repro.apps.shuffle.common.ShuffleResult`; the ``repro-shuffle``
console script wraps it and adds the pool-on vs pool-off ablation that
motivates the pooled allocator (same machine, same plan, only the
allocator and first-touch amortisation differ).
"""

from __future__ import annotations

import argparse
from typing import Optional

import repro.api as api
from repro.apps.shuffle.charm4py_impl import run_charm4py_shuffle
from repro.apps.shuffle.common import ShuffleCollector, ShufflePlan, ShuffleResult
from repro.apps.shuffle.mpi_impl import shuffle_mpi_program
from repro.config import KB, MachineConfig

_MODELS = ("ampi", "openmpi", "charm4py")

#: CLI ablation defaults: plausible Summit-scale first-touch charges
#: (cuIpcOpenMemHandle / ibv_reg_mr-shaped, tens of microseconds).
DEFAULT_MAPPING_COST = 20e-6
DEFAULT_EP_SETUP_COST = 10e-6


def run_shuffle(
    model: str = "ampi",
    nodes: int = 2,
    rounds: int = 3,
    chunk: int = 64 * KB,
    seed: int = 0,
    pool: Optional[bool] = None,
    mapping_cost: Optional[float] = None,
    ep_setup_cost: Optional[float] = None,
    max_endpoints: Optional[int] = None,
    config: Optional[MachineConfig] = None,
    session=None,
) -> ShuffleResult:
    """Run one shuffle and return its result.

    One rank per GPU (``nodes * gpus_per_node`` ranks, so ``n*(n-1)``
    directed pairs).  ``pool`` / ``mapping_cost`` / ``ep_setup_cost`` /
    ``max_endpoints`` override the machine config when given; pass a
    pre-built :class:`repro.api.Session` via ``session`` to run on it
    instead (its config wins, as for the other app drivers).
    """
    if model not in _MODELS:
        raise ValueError(f"unknown model {model!r}; pick from {_MODELS}")
    if session is not None:
        cfg = session.config
    else:
        cfg = config if config is not None else MachineConfig.summit(nodes=nodes)
        if pool is not None:
            cfg = cfg.with_pool(pool)
        ucx = {}
        if mapping_cost is not None:
            ucx["mapping_cost"] = mapping_cost
        if ep_setup_cost is not None:
            ucx["ep_setup_cost"] = ep_setup_cost
        if max_endpoints is not None:
            ucx["max_endpoints"] = max_endpoints
        if ucx:
            cfg = cfg.with_ucx(**ucx)
    plan = ShufflePlan(
        n_ranks=cfg.topology.total_gpus, rounds=rounds, chunk=chunk, seed=seed
    )
    if model == "charm4py":
        return run_charm4py_shuffle(cfg, plan, session=session)
    sess = session if session is not None else (
        api.session(cfg).model(model).ranks(plan.n_ranks).build()
    )
    collector = ShuffleCollector(plan, model)
    done = sess.launch(shuffle_mpi_program, plan, collector)
    sess.run_until(done, max_events=500_000_000)
    return collector.finalize(sess.now)


def _print_result(result: ShuffleResult, label: str) -> None:
    plan = result.plan
    print(f"# shuffle {result.model} [{label}]: {plan.n_ranks} ranks, "
          f"{plan.pairs} pairs, {plan.rounds} rounds, "
          f"chunk ~{plan.chunk // 1024} KB")
    print(f"  total time      : {result.total_time * 1e3:10.3f} ms")
    for rnd, t in enumerate(result.round_times):
        print(f"  round {rnd} time    : {t * 1e3:10.3f} ms")
    print(f"  bytes moved     : {result.bytes_moved}")
    print(f"  chunks moved    : {result.chunks_moved}")
    print(f"  eff. bandwidth  : {result.effective_bandwidth / 1e9:10.3f} GB/s")


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(
        description="Dask-style GPU dataframe shuffle (simulated)")
    parser.add_argument("model", nargs="?", choices=sorted(_MODELS),
                        default="ampi")
    parser.add_argument("--nodes", type=int, default=2)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--chunk", type=int, default=64 * KB,
                        help="nominal partition size in bytes (chunks vary "
                             "deterministically in [chunk/2, chunk])")
    parser.add_argument("--seed", type=int, default=0)
    pool_group = parser.add_mutually_exclusive_group()
    pool_group.add_argument("--pool", dest="pool", action="store_true",
                            default=True,
                            help="route device allocation through the slab "
                                 "pool (default)")
    pool_group.add_argument("--no-pool", dest="pool", action="store_false",
                            help="direct cudaMalloc/cudaFree per chunk")
    parser.add_argument("--mapping-cost", type=float,
                        default=DEFAULT_MAPPING_COST,
                        help="first-touch per-(buffer, peer) mapping charge "
                             "in seconds (0 disables the model)")
    parser.add_argument("--ep-setup-cost", type=float,
                        default=DEFAULT_EP_SETUP_COST,
                        help="lazy endpoint connection-setup charge in "
                             "seconds (0 disables)")
    parser.add_argument("--max-endpoints", type=int, default=None,
                        help="per-worker endpoint cap (LRU close beyond it)")
    parser.add_argument("--ablation", action="store_true",
                        help="run pool-on AND pool-off on the same plan and "
                             "print the amortisation gap")
    parser.add_argument("--trace-out", metavar="PATH", default=None,
                        help="write a Chrome-trace timeline of the run")
    parser.add_argument("--flight-out", metavar="PATH", default=None,
                        help="write the flight-recorder JSON")
    parser.add_argument("--timeline-out", metavar="PATH", default=None,
                        help="write the resource-telemetry timeline JSON "
                             "(inspect with python -m repro.bench.timeline "
                             "summary)")
    parser.add_argument("--congestion", action="store_true",
                        help="print the congestion-attribution report "
                             "(top contended links, endpoint thrash)")
    args = parser.parse_args(argv)

    common = dict(
        model=args.model, nodes=args.nodes, rounds=args.rounds,
        chunk=args.chunk, seed=args.seed, mapping_cost=args.mapping_cost,
        ep_setup_cost=args.ep_setup_cost, max_endpoints=args.max_endpoints,
    )

    if args.ablation:
        pooled = run_shuffle(pool=True, **common)
        direct = run_shuffle(pool=False, **common)
        _print_result(pooled, "pool")
        _print_result(direct, "direct")
        if pooled.total_time > 0:
            print(f"# pool speedup: "
                  f"{direct.total_time / pooled.total_time:.2f}x "
                  f"(direct {direct.total_time * 1e3:.3f} ms vs "
                  f"pool {pooled.total_time * 1e3:.3f} ms)")
        return

    sess = None
    want_telemetry = args.timeline_out or args.congestion
    if args.trace_out or args.flight_out or want_telemetry:
        cfg = MachineConfig.summit(nodes=args.nodes)
        cfg = cfg.with_pool(args.pool).with_ucx(
            mapping_cost=args.mapping_cost,
            ep_setup_cost=args.ep_setup_cost,
            max_endpoints=args.max_endpoints,
        )
        if args.trace_out or args.flight_out:
            cfg = cfg.with_trace(True).with_flight(True)
        if want_telemetry:
            cfg = cfg.with_telemetry(True)
        if args.model == "charm4py":
            sess = api.session(cfg).model("charm4py").build()
        else:
            sess = (api.session(cfg).model(args.model)
                    .ranks(cfg.topology.total_gpus).build())
    result = run_shuffle(pool=args.pool, session=sess, **common)
    _print_result(result, "pool" if args.pool else "direct")
    if args.trace_out:
        path = sess.export_chrome_trace(args.trace_out)
        print(f"# trace written to {path}")
    if args.flight_out:
        import json

        doc = {
            "records": [r.to_dict() for r in sess.flight_records()],
            "aggregate": sess.flight_summary(),
        }
        with open(args.flight_out, "w") as f:
            json.dump(doc, f, indent=2)
        print(f"# flight records written to {args.flight_out}")
    if args.timeline_out:
        path = sess.export_timeline(args.timeline_out)
        print(f"# telemetry timeline written to {path}")
    if args.congestion:
        print(sess.congestion_report().format())


if __name__ == "__main__":
    main()
