"""Charm4py shuffle: one coroutine chare per rank, channels to every peer.

The Python-side pattern mirrors dask-cuda workers on UCX-Py: every worker
holds a channel per peer (O(ranks²) endpoints across the job) and streams
repartitioned chunks through them.  Sends are asynchronous; receives run
sequentially on the coroutine, as Charm4py drives them.
"""

from __future__ import annotations

import repro.api as api
from repro.apps.shuffle.common import (
    ShuffleCollector,
    ShufflePlan,
    chunk_bytes,
)
from repro.charm4py import PyChare
from repro.sim.primitives import SimEvent


class ShuffleChare(PyChare):
    def __init__(self, plan: ShufflePlan, collector: ShuffleCollector,
                 done: SimEvent):
        self.plan = plan
        self.collector = collector
        self.done = done

    def run(self, peers):
        plan = self.plan
        me = self.thisIndex
        c4p = self.c4p
        tracer = c4p.charm.machine.tracer
        others = [r for r in range(plan.n_ranks) if r != me]
        chans = {r: c4p.channel(self, peers[r]) for r in others}
        moved = 0
        chunks = 0
        prev_send = []
        for rnd in range(plan.rounds):
            tracer.count("shuffle", "round_start")
            send_bufs = []
            recv_bufs = []
            for dst in others:
                nbytes = chunk_bytes(plan, rnd, me, dst)
                sb = c4p.cuda.malloc(self.gpu, nbytes)
                send_bufs.append(sb)
                yield chans[dst].send(sb, nbytes)
                tracer.count("shuffle", "chunk_sent")
                moved += nbytes
                chunks += 1
            for src in others:
                nbytes = chunk_bytes(plan, rnd, src, me)
                rb = c4p.cuda.malloc(self.gpu, nbytes)
                recv_bufs.append(rb)
                yield chans[src].recv(rb, nbytes)
            # Channel sends complete on injection, not on remote receipt, so
            # a round-``rnd`` send buffer is only provably consumed once every
            # peer has passed its round-``rnd`` receive loop — which the
            # round-``rnd+1`` receives witness.  Free one round behind; the
            # final round's send buffers live until the run ends (as the
            # output partitions of a real shuffle do).
            for buf in recv_bufs:
                c4p.cuda.free(buf)
            for buf in prev_send:
                c4p.cuda.free(buf)
            prev_send = send_bufs
            self.collector.report_round(rnd, c4p.sim.now)
        self.collector.report_rank(moved, chunks)
        self._maybe_done()

    def _maybe_done(self) -> None:
        # every rank reports exactly once; the last one completes the run
        if self.collector._reports == self.plan.n_ranks:
            self.done.succeed(None)


def run_charm4py_shuffle(config, plan: ShufflePlan, session=None):
    sess = session if session is not None else (
        api.session(config).model("charm4py").build()
    )
    c4p = sess.lib
    if plan.n_ranks > c4p.charm.n_pes:
        raise ValueError(f"{plan.n_ranks} ranks but {c4p.charm.n_pes} PEs")
    collector = ShuffleCollector(plan, "charm4py")
    done = SimEvent(c4p.sim, name="shuffle.done")
    peers = c4p.create_array(
        ShuffleChare, plan.n_ranks, plan, collector, done,
        mapping=lambda i: i,
    )
    for i in range(plan.n_ranks):
        peers[i].run(peers)
    c4p.run_until(done, max_events=500_000_000)
    return collector.finalize(c4p.sim.now)
