"""Shared shuffle-plan geometry and result aggregation.

A shuffle is ``rounds`` all-to-all exchanges over ``n_ranks`` ranks: in
each round every rank sends one device chunk to every other rank (the
repartition step of a distributed dataframe join/sort).  Chunk sizes vary
deterministically per (round, src, dst) — real partitions are skewed, and
the variation exercises several pool size classes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.config import KB

#: Tag space: one tag per (round, source) pair, well under AMPI's
#: MAX_USER_TAG (1 << 24) at any realistic rank count/round count.
_TAG_ROUND_STRIDE = 1 << 16


@dataclass(frozen=True)
class ShufflePlan:
    """Geometry of one shuffle run."""

    n_ranks: int
    rounds: int = 3
    #: nominal partition size; actual chunks vary in [chunk//2, chunk]
    chunk: int = 64 * KB
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_ranks < 2:
            raise ValueError("shuffle needs at least 2 ranks")
        if self.rounds < 1:
            raise ValueError("rounds must be >= 1")
        if self.chunk < 512:
            raise ValueError("chunk must be >= 512 bytes")

    @property
    def pairs(self) -> int:
        """Directed communicator pairs the shuffle drives."""
        return self.n_ranks * (self.n_ranks - 1)

    def total_bytes(self) -> int:
        return sum(
            chunk_bytes(self, r, s, d)
            for r in range(self.rounds)
            for s in range(self.n_ranks)
            for d in range(self.n_ranks)
            if s != d
        )


def chunk_bytes(plan: ShufflePlan, rnd: int, src: int, dst: int) -> int:
    """Deterministic skewed partition size for one (round, src, dst) cell.

    A splitmix64-style hash of the coordinates drives the size within
    [chunk//2, chunk], rounded to 256 bytes — no RNG state, so every model
    and every run agrees."""
    x = (plan.seed * 0x9E3779B97F4A7C15
         + rnd * 0xBF58476D1CE4E5B9
         + src * 0x94D049BB133111EB
         + dst * 0x2545F4914F6CDD1D) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 27
    half = plan.chunk // 2
    size = half + (x % (half + 1))
    return max(512, (size // 256) * 256)


def shuffle_tag(rnd: int, src: int) -> int:
    """MPI tag of the chunk ``src`` sends in round ``rnd`` (the receiver
    posts per-source tags, so matching is exact)."""
    return rnd * _TAG_ROUND_STRIDE + src


@dataclass
class ShuffleResult:
    """What one shuffle run measured."""

    plan: ShufflePlan
    model: str
    total_time: float = 0.0
    round_times: List[float] = field(default_factory=list)
    bytes_moved: int = 0
    chunks_moved: int = 0

    @property
    def effective_bandwidth(self) -> float:
        """Aggregate shuffle throughput (bytes/s of simulated time)."""
        return self.bytes_moved / self.total_time if self.total_time else 0.0


class ShuffleCollector:
    """Accumulates per-rank reports into one :class:`ShuffleResult`."""

    def __init__(self, plan: ShufflePlan, model: str) -> None:
        self.result = ShuffleResult(plan=plan, model=model)
        self._round_done: Dict[int, float] = {}
        self._reports = 0

    def report_round(self, rnd: int, end_time: float) -> None:
        # the round ends when its last rank finishes
        prev = self._round_done.get(rnd, 0.0)
        self._round_done[rnd] = max(prev, end_time)

    def report_rank(self, bytes_moved: int, chunks: int) -> None:
        self.result.bytes_moved += bytes_moved
        self.result.chunks_moved += chunks
        self._reports += 1

    def finalize(self, total_time: float) -> ShuffleResult:
        self.result.total_time = total_time
        start = 0.0
        for rnd in sorted(self._round_done):
            end = self._round_done[rnd]
            self.result.round_times.append(end - start)
            start = end
        return self.result
