"""OSU bandwidth benchmark for all four models (paper Figs. 12-13).

Windowed streaming: the sender issues ``window`` back-to-back non-blocking
sends of a given size, then waits for a small acknowledgement from the
receiver; repeated over several loops.  Bandwidth = bytes moved / elapsed.
The ``-H`` variant pays a ``cudaMemcpy``+sync per message on each side.
"""

from __future__ import annotations

from typing import Optional, Tuple

import repro.api as api
from repro.charm import Chare, CkDeviceBuffer
from repro.charm4py import PyChare
from repro.config import MachineConfig
from repro.sim.primitives import SimEvent

WINDOW = 64


class _CharmBwSender(Chare):
    def __init__(self, size, gpu_aware, loops, skip, window, done):
        self.size = size
        self.gpu_aware = gpu_aware
        self.loops = loops
        self.skip = skip
        self.window = window
        self.done = done
        cuda = self.charm.cuda
        self.stream = cuda.create_stream(self.gpu)
        self.d_send = cuda.malloc(self.gpu, size)
        node = self.charm.pe_object(self.pe).node
        self.h_out = cuda.malloc_host(node, size)
        self._ack = None

    def start(self, receiver):
        cuda = self.charm.cuda
        t0 = 0.0
        for loop in range(self.loops + self.skip):
            if loop == self.skip:
                t0 = self.charm.time
            self._ack = SimEvent(self.charm.sim, name="bw.ack")
            for _ in range(self.window):
                if self.gpu_aware:
                    receiver.sink(
                        CkDeviceBuffer.wrap(self.d_send, size=self.size), self.thisProxy
                    )
                else:
                    cuda.memcpy_dtoh(self.h_out, self.d_send, self.stream, self.size)
                    yield cuda.stream_synchronize(self.stream)
                    receiver.sink_h(self.h_out, self.thisProxy)
            yield self._ack
        elapsed = self.charm.time - t0
        self.done.succeed(self.loops * self.window * self.size / elapsed)

    def ack(self):
        self._ack.succeed(None)


class _CharmBwReceiver(Chare):
    def __init__(self, size, window):
        self.size = size
        self.window = window
        cuda = self.charm.cuda
        self.stream = cuda.create_stream(self.gpu)
        self.d_recv = cuda.malloc(self.gpu, size)
        node = self.charm.pe_object(self.pe).node
        self.h_in = cuda.malloc_host(node, size)
        self.count = 0

    def _arrived(self, sender):
        self.count += 1
        if self.count == self.window:
            self.count = 0
            sender.ack()

    def sink_post(self, posts, sender):
        posts[0].buffer = self.d_recv

    def sink(self, data, sender):
        self._arrived(sender)

    def sink_h(self, host_data, sender):
        cuda = self.charm.cuda
        self.h_in.copy_from(host_data, self.size)
        cuda.memcpy_htod(self.d_recv, self.h_in, self.stream, self.size)
        yield cuda.stream_synchronize(self.stream)
        self._arrived(sender)


def charm_bandwidth(
    config: MachineConfig, size: int, gpus: Tuple[int, int], gpu_aware: bool,
    loops: int, skip: int, window: int = WINDOW,
    session: Optional[api.Session] = None,
) -> float:
    sess = session if session is not None else api.session(config).model("charm").build()
    charm = sess.lib
    done = SimEvent(charm.sim, name="bw.done")
    ga, gb = gpus
    sender = charm.create_chare(_CharmBwSender, ga, size, gpu_aware, loops, skip, window, done)
    receiver = charm.create_chare(_CharmBwReceiver, gb, size, window)
    sender.start(receiver)
    return charm.run_until(done, max_events=20_000_000)


# ---------------------------------------------------------------------------
# MPI (shared program for AMPI and OpenMPI)
# ---------------------------------------------------------------------------

def _mpi_bw_program(mpi, peers, size, gpu_aware, loops, skip, window, out):
    if mpi.rank not in peers:
        return
    me = peers.index(mpi.rank)
    other = peers[1 - me]
    cuda = mpi.charm.cuda
    d_buf = cuda.malloc(mpi.gpu, size)
    stream = cuda.create_stream(mpi.gpu)
    node = mpi.node
    h_stage = cuda.malloc_host(node, size)
    ackbuf = cuda.malloc_host(node, 8)
    t0 = 0.0

    for loop in range(loops + skip):
        if me == 0 and loop == skip:
            t0 = mpi.sim.now
        if me == 0:
            if gpu_aware:
                reqs = [mpi.isend(d_buf, size, dst=other, tag=200) for _ in range(window)]
                yield mpi.waitall(reqs)
            else:
                reqs = []
                for _ in range(window):
                    cuda.memcpy_dtoh(h_stage, d_buf, stream, size)
                    yield cuda.stream_synchronize(stream)
                    reqs.append(mpi.isend(h_stage, size, dst=other, tag=200))
                yield mpi.waitall(reqs)
            yield mpi.recv(ackbuf, 8, src=other, tag=201)
        else:
            if gpu_aware:
                reqs = [mpi.irecv(d_buf, size, src=other, tag=200) for _ in range(window)]
                yield mpi.waitall(reqs)
            else:
                reqs = [mpi.irecv(h_stage, size, src=other, tag=200) for _ in range(window)]
                yield mpi.waitall(reqs)
                for _ in range(window):
                    cuda.memcpy_htod(d_buf, h_stage, stream, size)
                cuda_done = cuda.stream_synchronize(stream)
                yield cuda_done
            yield mpi.send(ackbuf, 8, dst=other, tag=201)
    if me == 0:
        out["bw"] = loops * window * size / (mpi.sim.now - t0)


def ampi_bandwidth(config, size, gpus, gpu_aware, loops, skip, window=WINDOW, session=None) -> float:
    sess = session if session is not None else api.session(config).model("ampi").build()
    out: dict = {}
    done = sess.launch(_mpi_bw_program, list(gpus), size, gpu_aware, loops, skip, window, out)
    sess.run_until(done, max_events=20_000_000)
    return out["bw"]


def openmpi_bandwidth(config, size, gpus, gpu_aware, loops, skip, window=WINDOW, session=None) -> float:
    sess = session if session is not None else api.session(config).model("openmpi").build()
    out: dict = {}
    done = sess.launch(_mpi_bw_program, list(gpus), size, gpu_aware, loops, skip, window, out)
    sess.run_until(done, max_events=20_000_000)
    return out["bw"]


# ---------------------------------------------------------------------------
# Charm4py (channels)
# ---------------------------------------------------------------------------

class _C4pBandwidth(PyChare):
    def __init__(self, size, gpu_aware, loops, skip, window, done):
        self.size = size
        self.gpu_aware = gpu_aware
        self.loops = loops
        self.skip = skip
        self.window = window
        self.done = done
        cuda = self.c4p.cuda
        self.stream = cuda.create_stream(self.gpu)
        self.d_buf = cuda.malloc(self.gpu, size)
        node = self.charm.pe_object(self.pe).node
        self.h_stage = cuda.malloc_host(node, size)

    def run(self, partner):
        c4p = self.c4p
        cuda = c4p.cuda
        ch = c4p.channel(self, partner)
        size = self.size
        t0 = 0.0
        me = self.thisIndex
        for loop in range(self.loops + self.skip):
            if me == 0 and loop == self.skip:
                t0 = c4p.sim.now
            if me == 0:
                for _ in range(self.window):
                    if self.gpu_aware:
                        yield ch.send(self.d_buf, size)
                    else:
                        cuda.memcpy_dtoh(self.h_stage, self.d_buf, self.stream, size)
                        yield cuda.stream_synchronize(self.stream)
                        yield ch.send(self.h_stage)
                yield ch.recv()  # acknowledgement
            else:
                for _ in range(self.window):
                    if self.gpu_aware:
                        yield ch.recv(self.d_buf, size)
                    else:
                        h = yield ch.recv()
                        self.h_stage.copy_from(h, size)
                        cuda.memcpy_htod(self.d_buf, self.h_stage, self.stream, size)
                        yield cuda.stream_synchronize(self.stream)
                yield ch.send(b"ack")
        if me == 0:
            self.done.succeed(self.loops * self.window * size / (c4p.sim.now - t0))


def charm4py_bandwidth(config, size, gpus, gpu_aware, loops, skip, window=WINDOW, session=None) -> float:
    sess = session if session is not None else api.session(config).model("charm4py").build()
    c4p = sess.lib
    done = SimEvent(c4p.sim, name="bw.done")
    ga, gb = gpus
    arr = c4p.create_array(
        _C4pBandwidth, 2, size, gpu_aware, loops, skip, window, done,
        mapping=lambda i: (ga, gb)[i],
    )
    arr[0].run(arr[1])
    arr[1].run(arr[0])
    return c4p.run_until(done, max_events=20_000_000)
