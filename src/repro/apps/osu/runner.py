"""Sweep runner and CLI for the OSU benchmarks."""

from __future__ import annotations

import argparse
from typing import Dict, List, Optional, Sequence, Tuple

from repro.apps.osu import bandwidth as bw_mod
from repro.apps.osu import latency as lat_mod
from repro.config import KB, MachineConfig, MB

#: The OSU message-size ladder used in the paper's figures: 1 B to 4 MB.
OSU_SIZES: List[int] = [1 << i for i in range(23)]  # 1 ... 4 MiB

MODELS = ("charm", "ampi", "openmpi", "charm4py")

_LATENCY_FNS = {
    "charm": lat_mod.charm_latency,
    "ampi": lat_mod.ampi_latency,
    "openmpi": lat_mod.openmpi_latency,
    "charm4py": lat_mod.charm4py_latency,
}

_BANDWIDTH_FNS = {
    "charm": bw_mod.charm_bandwidth,
    "ampi": bw_mod.ampi_bandwidth,
    "openmpi": bw_mod.openmpi_bandwidth,
    "charm4py": bw_mod.charm4py_bandwidth,
}


def intra_node_pair(config: MachineConfig) -> Tuple[int, int]:
    """Two GPUs on the same socket of node 0 (the paper's intra-node runs)."""
    return (0, 1)


def inter_node_pair(config: MachineConfig) -> Tuple[int, int]:
    """GPU 0 of node 0 and GPU 0 of node 1."""
    return (0, config.topology.gpus_per_node)


def run_latency(
    model: str,
    size: int,
    placement: str = "intra",
    gpu_aware: bool = True,
    config: Optional[MachineConfig] = None,
    iters: int = 20,
    skip: int = 4,
    session=None,
) -> float:
    """One latency point; returns one-way latency in seconds.

    Pass a pre-built :class:`repro.api.Session` (e.g. with tracing enabled)
    to run on it instead of constructing a fresh machine."""
    if model not in _LATENCY_FNS:
        raise ValueError(f"unknown model {model!r}; pick from {MODELS}")
    cfg = session.config if session is not None else (
        config if config is not None else MachineConfig.summit(nodes=2)
    )
    gpus = intra_node_pair(cfg) if placement == "intra" else inter_node_pair(cfg)
    return _LATENCY_FNS[model](cfg, size, gpus, gpu_aware, iters, skip, session=session)


def run_bandwidth(
    model: str,
    size: int,
    placement: str = "intra",
    gpu_aware: bool = True,
    config: Optional[MachineConfig] = None,
    loops: int = 4,
    skip: int = 1,
    window: int = bw_mod.WINDOW,
    session=None,
) -> float:
    """One bandwidth point; returns bytes/second."""
    if model not in _BANDWIDTH_FNS:
        raise ValueError(f"unknown model {model!r}; pick from {MODELS}")
    cfg = session.config if session is not None else (
        config if config is not None else MachineConfig.summit(nodes=2)
    )
    gpus = intra_node_pair(cfg) if placement == "intra" else inter_node_pair(cfg)
    return _BANDWIDTH_FNS[model](cfg, size, gpus, gpu_aware, loops, skip, window, session=session)


def run_latency_sweep(
    model: str,
    placement: str = "intra",
    gpu_aware: bool = True,
    sizes: Sequence[int] = OSU_SIZES,
    config: Optional[MachineConfig] = None,
    iters: int = 20,
    skip: int = 4,
) -> Dict[int, float]:
    return {
        s: run_latency(model, s, placement, gpu_aware, config, iters, skip)
        for s in sizes
    }


def run_bandwidth_sweep(
    model: str,
    placement: str = "intra",
    gpu_aware: bool = True,
    sizes: Sequence[int] = OSU_SIZES,
    config: Optional[MachineConfig] = None,
    loops: int = 4,
    skip: int = 1,
    window: int = bw_mod.WINDOW,
) -> Dict[int, float]:
    return {
        s: run_bandwidth(model, s, placement, gpu_aware, config, loops, skip, window)
        for s in sizes
    }


def _fmt_size(size: int) -> str:
    if size >= MB:
        return f"{size // MB}M"
    if size >= KB:
        return f"{size // KB}K"
    return str(size)


def main(argv: Optional[List[str]] = None) -> None:
    parser = argparse.ArgumentParser(description="OSU micro-benchmarks (simulated)")
    parser.add_argument("benchmark", choices=["latency", "bandwidth"])
    parser.add_argument("model", choices=list(MODELS))
    parser.add_argument("--placement", choices=["intra", "inter"], default="intra")
    parser.add_argument("--host-staging", action="store_true",
                        help="run the -H variant instead of GPU-aware -D")
    parser.add_argument("--max-size", type=int, default=4 * MB)
    parser.add_argument("--trace-out", metavar="PATH", default=None,
                        help="write a Chrome-trace timeline (open in "
                             "ui.perfetto.dev) of the largest-size run")
    parser.add_argument("--flight-out", metavar="PATH", default=None,
                        help="write the flight-recorder JSON (per-message "
                             "lifecycles + aggregate) of the largest-size run")
    parser.add_argument("--blame", action="store_true",
                        help="print the critical-path layer-blame report and "
                             "delayed-posting summary of the largest-size run")
    parser.add_argument("--fault-plan", metavar="PLAN", default=None,
                        help="deterministic fault plan: inline JSON (starts "
                             "with '{') or a JSON file path; see "
                             "repro.faults.FaultPlan")
    parser.add_argument("--timeline-out", metavar="PATH", default=None,
                        help="write the resource-telemetry timeline JSON of "
                             "the largest-size run (inspect with python -m "
                             "repro.bench.timeline summary)")
    parser.add_argument("--congestion", action="store_true",
                        help="print the congestion-attribution report of the "
                             "largest-size run (top contended links, "
                             "endpoint thrash)")
    parser.add_argument("--multirail", action="store_true",
                        help="stripe large transfers across disjoint rails "
                             "with graph-batched launches (the ablation "
                             "pairs this sweep against a run without it)")
    args = parser.parse_args(argv)

    fault_plan = None
    cfg = MachineConfig.summit(nodes=2)
    if args.multirail:
        cfg = cfg.with_multirail()
    if args.fault_plan:
        from repro.faults import FaultPlan

        fault_plan = FaultPlan.load(args.fault_plan)
        cfg = cfg.with_faults(fault_plan)

    sizes = [s for s in OSU_SIZES if s <= args.max_size]
    variant = "H" if args.host_staging else "D"
    label = f"{args.model}-{variant} ({args.placement}-node)"
    if args.multirail:
        label += " +multirail"
    if args.benchmark == "latency":
        series = run_latency_sweep(
            args.model, args.placement, not args.host_staging, sizes, config=cfg
        )
        print(f"# OSU latency: {label}")
        print(f"{'size':>8}  {'latency (us)':>12}")
        for s, v in series.items():
            print(f"{_fmt_size(s):>8}  {v * 1e6:12.2f}")
    else:
        series = run_bandwidth_sweep(
            args.model, args.placement, not args.host_staging, sizes, config=cfg
        )
        print(f"# OSU bandwidth: {label}")
        print(f"{'size':>8}  {'bandwidth (MB/s)':>16}")
        for s, v in series.items():
            print(f"{_fmt_size(s):>8}  {v / 1e6:16.2f}")

    sess = None
    want_telemetry = args.timeline_out or args.congestion
    if (args.trace_out or args.flight_out or args.blame
            or fault_plan is not None or want_telemetry):
        import json

        import repro.api as api

        scfg = cfg
        if args.trace_out or args.flight_out or args.blame:
            scfg = scfg.with_trace(True).with_flight(True)
        if want_telemetry:
            scfg = scfg.with_telemetry(True)
        sess = api.session(scfg).model(args.model).build()
        if args.benchmark == "latency":
            run_latency(args.model, sizes[-1], args.placement,
                        not args.host_staging, session=sess)
        else:
            run_bandwidth(args.model, sizes[-1], args.placement,
                          not args.host_staging, session=sess)
        if args.trace_out:
            path = sess.export_chrome_trace(args.trace_out)
            print(f"# trace ({_fmt_size(sizes[-1])} run) written to {path}")
        if args.flight_out:
            doc = {
                "records": [r.to_dict() for r in sess.flight_records()],
                "aggregate": sess.flight_summary(),
            }
            with open(args.flight_out, "w") as f:
                json.dump(doc, f, indent=2)
            print(f"# flight records ({_fmt_size(sizes[-1])} run) "
                  f"written to {args.flight_out}")
        if args.blame:
            agg = sess.flight_summary()
            print(f"# layer blame ({_fmt_size(sizes[-1])} run)")
            print(sess.critical_path().format())
            for proto in ("rndv", "eager"):
                p = agg["by_protocol"][proto]
                print(f"# {proto}: n={p['n']}, delayed-posting "
                      f"{p['delayed_posting_seconds'] * 1e6:.2f} us total "
                      f"(max {p['max_delayed_posting_seconds'] * 1e6:.2f} us)")
        if args.timeline_out:
            path = sess.export_timeline(args.timeline_out)
            print(f"# telemetry timeline ({_fmt_size(sizes[-1])} run) "
                  f"written to {path}")
        if args.congestion:
            print(sess.congestion_report().format())
        if fault_plan is not None:
            counters = sess.metrics_snapshot()["counters"]
            faults = {k: v for k, v in sorted(counters.items())
                      if k.startswith("fault.")}
            print(f"# fault counters ({_fmt_size(sizes[-1])} run): "
                  + (", ".join(f"{k}={v}" for k, v in faults.items()) or "none"))


if __name__ == "__main__":
    main()
