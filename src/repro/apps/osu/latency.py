"""OSU latency benchmark for all four models (paper Figs. 10-11).

Ping-pong: the sender sends a message of a given size, the receiver sends
one of the same size back; one-way latency is half the averaged round-trip
after warm-up iterations.  The ``-D`` variant supplies device buffers
directly to the communication primitives; the ``-H`` variant stages them
through host memory with ``cudaMemcpy``/``cudaStreamSynchronize`` (Fig. 8's
upper branch), the cost the paper quantifies.
"""

from __future__ import annotations

from typing import Optional, Tuple

import repro.api as api
from repro.charm import Chare, CkDeviceBuffer
from repro.charm4py import PyChare
from repro.config import MachineConfig
from repro.sim.primitives import SimEvent


class _CharmLatency(Chare):
    """One side of the Charm++ ping-pong (index 0 drives and measures)."""

    def __init__(self, size: int, gpu_aware: bool, iters: int, skip: int, done: SimEvent):
        self.size = size
        self.gpu_aware = gpu_aware
        self.iters = iters
        self.skip = skip
        self.done = done
        cuda = self.charm.cuda
        self.stream = cuda.create_stream(self.gpu)
        self.d_send = cuda.malloc(self.gpu, size)
        self.d_recv = cuda.malloc(self.gpu, size)
        node = self.charm.pe_object(self.pe).node
        self.h_out = cuda.malloc_host(node, size)  # staging for sends
        self.h_in = cuda.malloc_host(node, size)  # message payload, receiver side
        self.count = 0
        self.t0 = None
        self.partner = None

    # -- driver (runs on index 0) ------------------------------------------------
    def start(self, partner):
        self.partner = partner
        if self.gpu_aware:
            self.partner.ping(CkDeviceBuffer.wrap(self.d_send, size=self.size), self.thisProxy)
        else:
            yield from self._staged_send()

    def _staged_send(self):
        cuda = self.charm.cuda
        cuda.memcpy_dtoh(self.h_out, self.d_send, self.stream, self.size)
        yield cuda.stream_synchronize(self.stream)
        self.partner.ping_h(self.h_out, self.thisProxy)

    def _advance(self):
        """Index 0 completed one round trip."""
        self.count += 1
        if self.count == self.skip:
            self.t0 = self.charm.time
        if self.count == self.skip + self.iters:
            self.done.succeed((self.charm.time - self.t0) / (2 * self.iters))
            return False
        return True

    # -- GPU-aware path -----------------------------------------------------------
    def ping_post(self, posts, sender):
        posts[0].buffer = self.d_recv

    def ping(self, data, sender):
        if self.thisIndex == 1:
            sender.ping(CkDeviceBuffer.wrap(self.d_send, size=self.size), self.thisProxy)
        elif self._advance():
            self.partner.ping(CkDeviceBuffer.wrap(self.d_send, size=self.size), self.thisProxy)

    # -- host-staging path (threaded: blocks on cudaStreamSynchronize) -------------
    def ping_h(self, host_data, sender):
        cuda = self.charm.cuda
        # message payload is on this node now; unpack straight to the GPU
        self.h_in.copy_from(host_data, self.size)
        cuda.memcpy_htod(self.d_recv, self.h_in, self.stream, self.size)
        yield cuda.stream_synchronize(self.stream)
        if self.thisIndex == 1:
            cuda.memcpy_dtoh(self.h_out, self.d_send, self.stream, self.size)
            yield cuda.stream_synchronize(self.stream)
            sender.ping_h(self.h_out, self.thisProxy)
        elif self._advance():
            yield from self._staged_send()


def charm_latency(
    config: MachineConfig, size: int, gpus: Tuple[int, int], gpu_aware: bool,
    iters: int, skip: int, session: Optional[api.Session] = None,
) -> float:
    sess = session if session is not None else api.session(config).model("charm").build()
    charm = sess.lib
    done = SimEvent(charm.sim, name="latency.done")
    ga, gb = gpus
    arr = charm.create_array(
        _CharmLatency, 2, size, gpu_aware, iters, skip, done,
        mapping=lambda i: (ga, gb)[i],
    )
    arr[0].start(arr[1])
    return charm.run_until(done, max_events=5_000_000)


# ---------------------------------------------------------------------------
# MPI (AMPI and OpenMPI share the program; the library object differs)
# ---------------------------------------------------------------------------

def _mpi_latency_program(mpi, peers, size, gpu_aware, iters, skip, out):
    if mpi.rank not in peers:
        return
    me = peers.index(mpi.rank)
    other = peers[1 - me]
    cuda = mpi.charm.cuda
    d_buf = cuda.malloc(mpi.gpu, size)
    stream = cuda.create_stream(mpi.gpu)
    node = mpi.node if hasattr(mpi, "node") else mpi.charm.machine.node_of_gpu(mpi.gpu)
    h_out = cuda.malloc_host(node, size)
    h_in = cuda.malloc_host(node, size)
    t0 = 0.0

    for i in range(iters + skip):
        if me == 0 and i == skip:
            t0 = mpi.sim.now
        if gpu_aware:
            if me == 0:
                yield mpi.send(d_buf, size, dst=other, tag=100)
                yield mpi.recv(d_buf, size, src=other, tag=101)
            else:
                yield mpi.recv(d_buf, size, src=other, tag=100)
                yield mpi.send(d_buf, size, dst=other, tag=101)
        else:
            if me == 0:
                cuda.memcpy_dtoh(h_out, d_buf, stream, size)
                yield cuda.stream_synchronize(stream)
                yield mpi.send(h_out, size, dst=other, tag=100)
                yield mpi.recv(h_in, size, src=other, tag=101)
                cuda.memcpy_htod(d_buf, h_in, stream, size)
                yield cuda.stream_synchronize(stream)
            else:
                yield mpi.recv(h_in, size, src=other, tag=100)
                cuda.memcpy_htod(d_buf, h_in, stream, size)
                yield cuda.stream_synchronize(stream)
                cuda.memcpy_dtoh(h_out, d_buf, stream, size)
                yield cuda.stream_synchronize(stream)
                yield mpi.send(h_out, size, dst=other, tag=101)
    if me == 0:
        out["latency"] = (mpi.sim.now - t0) / (2 * iters)


def ampi_latency(config, size, gpus, gpu_aware, iters, skip, session=None) -> float:
    sess = session if session is not None else api.session(config).model("ampi").build()
    out: dict = {}
    done = sess.launch(_mpi_latency_program, list(gpus), size, gpu_aware, iters, skip, out)
    sess.run_until(done, max_events=5_000_000)
    return out["latency"]


def openmpi_latency(config, size, gpus, gpu_aware, iters, skip, session=None) -> float:
    sess = session if session is not None else api.session(config).model("openmpi").build()
    out: dict = {}
    done = sess.launch(_mpi_latency_program, list(gpus), size, gpu_aware, iters, skip, out)
    sess.run_until(done, max_events=5_000_000)
    return out["latency"]


# ---------------------------------------------------------------------------
# Charm4py (channels, exactly the paper's Fig. 8 structure)
# ---------------------------------------------------------------------------

class _C4pLatency(PyChare):
    def __init__(self, size, gpu_aware, iters, skip, done):
        self.size = size
        self.gpu_aware = gpu_aware
        self.iters = iters
        self.skip = skip
        self.done = done
        cuda = self.c4p.cuda
        self.stream = cuda.create_stream(self.gpu)
        self.d_send = cuda.malloc(self.gpu, size)
        self.d_recv = cuda.malloc(self.gpu, size)
        node = self.charm.pe_object(self.pe).node
        self.h_out = cuda.malloc_host(node, size)
        self.h_in = cuda.malloc_host(node, size)

    def run(self, partner):
        c4p = self.c4p
        cuda = c4p.cuda
        ch = c4p.channel(self, partner)
        size = self.size
        t0 = 0.0
        me = self.thisIndex
        for i in range(self.iters + self.skip):
            if me == 0 and i == self.skip:
                t0 = c4p.sim.now
            if self.gpu_aware:
                # GPU-aware communication: device buffers straight to channel
                if me == 0:
                    yield ch.send(self.d_send, size)
                    yield ch.recv(self.d_recv, size)
                else:
                    yield ch.recv(self.d_recv, size)
                    yield ch.send(self.d_send, size)
            else:
                # host-staging mechanism (Fig. 8 upper branch)
                if me == 0:
                    cuda.memcpy_dtoh(self.h_out, self.d_send, self.stream, size)
                    yield cuda.stream_synchronize(self.stream)
                    yield ch.send(self.h_out)
                    h = yield ch.recv()
                    self.h_in.copy_from(h, size)
                    cuda.memcpy_htod(self.d_recv, self.h_in, self.stream, size)
                    yield cuda.stream_synchronize(self.stream)
                else:
                    h = yield ch.recv()
                    self.h_in.copy_from(h, size)
                    cuda.memcpy_htod(self.d_recv, self.h_in, self.stream, size)
                    yield cuda.stream_synchronize(self.stream)
                    cuda.memcpy_dtoh(self.h_out, self.d_send, self.stream, size)
                    yield cuda.stream_synchronize(self.stream)
                    yield ch.send(self.h_out)
        if me == 0:
            self.done.succeed((c4p.sim.now - t0) / (2 * self.iters))


def charm4py_latency(config, size, gpus, gpu_aware, iters, skip, session=None) -> float:
    sess = session if session is not None else api.session(config).model("charm4py").build()
    c4p = sess.lib
    done = SimEvent(c4p.sim, name="latency.done")
    ga, gb = gpus
    arr = c4p.create_array(
        _C4pLatency, 2, size, gpu_aware, iters, skip, done,
        mapping=lambda i: (ga, gb)[i],
    )
    arr[0].run(arr[1])
    arr[1].run(arr[0])
    return c4p.run_until(done, max_events=5_000_000)
