"""Multi-pair aggregate bandwidth (osu_mbw_mr style).

All six GPUs of node 0 stream to their partners on node 1 simultaneously —
the pattern that exercises a node's *aggregate* injection bandwidth.  On
Summit the dual-rail EDR fabric gives each socket its own HCA, so the
aggregate is ~2x the single-pair rate; this benchmark demonstrates exactly
that in the model (and collapses to ~1x when the machine is configured with
``nic_rails=1``).

Not part of the paper's evaluation — an extension exercising the hardware
substrate — but built from the same OpenMPI rank programs as the other
micro-benchmarks.
"""

from __future__ import annotations

from typing import Optional

from repro.config import MachineConfig
from repro.openmpi import OpenMpi


def _pair_program(mpi, size, loops, skip, window, out):
    gpn = mpi.lib.cfg.topology.gpus_per_node
    if mpi.rank < gpn:  # node-0 ranks send to node-1 partners
        partner = mpi.rank + gpn
        sender = True
    else:
        partner = mpi.rank - gpn
        sender = False
    cuda = mpi.charm.cuda
    buf = cuda.malloc(mpi.gpu, size, materialize=False)
    ack = cuda.malloc_host(mpi.node, 8)
    t0 = 0.0
    for loop in range(loops + skip):
        if sender and loop == skip:
            t0 = mpi.sim.now
        if sender:
            reqs = [mpi.isend(buf, size, dst=partner, tag=300) for _ in range(window)]
            yield mpi.waitall(reqs)
            yield mpi.recv(ack, 8, src=partner, tag=301)
        else:
            reqs = [mpi.irecv(buf, size, src=partner, tag=300) for _ in range(window)]
            yield mpi.waitall(reqs)
            yield mpi.send(ack, 8, dst=partner, tag=301)
    if sender:
        out[mpi.rank] = loops * window * size / (mpi.sim.now - t0)


def run_multi_pair_bandwidth(
    size: int,
    pairs: Optional[int] = None,
    config: Optional[MachineConfig] = None,
    loops: int = 3,
    skip: int = 1,
    window: int = 32,
) -> dict:
    """Run ``pairs`` concurrent inter-node streams (default: all six GPUs).

    Returns ``{"per_pair": {rank: B/s}, "aggregate": B/s}``.
    """
    cfg = config if config is not None else MachineConfig.summit(nodes=2)
    gpn = cfg.topology.gpus_per_node
    n_pairs = pairs if pairs is not None else gpn
    if not 1 <= n_pairs <= gpn:
        raise ValueError(f"pairs must be in [1, {gpn}]")
    lib = OpenMpi(cfg)
    out: dict = {}

    def program(mpi):
        if mpi.rank % gpn < n_pairs:
            yield from _pair_program(mpi, size, loops, skip, window, out)

    done = lib.launch(program)
    lib.run_until(done, max_events=50_000_000)
    return {"per_pair": out, "aggregate": sum(out.values())}
