"""OSU micro-benchmarks adapted to Charm++, AMPI, OpenMPI, and Charm4py.

The paper (§IV-B) adapts the OSU latency and bandwidth benchmarks to each
programming model and adds a *host-staging* option (suffix ``-H``) that
stages GPU buffers through host memory with explicit ``cudaMemcpy``, to
compare against the GPU-aware path (suffix ``-D``).  This package does the
same: one implementation per (benchmark, model), a sweep runner, and the
default OSU message-size ladder (1 B – 4 MB).
"""

from repro.apps.osu.runner import (
    MODELS,
    OSU_SIZES,
    intra_node_pair,
    inter_node_pair,
    run_bandwidth,
    run_bandwidth_sweep,
    run_latency,
    run_latency_sweep,
)

__all__ = [
    "MODELS",
    "OSU_SIZES",
    "intra_node_pair",
    "inter_node_pair",
    "run_bandwidth",
    "run_bandwidth_sweep",
    "run_latency",
    "run_latency_sweep",
]
