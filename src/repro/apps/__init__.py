"""Applications: the OSU micro-benchmarks and the Jacobi3D proxy app."""
