"""The previous heap-of-entries event core, kept as a golden reference.

This is the pre-slot-core :class:`repro.sim.engine.Simulator` implementation
(binary heap of ``_Entry`` dataclasses, lazy-deletion compaction), retained
verbatim so the property-style stress tests can assert that the slot-based
core fires the exact same events in the exact same order under randomized
schedule/cancel workloads.  Nothing in the runtime imports this module; it
can be deleted together with those tests once the new core has soaked.

Known (historical) wart, preserved on purpose: ``Handle.cancel`` on an
already-fired entry still counts toward ``_cancelled_count`` even though the
entry is no longer in the heap — the bookkeeping bug the slot core's
generation-checked handles fix.  The stress tests steer around it by only
comparing firing order, which the bug never affected.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


class ReferenceSimulationError(RuntimeError):
    """Raised for misuse of the reference engine."""


@dataclass(order=True)
class _Entry:
    """Heap entry; ordering is (time, seq) so ties fire FIFO."""

    time: float
    seq: int
    fn: Callable[..., Any] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)


class ReferenceHandle:
    """Cancellation handle returned by :meth:`ReferenceSimulator.schedule`."""

    __slots__ = ("_entry", "_sim")

    def __init__(self, entry: _Entry, sim: "ReferenceSimulator") -> None:
        self._entry = entry
        self._sim = sim

    def cancel(self) -> None:
        if not self._entry.cancelled:
            self._entry.cancelled = True
            self._sim._note_cancelled()

    @property
    def cancelled(self) -> bool:
        return self._entry.cancelled

    @property
    def time(self) -> float:
        return self._entry.time


class ReferenceSimulator:
    """The old binary-heap discrete-event simulator (see module docstring)."""

    #: cancelled entries tolerated in the heap before a compaction pass
    _COMPACT_MIN = 64

    def __init__(self) -> None:
        self._now: float = 0.0
        self._seq: int = 0
        self._heap: list[_Entry] = []
        self._running = False
        self._event_count = 0
        self._cancelled_count = 0

    @property
    def now(self) -> float:
        return self._now

    @property
    def event_count(self) -> int:
        return self._event_count

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> ReferenceHandle:
        if delay < 0:
            raise ReferenceSimulationError(
                f"cannot schedule into the past (delay={delay})"
            )
        entry = _Entry(self._now + delay, self._seq, fn, args)
        self._seq += 1
        heapq.heappush(self._heap, entry)
        return ReferenceHandle(entry, self)

    def schedule_at(self, when: float, fn: Callable[..., Any], *args: Any) -> ReferenceHandle:
        return self.schedule(when - self._now, fn, *args)

    def _note_cancelled(self) -> None:
        self._cancelled_count += 1
        heap = self._heap
        if (
            self._cancelled_count >= self._COMPACT_MIN
            and self._cancelled_count * 2 > len(heap)
        ):
            self._heap = [e for e in heap if not e.cancelled]
            heapq.heapify(self._heap)
            self._cancelled_count = 0

    def peek(self) -> Optional[float]:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
            if self._cancelled_count > 0:
                self._cancelled_count -= 1
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        while self._heap:
            entry = heapq.heappop(self._heap)
            if entry.cancelled:
                if self._cancelled_count > 0:
                    self._cancelled_count -= 1
                continue
            self._now = entry.time
            self._event_count += 1
            entry.fn(*entry.args)
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        *,
        max_events: Optional[int] = None,
    ) -> None:
        if self._running:
            raise ReferenceSimulationError("run is not reentrant")
        self._running = True
        executed = 0
        try:
            while True:
                nxt = self.peek()
                if nxt is None:
                    return
                if until is not None and nxt > until:
                    self._now = until
                    return
                self.step()
                executed += 1
                if max_events is not None and executed > max_events:
                    raise ReferenceSimulationError(
                        f"exceeded max_events={max_events}"
                    )
        finally:
            self._running = False
