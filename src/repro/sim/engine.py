"""Core event loop: a monotonic simulated clock over a slot-based agenda.

Determinism contract
--------------------
Events scheduled for the same simulated time fire in the order they were
scheduled (FIFO tie-break via a monotonically increasing sequence number).
Nothing in the engine consults wall-clock time or unseeded randomness, so a
simulation run is a pure function of its inputs.  Every figure in the paper
reproduction is therefore exactly repeatable.

Tie-break rule for schedule sites
---------------------------------
The FIFO tie-break applies only to events whose float times are *bit-equal*.
Float addition is not associative — ``now + a + b`` and ``now + (a + b)``
can differ in the last ulp — so two call sites that re-derive the "same"
composite delay with different grouping turn semantically-simultaneous
events into (arbitrarily) ordered ones.  The rule for layers above the
engine: a composite per-operation cost must be summed **once** (e.g. the
precomputed ``_send_post_cost``/``_rts_post_cost`` constants on
:class:`repro.ucx.worker.UcpWorker`) and every site that schedules with it
must reuse that shared sum, never re-add the parts.

Event core layout
-----------------
The agenda is a slot store plus packed integer keys:

* Each scheduled event occupies a *slot* in parallel arrays (``_fn``,
  ``_args``, ``_time``, ``_gen``) recycled through a freelist — no
  per-event entry objects on the hot path.
* The ordering key is one Python int, ``(time_bits << 96) | (seq << 32) |
  slot``, where ``time_bits`` is the big-endian IEEE-754 bit pattern of the
  event time.  For the non-negative times the engine produces, that bit
  pattern is order-isomorphic to numeric order, so a single integer
  comparison replaces a ``(time, seq)`` tuple comparison.  (``seq`` is
  assumed to stay below 2**64 — about six centuries of nanosecond-spaced
  events.)
* ``Handle.cancel`` tombstones the slot in O(1) (``_fn[slot] = None``);
  the dead key is discarded lazily when it surfaces.  Handles carry a
  generation counter so slot reuse can never rebind them: ``Handle.time``
  and ``Handle.cancelled`` stay truthful after the event fired, after the
  slot was recycled, and across double cancels.
* Large agendas engage a calendar-queue lane: keys beyond the serving
  bucket are parked in coarse time buckets and only heapified when their
  bucket comes up.  Bucket routing uses one monotone function of the event
  time, so the serve order is provably the global key order — results are
  bit-identical whether or not the lane is engaged (the engage threshold is
  a pure function of agenda size, keeping runs deterministic).
"""

from __future__ import annotations

import heapq
from struct import Struct
from typing import Any, Callable, Dict, List, Optional

_TIME_BITS = Struct(">d").pack
_FROM_BYTES = int.from_bytes
_SLOT_MASK = 0xFFFFFFFF
#: bucket indices are capped here so ``inf`` event times route finitely
_BUCKET_CAP = 1 << 62


class SimulationError(RuntimeError):
    """Raised for misuse of the engine (e.g. scheduling into the past)."""


class Handle:
    """Cancellation handle returned by :meth:`Simulator.schedule`.

    Identity-stable: the handle snapshots its event's time and tracks its
    slot *generation*, so it keeps reporting correctly after the engine
    recycles the slot (post-fire or post-cancel).  ``cancel`` after the
    event has fired is a no-op — the event ran, and ``cancelled`` stays
    ``False`` rather than misreporting it as suppressed.
    """

    __slots__ = ("_sim", "_slot", "_gen", "_time", "_cancelled")

    def __init__(self, sim: "Simulator", slot: int, gen: int, time: float) -> None:
        self._sim = sim
        self._slot = slot
        self._gen = gen
        self._time = time
        self._cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from firing; safe to call multiple times,
        and a no-op once the event has already fired."""
        if self._cancelled:
            return
        sim = self._sim
        slot = self._slot
        if sim._gen[slot] != self._gen:
            return  # the event already fired; nothing to suppress
        self._cancelled = True
        sim._fn[slot] = None
        sim._args[slot] = None
        sim._tombstones += 1

    @property
    def cancelled(self) -> bool:
        """True iff :meth:`cancel` suppressed the event before it fired."""
        return self._cancelled

    @property
    def pending(self) -> bool:
        """True while the event is still scheduled (not fired, not cancelled)."""
        return not self._cancelled and self._sim._gen[self._slot] == self._gen

    @property
    def time(self) -> float:
        """Simulated time at which the callback is (or was) due."""
        return self._time


class Simulator:
    """A discrete-event simulator with a float-valued clock (seconds).

    The simulator only executes callbacks; higher-level behaviour (processes,
    resources, queues) is layered on top in sibling modules.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "a")
    >>> _ = sim.schedule(0.5, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now
    1.5
    """

    #: agenda size at which the calendar lane engages / folds back
    _CALENDAR_ENGAGE = 8192
    _CALENDAR_DISENGAGE = 2048
    #: target live keys per calendar bucket when choosing the bucket width
    _CALENDAR_PER_BUCKET = 8.0

    def __init__(self) -> None:
        self._now: float = 0.0
        self._seq: int = 0
        self._event_count = 0
        self._running = False
        # observation hooks (repro.obs): fault injector and telemetry attach
        # themselves here; both are read-only with respect to the agenda
        self.telemetry = None
        self._probe: Optional[Callable[[], None]] = None
        self._probe_mask = 255
        # slot store (parallel arrays + freelist)
        self._fn: List[Optional[Callable[..., Any]]] = []
        self._args: List[Any] = []
        self._time: List[float] = []
        self._gen: List[int] = []
        self._free: List[int] = []
        self._tombstones = 0  # cancelled keys not yet reaped
        # serving heap of packed keys + total keys across all structures
        self._cur: List[int] = []
        self._agenda = 0
        # calendar lane state (engaged only for large agendas)
        self._engaged = False
        self._engage_at = self._CALENDAR_ENGAGE
        self._base = 0.0
        self._width = 0.0
        self._bidx = 0
        self._buckets: Dict[int, List[int]] = {}
        self._bucket_order: List[int] = []  # heap of pending bucket indices

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def event_count(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._event_count

    @property
    def pending_events(self) -> int:
        """Live (non-cancelled) events currently scheduled."""
        return self._agenda - self._tombstones

    @property
    def calendar_engaged(self) -> bool:
        """Whether the calendar-queue tier is currently serving the agenda."""
        return self._engaged

    def set_probe(self, fn: Optional[Callable[[], None]],
                  every: int = 256) -> None:
        """Install an observation probe called every ``every`` executed
        events (power of two).  The probe must only *read* simulator state —
        it runs after the event's callback and must never schedule."""
        if fn is not None and (every < 1 or every & (every - 1)):
            raise ValueError("probe interval must be a power of two")
        self._probe = fn
        self._probe_mask = every - 1

    # -- scheduling ----------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Handle:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now.

        ``delay`` must be non-negative (NaN rejected); a zero delay fires
        after all events already scheduled for the current instant (FIFO).
        """
        if not (delay >= 0.0):
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        t = self._now + delay
        free = self._free
        if free:
            slot = free.pop()
            self._fn[slot] = fn
            self._args[slot] = args
            self._time[slot] = t
            gen = self._gen[slot]
        else:
            slot = len(self._fn)
            if slot > _SLOT_MASK:  # pragma: no cover - 2**32 concurrent events
                raise SimulationError("agenda exceeded 2**32 concurrent events")
            self._fn.append(fn)
            self._args.append(args)
            self._time.append(t)
            self._gen.append(0)
            gen = 0
        seq = self._seq
        self._seq = seq + 1
        key = (_FROM_BYTES(_TIME_BITS(t), "big") << 96) | (seq << 32) | slot
        self._agenda += 1
        if self._engaged:
            self._route_key(key, t)
        else:
            cur = self._cur
            heapq.heappush(cur, key)
            if len(cur) >= self._engage_at:
                self._engage()
        return Handle(self, slot, gen, t)

    def schedule_at(self, when: float, fn: Callable[..., Any], *args: Any) -> Handle:
        """Schedule ``fn(*args)`` at absolute simulated time ``when``."""
        return self.schedule(when - self._now, fn, *args)

    # -- calendar lane -------------------------------------------------------
    def _route_key(self, key: int, t: float) -> None:
        """File ``key`` by its time bucket.  The routing function is a single
        monotone map of ``t`` shared by every push, so all keys at or below
        the serving bucket are in the serving heap and every bucket's keys
        strictly follow the heap's — serve order equals global key order."""
        q = (t - self._base) / self._width
        i = int(q) if q < _BUCKET_CAP else _BUCKET_CAP
        if i <= self._bidx:
            heapq.heappush(self._cur, key)
        else:
            bucket = self._buckets.get(i)
            if bucket is None:
                self._buckets[i] = [key]
                heapq.heappush(self._bucket_order, i)
            else:
                bucket.append(key)

    def _engage(self) -> None:
        """Switch the agenda to calendar mode, sizing buckets from the live
        time spread.  Deterministic: depends only on agenda contents."""
        fns = self._fn
        times = self._time
        inf = float("inf")
        lo = hi = None
        live = 0
        for key in self._cur:
            slot = key & _SLOT_MASK
            if fns[slot] is None:
                continue
            t = times[slot]
            if t == inf:
                continue
            live += 1
            if lo is None or t < lo:
                lo = t
            if hi is None or t > hi:
                hi = t
        if live < 2 or not (hi - lo) > 0.0:
            # degenerate spread: stay on the plain heap, back off the trigger
            self._engage_at *= 2
            return
        self._engaged = True
        self._base = self._now
        self._width = (hi - lo) / max(live / self._CALENDAR_PER_BUCKET, 1.0)
        self._bidx = 0
        self._buckets = {}
        self._bucket_order = []
        old = self._cur
        self._cur = []
        for key in old:
            slot = key & _SLOT_MASK
            if fns[slot] is None:
                # reap tombstones while redistributing
                self._free_slot(slot)
                self._tombstones -= 1
                self._agenda -= 1
                continue
            self._route_key(key, times[slot])

    def _advance_bucket(self) -> bool:
        """Serving heap drained: promote the next non-empty bucket (or fold
        a small remainder back into plain-heap mode).  Returns False when
        the whole agenda is empty."""
        order = self._bucket_order
        buckets = self._buckets
        while order:
            i = heapq.heappop(order)
            keys = buckets.pop(i, None)
            if not keys:
                continue
            self._bidx = i
            if self._agenda <= self._CALENDAR_DISENGAGE:
                for rest in buckets.values():
                    keys.extend(rest)
                self._disengage(keys)
                return True
            cur = self._cur  # empty here; refill in place
            cur.extend(keys)
            heapq.heapify(cur)
            return True
        self._disengage([])
        return False

    def _disengage(self, keys: List[int]) -> None:
        self._engaged = False
        self._buckets = {}
        self._bucket_order = []
        self._bidx = 0
        self._width = 0.0
        self._engage_at = self._CALENDAR_ENGAGE
        cur = self._cur
        cur.extend(keys)
        heapq.heapify(cur)

    # -- slot bookkeeping ----------------------------------------------------
    def _free_slot(self, slot: int) -> None:
        self._gen[slot] += 1
        self._fn[slot] = None
        self._args[slot] = None
        self._free.append(slot)

    def _next_live(self) -> Optional[int]:
        """Bring a live key to the head of the serving heap; reaps tombstoned
        keys (reclaiming their slots) and advances calendar buckets."""
        cur = self._cur
        fns = self._fn
        pop = heapq.heappop
        while True:
            while cur:
                key = cur[0]
                slot = key & _SLOT_MASK
                if fns[slot] is not None:
                    return key
                pop(cur)
                self._free_slot(slot)
                self._tombstones -= 1
                self._agenda -= 1
            if not self._engaged or not self._advance_bucket():
                return None

    # -- execution -----------------------------------------------------------
    def peek(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` if the agenda is empty."""
        key = self._next_live()
        return None if key is None else self._time[key & _SLOT_MASK]

    def step(self) -> bool:
        """Execute the next event. Returns ``False`` if the agenda was empty."""
        key = self._next_live()
        if key is None:
            return False
        heapq.heappop(self._cur)
        slot = key & _SLOT_MASK
        fn = self._fn[slot]
        args = self._args[slot]
        t = self._time[slot]
        self._agenda -= 1
        self._free_slot(slot)
        if t < self._now:  # pragma: no cover - defensive
            raise SimulationError("event agenda corrupted: time went backwards")
        self._now = t
        self._event_count += 1
        fn(*args)
        probe = self._probe
        if probe is not None and not (self._event_count & self._probe_mask):
            probe()
        return True

    def run(
        self,
        until: Optional[float] = None,
        *,
        max_events: Optional[int] = None,
    ) -> None:
        """Run until the agenda drains, ``until`` is reached, or ``max_events``.

        ``until`` is an absolute simulated time; events scheduled exactly at
        ``until`` *do* execute.  ``max_events`` bounds total executed events
        and raises :class:`SimulationError` when exceeded — it exists to turn
        accidental infinite event loops into loud failures in tests.
        """
        if self._running:
            raise SimulationError("Simulator.run is not reentrant")
        self._running = True
        executed = 0
        pop = heapq.heappop
        times = self._time
        fns = self._fn
        argl = self._args
        try:
            while True:
                key = self._next_live()
                if key is None:
                    return
                slot = key & _SLOT_MASK
                t = times[slot]
                if until is not None and t > until:
                    self._now = until
                    return
                pop(self._cur)
                fn = fns[slot]
                args = argl[slot]
                self._agenda -= 1
                self._free_slot(slot)
                if t < self._now:  # pragma: no cover - defensive
                    raise SimulationError(
                        "event agenda corrupted: time went backwards"
                    )
                self._now = t
                self._event_count += 1
                fn(*args)
                probe = self._probe
                if probe is not None and not (
                    self._event_count & self._probe_mask
                ):
                    probe()
                executed += 1
                if max_events is not None and executed > max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; likely an event loop"
                    )
        finally:
            self._running = False

    def run_until_complete(self, event: "Any", *, max_events: Optional[int] = None) -> Any:
        """Run until ``event`` (a :class:`~repro.sim.primitives.SimEvent`)
        is triggered; returns its value or raises its failure exception."""
        executed = 0
        while not event.triggered:
            if not self.step():
                raise SimulationError("agenda drained before event triggered (deadlock?)")
            executed += 1
            if max_events is not None and executed > max_events:
                raise SimulationError(f"exceeded max_events={max_events}")
        return event.result()
