"""Core event loop: a monotonic simulated clock over a binary-heap agenda.

Determinism contract
--------------------
Events scheduled for the same simulated time fire in the order they were
scheduled (FIFO tie-break via a monotonically increasing sequence number).
Nothing in the engine consults wall-clock time or unseeded randomness, so a
simulation run is a pure function of its inputs.  Every figure in the paper
reproduction is therefore exactly repeatable.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


class SimulationError(RuntimeError):
    """Raised for misuse of the engine (e.g. scheduling into the past)."""


@dataclass(order=True)
class _Entry:
    """Heap entry; ordering is (time, seq) so ties fire FIFO."""

    time: float
    seq: int
    fn: Callable[..., Any] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)


class Handle:
    """Cancellation handle returned by :meth:`Simulator.schedule`."""

    __slots__ = ("_entry", "_sim")

    def __init__(self, entry: _Entry, sim: "Simulator") -> None:
        self._entry = entry
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the callback from firing; safe to call multiple times."""
        if not self._entry.cancelled:
            self._entry.cancelled = True
            self._sim._note_cancelled()

    @property
    def cancelled(self) -> bool:
        return self._entry.cancelled

    @property
    def time(self) -> float:
        """Simulated time at which the callback is due."""
        return self._entry.time


class Simulator:
    """A discrete-event simulator with a float-valued clock (seconds).

    The simulator only executes callbacks; higher-level behaviour (processes,
    resources, queues) is layered on top in sibling modules.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "a")
    >>> _ = sim.schedule(0.5, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now
    1.5
    """

    #: cancelled entries tolerated in the heap before a compaction pass
    _COMPACT_MIN = 64

    def __init__(self) -> None:
        self._now: float = 0.0
        self._seq: int = 0
        self._heap: list[_Entry] = []
        self._running = False
        self._event_count = 0
        self._cancelled_count = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def event_count(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._event_count

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Handle:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now.

        ``delay`` must be non-negative; a zero delay fires after all events
        already scheduled for the current instant (FIFO order).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        entry = _Entry(self._now + delay, self._seq, fn, args)
        self._seq += 1
        heapq.heappush(self._heap, entry)
        return Handle(entry, self)

    def schedule_at(self, when: float, fn: Callable[..., Any], *args: Any) -> Handle:
        """Schedule ``fn(*args)`` at absolute simulated time ``when``."""
        return self.schedule(when - self._now, fn, *args)

    def _note_cancelled(self) -> None:
        """Lazy-deletion bookkeeping: when tombstoned entries dominate the
        agenda, rebuild the heap without them.  Ordering is untouched —
        entries keep their ``(time, seq)`` keys, so ``heapify`` restores the
        exact same execution order and determinism is preserved."""
        self._cancelled_count += 1
        heap = self._heap
        if (
            self._cancelled_count >= self._COMPACT_MIN
            and self._cancelled_count * 2 > len(heap)
        ):
            self._heap = [e for e in heap if not e.cancelled]
            heapq.heapify(self._heap)
            self._cancelled_count = 0

    def peek(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` if the agenda is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
            if self._cancelled_count > 0:
                self._cancelled_count -= 1
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Execute the next event. Returns ``False`` if the agenda was empty."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            if entry.cancelled:
                if self._cancelled_count > 0:
                    self._cancelled_count -= 1
                continue
            if entry.time < self._now:  # pragma: no cover - defensive
                raise SimulationError("event heap corrupted: time went backwards")
            self._now = entry.time
            self._event_count += 1
            entry.fn(*entry.args)
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        *,
        max_events: Optional[int] = None,
    ) -> None:
        """Run until the agenda drains, ``until`` is reached, or ``max_events``.

        ``until`` is an absolute simulated time; events scheduled exactly at
        ``until`` *do* execute.  ``max_events`` bounds total executed events
        and raises :class:`SimulationError` when exceeded — it exists to turn
        accidental infinite event loops into loud failures in tests.
        """
        if self._running:
            raise SimulationError("Simulator.run is not reentrant")
        self._running = True
        executed = 0
        try:
            while True:
                nxt = self.peek()
                if nxt is None:
                    return
                if until is not None and nxt > until:
                    self._now = until
                    return
                self.step()
                executed += 1
                if max_events is not None and executed > max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; likely an event loop"
                    )
        finally:
            self._running = False

    def run_until_complete(self, event: "Any", *, max_events: Optional[int] = None) -> Any:
        """Run until ``event`` (a :class:`~repro.sim.primitives.SimEvent`)
        is triggered; returns its value or raises its failure exception."""
        executed = 0
        while not event.triggered:
            if not self.step():
                raise SimulationError("agenda drained before event triggered (deadlock?)")
            executed += 1
            if max_events is not None and executed > max_events:
                raise SimulationError(f"exceeded max_events={max_events}")
        return event.result()
