"""Deterministic discrete-event simulation engine.

This subpackage provides the substrate on which every other layer of the
reproduction runs: a simulated clock, an event heap with deterministic
tie-breaking, generator-based processes (SimPy-style), synchronization
primitives, and FIFO resources used to model hardware links.

The engine is intentionally minimal but complete: all timing results in the
benchmark harness are produced by scheduling costs on a :class:`Simulator`.
"""

from repro.sim.engine import Handle, Simulator
from repro.sim.primitives import AllOf, AnyOf, Latch, SimEvent, SimQueue, Timeout
from repro.sim.process import Interrupt, Process, ProcessKilled
from repro.sim.resources import Resource
from repro.sim.trace import TraceRecord, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "Handle",
    "Interrupt",
    "Latch",
    "Process",
    "ProcessKilled",
    "Resource",
    "SimEvent",
    "SimQueue",
    "Simulator",
    "Timeout",
    "TraceRecord",
    "Tracer",
]
