"""Synchronization primitives: events, timeouts, combinators, queues.

These follow the SimPy vocabulary because it is the lingua franca of Python
discrete-event simulation: a :class:`SimEvent` is a one-shot occurrence that
processes may wait on; :class:`Timeout` is an event that fires after a fixed
delay; :class:`AllOf`/:class:`AnyOf` combine events; :class:`SimQueue` is an
unbounded producer/consumer queue (used for PE message queues and UCX
matching); :class:`Latch` is a countdown barrier (used for windowed
bandwidth tests and halo-exchange completion).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Iterable, List, Optional

from repro.sim.engine import Simulator


class EventAlreadyTriggered(RuntimeError):
    """A one-shot event was succeeded/failed twice."""


class SimEvent:
    """A one-shot occurrence carrying a value or an exception.

    Callbacks added before triggering run when the event triggers; callbacks
    added after it has triggered run immediately (same simulated instant).
    """

    __slots__ = ("sim", "_callbacks", "_triggered", "_value", "_exc", "name")

    def __init__(self, sim: Simulator, name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._callbacks: List[Callable[[SimEvent], None]] = []
        self._triggered = False
        self._value: Any = None
        self._exc: Optional[BaseException] = None

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._triggered and self._exc is None

    def result(self) -> Any:
        """Value of a succeeded event; re-raises the exception of a failed one."""
        if not self._triggered:
            raise RuntimeError(f"event {self.name!r} not yet triggered")
        if self._exc is not None:
            raise self._exc
        return self._value

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None) -> "SimEvent":
        if self._triggered:
            raise EventAlreadyTriggered(self.name)
        self._triggered = True
        self._value = value
        self._dispatch()
        return self

    def fail(self, exc: BaseException) -> "SimEvent":
        if self._triggered:
            raise EventAlreadyTriggered(self.name)
        self._triggered = True
        self._exc = exc
        self._dispatch()
        return self

    def _dispatch(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            cb(self)

    def add_callback(self, cb: Callable[["SimEvent"], None]) -> None:
        if self._triggered:
            cb(self)
        else:
            self._callbacks.append(cb)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "triggered" if self._triggered else "pending"
        return f"<{type(self).__name__} {self.name!r} {state}>"


class Timeout(SimEvent):
    """An event that succeeds ``delay`` seconds after construction."""

    __slots__ = ("delay",)

    def __init__(self, sim: Simulator, delay: float, value: Any = None) -> None:
        super().__init__(sim, name=f"timeout({delay})")
        self.delay = delay
        sim.schedule(delay, self.succeed, value)


class AllOf(SimEvent):
    """Succeeds when every constituent event has succeeded.

    The value is the list of constituent values, in input order.  Fails fast
    with the first constituent failure.
    """

    def __init__(self, sim: Simulator, events: Iterable[SimEvent]) -> None:
        super().__init__(sim, name="all_of")
        self._events = list(events)
        self._remaining = len(self._events)
        if self._remaining == 0:
            self.succeed([])
            return
        for ev in self._events:
            ev.add_callback(self._on_child)

    def _on_child(self, ev: SimEvent) -> None:
        if self._triggered:
            return
        if not ev.ok:
            try:
                ev.result()
            except BaseException as exc:  # noqa: BLE001 - propagate verbatim
                self.fail(exc)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([e.result() for e in self._events])


class AnyOf(SimEvent):
    """Succeeds with ``(index, value)`` of the first constituent to succeed."""

    def __init__(self, sim: Simulator, events: Iterable[SimEvent]) -> None:
        super().__init__(sim, name="any_of")
        self._events = list(events)
        if not self._events:
            raise ValueError("AnyOf requires at least one event")
        for idx, ev in enumerate(self._events):
            ev.add_callback(lambda e, i=idx: self._on_child(i, e))

    def _on_child(self, idx: int, ev: SimEvent) -> None:
        if self._triggered:
            return
        if ev.ok:
            self.succeed((idx, ev.result()))
        else:
            try:
                ev.result()
            except BaseException as exc:  # noqa: BLE001
                self.fail(exc)


class Latch:
    """Countdown latch: :meth:`wait` succeeds once :meth:`count_down` has
    been called ``n`` times. A fresh latch with ``n == 0`` is already open."""

    def __init__(self, sim: Simulator, n: int, name: str = "latch") -> None:
        if n < 0:
            raise ValueError("latch count must be >= 0")
        self.sim = sim
        self._remaining = n
        self._event = SimEvent(sim, name=name)
        if n == 0:
            self._event.succeed(None)

    @property
    def remaining(self) -> int:
        return self._remaining

    def count_down(self, by: int = 1) -> None:
        if self._event.triggered:
            raise RuntimeError("latch already open")
        if by < 1:
            raise ValueError("count_down must decrement by >= 1")
        self._remaining -= by
        if self._remaining <= 0:
            self._event.succeed(None)

    def wait(self) -> SimEvent:
        return self._event


class SimQueue:
    """Unbounded FIFO queue with event-based consumption.

    ``put`` never blocks.  ``get`` returns a :class:`SimEvent` that succeeds
    with the next item — immediately if one is buffered, otherwise when a
    producer puts one.  Waiters are served FIFO.
    """

    def __init__(self, sim: Simulator, name: str = "queue") -> None:
        self.sim = sim
        self.name = name
        self._items: deque[Any] = deque()
        self._waiters: deque[SimEvent] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        if self._waiters:
            self._waiters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> SimEvent:
        ev = SimEvent(self.sim, name=f"{self.name}.get")
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._waiters.append(ev)
        return ev

    def get_nowait(self) -> Any:
        """Pop an item if one is buffered, else raise :class:`IndexError`."""
        return self._items.popleft()

    def peek_all(self) -> list:
        """Snapshot of buffered items (for matching-queue scans)."""
        return list(self._items)

    def remove(self, item: Any) -> None:
        """Remove a specific buffered item (used by matching logic)."""
        self._items.remove(item)
