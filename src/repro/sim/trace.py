"""Lightweight time-stamped tracing and counters.

Every layer can emit :class:`TraceRecord` entries through a shared
:class:`Tracer`; the benchmark harness uses categories (``"ucx"``,
``"machine"``, ``"ampi"``…) to attribute time to layers — this is how the
reproduction of the paper's §IV-B1 overhead-anatomy experiment (the ~8 μs of
AMPI time outside UCX) is measured rather than asserted.

``emit`` sits on the per-message hot path of every layer, so a disabled
tracer must be near-free: counters are kept in a plain dict keyed by the
``(category, event)`` tuple (no f-string formatting, no ``Counter`` hashing
per event) and only materialised into the dotted-key :class:`Counter` view
when :attr:`Tracer.counters` is actually read.  Hot call sites that would
otherwise build a ``detail`` kwargs dict per event can call :meth:`count`
directly when ``enabled`` is False.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.sim.engine import Simulator


@dataclass
class TraceRecord:
    time: float
    category: str
    event: str
    detail: Dict[str, Any] = field(default_factory=dict)


class Tracer:
    """Collects trace records and counters; disabled tracers are near-free."""

    def __init__(self, sim: Simulator, enabled: bool = False) -> None:
        self.sim = sim
        self.enabled = enabled
        self.records: List[TraceRecord] = []
        self._counts: Dict[Tuple[str, str], int] = {}
        self._counters_view: Optional[Counter] = None
        self._time_acc: Dict[str, float] = defaultdict(float)
        # per-(category, key) stacks of open-span start times: the same span
        # key may be opened re-entrantly (nested calls); ends pop LIFO
        self._open_spans: Dict[tuple, List[float]] = {}

    def count(self, category: str, event: str) -> None:
        """Bump the ``category.event`` counter without any record/formatting
        work — the hot-path alternative to :meth:`emit` while disabled."""
        key = (category, event)
        counts = self._counts
        counts[key] = counts.get(key, 0) + 1
        self._counters_view = None

    def emit(self, category: str, event: str, **detail: Any) -> None:
        key = (category, event)
        counts = self._counts
        counts[key] = counts.get(key, 0) + 1
        self._counters_view = None
        if self.enabled:
            self.records.append(TraceRecord(self.sim.now, category, event, detail))

    @property
    def counters(self) -> Counter:
        """Counter view keyed ``"category.event"`` (built lazily on read)."""
        view = self._counters_view
        if view is None:
            view = Counter(
                {f"{c}.{e}": n for (c, e), n in self._counts.items()}
            )
            self._counters_view = view
        return view

    # -- span accounting (always on; cheap) ---------------------------------
    def span_begin(self, category: str, key: Any = None) -> None:
        stack = self._open_spans.get((category, key))
        if stack is None:
            self._open_spans[(category, key)] = [self.sim.now]
        else:
            stack.append(self.sim.now)

    def span_end(self, category: str, key: Any = None) -> float:
        stack = self._open_spans.get((category, key))
        if not stack:
            return 0.0
        start = stack.pop()
        elapsed = self.sim.now - start
        self._time_acc[category] += elapsed
        return elapsed

    def time_in(self, category: str) -> float:
        """Total simulated time accumulated in spans of ``category``."""
        return self._time_acc[category]

    def filter(self, category: Optional[str] = None, event: Optional[str] = None) -> List[TraceRecord]:
        out = self.records
        if category is not None:
            out = [r for r in out if r.category == category]
        if event is not None:
            out = [r for r in out if r.event == event]
        return out

    def reset(self) -> None:
        self.records.clear()
        self._counts.clear()
        self._counters_view = None
        self._time_acc.clear()
        self._open_spans.clear()
