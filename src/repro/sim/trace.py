"""Compatibility shim: the tracer moved to :mod:`repro.obs`.

``repro.sim.trace.Tracer`` is now the span-tree tracer from
:mod:`repro.obs.tracing` — same constructor, same ``emit``/``count``/
``counters`` hot path, plus hierarchical spans (``tracer.span(...)``) and a
typed metrics registry (``tracer.metrics``).  The flat
``span_begin``/``span_end`` methods completed their deprecation cycle and
were removed; use the context-manager span API.

Importing from this module keeps working indefinitely; new code should
import from :mod:`repro.obs` (or use the :mod:`repro.api` facade).
"""

from repro.obs.tracing import NULL_SPAN, Span, TraceRecord, Tracer

__all__ = ["NULL_SPAN", "Span", "TraceRecord", "Tracer"]
