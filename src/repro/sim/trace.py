"""Lightweight time-stamped tracing and counters.

Every layer can emit :class:`TraceRecord` entries through a shared
:class:`Tracer`; the benchmark harness uses categories (``"ucx"``,
``"machine"``, ``"ampi"``…) to attribute time to layers — this is how the
reproduction of the paper's §IV-B1 overhead-anatomy experiment (the ~8 μs of
AMPI time outside UCX) is measured rather than asserted.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.sim.engine import Simulator


@dataclass
class TraceRecord:
    time: float
    category: str
    event: str
    detail: Dict[str, Any] = field(default_factory=dict)


class Tracer:
    """Collects trace records and counters; disabled tracers are near-free."""

    def __init__(self, sim: Simulator, enabled: bool = False) -> None:
        self.sim = sim
        self.enabled = enabled
        self.records: List[TraceRecord] = []
        self.counters: Counter = Counter()
        self._time_acc: Dict[str, float] = defaultdict(float)
        self._open_spans: Dict[tuple, float] = {}

    def emit(self, category: str, event: str, **detail: Any) -> None:
        self.counters[f"{category}.{event}"] += 1
        if self.enabled:
            self.records.append(TraceRecord(self.sim.now, category, event, detail))

    # -- span accounting (always on; cheap) ---------------------------------
    def span_begin(self, category: str, key: Any = None) -> None:
        self._open_spans[(category, key)] = self.sim.now

    def span_end(self, category: str, key: Any = None) -> float:
        start = self._open_spans.pop((category, key), None)
        if start is None:
            return 0.0
        elapsed = self.sim.now - start
        self._time_acc[category] += elapsed
        return elapsed

    def time_in(self, category: str) -> float:
        """Total simulated time accumulated in spans of ``category``."""
        return self._time_acc[category]

    def filter(self, category: Optional[str] = None, event: Optional[str] = None) -> List[TraceRecord]:
        out = self.records
        if category is not None:
            out = [r for r in out if r.category == category]
        if event is not None:
            out = [r for r in out if r.event == event]
        return out

    def reset(self) -> None:
        self.records.clear()
        self.counters.clear()
        self._time_acc.clear()
        self._open_spans.clear()
