"""Generator-based cooperative processes driven by the event engine.

A process is a Python generator that ``yield``\\ s awaitables:

* a :class:`~repro.sim.primitives.SimEvent` (including :class:`Timeout`,
  :class:`AllOf`, :class:`AnyOf`, or another :class:`Process`) — the process
  resumes when the event triggers and receives its value via ``send``;
* ``None`` — the process yields control and resumes at the same instant
  (after already-queued events for that instant).

This is the execution vehicle for *blocking* programming-model semantics in
the reproduction: AMPI ranks block in ``MPI_Recv`` and Charm4py coroutines
suspend on channel receives/futures, both of which map to yielding an event.
Charm++ entry methods, by contrast, are run-to-completion callables and never
become processes.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.sim.engine import Simulator
from repro.sim.primitives import SimEvent


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class ProcessKilled(Exception):
    """Raised inside a process killed via :meth:`Process.kill`."""


class Process(SimEvent):
    """Wraps a generator; is itself an event that triggers on completion.

    The completion value is the generator's ``return`` value.  An uncaught
    exception inside the generator fails the process event with that
    exception (so joiners observe it) — except that it is also re-raised if
    nobody is joining, to keep silent failures out of tests.
    """

    def __init__(self, sim: Simulator, gen: Generator, name: str = "process") -> None:
        super().__init__(sim, name=name)
        if not hasattr(gen, "send"):
            raise TypeError(f"Process requires a generator, got {type(gen).__name__}")
        self._gen = gen
        self._waiting_on: Optional[SimEvent] = None
        # Start on the next tick of the current instant so the creator
        # finishes its own step first (mirrors SimPy semantics).
        sim.schedule(0.0, self._resume, None, None)

    # -- control -----------------------------------------------------------
    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant."""
        if self.triggered:
            return
        self.sim.schedule(0.0, self._throw, Interrupt(cause))

    def kill(self) -> None:
        """Terminate the process; it observes :class:`ProcessKilled`."""
        if self.triggered:
            return
        self.sim.schedule(0.0, self._throw, ProcessKilled())

    # -- engine plumbing ----------------------------------------------------
    def _resume(self, send_value: Any, exc: Optional[BaseException]) -> None:
        if self.triggered:
            return
        self._waiting_on = None
        try:
            if exc is not None:
                target = self._gen.throw(exc)
            else:
                target = self._gen.send(send_value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except ProcessKilled:
            self.succeed(None)
            return
        except BaseException as err:  # noqa: BLE001 - fail the join event
            had_joiners = bool(self._callbacks)
            self.fail(err)
            if not had_joiners:
                raise  # nobody observing: surface loudly instead of silently
            return
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        if target is None:
            self.sim.schedule(0.0, self._resume, None, None)
            return
        if isinstance(target, SimEvent):
            self._waiting_on = target
            target.add_callback(self._on_event)
            return
        raise TypeError(
            f"process {self.name!r} yielded {type(target).__name__}; "
            "expected SimEvent or None"
        )

    def _on_event(self, ev: SimEvent) -> None:
        if self.triggered:
            return
        if ev is not self._waiting_on:
            return  # stale wake-up after an interrupt redirected the process
        if ev.ok:
            self._resume(ev.result(), None)
        else:
            try:
                ev.result()
            except BaseException as exc:  # noqa: BLE001
                self._resume(None, exc)

    def _throw(self, exc: BaseException) -> None:
        self._waiting_on = None
        self._resume(None, exc)


def spawn(sim: Simulator, gen: Generator, name: str = "process") -> Process:
    """Convenience wrapper: ``spawn(sim, my_generator())``."""
    return Process(sim, gen, name=name)
