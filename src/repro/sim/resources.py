"""FIFO resources with occupancy accounting.

Hardware links (NVLink, X-Bus, PCIe, NIC, host memory buses) are modelled as
:class:`Resource` objects with ``capacity`` concurrent slots.  A transfer
acquires the resource, holds it for its duration, and releases it; waiting
requests are granted strictly FIFO.  This gives first-order contention: two
chares hammering the same NIC serialize, while transfers on disjoint NVLinks
proceed in parallel — the effect that shapes the Jacobi3D communication
times at scale.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.sim.engine import Simulator
from repro.sim.primitives import SimEvent


class Resource:
    """A counted resource with FIFO granting and utilisation statistics."""

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = "resource") -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._in_use = 0
        self._waiters: deque[SimEvent] = deque()
        self._release_hooks: list = []
        # statistics
        self.total_acquisitions = 0
        self.busy_time = 0.0
        self._busy_since: Optional[float] = None

    # -- state -------------------------------------------------------------
    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def utilisation(self, since: float = 0.0) -> float:
        """Fraction of (now - since) during which >=1 slot was held."""
        span = self.sim.now - since
        if span <= 0:
            return 0.0
        busy = self.busy_time
        if self._busy_since is not None:
            busy += self.sim.now - self._busy_since
        return min(1.0, busy / span)

    # -- acquire/release ----------------------------------------------------
    def acquire(self) -> SimEvent:
        """Returns an event that succeeds when a slot is granted."""
        ev = SimEvent(self.sim, name=f"{self.name}.acquire")
        if self._in_use < self.capacity:
            self._grant(ev)
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        if self._in_use <= 0:
            raise RuntimeError(f"release of idle resource {self.name!r}")
        self._in_use -= 1
        if self._in_use == 0 and self._busy_since is not None:
            self.busy_time += self.sim.now - self._busy_since
            self._busy_since = None
        if self._waiters:
            self._grant(self._waiters.popleft())
        if self._release_hooks:
            hooks, self._release_hooks = self._release_hooks, []
            for hook in hooks:
                hook()

    def on_next_release(self, hook) -> None:
        """Fire ``hook()`` once, after the next release (used by atomic
        multi-resource acquisition to retry)."""
        self._release_hooks.append(hook)

    def _grant(self, ev: SimEvent) -> None:
        self._in_use += 1
        self.total_acquisitions += 1
        if self._busy_since is None:
            self._busy_since = self.sim.now
        ev.succeed(self)

    # -- composite helper ----------------------------------------------------
    def occupy(self, duration: float) -> SimEvent:
        """Acquire, hold for ``duration``, release; returns the completion
        event.  This is the common idiom for charging a transfer to a link:
        the returned event succeeds at the moment the resource is freed.
        """
        done = SimEvent(self.sim, name=f"{self.name}.occupy")

        def _granted(_ev: SimEvent) -> None:
            self.sim.schedule(duration, _finish)

        def _finish() -> None:
            self.release()
            done.succeed(None)

        self.acquire().add_callback(_granted)
        return done
