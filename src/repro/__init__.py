"""repro — simulation-based reproduction of "GPU-aware Communication with
UCX in Parallel Programming Models: Charm++, MPI, and Python" (IPDPSW'21).

Public entry points:

* :mod:`repro.config` — machine/protocol/runtime configuration
  (:func:`repro.config.summit` builds the calibrated Summit model);
* :mod:`repro.charm` — the Charm++ programming model;
* :mod:`repro.ampi` — Adaptive MPI on the Charm++ runtime;
* :mod:`repro.openmpi` — the CUDA-aware OpenMPI baseline;
* :mod:`repro.charm4py` — Python chares, channels, futures;
* :mod:`repro.apps.osu` / :mod:`repro.apps.jacobi3d` — the benchmarks;
* :mod:`repro.bench.figures` — regenerate every paper table/figure.

See README.md for a quickstart and DESIGN.md for the system inventory.
"""

__version__ = "1.0.0"

from repro.config import MachineConfig, default_config, summit

__all__ = ["MachineConfig", "__version__", "default_config", "summit"]
