"""repro — simulation-based reproduction of "GPU-aware Communication with
UCX in Parallel Programming Models: Charm++, MPI, and Python" (IPDPSW'21).

Public entry points:

* :mod:`repro.api` — the unified facade: build machine + model + tracer with
  ``api.session(config).model("ampi").trace().build()``;
* :mod:`repro.config` — machine/protocol/runtime configuration
  (:meth:`MachineConfig.summit` builds the calibrated Summit model);
* :mod:`repro.obs` — observability: span trees, metrics registry,
  Chrome-trace export;
* :mod:`repro.charm` — the Charm++ programming model;
* :mod:`repro.ampi` — Adaptive MPI on the Charm++ runtime;
* :mod:`repro.openmpi` — the CUDA-aware OpenMPI baseline;
* :mod:`repro.charm4py` — Python chares, channels, futures;
* :mod:`repro.apps.osu` / :mod:`repro.apps.jacobi3d` — the benchmarks;
* :mod:`repro.bench.figures` — regenerate every paper table/figure.

See README.md for a quickstart and DESIGN.md for the system inventory.
"""

__version__ = "1.2.0"

from repro.config import MachineConfig

__all__ = ["MachineConfig", "__version__", "api", "obs"]


def __getattr__(name):
    # lazy submodule access (`repro.api` / `repro.obs` after `import repro`)
    # without paying the model-graph import on package import
    if name in ("api", "obs"):
        import importlib

        return importlib.import_module(f"repro.{name}")
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
