"""Benchmark harness: regenerates every table and figure of the paper."""

from repro.bench.reporting import Series, improvement_range, print_series, print_table
from repro.bench import figures

__all__ = ["Series", "figures", "improvement_range", "print_series", "print_table"]
