"""Analysis helpers over measured series: alpha-beta fits, crossovers.

Turns the benchmark outputs into the quantities papers talk about:

* :func:`fit_alpha_beta` — least-squares fit of ``t(s) = alpha + s/beta``
  to a latency series, recovering effective startup latency and bandwidth
  (the LogP-style summary of a curve);
* :func:`crossover` — the message size where one curve overtakes another
  (e.g. where host staging's fixed costs stop dominating);
* :func:`half_peak_size` — the "n½" metric: the size achieving half the
  peak bandwidth;
* :func:`speedup_series` — pointwise ratio of two series.

Used by tests to assert curve *shapes* rather than individual points.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

import numpy as np

from repro.bench.reporting import Series


def fit_alpha_beta(series: Series) -> Tuple[float, float]:
    """Least-squares fit of ``t = alpha + size/beta`` to a latency series
    (x in bytes, y in **seconds**).  Returns ``(alpha_seconds, beta_bytes_per_s)``.

    The fit weights all points equally in linear space, so large-message
    points dominate beta and small-message points pin alpha — which is the
    conventional reading of such curves.
    """
    if len(series.points) < 2:
        raise ValueError("need at least two points to fit")
    x = np.asarray(series.xs, dtype=float)
    y = np.asarray(series.ys, dtype=float)
    slope, alpha = np.polyfit(x, y, 1)
    if slope <= 0:
        raise ValueError("series is not increasing with size; cannot fit beta")
    return float(alpha), float(1.0 / slope)


def speedup_series(numerator: Series, denominator: Series, label: str = "speedup") -> Series:
    """Pointwise numerator/denominator over shared x values."""
    shared = [x for x in numerator.xs if x in set(denominator.xs)]
    return Series(label, [(x, numerator.at(x) / denominator.at(x)) for x in shared])


def crossover(a: Series, b: Series) -> Optional[float]:
    """Smallest shared x where ``a`` stops exceeding ``b`` (None if never).

    Interpolates in log-x between the bracketing points, which matches how
    one reads crossovers off a log-scale figure.
    """
    shared = sorted(set(a.xs) & set(b.xs))
    if not shared:
        raise ValueError("series share no x values")
    prev = None
    for x in shared:
        diff = a.at(x) - b.at(x)
        if diff <= 0:
            if prev is None:
                return float(x)
            px, pdiff = prev
            if pdiff == diff:
                return float(x)
            # linear interpolation of the sign change in log-x
            frac = pdiff / (pdiff - diff)
            return float(math.exp(
                math.log(px) + frac * (math.log(x) - math.log(px))
            ))
        prev = (x, diff)
    return None


def half_peak_size(bw_series: Series) -> float:
    """The n½ metric: smallest size reaching half of the series' peak."""
    peak = max(bw_series.ys)
    for x in sorted(bw_series.xs):
        if bw_series.at(x) >= peak / 2:
            return float(x)
    raise AssertionError("unreachable: the peak itself reaches half-peak")


def summarize_latency(series: Series) -> Dict[str, float]:
    """One-line summary of a latency series (seconds): alpha, beta, and the
    small/large endpoints."""
    alpha, beta = fit_alpha_beta(series)
    xs = sorted(series.xs)
    return {
        "alpha_us": alpha * 1e6,
        "beta_gbs": beta / 1e9,
        "min_size_us": series.at(xs[0]) * 1e6,
        "max_size_us": series.at(xs[-1]) * 1e6,
    }
