"""Dependency-free ASCII plots for the figure runners.

``repro-figures`` can render its series as log-log ASCII charts in the
terminal (``--plot``), which is enough to eyeball the shapes against the
paper's figures without matplotlib.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

from repro.bench.reporting import Series, fmt_size

#: glyphs assigned to curves, in order
_GLYPHS = "ox+*#@%&"


def _log_positions(values: Sequence[float], lo: float, hi: float, cells: int) -> List[int]:
    if lo <= 0:
        lo = min(v for v in values if v > 0)
    span = math.log10(hi / lo) if hi > lo else 1.0
    out = []
    for v in values:
        if v <= 0:
            out.append(0)
        else:
            frac = math.log10(v / lo) / span if span else 0.0
            out.append(max(0, min(cells - 1, round(frac * (cells - 1)))))
    return out


def ascii_plot(
    title: str,
    series: Sequence[Series],
    width: int = 72,
    height: int = 20,
    x_is_size: bool = True,
    y_label: str = "",
) -> str:
    """Render curves on a log-log grid; returns the chart as a string."""
    series = [s for s in series if s.points]
    if not series:
        return f"# {title}\n(no data)\n"
    xs = sorted({x for s in series for x in s.xs})
    ys = [y for s in series for y in s.ys if y > 0]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)

    grid = [[" "] * width for _ in range(height)]
    for idx, s in enumerate(series):
        glyph = _GLYPHS[idx % len(_GLYPHS)]
        cols = _log_positions(s.xs, x_lo, x_hi, width)
        rows = _log_positions(s.ys, y_lo, y_hi, height)
        for c, r in zip(cols, rows):
            row = height - 1 - r
            grid[row][c] = glyph

    lines = [f"# {title}  (log-log)"]
    top = f"{y_hi:.3g}"
    bottom = f"{y_lo:.3g}"
    margin = max(len(top), len(bottom), len(y_label)) + 1
    for i, row in enumerate(grid):
        if i == 0:
            label = top
        elif i == height - 1:
            label = bottom
        elif i == height // 2 and y_label:
            label = y_label
        else:
            label = ""
        lines.append(f"{label:>{margin}} |" + "".join(row))
    x_left = fmt_size(int(x_lo)) if x_is_size else f"{x_lo:g}"
    x_right = fmt_size(int(x_hi)) if x_is_size else f"{x_hi:g}"
    lines.append(f"{'':>{margin}} +" + "-" * width)
    lines.append(f"{'':>{margin}}  {x_left}" + " " * (width - len(x_left) - len(x_right)) + x_right)
    legend = "   ".join(
        f"{_GLYPHS[i % len(_GLYPHS)]} {s.label}" for i, s in enumerate(series)
    )
    lines.append(f"{'':>{margin}}  {legend}")
    return "\n".join(lines) + "\n"


def plot_series_dict(title: str, series: Dict[str, Series], **kw) -> str:
    return ascii_plot(title, list(series.values()), **kw)
