"""The Summit calibration: anchors, procedure, and a self-check.

The absolute timings of this reproduction come from `repro/config.py`'s
constants, tuned once against the paper's published numbers.  This module
records the *procedure* (so the calibration is reproducible and auditable)
and provides :func:`check_anchors`, which re-measures every anchor on the
current model and reports drift — run it after touching any constant:

    python -m repro.bench.calibration

Calibration procedure (as performed; see EXPERIMENTS.md for outcomes):

1. **Link rates** — set NVLink/X-Bus/NIC effective bandwidths so the 4 MB
   GPU-aware bandwidth points land on §IV-B2's peaks (44.7/45.4 GB/s
   intra, 10 GB/s inter).  Effective rates sit below theoretical peaks
   (42.1 GiB/s vs 50 GB/s NVLink, ~10 GB/s vs 12.5 GB/s EDR per rail).
2. **CUDA fixed costs** — memcpy launch + stream sync ≈ 7.5 μs per staged
   hop, set so the eager-protocol speedups of Table I (4.4x/3.6x/1.9x
   intra) emerge from the host-staging variants.
3. **Per-model software overheads** — Charm++ sub-μs dispatch; AMPI's
   ~5 μs of non-UCX work (paper: ~8 μs; §IV-B1); OpenMPI ~0.3 μs per
   side; Charm4py several μs of interpreter/Cython cost per call plus
   ~5 GB/s serialisation.
4. **Host memory copies** — 17 GiB/s per stream, one concurrent stream per
   node: reproduces both the single-pair OSU-H curves and (approximately)
   the 6-GPU Jacobi3D host-staging contention.
5. **Quirks** — the AMPI-H 128 KB dip (§IV-B2) as a pinning-threshold
   artifact; the GDRCopy-detection cliff (§IV-B1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from repro.config import MachineConfig, MB


@dataclass(frozen=True)
class Anchor:
    """One calibration anchor: what we measure, what the paper reports."""

    name: str
    paper_value: float
    unit: str
    rel_tolerance: float
    measure: Callable[[], float]


def _anchors() -> List[Anchor]:
    from repro.apps.osu import run_bandwidth, run_latency

    cfg = MachineConfig.summit(nodes=2)

    def bw(model, placement):
        return lambda: run_bandwidth(model, 4 * MB, placement, True, cfg) / 1e9

    def eager_speedup(model):
        def f():
            h = run_latency(model, 8, "intra", False, cfg)
            d = run_latency(model, 8, "intra", True, cfg)
            return h / d

        return f

    def anatomy_outside_ucx():
        from repro.bench.figures import ampi_overhead_anatomy

        return ampi_overhead_anatomy(quiet=True)["ampi_outside_ucx_us"]

    return [
        Anchor("charm intra peak bw", 44.7, "GB/s", 0.15, bw("charm", "intra")),
        Anchor("ampi intra peak bw", 45.4, "GB/s", 0.15, bw("ampi", "intra")),
        Anchor("charm4py intra peak bw", 35.5, "GB/s", 0.15, bw("charm4py", "intra")),
        Anchor("charm inter peak bw", 10.0, "GB/s", 0.15, bw("charm", "inter")),
        Anchor("charm4py inter peak bw", 6.0, "GB/s", 0.15, bw("charm4py", "inter")),
        Anchor("charm eager speedup", 4.4, "x", 0.35, eager_speedup("charm")),
        Anchor("ampi eager speedup", 3.6, "x", 0.35, eager_speedup("ampi")),
        Anchor("charm4py eager speedup", 1.9, "x", 0.35, eager_speedup("charm4py")),
        Anchor("ampi non-UCX overhead", 8.0, "us", 0.6, anatomy_outside_ucx),
    ]


@dataclass
class AnchorResult:
    anchor: Anchor
    measured: float

    @property
    def within_tolerance(self) -> bool:
        return (
            abs(self.measured - self.anchor.paper_value)
            <= self.anchor.rel_tolerance * self.anchor.paper_value
        )


def check_anchors(quiet: bool = False) -> List[AnchorResult]:
    """Re-measure every calibration anchor; returns the results."""
    results = [AnchorResult(a, a.measure()) for a in _anchors()]
    if not quiet:
        print(f"{'anchor':>26} {'paper':>8} {'measured':>9} {'tol':>6} {'status':>8}")
        for r in results:
            status = "ok" if r.within_tolerance else "DRIFTED"
            print(
                f"{r.anchor.name:>26} {r.anchor.paper_value:>8.2f} "
                f"{r.measured:>9.2f} {r.anchor.rel_tolerance:>5.0%} {status:>8}"
            )
    return results


def main() -> None:
    results = check_anchors()
    drifted = [r for r in results if not r.within_tolerance]
    if drifted:
        raise SystemExit(f"{len(drifted)} calibration anchor(s) drifted")
    print("all calibration anchors hold")


if __name__ == "__main__":
    main()
