"""One runner per table/figure of the paper's evaluation (§IV).

Each ``figN`` function runs the corresponding experiment on the simulated
Summit, prints the same rows/series the paper plots, and returns the series
for programmatic use (the pytest benchmarks and EXPERIMENTS.md generation
call these).  ``table1`` derives the improvement ranges of Table I from the
four micro-benchmark figures.  The ``ablation_*`` functions cover the
design-choice studies listed in DESIGN.md §6.
"""

from __future__ import annotations

import argparse
from dataclasses import replace
from typing import Dict, List, Optional, Sequence

from repro.apps.jacobi3d.driver import run_jacobi
from repro.apps.osu.runner import OSU_SIZES, run_bandwidth_sweep, run_latency_sweep
from repro.bench.reporting import Series, improvement_range, print_series, print_table
from repro.config import KB, MachineConfig, MB

#: default node ladder for the Jacobi scaling figures
WEAK_NODES = (1, 2, 4, 8, 16, 32, 64, 128, 256)
STRONG_NODES = (8, 16, 32, 64, 128, 256)

#: a reduced ladder for quick runs (still spans eager->rendezvous->peak)
QUICK_SIZES = [1, 64, 1 * KB, 4 * KB, 16 * KB, 128 * KB, 1 * MB, 4 * MB]


def _osu_fig(
    benchmark: str,
    placement: str,
    models: Sequence[str],
    sizes: Sequence[int],
    config: Optional[MachineConfig],
) -> Dict[str, Series]:
    out: Dict[str, Series] = {}
    for model in models:
        for aware, suffix in ((False, "H"), (True, "D")):
            label = f"{model}-{suffix}"
            s = Series(label)
            if benchmark == "latency":
                sweep = run_latency_sweep(model, placement, aware, sizes, config)
                for size, v in sweep.items():
                    s.add(size, v * 1e6)  # us
            else:
                sweep = run_bandwidth_sweep(model, placement, aware, sizes, config)
                for size, v in sweep.items():
                    s.add(size, v / 1e6)  # MB/s
            out[label] = s
    return out


def fig10(sizes: Sequence[int] = OSU_SIZES, config: Optional[MachineConfig] = None,
          quiet: bool = False) -> Dict[str, Series]:
    """Fig. 10: intra-node latency, host-staging vs GPU-aware (us)."""
    series = _osu_fig("latency", "intra",
                      ["charm", "ampi", "openmpi", "charm4py"], sizes, config)
    if not quiet:
        print_series("Fig. 10: intra-node one-way latency (us)", list(series.values()))
    return series


def fig11(sizes: Sequence[int] = OSU_SIZES, config: Optional[MachineConfig] = None,
          quiet: bool = False) -> Dict[str, Series]:
    """Fig. 11: inter-node latency (us)."""
    series = _osu_fig("latency", "inter",
                      ["charm", "ampi", "openmpi", "charm4py"], sizes, config)
    if not quiet:
        print_series("Fig. 11: inter-node one-way latency (us)", list(series.values()))
    return series


def fig12(sizes: Sequence[int] = OSU_SIZES, config: Optional[MachineConfig] = None,
          quiet: bool = False) -> Dict[str, Series]:
    """Fig. 12: intra-node bandwidth (MB/s)."""
    series = _osu_fig("bandwidth", "intra",
                      ["charm", "ampi", "openmpi", "charm4py"], sizes, config)
    if not quiet:
        print_series("Fig. 12: intra-node bandwidth (MB/s)", list(series.values()))
    return series


def fig13(sizes: Sequence[int] = OSU_SIZES, config: Optional[MachineConfig] = None,
          quiet: bool = False) -> Dict[str, Series]:
    """Fig. 13: inter-node bandwidth (MB/s)."""
    series = _osu_fig("bandwidth", "inter",
                      ["charm", "ampi", "openmpi", "charm4py"], sizes, config)
    if not quiet:
        print_series("Fig. 13: inter-node bandwidth (MB/s)", list(series.values()))
    return series


#: message sizes the eager (GDRCopy) protocol serves with default thresholds
EAGER_SIZES = [s for s in OSU_SIZES if s < 4 * KB]


def table1(sizes: Sequence[int] = OSU_SIZES, config: Optional[MachineConfig] = None,
           quiet: bool = False) -> Dict[str, Dict[str, tuple]]:
    """Table I: improvement in latency and bandwidth with GPU-awareness.

    Rows: latency range / latency eager / bandwidth range, for the three
    Charm++-family models, intra- and inter-node.  Ratios are H/D for
    latency and D/H for bandwidth, exactly as the paper derives them from
    Figs. 10-13.
    """
    models = ["charm", "ampi", "charm4py"]
    lat_intra = _osu_fig("latency", "intra", models, sizes, config)
    lat_inter = _osu_fig("latency", "inter", models, sizes, config)
    bw_intra = _osu_fig("bandwidth", "intra", models, sizes, config)
    bw_inter = _osu_fig("bandwidth", "inter", models, sizes, config)

    eager = [s for s in sizes if s < 4 * KB]
    result: Dict[str, Dict[str, tuple]] = {}
    for model in models:
        r: Dict[str, tuple] = {}
        r["lat_intra"] = improvement_range(lat_intra[f"{model}-H"], lat_intra[f"{model}-D"])
        r["lat_inter"] = improvement_range(lat_inter[f"{model}-H"], lat_inter[f"{model}-D"])
        # eager row: the small-message (GDRCopy-eager) speedup
        eh = Series("eh", [(x, lat_intra[f"{model}-H"].at(x)) for x in eager])
        ed = Series("ed", [(x, lat_intra[f"{model}-D"].at(x)) for x in eager])
        r["eager_intra"] = improvement_range(eh, ed)
        eh = Series("eh", [(x, lat_inter[f"{model}-H"].at(x)) for x in eager])
        ed = Series("ed", [(x, lat_inter[f"{model}-D"].at(x)) for x in eager])
        r["eager_inter"] = improvement_range(eh, ed)
        # bandwidth rows: D/H (bigger is better)
        r["bw_intra"] = improvement_range(bw_intra[f"{model}-D"], bw_intra[f"{model}-H"])
        r["bw_inter"] = improvement_range(bw_inter[f"{model}-D"], bw_inter[f"{model}-H"])
        result[model] = r

    if not quiet:
        rows = {}
        for model in models:
            r = result[model]
            rows[model] = [
                f"{r['lat_intra'][0]:.1f}x-{r['lat_intra'][1]:.1f}x",
                f"{max(r['eager_intra']):.1f}x",
                f"{r['bw_intra'][0]:.1f}x-{r['bw_intra'][1]:.1f}x",
                f"{r['lat_inter'][0]:.1f}x-{r['lat_inter'][1]:.1f}x",
                f"{max(r['eager_inter']):.1f}x",
                f"{r['bw_inter'][0]:.1f}x-{r['bw_inter'][1]:.1f}x",
            ]
        print_table(
            "Table I: improvement with GPU-aware communication",
            rows,
            ["lat intra", "eager intra", "bw intra",
             "lat inter", "eager inter", "bw inter"],
        )
    return result


# ---------------------------------------------------------------------------
# Jacobi3D scaling figures
# ---------------------------------------------------------------------------

def _jacobi_fig(models: Sequence[str], scaling: str, nodes: Sequence[int],
                iters: int, quiet: bool, title: str) -> Dict[str, Series]:
    series: Dict[str, Series] = {}
    for model in models:
        for aware, suffix in ((False, "H"), (True, "D")):
            label = f"{model}-{suffix}"
            overall = Series(f"{label} overall")
            comm = Series(f"{label} comm")
            for n in nodes:
                r = run_jacobi(model, nodes=n, scaling=scaling, gpu_aware=aware,
                               iters=iters, warmup=1)
                overall.add(n, r.iter_time * 1e3)
                comm.add(n, r.comm_time * 1e3)
            series[f"{label}.overall"] = overall
            series[f"{label}.comm"] = comm
    if not quiet:
        print_series(f"{title}: overall time per iteration (ms)",
                     [s for k, s in series.items() if k.endswith("overall")],
                     x_name="nodes", x_fmt=lambda x: str(int(x)))
        print_series(f"{title}: communication time per iteration (ms)",
                     [s for k, s in series.items() if k.endswith("comm")],
                     x_name="nodes", x_fmt=lambda x: str(int(x)))
    return series


def fig14(nodes: Sequence[int] = WEAK_NODES, strong_nodes: Sequence[int] = STRONG_NODES,
          iters: int = 3, quiet: bool = False) -> Dict[str, Dict[str, Series]]:
    """Fig. 14: Charm++ Jacobi3D weak + strong scaling."""
    return {
        "weak": _jacobi_fig(["charm"], "weak", nodes, iters, quiet,
                            "Fig. 14ab: Charm++ Jacobi3D weak scaling"),
        "strong": _jacobi_fig(["charm"], "strong", strong_nodes, iters, quiet,
                              "Fig. 14cd: Charm++ Jacobi3D strong scaling"),
    }


def fig15(nodes: Sequence[int] = WEAK_NODES, strong_nodes: Sequence[int] = STRONG_NODES,
          iters: int = 3, quiet: bool = False) -> Dict[str, Dict[str, Series]]:
    """Fig. 15: AMPI (+OpenMPI reference) Jacobi3D weak + strong scaling."""
    return {
        "weak": _jacobi_fig(["ampi", "openmpi"], "weak", nodes, iters, quiet,
                            "Fig. 15ab: AMPI/OpenMPI Jacobi3D weak scaling"),
        "strong": _jacobi_fig(["ampi", "openmpi"], "strong", strong_nodes, iters, quiet,
                              "Fig. 15cd: AMPI/OpenMPI Jacobi3D strong scaling"),
    }


def fig16(nodes: Sequence[int] = WEAK_NODES, strong_nodes: Sequence[int] = STRONG_NODES,
          iters: int = 3, quiet: bool = False) -> Dict[str, Dict[str, Series]]:
    """Fig. 16: Charm4py Jacobi3D weak + strong scaling."""
    return {
        "weak": _jacobi_fig(["charm4py"], "weak", nodes, iters, quiet,
                            "Fig. 16ab: Charm4py Jacobi3D weak scaling"),
        "strong": _jacobi_fig(["charm4py"], "strong", strong_nodes, iters, quiet,
                              "Fig. 16cd: Charm4py Jacobi3D strong scaling"),
    }


# ---------------------------------------------------------------------------
# Secondary results and ablations
# ---------------------------------------------------------------------------

def ampi_overhead_anatomy(size: int = 8, quiet: bool = False) -> Dict[str, object]:
    """§IV-B1: how much of AMPI's device latency is outside UCX.

    The paper disables the ``CmiSend/RecvDevice`` calls and invokes the
    receive handlers directly, finding ~8 us outside UCX and <2 us inside.
    Here the decomposition comes from the observability layer: the AMPI
    latency run executes on a traced :mod:`repro.api` session, and the
    metrics snapshot's ``time_by_category`` attributes per-layer CPU time
    (``ampi`` / ``machine`` / ``ucx``) to each device message.  The raw
    UCX transfer time is additionally measured directly on a pair of
    workers as an end-to-end cross-check.
    """
    import repro.api as api
    from repro.apps.osu.runner import run_latency
    from repro.hardware.topology import Machine
    from repro.ucx.context import UcpContext

    cfg = MachineConfig.summit(nodes=2)
    # raw UCX: pre-posted receive, device eager path
    m = Machine(cfg)
    ctx = UcpContext(m)
    wa = ctx.create_worker(0, 0, 0)
    wb = ctx.create_worker(1, 0, 0)
    src = m.alloc_device(0, max(size, 1))
    dst = m.alloc_device(1, max(size, 1))
    t0 = m.sim.now
    req = wb.tag_recv_nb(dst, size, tag=1)
    wa.tag_send_nb(wa.ep(1), src, size, tag=1)
    m.sim.run_until_complete(req.event)
    ucx_time = m.sim.now - t0

    sess = api.session(cfg.with_trace(True)).model("ampi").build()
    ampi_lat = run_latency("ampi", size, "intra", True, session=sess)
    snap = sess.metrics_snapshot()
    n_msgs = snap["counters"]["converse.send_device"]
    # per-device-message CPU time by layer, both endpoints summed
    layers_us = {
        cat: t / n_msgs * 1e6 for cat, t in sorted(snap["time_by_category"].items())
    }
    outside_us = sum(v for k, v in layers_us.items() if not k.startswith("ucx"))

    ompi_lat = run_latency("openmpi", size, "intra", True, cfg)
    result: Dict[str, object] = {
        "ucx_us": ucx_time * 1e6,
        "ampi_us": ampi_lat * 1e6,
        "openmpi_us": ompi_lat * 1e6,
        "ampi_outside_ucx_us": outside_us,
        "layers_us": layers_us,
        "n_device_msgs": n_msgs,
    }
    if not quiet:
        print("# SIV-B1: AMPI overhead anatomy (8 B device message, intra-node)")
        for k, v in result.items():
            if isinstance(v, float):
                print(f"{k:>24}: {v:8.2f}")
        for k, v in layers_us.items():
            print(f"{'layer ' + k:>24}: {v:8.2f}")
        print()
    return result


def ablation_gdrcopy(sizes: Sequence[int] = EAGER_SIZES, quiet: bool = False) -> Dict[str, Series]:
    """GDRCopy on/off: the paper notes UCX must find GDRCopy for low
    small-message latency."""
    from repro.apps.osu.runner import run_latency_sweep

    on = run_latency_sweep("charm", "intra", True, sizes, MachineConfig.summit(nodes=2))
    off = run_latency_sweep("charm", "intra", True, sizes, MachineConfig.summit(nodes=2).without_gdrcopy())
    s_on = Series("gdrcopy-on", [(k, v * 1e6) for k, v in on.items()])
    s_off = Series("gdrcopy-off", [(k, v * 1e6) for k, v in off.items()])
    if not quiet:
        print_series("Ablation: GDRCopy detection (Charm++ intra-node latency, us)",
                     [s_on, s_off])
    return {"on": s_on, "off": s_off}


def ablation_early_post(size: int = 1 * MB, quiet: bool = False) -> Dict[str, float]:
    """Future work SVI: pre-posted device receives vs metadata-delayed posts.

    (a) *pre-posted*: the receiver knows the tag in advance (the paper's
    proposed user-provided tags) and posts ``ucp_tag_recv_nb`` before the
    data is sent; (b) *metadata-delayed*: the receive is posted only after
    the host-side metadata message has arrived **and been processed by the
    runtime** (scheduler pick-up, entry dispatch, post entry method,
    ``LrtsRecvDevice``) — the full posting path of the paper's design.
    """
    from repro.hardware.topology import Machine
    from repro.ucx.context import UcpContext

    def run(pre_post: bool) -> float:
        cfg = MachineConfig.summit(nodes=2)
        rt = cfg.runtime
        m = Machine(cfg)
        ctx = UcpContext(m)
        wa = ctx.create_worker(0, 0, 0)
        wb = ctx.create_worker(1, 0, 1)
        src = m.alloc_device(0, size, materialize=False)
        dst = m.alloc_device(1, size, materialize=False)
        if pre_post:
            req = wb.tag_recv_nb(dst, size, tag=9)
            wa.tag_send_nb(wa.ep(1), src, size, tag=9)
        else:
            wa.tag_send_nb(wa.ep(1), src, size, tag=9)
            holder = {}
            runtime_path = (
                rt.scheduler_pickup_overhead
                + rt.entry_dispatch_overhead
                + rt.post_entry_overhead
                + rt.lrts_recv_device_overhead
                + rt.heap_alloc_cost
            )
            wb.set_am_handler(
                lambda payload, sz, src_id: m.sim.schedule(
                    runtime_path,
                    lambda: holder.update(req=wb.tag_recv_nb(dst, size, tag=9)),
                )
            )
            wa.am_send(wa.ep(1), 128, None)
            m.sim.run()
            req = holder["req"]
        m.sim.run_until_complete(req.event)
        return m.sim.now

    pre = run(True)
    post = run(False)
    result = {"pre_posted_us": pre * 1e6, "metadata_delayed_us": post * 1e6,
              "penalty_us": (post - pre) * 1e6}
    if not quiet:
        print(f"# Ablation: early-posted receive vs metadata-delayed ({size} B device rndv)")
        for k, v in result.items():
            print(f"{k:>24}: {v:8.2f}")
        print()
    return result


def ablation_rndv_threshold(
    thresholds: Sequence[int] = (1 * KB, 4 * KB, 16 * KB, 64 * KB),
    sizes: Sequence[int] = (512, 1 * KB, 2 * KB, 4 * KB, 8 * KB, 16 * KB, 32 * KB, 64 * KB, 128 * KB),
    quiet: bool = False,
) -> Dict[int, Series]:
    """Device eager/rendezvous threshold sweep: where the crossover sits."""
    from repro.apps.osu.runner import run_latency_sweep

    out: Dict[int, Series] = {}
    for th in thresholds:
        cfg = MachineConfig.summit(nodes=2)
        cfg = replace(cfg, ucx=replace(cfg.ucx, device_eager_threshold=th))
        sweep = run_latency_sweep("charm", "intra", True, sizes, cfg)
        out[th] = Series(f"thresh={th//KB}K", [(k, v * 1e6) for k, v in sweep.items()])
    if not quiet:
        print_series("Ablation: device rendezvous threshold (Charm++ intra latency, us)",
                     list(out.values()))
    return out


def ablation_pipeline_chunk(
    chunks: Sequence[int] = (128 * KB, 256 * KB, 512 * KB, 1 * MB, 2 * MB),
    size: int = 4 * MB,
    quiet: bool = False,
) -> Dict[int, float]:
    """Pipeline chunk size vs inter-node device bandwidth."""
    from repro.apps.osu.runner import run_bandwidth

    out = {}
    for chunk in chunks:
        cfg = MachineConfig.summit(nodes=2)
        cfg = replace(cfg, ucx=replace(cfg.ucx, pipeline_chunk=chunk))
        out[chunk] = run_bandwidth("charm", size, "inter", True, cfg) / 1e9
    if not quiet:
        print("# Ablation: pipeline chunk size (Charm++ inter-node 4 MB bandwidth, GB/s)")
        for chunk, bw in out.items():
            print(f"{chunk // KB:>8} KB: {bw:6.2f}")
        print()
    return out


def ablation_gpudirect(size: int = 4 * MB, quiet: bool = False) -> Dict[str, float]:
    """Pipelined host staging vs a GPUDirect-RDMA-capable fabric."""
    from repro.apps.osu.runner import run_latency

    staged = run_latency("charm", size, "inter", True, MachineConfig.summit(nodes=2))
    cfg = MachineConfig.summit(nodes=2)
    cfg = replace(cfg, ucx=replace(cfg.ucx, gpudirect_rdma=True))
    gdr = run_latency("charm", size, "inter", True, cfg)
    result = {"pipelined_us": staged * 1e6, "gpudirect_us": gdr * 1e6}
    if not quiet:
        print(f"# Ablation: inter-node device rendezvous lane ({size} B)")
        for k, v in result.items():
            print(f"{k:>16}: {v:9.2f}")
        print()
    return result


def ablation_overdecomposition(
    blocks_per_pe: Sequence[int] = (1, 2, 4),
    nodes: int = 4,
    quiet: bool = False,
) -> Dict[int, float]:
    """Paper SVI future work: overdecomposition for comm/compute overlap.

    More chares per PE let halo transfers of one block overlap another
    block's stencil kernel; the win is bounded by the per-message overheads
    it multiplies."""
    out = {}
    for bpp in blocks_per_pe:
        r = run_jacobi("charm", nodes=nodes, scaling="weak", gpu_aware=True,
                       iters=3, warmup=1, blocks_per_pe=bpp)
        out[bpp] = r.iter_time * 1e3
    if not quiet:
        print(f"# Ablation: overdecomposition (Charm++ weak scaling, {nodes} nodes)")
        for bpp, t in out.items():
            print(f"{bpp:>4} blocks/PE: {t:8.3f} ms/iter")
        print()
    return out


def ablation_ampi_dip(quiet: bool = False) -> Dict[str, Series]:
    """The AMPI-H 128 KB bandwidth dip (SIV-B2) with the quirk model on/off."""
    from repro.apps.osu.runner import run_bandwidth_sweep
    from dataclasses import replace as _r

    sizes = [32 * KB, 64 * KB, 128 * KB, 256 * KB, 512 * KB, 1 * MB]
    on_cfg = MachineConfig.summit(nodes=2)
    off_cfg = _r(on_cfg, runtime=_r(on_cfg.runtime, model_ampi_128k_dip=False))
    on = run_bandwidth_sweep("ampi", "intra", False, sizes, on_cfg)
    off = run_bandwidth_sweep("ampi", "intra", False, sizes, off_cfg)
    s_on = Series("dip-modelled", [(k, v / 1e6) for k, v in on.items()])
    s_off = Series("dip-disabled", [(k, v / 1e6) for k, v in off.items()])
    if not quiet:
        print_series("Ablation: AMPI-H 128 KB dip (intra-node bandwidth, MB/s)",
                     [s_on, s_off])
    return {"on": s_on, "off": s_off}


_RUNNERS = {
    "fig10": fig10, "fig11": fig11, "fig12": fig12, "fig13": fig13,
    "table1": table1,
    "fig14": fig14, "fig15": fig15, "fig16": fig16,
    "anatomy": ampi_overhead_anatomy,
    "ablation-gdrcopy": ablation_gdrcopy,
    "ablation-early-post": ablation_early_post,
    "ablation-rndv-threshold": ablation_rndv_threshold,
    "ablation-pipeline-chunk": ablation_pipeline_chunk,
    "ablation-gpudirect": ablation_gpudirect,
    "ablation-overdecomposition": ablation_overdecomposition,
    "ablation-ampi-dip": ablation_ampi_dip,
}


def main(argv: Optional[List[str]] = None) -> None:
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's tables and figures (simulated Summit)"
    )
    parser.add_argument("what", nargs="*", default=["table1"],
                        help=f"any of: {', '.join(sorted(_RUNNERS))}, or 'all'")
    parser.add_argument("--quick", action="store_true",
                        help="reduced size ladders / node counts")
    parser.add_argument("--plot", action="store_true",
                        help="render log-log ASCII charts of the curves")
    args = parser.parse_args(argv)

    targets = sorted(_RUNNERS) if args.what == ["all"] else args.what
    for name in targets:
        if name not in _RUNNERS:
            raise SystemExit(f"unknown target {name!r}")
        fn = _RUNNERS[name]
        if args.quick and name in ("fig10", "fig11", "fig12", "fig13", "table1"):
            result = fn(sizes=QUICK_SIZES)
        elif args.quick and name in ("fig14", "fig15", "fig16"):
            result = fn(nodes=(1, 4, 16, 64), strong_nodes=(8, 32), iters=2)
        else:
            result = fn()
        if args.plot and name in ("fig10", "fig11", "fig12", "fig13"):
            from repro.bench.plotting import plot_series_dict

            unit = "us" if name in ("fig10", "fig11") else "MB/s"
            print(plot_series_dict(f"{name} ({unit})", result, y_label=unit))


if __name__ == "__main__":
    main()
