"""Telemetry-timeline CLI: quick per-series stats for CI logs.

Usage::

    python -m repro.bench.timeline summary TIMELINE.json [--series GLOB]

``TIMELINE.json`` is what ``--timeline-out`` (repro-osu / repro-jacobi3d /
repro-shuffle) or :meth:`repro.api.Session.export_timeline` writes.  The
summary prints one line per series — count / min / mean / max / p99 / last
— the same shape ``python -m repro.bench.baseline check`` uses for quick
eyeballing in CI logs.
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import sys


def format_summary(doc: dict, pattern: str = "*") -> str:
    series = doc.get("series", {})
    names = sorted(n for n in series if fnmatch.fnmatch(n, pattern))
    lines = [
        f"# timeline summary: {len(names)} of {len(series)} series, "
        f"{doc.get('now', 0.0) * 1e3:.3f} ms simulated, "
        f"capacity {doc.get('capacity', '?')} points/series",
        f"{'series':40s} {'unit':>9s} {'count':>8s} {'min':>12s} "
        f"{'mean':>12s} {'max':>12s} {'p99':>12s} {'last':>12s}",
    ]
    for name in names:
        entry = series[name]
        st = entry.get("stats", {})
        lines.append(
            f"{name:40s} {entry.get('unit', ''):>9s} "
            f"{st.get('count', 0):>8d} {st.get('min', 0.0):>12.4g} "
            f"{st.get('mean', 0.0):>12.4g} {st.get('max', 0.0):>12.4g} "
            f"{st.get('p99', 0.0):>12.4g} {st.get('last', 0.0):>12.4g}"
        )
    if not names:
        lines.append("  (no series matched)")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.timeline",
        description="inspect telemetry timelines written by --timeline-out",
    )
    sub = parser.add_subparsers(dest="cmd", required=True)
    p_sum = sub.add_parser(
        "summary", help="print min/mean/max/p99 per series")
    p_sum.add_argument("path", help="timeline JSON written by --timeline-out")
    p_sum.add_argument("--series", default="*",
                       help="fnmatch pattern selecting series "
                            "(default: all; e.g. 'pool.*' or 'link.*nic*')")
    args = parser.parse_args(argv)

    try:
        with open(args.path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read {args.path}: {exc}", file=sys.stderr)
        return 2
    if not isinstance(doc, dict) or "series" not in doc:
        print(f"error: {args.path} is not a timeline JSON "
              f"(missing 'series')", file=sys.stderr)
        return 2
    if not doc.get("enabled", False):
        print("# note: telemetry was disabled for this run", file=sys.stderr)
    print(format_summary(doc, args.series))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
