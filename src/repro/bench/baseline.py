"""CLI for the perf-regression baseline gate.

Usage::

    python -m repro.bench.baseline record [--out BENCH_baseline.json]
    python -m repro.bench.baseline check  [--baseline BENCH_baseline.json]
                                          [--rtol 0.01]
                                          [--override runtime.ampi_send_overhead=6e-6]

``record`` runs the workload suite of :mod:`repro.obs.baseline` and writes
the fingerprints; ``check`` re-runs the suite and exits nonzero when any
fingerprint drifts outside tolerance.  ``--override section.key=value``
perturbs the config before running (sections: ``topology``, ``cuda``,
``ucx``, ``tags``, ``runtime``, or a bare top-level field) — handy both
for what-if runs and for demonstrating that the gate trips.
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from repro.config import MachineConfig
from repro.obs.baseline import (
    DEFAULT_BASELINE_PATH,
    check_baseline,
    collect_baseline,
    load_baseline,
    save_baseline,
)

_SECTIONS = ("topology", "cuda", "ucx", "tags", "runtime")


def _parse_value(text: str):
    for conv in (int, float):
        try:
            return conv(text)
        except ValueError:
            pass
    if text.lower() in ("true", "false"):
        return text.lower() == "true"
    return text


def apply_override(cfg: MachineConfig, spec: str) -> MachineConfig:
    """Apply one ``section.key=value`` (or top-level ``key=value``) override."""
    if "=" not in spec:
        raise ValueError(f"override {spec!r} is not of the form key=value")
    key, _, text = spec.partition("=")
    value = _parse_value(text.strip())
    key = key.strip()
    if "." in key:
        section, _, name = key.partition(".")
        if section not in _SECTIONS:
            raise ValueError(
                f"unknown config section {section!r}; valid: {_SECTIONS}"
            )
        if section == "ucx":
            return cfg.with_ucx(**{name: value})
        if section == "runtime":
            return cfg.with_runtime(**{name: value})
        if section == "topology":
            return cfg.with_topology(**{name: value})
        from dataclasses import replace

        from repro.config import _validated_replace

        sub = _validated_replace(getattr(cfg, section), {name: value})
        return replace(cfg, **{section: sub})
    return cfg.with_overrides(**{key: value})


def _build_config(overrides: List[str]) -> MachineConfig:
    cfg = MachineConfig.summit(nodes=2)
    for spec in overrides:
        cfg = apply_override(cfg, spec)
    return cfg


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.baseline",
        description="record/check deterministic performance baselines",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    rec = sub.add_parser("record", help="run the suite and write the baseline")
    rec.add_argument("--out", default=DEFAULT_BASELINE_PATH,
                     help=f"output path (default {DEFAULT_BASELINE_PATH})")
    rec.add_argument("--override", action="append", default=[],
                     metavar="SECTION.KEY=VALUE",
                     help="config perturbation (repeatable)")

    chk = sub.add_parser("check", help="re-run the suite and compare")
    chk.add_argument("--baseline", default=DEFAULT_BASELINE_PATH,
                     help=f"baseline path (default {DEFAULT_BASELINE_PATH})")
    chk.add_argument("--rtol", type=float, default=None,
                     help="relative tolerance for modeled times "
                          "(default: the baseline's recorded rtol)")
    chk.add_argument("--override", action="append", default=[],
                     metavar="SECTION.KEY=VALUE",
                     help="config perturbation (repeatable)")

    args = parser.parse_args(argv)
    cfg = _build_config(args.override)

    if args.command == "record":
        doc = collect_baseline(cfg)
        path = save_baseline(doc, args.out)
        print(f"baseline with {len(doc['entries'])} workload(s) written to {path}")
        return 0

    report = check_baseline(load_baseline(args.baseline), cfg, rtol=args.rtol)
    print(report.format())
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
