"""CLI for the perf-regression baseline gate.

Usage::

    python -m repro.bench.baseline record [--out BENCH_baseline.json]
                                          [--workloads NAME ...]
    python -m repro.bench.baseline check  [--baseline BENCH_baseline.json]
                                          [--rtol 0.01] [--atol 1e-12]
                                          [--no-budget]
                                          [--override runtime.ampi_send_overhead=6e-6]

``record`` runs the workload suite of :mod:`repro.obs.baseline` and writes
the fingerprints; ``check`` re-runs the suite and exits nonzero when any
fingerprint drifts outside tolerance **or** any workload overruns its
wall-clock budget (``--no-budget`` skips the latter).  ``--override
section.key=value`` perturbs the config before running (sections:
``topology``, ``cuda``, ``ucx``, ``tags``, ``runtime``, or a bare
top-level field) — handy both for what-if runs and for demonstrating that
the gate trips.
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from repro.config import MachineConfig
from repro.obs.baseline import (
    DEFAULT_BASELINE_PATH,
    check_baseline,
    collect_baseline,
    load_baseline,
    save_baseline,
)

_SECTIONS = ("topology", "cuda", "ucx", "tags", "runtime")


def _parse_value(text: str):
    for conv in (int, float):
        try:
            return conv(text)
        except ValueError:
            pass
    if text.lower() in ("true", "false"):
        return text.lower() == "true"
    return text


def apply_override(cfg: MachineConfig, spec: str) -> MachineConfig:
    """Apply one ``section.key=value`` (or top-level ``key=value``) override."""
    if "=" not in spec:
        raise ValueError(f"override {spec!r} is not of the form key=value")
    key, _, text = spec.partition("=")
    value = _parse_value(text.strip())
    key = key.strip()
    if "." in key:
        section, _, name = key.partition(".")
        if section not in _SECTIONS:
            raise ValueError(
                f"unknown config section {section!r}; valid: {_SECTIONS}"
            )
        if section == "ucx":
            return cfg.with_ucx(**{name: value})
        if section == "runtime":
            return cfg.with_runtime(**{name: value})
        if section == "topology":
            return cfg.with_topology(**{name: value})
        from dataclasses import replace

        from repro.config import _validated_replace

        sub = _validated_replace(getattr(cfg, section), {name: value})
        return replace(cfg, **{section: sub})
    return cfg.with_overrides(**{key: value})


def _build_config(overrides: List[str]) -> MachineConfig:
    cfg = MachineConfig.summit(nodes=2)
    for spec in overrides:
        cfg = apply_override(cfg, spec)
    return cfg


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.baseline",
        description="record/check deterministic performance baselines",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    rec = sub.add_parser("record", help="run the suite and write the baseline")
    rec.add_argument("--out", default=DEFAULT_BASELINE_PATH,
                     help=f"output path (default {DEFAULT_BASELINE_PATH})")
    rec.add_argument("--override", action="append", default=[],
                     metavar="SECTION.KEY=VALUE",
                     help="config perturbation (repeatable)")
    rec.add_argument("--workloads", action="append", default=None,
                     metavar="NAME",
                     help="record only the named workload(s) (repeatable; "
                          "default: the full suite)")

    chk = sub.add_parser("check", help="re-run the suite and compare")
    chk.add_argument("--baseline", default=DEFAULT_BASELINE_PATH,
                     help=f"baseline path (default {DEFAULT_BASELINE_PATH})")
    chk.add_argument("--rtol", type=float, default=None,
                     help="relative tolerance for modeled times "
                          "(default: the baseline's recorded rtol)")
    chk.add_argument("--atol", type=float, default=None,
                     help="absolute tolerance floor for modeled times "
                          "(default: the baseline's recorded atol)")
    chk.add_argument("--no-budget", action="store_true",
                     help="skip the per-workload wall-clock budget assertion")
    chk.add_argument("--override", action="append", default=[],
                     metavar="SECTION.KEY=VALUE",
                     help="config perturbation (repeatable)")

    args = parser.parse_args(argv)
    cfg = _build_config(args.override)

    if args.command == "record":
        doc = collect_baseline(cfg, workloads=args.workloads)
        path = save_baseline(doc, args.out)
        print(f"baseline with {len(doc['entries'])} workload(s) written to {path}")
        return 0

    doc = load_baseline(args.baseline)
    # --no-budget: an explicit None budget per entry disables the assertion
    budgets = dict.fromkeys(doc.get("entries", {}), None) if args.no_budget else None
    report = check_baseline(doc, cfg, rtol=args.rtol, atol=args.atol,
                            budgets=budgets)
    print(report.format())
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
