"""The paper's reported numbers, as structured data.

Single source of truth for every quantitative claim the reproduction is
checked against: Table I's improvement ranges, §IV-B2's peak bandwidths,
§IV-B1's overhead anatomy, and §IV-C's Jacobi3D speedup ranges.  Used by
the pytest benchmarks and by :mod:`repro.bench.experiments` to generate
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class Range:
    lo: float
    hi: float

    def __str__(self) -> str:
        return f"{self.lo:g}x–{self.hi:g}x"


#: Table I — improvement in latency and bandwidth with GPU-aware
#: communication (H over D for latency; D over H for bandwidth).
TABLE1: Dict[str, Dict[str, object]] = {
    "charm": {
        "lat_intra": Range(2.1, 10.2), "eager_intra": 4.4, "bw_intra": Range(1.4, 9.6),
        "lat_inter": Range(1.2, 4.1), "eager_inter": 4.1, "bw_inter": Range(1.2, 2.7),
    },
    "ampi": {
        "lat_intra": Range(1.9, 11.7), "eager_intra": 3.6, "bw_intra": Range(1.3, 10.0),
        "lat_inter": Range(1.8, 3.5), "eager_inter": 3.4, "bw_inter": Range(1.3, 2.6),
    },
    "charm4py": {
        "lat_intra": Range(1.8, 17.4), "eager_intra": 1.9, "bw_intra": Range(1.3, 10.5),
        "lat_inter": Range(1.5, 3.4), "eager_inter": 1.8, "bw_inter": Range(1.0, 1.5),
    },
}

#: §IV-B2 — peak bandwidths at 4 MB (GB/s, decimal)
PEAK_BW: Dict[str, Dict[str, float]] = {
    "charm": {"intra": 44.7, "inter": 10.0},
    "ampi": {"intra": 45.4, "inter": 10.0},
    "charm4py": {"intra": 35.5, "inter": 6.0},
}

#: §IV-B1 — the overhead-anatomy experiment
ANATOMY = {
    "ucx_device_transfer_us": 2.0,  # "latency of less than 2 us"
    "ampi_outside_ucx_us": 8.0,  # "turns out to be about 8 us"
}

#: §IV-C — Jacobi3D communication-time speedups (weak scaling; the largest
#: value is obtained on a single node) and overall-time improvements.
JACOBI = {
    "charm": {
        "comm_speedup_weak": Range(1.1, 12.4),
        "overall_reduction_weak": (0.05, 0.37),  # 5%..37%
        "comm_speedup_strong": (1.12, 1.82),  # "between 12% and 82%"
        "overall_reduction_strong": (0.09, 0.27),
    },
    "ampi": {
        "comm_speedup_weak": Range(1.3, 12.8),
        "overall_reduction_weak": (0.0, 0.41),  # "up to 41%"
        "comm_speedup_strong": (1.9, 2.6),
        "overall_reduction_strong": (0.27, 0.74),
    },
    "charm4py": {
        "comm_speedup_weak": Range(1.9, 19.7),
        "overall_speedup_weak": (1.9, 7.3),  # overall *speedup*, not %
        "comm_speedup_strong": (1.4, 3.0),
        "overall_speedup_strong": (1.5, 2.7),
    },
}

#: Experimental-setup constants (§IV-A) the hardware model encodes
SETUP = {
    "nvlink_gbs": 50.0,
    "xbus_gbs": 64.0,
    "nic_gbs": 12.5,
    "gpus_per_node": 6,
    "max_nodes": 256,
    "weak_base_edge": 1536,
    "strong_edge": 3072,
}


def within(measured: float, expected: float, rel: float) -> bool:
    """True if ``measured`` is within ``rel`` relative error of ``expected``."""
    if expected == 0:
        return measured == 0
    return abs(measured - expected) / abs(expected) <= rel


def verdict(measured: float, expected: float, rel: float = 0.5) -> str:
    """A compact OK/deviation marker for report tables."""
    return "ok" if within(measured, expected, rel) else "deviates"
