"""Generate EXPERIMENTS.md: paper-vs-measured for every table and figure.

Runs the whole evaluation on the simulated Summit and writes a markdown
report comparing each measured quantity against the paper's reported value
(:mod:`repro.bench.paper`).  This is how the repository's EXPERIMENTS.md is
produced::

    python -m repro.bench.experiments                # full ladders (slow)
    python -m repro.bench.experiments --quick        # reduced ladders
    python -m repro.bench.experiments -o /tmp/e.md
"""

from __future__ import annotations

import argparse
from typing import List, Optional, Sequence

from repro.apps.jacobi3d.driver import run_jacobi
from repro.apps.osu.runner import OSU_SIZES
from repro.bench import figures, paper
from repro.config import MB


def _fmt_range(r) -> str:
    return f"{r[0]:.1f}x–{r[1]:.1f}x"


def _table1_section(sizes: Sequence[int]) -> List[str]:
    measured = figures.table1(sizes=sizes, quiet=True)
    rows = [
        "## Table I — improvement with GPU-aware communication",
        "",
        "Ratios over the full message ladder (latency: H/D; bandwidth: D/H;",
        "eager: the small-message speedup).  Paper values in parentheses.",
        "",
        "| model | lat intra | eager intra | bw intra | lat inter | eager inter | bw inter |",
        "|---|---|---|---|---|---|---|",
    ]
    for model in ("charm", "ampi", "charm4py"):
        m = measured[model]
        p = paper.TABLE1[model]
        cells = []
        cells.append(f"{_fmt_range(m['lat_intra'])} ({p['lat_intra']})")
        cells.append(f"{max(m['eager_intra']):.1f}x ({p['eager_intra']:g}x)")
        cells.append(f"{_fmt_range(m['bw_intra'])} ({p['bw_intra']})")
        cells.append(f"{_fmt_range(m['lat_inter'])} ({p['lat_inter']})")
        cells.append(f"{max(m['eager_inter']):.1f}x ({p['eager_inter']:g}x)")
        cells.append(f"{_fmt_range(m['bw_inter'])} ({p['bw_inter']})")
        rows.append("| " + " | ".join([model] + cells) + " |")
    rows.append("")
    return rows


def _peaks_section(sizes: Sequence[int]) -> List[str]:
    intra = figures.fig12(sizes=[4 * MB], quiet=True)
    inter = figures.fig13(sizes=[4 * MB], quiet=True)
    rows = [
        "## §IV-B2 — peak bandwidths at 4 MB (GB/s)",
        "",
        "| model | intra measured | intra paper | inter measured | inter paper |",
        "|---|---|---|---|---|",
    ]
    for model in ("charm", "ampi", "charm4py"):
        mi = intra[f"{model}-D"].at(4 * MB) / 1e3
        me = inter[f"{model}-D"].at(4 * MB) / 1e3
        pi = paper.PEAK_BW[model]["intra"]
        pe = paper.PEAK_BW[model]["inter"]
        rows.append(
            f"| {model} | {mi:.1f} ({paper.verdict(mi, pi, 0.15)}) | {pi} "
            f"| {me:.1f} ({paper.verdict(me, pe, 0.15)}) | {pe} |"
        )
    rows.append("")
    return rows


def _anatomy_section() -> List[str]:
    r = figures.ampi_overhead_anatomy(quiet=True)
    return [
        "## §IV-B1 — AMPI overhead anatomy (8 B device message)",
        "",
        "| quantity | measured (μs) | paper (μs) |",
        "|---|---|---|",
        f"| raw UCX device transfer | {r['ucx_us']:.2f} | < {paper.ANATOMY['ucx_device_transfer_us']:g} |",
        f"| OpenMPI end-to-end | {r['openmpi_us']:.2f} | ~2 |",
        f"| AMPI end-to-end | {r['ampi_us']:.2f} | ~10 |",
        f"| AMPI outside UCX | {r['ampi_outside_ucx_us']:.2f} | ~{paper.ANATOMY['ampi_outside_ucx_us']:g} |",
        "",
        "The decomposition matches the paper's structure — most of AMPI's",
        "device-message latency is spent above UCX (matching, message",
        "creation, callbacks, delayed posting) — though our simulated AMPI",
        "is somewhat leaner than the measured implementation.",
        "",
    ]


def _jacobi_section(nodes: Sequence[int], strong_nodes: Sequence[int],
                    iters: int) -> List[str]:
    rows = [
        "## Figs. 14–16 — Jacobi3D weak/strong scaling",
        "",
        "Per-iteration times (ms): overall and communication, host-staging",
        "(H) vs GPU-aware (D).",
        "",
    ]
    for model, fig in (("charm", "Fig. 14"), ("ampi", "Fig. 15"),
                       ("openmpi", "Fig. 15 ref"), ("charm4py", "Fig. 16")):
        rows.append(f"### {fig}: {model}, weak scaling")
        rows.append("")
        rows.append("| nodes | H overall | D overall | H comm | D comm | comm speedup |")
        rows.append("|---|---|---|---|---|---|")
        ratios = []
        for n in nodes:
            d = run_jacobi(model, nodes=n, scaling="weak", gpu_aware=True,
                           iters=iters, warmup=1)
            h = run_jacobi(model, nodes=n, scaling="weak", gpu_aware=False,
                           iters=iters, warmup=1)
            ratio = h.comm_time / d.comm_time
            ratios.append(ratio)
            rows.append(
                f"| {n} | {h.iter_time*1e3:.2f} | {d.iter_time*1e3:.2f} "
                f"| {h.comm_time*1e3:.2f} | {d.comm_time*1e3:.2f} | {ratio:.1f}x |"
            )
        if model in paper.JACOBI:
            expected = paper.JACOBI[model]["comm_speedup_weak"]
            rows.append("")
            rows.append(
                f"Measured comm speedup range {min(ratios):.1f}x–{max(ratios):.1f}x; "
                f"paper reports {expected} (largest on a single node — "
                f"{'reproduced' if ratios[0] == max(ratios) else 'NOT reproduced'})."
            )
        rows.append("")
    rows.append("### Strong scaling (3072³)")
    rows.append("")
    rows.append("| nodes | model | H overall | D overall | H comm | D comm |")
    rows.append("|---|---|---|---|---|---|")
    for model in ("charm", "ampi", "charm4py"):
        for n in strong_nodes:
            d = run_jacobi(model, nodes=n, scaling="strong", gpu_aware=True,
                           iters=iters, warmup=1)
            h = run_jacobi(model, nodes=n, scaling="strong", gpu_aware=False,
                           iters=iters, warmup=1)
            rows.append(
                f"| {n} | {model} | {h.iter_time*1e3:.2f} | {d.iter_time*1e3:.2f} "
                f"| {h.comm_time*1e3:.2f} | {d.comm_time*1e3:.2f} |"
            )
    rows.append("")
    return rows


def _ablations_section() -> List[str]:
    gdr = figures.ablation_gdrcopy(sizes=[8, 512, 2048], quiet=True)
    early = figures.ablation_early_post(quiet=True)
    gpudirect = figures.ablation_gpudirect(quiet=True)
    dip = figures.ablation_ampi_dip(quiet=True)
    over = figures.ablation_overdecomposition(blocks_per_pe=(1, 2, 4), nodes=2,
                                              quiet=True)
    out = [
        "## Ablations (design choices and future-work items)",
        "",
        f"* **GDRCopy detection** (§IV-B1 caveat): without it, 8 B device "
        f"latency goes from {gdr['on'].at(8):.1f} μs to {gdr['off'].at(8):.1f} μs "
        f"— the detection is indeed essential.",
        f"* **Pre-posted receives** (§VI future work): the metadata-delayed "
        f"posting of the paper's design costs {early['penalty_us']:.2f} μs on a "
        f"1 MB device rendezvous ({early['pre_posted_us']:.1f} vs "
        f"{early['metadata_delayed_us']:.1f} μs).",
        f"* **GPUDirect RDMA vs pipelined staging**: a GDR-capable fabric "
        f"would cut the 4 MB inter-node rendezvous from "
        f"{gpudirect['pipelined_us']:.0f} μs to {gpudirect['gpudirect_us']:.0f} μs.",
        f"* **AMPI-H 128 KB dip** (§IV-B2): modelled as a registration-"
        f"threshold artifact; at 128 KB the quirk depresses AMPI-H intra "
        f"bandwidth to {dip['on'].at(128*1024)/1e3:.1f} GB/s "
        f"(vs {dip['off'].at(128*1024)/1e3:.1f} GB/s with the quirk disabled).",
        f"* **Overdecomposition** (§VI future work): on 2 nodes, 2 blocks/PE "
        f"improves Jacobi3D to {over[2]:.2f} ms/iter from {over[1]:.2f} "
        f"(communication/computation overlap); 4 blocks/PE regresses to "
        f"{over[4]:.2f} (granularity overheads).",
        "",
    ]
    return out


HEADER = """# EXPERIMENTS — paper vs. this reproduction

Every quantitative claim of the paper's evaluation (§IV), regenerated on
the simulated Summit and compared against the published value.  Regenerate
this file with:

```bash
python -m repro.bench.experiments            # full ladders (~30 min)
python -m repro.bench.experiments --quick    # reduced ladders (~3 min)
```

**Reading guide.**  Absolute microseconds are *calibrated* (the link
speeds and per-layer software overheads in `repro/config.py` were tuned
once against Table I and §IV-B2); everything else — crossover positions,
who wins where, how gaps scale with size and node count — is *emergent*
from the protocol and runtime mechanics.  Shapes are the claim; exact
decimals are not.

## Calibration anchors and known deviations

* Calibrated to: Table I's eager speedups and range endpoints, §IV-B2's
  peak bandwidths, §IV-B1's layer decomposition, and the scale of
  Fig. 14's per-iteration times.
* **Known deviations** (documented, not hidden):
  1. inter-node *bandwidth* improvement ranges exceed the paper's at small
     and mid sizes (our host-staging variant pays full per-message
     `cudaMemcpy`+sync serialisation; the authors' H variants appear to
     overlap staging better in the bandwidth window);
  2. Jacobi3D communication speedups at 1 node are somewhat smaller than
     the paper's (9–13x vs 12.4–19.7x): our host-copy contention model is
     calibrated to the single-pair OSU curves and under-penalises the
     6-GPU-per-node host-staging storm;
  3. at the extreme 256-node strong-scaling point the Charm++ GPU-aware
     advantage narrows to near-parity (2.19 vs 2.21 ms/iter; the paper
     keeps a 9%+ overall win there) — the per-halo metadata round and
     pipeline fill/drain our model charges approach the face transfer
     time at that scale.  AMPI and Charm4py keep a clear win throughout.
"""


def generate(path: Optional[str] = None, quick: bool = False,
             iters: int = 3) -> str:
    sizes = figures.QUICK_SIZES if quick else OSU_SIZES
    nodes = (1, 4, 16) if quick else (1, 2, 4, 8, 16, 32, 64, 128, 256)
    strong = (8, 32) if quick else (8, 16, 32, 64, 128, 256)

    parts: List[str] = [HEADER]
    parts.extend(_table1_section(sizes))
    parts.extend(_peaks_section(sizes))
    parts.extend(_anatomy_section())
    parts.extend(_jacobi_section(nodes, strong, iters))
    parts.extend(_ablations_section())
    parts.append(
        "## Experiment index\n\n"
        "See DESIGN.md §5 for the table/figure → module → benchmark map; "
        "each `benchmarks/test_*.py` regenerates one artifact and asserts "
        "its paper-shape invariants."
    )
    text = "\n".join(parts) + "\n"
    if path:
        with open(path, "w") as fh:
            fh.write(text)
    return text


def main(argv: Optional[List[str]] = None) -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("-o", "--output", default="EXPERIMENTS.md")
    ap.add_argument("--quick", action="store_true")
    args = ap.parse_args(argv)
    generate(args.output, quick=args.quick)
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
