"""Formatting and ratio helpers for the figure/table runners."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.config import KB, MB


@dataclass
class Series:
    """One curve of a figure: label -> ordered (x, y) points."""

    label: str
    points: List[Tuple[float, float]] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        self.points.append((x, y))

    @property
    def xs(self) -> List[float]:
        return [p[0] for p in self.points]

    @property
    def ys(self) -> List[float]:
        return [p[1] for p in self.points]

    def at(self, x: float) -> float:
        for px, py in self.points:
            if px == x:
                return py
        raise KeyError(f"{self.label}: no point at x={x}")


def improvement_range(h: Series, d: Series) -> Tuple[float, float]:
    """(min, max) of H/D across shared x values — how Table I's
    "Improvement ... Range" rows are computed from the latency figures
    (for bandwidth figures pass (D, H) since bigger is better)."""
    shared = [x for x in h.xs if x in set(d.xs)]
    if not shared:
        raise ValueError("series share no x values")
    ratios = [h.at(x) / d.at(x) for x in shared]
    return min(ratios), max(ratios)


def fmt_size(size: int) -> str:
    if size >= MB:
        return f"{size // MB}M"
    if size >= KB:
        return f"{size // KB}K"
    return str(size)


def print_series(title: str, series: Sequence[Series], x_name: str = "size",
                 y_fmt: str = "{:.2f}", x_fmt=None) -> None:
    """Print curves as an aligned table (one row per x, one column per curve)."""
    print(f"# {title}")
    xs = sorted({x for s in series for x in s.xs})
    header = f"{x_name:>10}" + "".join(f"{s.label:>16}" for s in series)
    print(header)
    for x in xs:
        if x_fmt is not None:
            row = f"{x_fmt(x):>10}"
        else:
            row = f"{fmt_size(int(x)):>10}"
        for s in series:
            try:
                row += f"{y_fmt.format(s.at(x)):>16}"
            except KeyError:
                row += f"{'-':>16}"
        print(row)
    print()


def print_table(title: str, rows: Dict[str, Sequence[str]], columns: Sequence[str]) -> None:
    print(f"# {title}")
    width = max(len(c) for c in columns) + 4
    print(f"{'':>24}" + "".join(f"{c:>{width}}" for c in columns))
    for name, values in rows.items():
        print(f"{name:>24}" + "".join(f"{v:>{width}}" for v in values))
    print()
