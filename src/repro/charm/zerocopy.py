"""Zero Copy API machinery: post entry methods and pending invocations.

When an entry-method message announcing GPU buffers arrives, the runtime
first runs the chare's *post entry method*, handing it one
:class:`DevicePost` per announced buffer.  The user assigns each post's
``buffer`` (the destination GPU allocation); the runtime then posts the
tagged receives and delays the regular entry method until all GPU data has
landed — the receive-side flow of the paper's §III-B2.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.core.device_buffer import CmiDeviceBuffer
from repro.hardware.memory import Buffer


class PostError(RuntimeError):
    """The post entry method did not name a destination for every buffer."""


@dataclass
class DevicePost:
    """Receiver-side slot for one incoming GPU buffer.

    ``size`` and ``tag`` come from the sender's metadata; the post entry
    method must set ``buffer`` to a device allocation of at least ``size``
    bytes (the paper's ``data = recv_gpu_data`` line).  ``announced_at``
    is the simulated time the metadata message was handled — the earliest
    instant the receiver *could* have posted (introspection only)."""

    size: int
    tag: int
    src_pe: int
    buffer: Optional[Buffer] = None
    announced_at: float = 0.0

    def validate(self) -> None:
        if self.buffer is None:
            raise PostError("post entry method left a device buffer unset")
        if not self.buffer.on_device:
            raise PostError("post destination must be device memory")
        if self.buffer.size < self.size:
            raise PostError(
                f"post destination of {self.buffer.size} B cannot hold {self.size} B"
            )


_pending_ids = itertools.count(1)


@dataclass
class PendingInvocation:
    """An entry invocation waiting for its GPU buffers to arrive."""

    chare_id: int
    method: str
    args: Tuple[Any, ...]
    posts: List[DevicePost]
    remaining: int
    pending_id: int = field(default_factory=lambda: next(_pending_ids))

    @staticmethod
    def make_posts(dev_bufs: List[CmiDeviceBuffer],
                   announced_at: float = 0.0) -> List[DevicePost]:
        return [
            DevicePost(size=b.size, tag=b.tag, src_pe=b.src_pe,
                       announced_at=announced_at)
            for b in dev_bufs
        ]
