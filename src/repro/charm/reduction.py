"""Tree reductions over chare collections.

Elements of a group/array call ``charm.reductions.contribute(self, value,
op, callback)``; partial results combine locally on each PE, flow up a
4-ary tree over the PEs hosting elements, and the root delivers the final
value through the :class:`CkCallback`.  Rounds are matched by per-element
sequence numbers, so back-to-back reductions (one per Jacobi iteration,
say) pipeline safely.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.collectives.ops import ReduceOp
from repro.converse.message import CmiMessage

_BRANCH = 4


def _value_bytes(value: Any) -> int:
    if isinstance(value, np.ndarray):
        return value.nbytes
    return 8


class _RedState:
    __slots__ = ("remaining", "acc", "op", "callback")

    def __init__(self, remaining: int, op: ReduceOp) -> None:
        self.remaining = remaining
        self.acc: Any = None
        self.op = op
        self.callback = None

    def merge(self, value: Any) -> None:
        self.acc = value if self.acc is None else self.op.combine(self.acc, value)
        self.remaining -= 1


class ReductionManager:
    """One per :class:`Charm` runtime; see module docstring."""

    def __init__(self, charm) -> None:
        self.charm = charm
        charm.converse.register_handler("charm_reduction", self._handle_partial)
        # (collection, round, pe) -> state
        self._states: Dict[Tuple[int, int, int], _RedState] = {}
        # collection -> (sorted pe list, elements per pe)
        self._layout_cache: Dict[int, Tuple[List[int], Dict[int, int]]] = {}

    # -- topology helpers ----------------------------------------------------
    def _layout(self, coll: int) -> Tuple[List[int], Dict[int, int]]:
        if coll not in self._layout_cache:
            counts: Dict[int, int] = {}
            for cid in self.charm.collections[coll]:
                pe = self.charm.chare_pe[cid]
                counts[pe] = counts.get(pe, 0) + 1
            self._layout_cache[coll] = (sorted(counts), counts)
        return self._layout_cache[coll]

    @staticmethod
    def _children_count(pe_list: List[int], pe: int) -> int:
        idx = pe_list.index(pe)
        lo = _BRANCH * idx + 1
        hi = min(lo + _BRANCH, len(pe_list))
        return max(0, hi - lo)

    @staticmethod
    def _parent(pe_list: List[int], pe: int) -> Optional[int]:
        idx = pe_list.index(pe)
        if idx == 0:
            return None
        return pe_list[(idx - 1) // _BRANCH]

    def _state(self, coll: int, rnd: int, pe: int) -> _RedState:
        key = (coll, rnd, pe)
        if key not in self._states:
            pe_list, counts = self._layout(coll)
            expected = counts.get(pe, 0) + self._children_count(pe_list, pe)
            self._states[key] = _RedState(expected, op=ReduceOp.SUM)
        return self._states[key]

    # -- API --------------------------------------------------------------------
    def contribute(self, chare, value: Any, op=ReduceOp.SUM, callback=None) -> None:
        """Contribute ``value`` to the current reduction round of the
        collection ``chare`` belongs to.  ``op`` is a
        :class:`~repro.collectives.ops.ReduceOp` or its string name."""
        op = ReduceOp.of(op)
        cid = chare.thisProxy.chare_id
        coll = self.charm._chare_coll.get(cid)
        if coll is None:
            raise RuntimeError("contribute() requires a group/array element")
        rnd = getattr(chare, "_red_round", 0)
        chare._red_round = rnd + 1
        pe = self.charm.chare_pe[cid]
        self.charm.charge_current_pe(self.charm.cfg.runtime.reduction_overhead)
        st = self._state(coll, rnd, pe)
        st.op = op
        if callback is not None:
            st.callback = callback
        st.merge(value)
        self._maybe_forward(coll, rnd, pe)

    # -- internal flow ---------------------------------------------------------------
    def _maybe_forward(self, coll: int, rnd: int, pe: int) -> None:
        st = self._states[(coll, rnd, pe)]
        if st.remaining > 0:
            return
        pe_list, _counts = self._layout(coll)
        parent = self._parent(pe_list, pe)
        del self._states[(coll, rnd, pe)]
        if parent is None:
            cb = st.callback
            if cb is None:
                raise RuntimeError("reduction completed with no callback at root")
            prev, self.charm._current_pe = self.charm._current_pe, pe
            try:
                cb.send(self.charm, st.acc)
            finally:
                self.charm._current_pe = prev
            return
        msg = CmiMessage(
            handler="charm_reduction",
            payload=(coll, rnd, st.acc, st.op, st.callback),
            host_bytes=_value_bytes(st.acc),
            src_pe=pe,
            dst_pe=parent,
        )
        self.charm.converse.cmi_send(pe, msg)

    def _handle_partial(self, pe, msg: CmiMessage) -> None:
        coll, rnd, partial, op, callback = msg.payload
        pe.charge(self.charm.cfg.runtime.reduction_overhead)
        st = self._state(coll, rnd, pe.index)
        st.op = op
        if callback is not None and st.callback is None:
            st.callback = callback
        st.merge(partial)
        self._maybe_forward(coll, rnd, pe.index)
