"""Charm++: message-driven chares over the Converse/UCX machine layer.

The programming model of the paper's §II-C and §III-B:

* :class:`Chare` objects live on PEs and communicate by asynchronously
  invoking each other's *entry methods* through proxies;
* GPU parameters are passed as :class:`CkDeviceBuffer` wrappers (the
  ``nocopydevice`` attribute of the CI file);
* receivers name destination GPU buffers in *post entry methods* (the Zero
  Copy API extension) before the regular entry method runs;
* completion is signalled through :class:`CkCallback`.

Entry methods declared as generator functions model Charm++'s ``[threaded]``
entry methods: they may block (on CUDA synchronisation, futures, …) and
occupy the PE while running.
"""

from repro.charm.callback import CkCallback
from repro.charm.chare import Chare
from repro.charm.charm import Charm
from repro.charm.proxy import ArrayProxy, ChareProxy, GroupProxy
from repro.charm.zerocopy import DevicePost
from repro.core.device_buffer import CkDeviceBuffer

__all__ = [
    "ArrayProxy",
    "Chare",
    "ChareProxy",
    "Charm",
    "CkCallback",
    "CkDeviceBuffer",
    "DevicePost",
    "GroupProxy",
]
