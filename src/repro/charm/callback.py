"""CkCallback: completion notifications routed through the runtime."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.charm.charm import Charm
    from repro.charm.proxy import ChareProxy


class CkCallback:
    """Either a plain callable fired at the invoking PE, or an entry-method
    target (``proxy``, ``method``) the value is sent to as a message.

    Charging: invoking a callback costs ``callback_invoke_overhead`` on the
    PE where it fires (the paper counts these among AMPI's non-UCX
    overheads)."""

    __slots__ = ("fn", "proxy", "method", "_charm")

    def __init__(
        self,
        fn: Optional[Callable[..., None]] = None,
        proxy: Optional["ChareProxy"] = None,
        method: Optional[str] = None,
    ) -> None:
        if fn is None and (proxy is None or method is None):
            raise ValueError("CkCallback needs fn, or proxy+method")
        if fn is not None and proxy is not None:
            raise ValueError("CkCallback takes fn or proxy+method, not both")
        self.fn = fn
        self.proxy = proxy
        self.method = method

    def send(self, charm: "Charm", *value: Any) -> None:
        charm.charge_current_pe(charm.cfg.runtime.callback_invoke_overhead)
        if self.fn is not None:
            self.fn(*value)
        else:
            getattr(self.proxy, self.method)(*value)
