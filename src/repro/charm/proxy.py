"""Proxies: the handles through which entry methods are invoked.

``proxy.method(args...)`` sends an asynchronous entry-method invocation to
the chare the proxy names; nothing is returned (message-driven execution).
Group and array proxies support element indexing (``group[3].foo()``) and
broadcast (``group.foo()`` with no index selects every element).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List

if TYPE_CHECKING:  # pragma: no cover
    from repro.charm.charm import Charm


class _Invoker:
    """Bound entry-method name; calling it fires the invocation."""

    __slots__ = ("_proxy", "_method")

    def __init__(self, proxy: "ChareProxy", method: str) -> None:
        self._proxy = proxy
        self._method = method

    def __call__(self, *args: Any) -> None:
        self._proxy._charm.invoke(self._proxy._chare_id, self._method, args)


class ChareProxy:
    """Proxy to a single chare."""

    __slots__ = ("_charm", "_chare_id")

    def __init__(self, charm: "Charm", chare_id: int) -> None:
        self._charm = charm
        self._chare_id = chare_id

    @property
    def chare_id(self) -> int:
        return self._chare_id

    def __getattr__(self, name: str) -> _Invoker:
        if name.startswith("_"):
            raise AttributeError(name)
        return _Invoker(self, name)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ChareProxy) and other._chare_id == self._chare_id

    def __hash__(self) -> int:
        return hash(("proxy", self._chare_id))


class _CollectionInvoker:
    """Broadcast invoker for group/array proxies."""

    __slots__ = ("_coll", "_method")

    def __init__(self, coll: "_CollectionProxy", method: str) -> None:
        self._coll = coll
        self._method = method

    def __call__(self, *args: Any) -> None:
        for cid in self._coll._element_ids:
            self._coll._charm.invoke(cid, self._method, args)


class _CollectionProxy:
    """Common behaviour of group and array proxies."""

    def __init__(self, charm: "Charm", element_ids: List[int]) -> None:
        self._charm = charm
        self._element_ids = element_ids

    def __len__(self) -> int:
        return len(self._element_ids)

    def __getitem__(self, index: int) -> ChareProxy:
        return ChareProxy(self._charm, self._element_ids[index])

    def __getattr__(self, name: str) -> _CollectionInvoker:
        if name.startswith("_"):
            raise AttributeError(name)
        return _CollectionInvoker(self, name)


class GroupProxy(_CollectionProxy):
    """One element per PE; ``group[pe]`` addresses the element on ``pe``."""


class ArrayProxy(_CollectionProxy):
    """A 1-D chare array with an arbitrary element->PE mapping."""
