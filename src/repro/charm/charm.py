"""The Charm++ runtime: chare registry, entry dispatch, GPU-aware sends.

Construction builds the whole stack of the paper's Fig. 1: a simulated
machine, one PE per GPU (the non-SMP configuration of §IV-A), a UCP worker
per PE inside the UCX machine layer, and Converse on top.  AMPI and
Charm4py instantiate this class and layer themselves over it.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.config import MachineConfig
from repro.converse.cmi import Converse
from repro.converse.message import CmiMessage
from repro.converse.pe import Pe
from repro.core.device_buffer import CkDeviceBuffer, DeviceRdmaOp, DeviceRecvType
from repro.core.machine_ucx import UcxMachineLayer
from repro.charm.chare import Chare
from repro.charm.proxy import ArrayProxy, ChareProxy, GroupProxy
from repro.charm.reduction import ReductionManager
from repro.charm.zerocopy import PendingInvocation
from repro.hardware.memory import Buffer
from repro.hardware.topology import Machine
from repro.sim.primitives import SimEvent, Timeout


def marshal_bytes(args: Tuple[Any, ...]) -> int:
    """Host-side payload bytes of an entry invocation's arguments.

    ``CkDeviceBuffer`` arguments contribute nothing here — their GPU payload
    travels separately and their metadata size is charged per buffer by
    Converse.  Host buffers and arrays contribute their full size; small
    scalars a pointer-sized slot each.
    """
    total = 0
    for a in args:
        if isinstance(a, CkDeviceBuffer):
            continue
        if isinstance(a, Buffer):
            if a.on_device:
                raise TypeError(
                    "raw device Buffers cannot be entry arguments; wrap them "
                    "in CkDeviceBuffer (the nocopydevice attribute)"
                )
            total += a.size
        elif isinstance(a, np.ndarray):
            total += a.nbytes
        elif isinstance(a, (bytes, bytearray, memoryview)):
            total += len(a)
        else:
            total += 8
    return total


class Charm:
    """One simulated Charm++ job."""

    def __init__(
        self,
        config: Optional[MachineConfig] = None,
        n_pes: Optional[int] = None,
    ) -> None:
        self.cfg = config if config is not None else MachineConfig.default()
        self.machine = Machine(self.cfg)
        topo = self.cfg.topology
        if n_pes is None:
            n_pes = topo.total_gpus
        if n_pes > topo.total_gpus:
            raise ValueError(
                f"{n_pes} PEs requested but the machine has {topo.total_gpus} GPUs "
                "(non-SMP: one PE per GPU)"
            )
        # paper §IV-A: one process (= PE) per GPU device, in GPU order
        pe_node = [self.machine.node_of_gpu(g) for g in range(n_pes)]
        pe_gpu: List[Optional[int]] = list(range(n_pes))
        self.layer = UcxMachineLayer(self.machine, n_pes, pe_node)
        self.cuda = self.layer.cuda
        self.converse = Converse(self.machine, self.layer, pe_node, pe_gpu)
        self.converse.register_handler("charm_entry", self._handle_entry)
        self.converse.register_handler("charm_entry_ready", self._handle_entry_ready)
        self.layer.register_device_recv_handler(DeviceRecvType.CHARM, self._on_device_recv)
        self.layer.set_error_handler(self._route_comm_error)
        self.machine.add_error_notifier(self._notify_resource_error)
        self._comm_error_cbs: List[Callable[[str, int, Any], None]] = []

        self.chares: Dict[int, Chare] = {}
        self.chare_pe: Dict[int, int] = {}
        self.collections: Dict[int, List[int]] = {}
        self._chare_coll: Dict[int, int] = {}
        self._next_chare_id = 0
        self._pending: Dict[int, Tuple[PendingInvocation, List[CkDeviceBuffer]]] = {}
        self._current_pe: Optional[int] = None
        self.reductions = ReductionManager(self)

    # -- simulation control ------------------------------------------------------
    @property
    def sim(self):
        return self.machine.sim

    @property
    def time(self) -> float:
        return self.machine.sim.now

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        self.machine.sim.run(until=until, max_events=max_events)

    def run_until(self, event: SimEvent, max_events: Optional[int] = None) -> Any:
        return self.machine.sim.run_until_complete(event, max_events=max_events)

    def run_to_quiescence(self, max_events: Optional[int] = None) -> float:
        """Quiescence detection, simulator-style: run until no event remains
        on the agenda (no messages in flight, no work pending anywhere) and
        return the simulated time.  The moral equivalent of Charm++'s
        ``CkStartQD`` for this in-process model."""
        self.machine.sim.run(max_events=max_events)
        return self.machine.sim.now

    # -- communication errors ------------------------------------------------------
    def on_comm_error(self, cb: Callable[[str, int, Any], None]) -> None:
        """Register ``cb(kind, tag, status)``, invoked when a device transfer
        fails (endpoint timeout under fault injection, truncation, or
        cancellation).  Without any registered callback a failure aborts the
        run — the moral of ``CkAbort`` on an unrecoverable comm error."""
        self._comm_error_cbs.append(cb)

    def _notify_resource_error(self, kind: str, tag: int, exc) -> None:
        """Machine-level resource fault (OutOfMemory at the allocator or
        pool layer).  Unlike transfer errors this is notification-only: the
        exception already propagates to the allocating call site, so an
        empty callback list is not fatal."""
        from repro.ucx.status import UcsStatus

        for cb in self._comm_error_cbs:
            cb(kind, tag, UcsStatus.ERR_NO_MEMORY)

    def _route_comm_error(self, kind: str, tag: int, status) -> None:
        if not self._comm_error_cbs:
            raise RuntimeError(
                f"Charm++ fatal: device {kind} failed with {status.name} "
                f"(tag {tag}) and no comm-error callback registered"
            )
        for cb in self._comm_error_cbs:
            cb(kind, tag, status)

    # -- PE context --------------------------------------------------------------
    @property
    def n_pes(self) -> int:
        return self.converse.n_pes

    def pe_object(self, pe: int) -> Pe:
        return self.converse.pes[pe]

    def charge_current_pe(self, cost: float) -> None:
        if self._current_pe is not None:
            self.converse.pes[self._current_pe].charge(cost)

    def gpu_of_pe(self, pe: int) -> Optional[int]:
        return self.converse.pes[pe].gpu

    # -- chare creation ------------------------------------------------------------
    def _register(self, cls, pe: int, index: int, args, kwargs) -> int:
        if not issubclass(cls, Chare):
            raise TypeError(f"{cls.__name__} must subclass Chare")
        cid = self._next_chare_id
        self._next_chare_id += 1
        obj = cls.__new__(cls)
        obj.charm = self
        obj.thisProxy = ChareProxy(self, cid)
        obj.pe = pe
        obj.gpu = self.gpu_of_pe(pe)
        obj.thisIndex = index
        hook = getattr(self, "chare_init_hook", None)
        if hook is not None:
            hook(obj)
        self.chares[cid] = obj
        self.chare_pe[cid] = pe
        prev, self._current_pe = self._current_pe, pe
        try:
            obj.__init__(*args, **kwargs)
        finally:
            self._current_pe = prev
        return cid

    def create_chare(self, cls, pe: int, *args, **kwargs) -> ChareProxy:
        """Create a singleton chare on ``pe``; returns its proxy."""
        return ChareProxy(self, self._register(cls, pe, -1, args, kwargs))

    def _register_collection(self, ids: List[int]) -> None:
        coll = len(self.collections)
        self.collections[coll] = ids
        for cid in ids:
            self._chare_coll[cid] = coll

    def create_group(self, cls, *args, **kwargs) -> GroupProxy:
        """Create a chare group: one element per PE (element i on PE i)."""
        ids = [self._register(cls, pe, pe, args, kwargs) for pe in range(self.n_pes)]
        self._register_collection(ids)
        return GroupProxy(self, ids)

    def create_array(
        self,
        cls,
        n: int,
        *args,
        mapping: Optional[Callable[[int], int]] = None,
        **kwargs,
    ) -> ArrayProxy:
        """Create a 1-D chare array of ``n`` elements.

        ``mapping(i) -> pe`` defaults to round-robin; with n == n_pes that is
        the paper's no-overdecomposition configuration, with n > n_pes it is
        overdecomposition (the §VI future-work ablation)."""
        mapfn = mapping if mapping is not None else (lambda i: i % self.n_pes)
        ids = [self._register(cls, mapfn(i), i, args, kwargs) for i in range(n)]
        self._register_collection(ids)
        return ArrayProxy(self, ids)

    # -- measurement-based load balancing (SII-C: "dynamic load balancing") -----
    def rebalance_greedy(self) -> Dict[int, int]:
        """A GreedyLB-style strategy: sort migratable chares by measured
        load (CPU debt accrued in their entry methods), assign each to the
        currently least-loaded PE.  Returns {chare_id: new_pe} for the
        chares that moved.  Only group-free chares (singletons and array
        elements) migrate; group elements are pinned to their PE by
        definition.
        """
        import heapq

        movable = [
            (getattr(obj, "_load", 0.0), cid, obj)
            for cid, obj in self.chares.items()
            if not self._is_group_element(cid)
        ]
        movable.sort(key=lambda t: (-t[0], t[1]))
        heap = [(0.0, pe) for pe in range(self.n_pes)]
        heapq.heapify(heap)
        moves: Dict[int, int] = {}
        for load, cid, obj in movable:
            pe_load, pe = heapq.heappop(heap)
            if self.chare_pe[cid] != pe:
                self.migrate_chare(obj, pe)
                moves[cid] = pe
            heapq.heappush(heap, (pe_load + load, pe))
        return moves

    def _is_group_element(self, cid: int) -> bool:
        coll = self._chare_coll.get(cid)
        if coll is None:
            return False
        ids = self.collections[coll]
        # a group has exactly one element per PE, created PE-ordered
        return len(ids) == self.n_pes and all(
            self.chare_pe[c] == i for i, c in enumerate(ids)
        )

    def migrate_chare(self, chare: Chare, new_pe: int) -> None:
        """Move a chare to another PE (new messages route there)."""
        cid = chare.thisProxy.chare_id
        if not 0 <= new_pe < self.n_pes:
            raise ValueError(f"PE {new_pe} out of range")
        self.chare_pe[cid] = new_pe
        chare.pe = new_pe
        chare.gpu = self.gpu_of_pe(new_pe)

    # -- entry-method send path (paper Fig. 6) -----------------------------------
    def invoke(self, chare_id: int, method: str, args: Tuple[Any, ...]) -> None:
        rt = self.cfg.runtime
        topo = self.cfg.topology
        dst_pe = self.chare_pe[chare_id]
        dev_bufs = [a for a in args if isinstance(a, CkDeviceBuffer)]
        src_pe = self._current_pe
        if src_pe is None:
            # driver-initiated send (mainchare territory): attribute it to
            # the PE owning the first device buffer, else to the target PE.
            src_pe = (
                self.pe_of_gpu(dev_bufs[0].ptr.device) if dev_bufs else dst_pe
            )
        pe = self.converse.pes[src_pe]

        host_bytes = marshal_bytes(args)
        cost = rt.charm_send_overhead
        if rt.charm_pack_copy and host_bytes > 0:
            cost += topo.host_mem.transfer_time(host_bytes)
        pe.charge(cost)

        # (1)-(4): each GPU buffer goes through CmiSendDevice/LrtsSendDevice,
        # which assigns and stores its tag in the metadata object.
        for b in dev_bufs:
            self.converse.cmi_send_device(src_pe, dst_pe, b, on_complete=b.cb)

        # (5): pack metadata with host-side data and send.
        msg = CmiMessage(
            handler="charm_entry",
            payload=(chare_id, method, args),
            host_bytes=host_bytes,
            src_pe=src_pe,
            dst_pe=dst_pe,
            device_bufs=list(dev_bufs),
        )
        self.converse.cmi_send(src_pe, msg)
        flight = self.machine.tracer.flight
        if flight.enabled:
            for b in dev_bufs:
                flight.metadata_sent(b.tag)

    def pe_of_gpu(self, gpu: int) -> int:
        """Inverse of the 1:1 PE<->GPU mapping."""
        if gpu >= self.n_pes:
            raise ValueError(f"GPU {gpu} has no PE (job uses {self.n_pes} PEs)")
        return gpu

    # -- entry-method receive path (paper §III-B2) ---------------------------------
    def _handle_entry(self, pe: Pe, msg: CmiMessage):
        rt = self.cfg.runtime
        topo = self.cfg.topology
        chare_id, method, args = msg.payload
        chare = self.chares[chare_id]
        cost = rt.entry_dispatch_overhead
        if rt.charm_pack_copy and msg.host_bytes > 0:
            cost += topo.host_mem.transfer_time(msg.host_bytes)
        # models layered on Charm++ (Charm4py) add their own dispatch cost
        cost += getattr(chare, "dispatch_overhead", 0.0)
        pe.charge(cost)

        if not msg.device_bufs:
            return self._run_entry(pe, chare, method, args)

        flight = self.machine.tracer.flight
        if flight.enabled:
            for b in msg.device_bufs:
                flight.metadata_arrived(b.tag)
        post_fn = getattr(chare, f"{method}_post", None)
        if post_fn is None:
            raise RuntimeError(
                f"{type(chare).__name__}.{method} takes nocopydevice parameters "
                f"but defines no post entry method {method}_post"
            )
        posts = PendingInvocation.make_posts(msg.device_bufs,
                                             announced_at=self.sim.now)
        pe.charge(rt.post_entry_overhead)
        prev, self._current_pe = self._current_pe, pe.index
        try:
            post_fn(posts, *[a for a in args if not isinstance(a, CkDeviceBuffer)])
        finally:
            self._current_pe = prev
        for p in posts:
            p.validate()

        pending = PendingInvocation(
            chare_id=chare_id,
            method=method,
            args=args,
            posts=posts,
            remaining=len(posts),
        )
        self._pending[pending.pending_id] = (pending, msg.device_bufs)
        for dev_buf, post in zip(msg.device_bufs, posts):
            op = DeviceRdmaOp(
                dest=post.buffer,
                size=dev_buf.size,
                tag=dev_buf.tag,
                recv_type=DeviceRecvType.CHARM,
                context=pending.pending_id,
            )
            self.converse.cmi_recv_device(pe.index, op)
        return None

    def _on_device_recv(self, op: DeviceRdmaOp) -> None:
        """Machine-layer handler: one GPU buffer of a pending invocation
        arrived.  When the last one lands, the regular entry method is
        enqueued on the owning PE."""
        pending, dev_bufs = self._pending[op.context]
        pending.remaining -= 1
        if pending.remaining > 0:
            return
        del self._pending[op.context]
        final_args = []
        it = iter(pending.posts)
        for a in pending.args:
            final_args.append(next(it).buffer if isinstance(a, CkDeviceBuffer) else a)
        dst_pe = self.chare_pe[pending.chare_id]
        ready = CmiMessage(
            handler="charm_entry_ready",
            payload=(pending.chare_id, pending.method, tuple(final_args)),
            host_bytes=0,
            src_pe=dst_pe,
            dst_pe=dst_pe,
        )
        self.converse.pes[dst_pe].enqueue(ready)

    def _handle_entry_ready(self, pe: Pe, msg: CmiMessage):
        chare_id, method, args = msg.payload
        return self._run_entry(pe, self.chares[chare_id], method, args)

    def _run_entry(self, pe: Pe, chare: Chare, method: str, args: Tuple[Any, ...]):
        fn = getattr(chare, method, None)
        if fn is None:
            raise RuntimeError(f"{type(chare).__name__} has no entry method {method!r}")
        prev, self._current_pe = self._current_pe, pe.index
        debt_before = pe.current_delay()
        try:
            result = fn(*args)
        finally:
            self._current_pe = prev
            # instrument per-chare load (CPU debt accrued by this entry);
            # the basis for measurement-based load balancing
            chare._load = getattr(chare, "_load", 0.0) + (
                pe.current_delay() - debt_before
            )
        if result is not None and hasattr(result, "send"):
            return self._wrap_threaded(pe, result)
        return None

    def _wrap_threaded(self, pe: Pe, gen):
        """Drive a [threaded] entry method, keeping the PE context set during
        each resumption and flushing accrued CPU debt at suspension points."""
        to_send: Any = None
        exc: Optional[BaseException] = None
        while True:
            self._current_pe = pe.index
            try:
                if exc is not None:
                    item = gen.throw(exc)
                else:
                    item = gen.send(to_send)
            except StopIteration:
                debt = pe.take_debt()
                if debt > 0.0:
                    yield Timeout(self.sim, debt)
                return
            finally:
                self._current_pe = None
            exc = None
            debt = pe.take_debt()
            if debt > 0.0:
                yield Timeout(self.sim, debt)
            try:
                to_send = yield item
            except BaseException as e:  # noqa: BLE001 - forwarded to the entry
                exc = e
