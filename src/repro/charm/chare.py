"""The Chare base class."""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.charm.charm import Charm
    from repro.charm.proxy import ChareProxy


class Chare:
    """Base class for migratable objects.

    Subclasses define entry methods as ordinary methods (run-to-completion)
    or generator methods (``[threaded]``, may block).  A ``<name>_post``
    method, when present, is the *post entry method* executed before
    ``<name>`` to let the receiver name destination GPU buffers for
    ``CkDeviceBuffer`` parameters (paper Fig. 4).

    The runtime injects, before ``__init__`` runs:

    * ``self.charm`` — the runtime,
    * ``self.thisProxy`` — a proxy to this chare,
    * ``self.pe`` — the PE index this chare currently lives on,
    * ``self.gpu`` — the GPU associated with that PE (non-SMP: one each),
    * ``self.thisIndex`` — the element index for array/group elements.
    """

    charm: "Charm"
    thisProxy: "ChareProxy"
    pe: int
    gpu: Optional[int]
    thisIndex: int = -1

    def migrate(self, new_pe: int) -> None:
        """Relocate this chare to ``new_pe`` (load balancing / AMPI rank
        migration).  Takes effect for messages sent after the runtime
        processes the migration."""
        self.charm.migrate_chare(self, new_pe)
