"""Per-PE device-pointer software cache (paper §III-C).

On every send, AMPI checks whether the user's buffer address lives on the
GPU.  The real implementation calls ``cuPointerGetAttribute`` — expensive —
so each PE keeps a cache of addresses already known to be device memory.
Here the *answer* is free (``Buffer.on_device``); what the cache models is
the *cost*: first sight of an address pays the driver query, repeats pay a
hash-lookup.

The cache must be **invalidated on free**: once a device buffer is freed the
driver may hand its address to a later allocation — including a host one —
and a stale entry would keep answering ``(True, hit_cost)`` for it (the
failure mode the Dask/MVAPICH GPU work calls out).  Owners wire
:meth:`invalidate` to the allocator's free hook
(:meth:`repro.hardware.memory.DeviceAllocator.add_free_hook`).
"""

from __future__ import annotations

from typing import Set

from repro.config import RuntimeConfig
from repro.hardware.memory import Buffer


class GpuPointerCache:
    """One per PE."""

    def __init__(self, cfg: RuntimeConfig) -> None:
        self.cfg = cfg
        self._known: Set[int] = set()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def check(self, buf: Buffer) -> tuple[bool, float]:
        """Returns ``(is_device, lookup_cost_seconds)``."""
        if buf.address in self._known:
            self.hits += 1
            return True, self.cfg.gpu_pointer_cache_hit_cost
        self.misses += 1
        cost = self.cfg.gpu_pointer_check_cost
        if buf.on_device:
            self._known.add(buf.address)
        return buf.on_device, cost

    def invalidate(self, address: int) -> bool:
        """Drop ``address`` from the cache (buffer freed); returns whether
        the address was cached."""
        if address in self._known:
            self._known.discard(address)
            self.invalidations += 1
            return True
        return False
