"""MPI basic datatypes (the subset the benchmarks and tests exercise)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Datatype:
    """An MPI basic datatype: name, byte extent, NumPy equivalent."""

    name: str
    extent: int
    np_dtype: np.dtype

    def bytes_for(self, count: int) -> int:
        if count < 0:
            raise ValueError("negative element count")
        return count * self.extent


BYTE = Datatype("MPI_BYTE", 1, np.dtype(np.uint8))
INT = Datatype("MPI_INT", 4, np.dtype(np.int32))
FLOAT = Datatype("MPI_FLOAT", 4, np.dtype(np.float32))
DOUBLE = Datatype("MPI_DOUBLE", 8, np.dtype(np.float64))
LONG = Datatype("MPI_LONG", 8, np.dtype(np.int64))

ALL_TYPES = (BYTE, INT, FLOAT, DOUBLE, LONG)
