"""The AMPI library core: ranks, point-to-point, and the runtime glue.

Send path of a device buffer (paper Fig. 7):

1. the rank's PE checks the buffer against its GPU-pointer cache;
2. a ``CkDeviceBuffer`` is created, with a callback that will notify the
   sender rank of completion;
3. ``CmiSendDevice``/``LrtsSendDevice`` assign the device tag and push the
   GPU buffer into UCP;
4. the AMPI envelope (MPI tag, communicator, source rank, metadata) travels
   through the Charm++ runtime as a host message;
5. the receiver matches the envelope against the request queue (or parks it
   in the unexpected queue) and only then posts ``LrtsRecvDevice`` — the
   delayed-posting overhead the paper measures.

Host buffers below the eager threshold travel inline in the envelope;
larger ones use a Zero-Copy-API-style rendezvous (envelope eagerly, data
fetched after the match, FIN back to the sender).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.ampi.datatypes import Datatype
from repro.ampi.gpucache import GpuPointerCache
from repro.ampi.matching import (
    ANY_SOURCE,
    ANY_TAG,
    AmpiEnvelope,
    MatchEngine,
    PostedMpiRecv,
)
from repro.ampi.request import MpiRequest, waitall
from repro.charm.charm import Charm
from repro.collectives import engine as _coll_engine
from repro.collectives import value as _coll_value
from repro.collectives.endpoints import AmpiCollEndpoint
from repro.collectives.ops import ReduceOp
from repro.converse.message import CmiMessage
from repro.core.device_buffer import CkDeviceBuffer, DeviceRdmaOp, DeviceRecvType
from repro.hardware.links import path_transfer
from repro.hardware.memory import Buffer
from repro.obs.tracing import NULL_SPAN
from repro.sim.primitives import AllOf, SimEvent
from repro.sim.process import Process

#: Tags at/above this value are reserved for collectives.
MAX_USER_TAG = 1 << 24


@dataclass(frozen=True)
class MpiStatus:
    """What ``MPI_Recv`` reports (plus ``value`` for value-based internals)."""

    source: int
    tag: int
    count: int
    value: Any = None


class MpiTruncationError(RuntimeError):
    """Incoming message larger than the posted receive buffer."""


class MpiCommError(RuntimeError):
    """A transfer failed at the UCX layer (endpoint timeout under fault
    injection, or a cancelled request).  ``status`` carries the underlying
    :class:`repro.ucx.status.UcsStatus`."""

    def __init__(self, message: str, status: Any = None) -> None:
        super().__init__(message)
        self.status = status


_host_send_ids = itertools.count(1)


class _CollectiveApi:
    """Collectives shared by :class:`AmpiRank` (the world communicator) and
    :class:`CommView` (sub-communicators); all are used with ``yield from``.

    Value collectives ride the envelope path via the communicator's
    ``coll_send_value``/``coll_recv_value`` protocol; ``*_device``
    collectives run the topology-aware algorithms of
    :mod:`repro.collectives` over the GPU point-to-point path.  Each
    invocation draws a per-communicator sequence number that namespaces its
    wire tags, so overlapping collectives can never alias."""

    _coll_seq = 0

    def _next_coll_seq(self) -> int:
        s = self._coll_seq
        self._coll_seq = s + 1
        return s

    # -- host-value collectives -----------------------------------------------------
    def barrier(self):
        return _coll_value.barrier(self)

    def bcast(self, value: Any, root: int = 0, nbytes: int = 8):
        return _coll_value.bcast(self, value, root, nbytes)

    def reduce(self, value: Any, op=ReduceOp.SUM, root: int = 0, nbytes: int = 8):
        return _coll_value.reduce(self, value, op, root, nbytes)

    def allreduce(self, value: Any, op=ReduceOp.SUM, nbytes: int = 8):
        return _coll_value.allreduce(self, value, op, nbytes)

    def gather(self, value: Any, root: int = 0, nbytes: int = 8):
        return _coll_value.gather(self, value, root, nbytes)

    def allgather(self, value: Any, nbytes: int = 8):
        return _coll_value.allgather(self, value, nbytes)

    def scatter(self, values: Optional[List[Any]], root: int = 0, nbytes: int = 8):
        return _coll_value.scatter(self, values, root, nbytes)

    def alltoall(self, values: List[Any], nbytes: int = 8):
        return _coll_value.alltoall(self, values, nbytes)

    # -- device-buffer collectives (topology-aware algorithm selection) --------------
    def bcast_device(self, buf: Buffer, nbytes: int, root: int = 0, *,
                     algorithm: Optional[str] = None):
        return _coll_engine.bcast_device(
            AmpiCollEndpoint(self), buf, nbytes, root, algorithm
        )

    def reduce_device(self, buf: Buffer, nbytes: int, op=ReduceOp.SUM,
                      root: int = 0, *, algorithm: Optional[str] = None):
        return _coll_engine.reduce_device(
            AmpiCollEndpoint(self), buf, nbytes, op, root, algorithm
        )

    def allreduce_device(self, buf: Buffer, nbytes: int, op=ReduceOp.SUM, *,
                         algorithm: Optional[str] = None):
        return _coll_engine.allreduce_device(
            AmpiCollEndpoint(self), buf, nbytes, op, algorithm
        )

    def allgather_device(self, buf: Buffer, nbytes: int,
                         recvbuf: Optional[Buffer] = None, *,
                         algorithm: Optional[str] = None):
        return _coll_engine.allgather_device(
            AmpiCollEndpoint(self), buf, nbytes, recvbuf, algorithm
        )


class AmpiRank(_CollectiveApi):
    """One MPI rank (a chare on some PE).  All communication methods return
    yieldable events or :class:`MpiRequest` handles; rank *programs* are
    generator functions driven by the simulator."""

    def __init__(self, ampi: "Ampi", rank: int, pe: int) -> None:
        self.ampi = ampi
        self.rank = rank
        self.pe = pe
        self.matching = MatchEngine(indexed=ampi.rt.indexed_matching)
        telemetry = ampi.machine.tracer.timeline
        if telemetry.enabled:
            self.matching.posted.depth_probe = telemetry.queue_probe(
                "matchq.ampi.posted")
            self.matching.unexpected.depth_probe = telemetry.queue_probe(
                "matchq.ampi.unexpected")
        self._seq_to: Dict[int, int] = {}
        self._cpu_free = 0.0  # serialises per-call CPU costs of nb ops

    def _cpu_delay(self, cost: float) -> float:
        """Serialise the CPU cost of a non-blocking call: back-to-back
        Isends from one rank each occupy the core in turn, which is what
        bounds windowed bandwidth at small message sizes."""
        now = self.sim.now
        start = max(now, self._cpu_free)
        self._cpu_free = start + cost
        return self._cpu_free - now

    # -- identity ---------------------------------------------------------------
    @property
    def size(self) -> int:
        return self.ampi.n_ranks

    @property
    def charm(self) -> Charm:
        return self.ampi.charm

    @property
    def sim(self):
        return self.ampi.charm.sim

    @property
    def gpu(self) -> Optional[int]:
        return self.charm.gpu_of_pe(self.pe)

    @property
    def node(self) -> int:
        return self.charm.pe_object(self.pe).node

    # -- device memory ------------------------------------------------------------
    def alloc_device(self, nbytes: int,
                     materialize: Optional[bool] = None) -> Buffer:
        """Allocate ``nbytes`` on this rank's GPU (through the configured
        allocator — pooled when ``MemoryConfig.allocator == "pool"``).
        Exhaustion surfaces as :class:`MpiCommError` with
        ``ERR_NO_MEMORY``, like any other communication fault."""
        from repro.hardware.memory import OutOfMemory
        from repro.ucx.status import UcsStatus

        try:
            return self.charm.machine.alloc_device(self.gpu, nbytes, materialize)
        except OutOfMemory as exc:
            raise MpiCommError(str(exc), UcsStatus.ERR_NO_MEMORY) from exc

    def free_device(self, buf: Buffer) -> None:
        """Free (or pool-return) a buffer from :meth:`alloc_device`."""
        self.charm.machine.free_device(buf)

    # -- point-to-point ------------------------------------------------------------
    def send(self, buf: Buffer, nbytes: int, dst: int, tag: int = 0) -> SimEvent:
        """``MPI_Send`` (yield the returned event to block until the buffer
        is reusable)."""
        return self._send_impl(buf, nbytes, dst, tag, comm=0)

    def isend(self, buf: Buffer, nbytes: int, dst: int, tag: int = 0) -> MpiRequest:
        return MpiRequest(self._send_impl(buf, nbytes, dst, tag, comm=0), "send")

    def recv(
        self, buf: Buffer, capacity: int, src: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> SimEvent:
        """``MPI_Recv`` (yield to block; the event's value is the status)."""
        return self._recv_impl(buf, capacity, src, tag, comm=0)

    def irecv(
        self, buf: Buffer, capacity: int, src: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> MpiRequest:
        return MpiRequest(self._recv_impl(buf, capacity, src, tag, comm=0), "recv")

    def sendrecv(
        self,
        sendbuf: Buffer,
        send_bytes: int,
        dst: int,
        recvbuf: Buffer,
        recv_capacity: int,
        src: int,
        sendtag: int = 0,
        recvtag: int = ANY_TAG,
    ) -> SimEvent:
        """``MPI_Sendrecv``: both directions in flight, completes when both do."""
        r = self._recv_impl(recvbuf, recv_capacity, src, recvtag, comm=0)
        s = self._send_impl(sendbuf, send_bytes, dst, sendtag, comm=0)
        return AllOf(self.sim, [s, r])

    def waitall(self, requests: List[MpiRequest]) -> SimEvent:
        return waitall(self.sim, requests)

    def send_typed(
        self, buf: Buffer, count: int, datatype: Datatype, dst: int, tag: int = 0
    ) -> SimEvent:
        """``MPI_Send`` with count/datatype instead of raw bytes."""
        return self.send(buf, datatype.bytes_for(count), dst, tag)

    def recv_typed(
        self, buf: Buffer, count: int, datatype: Datatype, src: int = ANY_SOURCE,
        tag: int = ANY_TAG,
    ) -> SimEvent:
        return self.recv(buf, datatype.bytes_for(count), src, tag)

    # -- value-based internals (collectives ride on these) -------------------------
    def send_value(self, value: Any, nbytes: int, dst: int, tag: int, comm: int = 0) -> SimEvent:
        return self._send_impl(None, nbytes, dst, tag, comm, value=value)

    def recv_value(self, src: int, tag: int, comm: int = 0) -> SimEvent:
        return self._recv_impl(None, 1 << 62, src, tag, comm)

    # -- collective wire protocol (repro.collectives rides on these) ----------------
    def coll_send_value(self, value: Any, nbytes: int, dst: int, tag: int) -> SimEvent:
        return self._send_impl(
            None, nbytes, dst, tag, _coll_engine.COLL_COMM, value=value
        )

    def coll_recv_value(self, src: int, tag: int) -> SimEvent:
        return self._recv_impl(None, 1 << 62, src, tag, _coll_engine.COLL_COMM)

    def coll_local_source(self, source: int) -> int:
        return source

    # -- probe and sub-communicators ----------------------------------------------
    def iprobe(self, src: int = ANY_SOURCE, tag: int = ANY_TAG, comm: int = 0):
        """``MPI_Iprobe``: non-blocking check of the unexpected queue.
        Returns ``(flag, status_or_None)`` without consuming the message."""
        probe = PostedMpiRecv(src=src, tag=tag, comm=comm, buf=None,
                              capacity=1 << 62, event=None)
        for env in self.matching.unexpected:
            if probe.matches(env):
                return True, MpiStatus(source=env.src, tag=env.tag,
                                       count=env.size, value=env.value)
        return False, None

    def comm_split(self, color: int, key: Optional[int] = None):
        """``MPI_Comm_split`` (collective; use with ``yield from``).
        Returns a :class:`CommView` containing the ranks that passed the
        same ``color``, ordered by ``key`` (ties broken by world rank)."""
        if key is None:
            key = self.rank
        self._split_count = getattr(self, "_split_count", 0) + 1
        infos = yield from self.allgather((color, key, self.rank), nbytes=24)
        colors = sorted({c for c, _k, _r in infos})
        members = [r for _k, r in sorted(
            (k, r) for c, k, r in infos if c == color
        )]
        comm_id = 1000 + self._split_count * 4096 + colors.index(color)
        return CommView(self, comm_id, members)

    # -- implementation ----------------------------------------------------------------
    def _next_seq(self, dst: int) -> int:
        s = self._seq_to.get(dst, 0)
        self._seq_to[dst] = s + 1
        return s

    def _send_impl(
        self,
        buf: Optional[Buffer],
        nbytes: int,
        dst: int,
        tag: int,
        comm: int,
        value: Any = None,
    ) -> SimEvent:
        ampi = self.ampi
        rt = ampi.rt
        sim = self.sim
        if not 0 <= dst < ampi.n_ranks:
            raise ValueError(f"destination rank {dst} out of range")
        if 0 <= tag < MAX_USER_TAG or comm != 0:
            pass  # user tag or internal comm: fine
        elif tag < 0:
            raise ValueError("negative tags are reserved")

        ev = SimEvent(sim, name=f"mpi.send r{self.rank}->r{dst}")
        env = AmpiEnvelope(
            src=self.rank, dst=dst, tag=tag, comm=comm, size=nbytes,
            seq=self._next_seq(dst),
        )
        pre = rt.ampi_send_overhead + rt.ampi_metadata_allocs * rt.heap_alloc_cost
        host_bytes = 0

        if buf is not None and nbytes > buf.size:
            raise ValueError(f"send of {nbytes} B from a {buf.size} B buffer")

        if buf is not None:
            is_dev, lookup = ampi.gpu_caches[self.pe].check(buf)
            pre += lookup
        else:
            is_dev = False

        tracer = ampi.machine.tracer
        tracer.count("ampi", "send")
        if tracer.enabled:
            asp = tracer.span(
                "ampi", "mpi_send",
                rank=self.rank, dst=dst, tag=tag, size=nbytes, device=is_dev,
            )
            ev.add_callback(lambda _e, _sp=asp: _sp.end())
        else:
            asp = NULL_SPAN

        if buf is not None and is_dev:
            # Fig. 7: CkDeviceBuffer + callback; GPU data via LrtsSendDevice.
            def _notify_sender() -> None:
                tracer.charge("ampi", rt.ampi_callback_overhead)
                sim.schedule(rt.ampi_callback_overhead, ev.succeed, None)

            def _send_failed(status) -> None:
                ev.fail(MpiCommError(
                    f"MPI_Send of {nbytes} B r{self.rank}->r{dst} failed: "
                    f"{status.name}", status,
                ))

            dev_meta = CkDeviceBuffer(ptr=buf, size=nbytes)
            env.dev_meta = dev_meta

            def _go_device() -> None:
                with tracer.under(asp):
                    ampi.charm.converse.cmi_send_device(
                        self.pe, ampi.rank_pe(dst), dev_meta,
                        on_complete=_notify_sender, on_error=_send_failed,
                    )
                    ampi._send_envelope(self.pe, env, host_bytes=0)
                if tracer.flight.enabled:
                    tracer.flight.metadata_sent(dev_meta.tag)

            tracer.charge("ampi", pre)
            sim.schedule(self._cpu_delay(pre), _go_device)
            return ev

        if value is not None or buf is None:
            env.value = value
            host_bytes = nbytes
            complete_on_delivery = True
        elif nbytes < ampi.eager_threshold:
            bounce = ampi.machine.alloc_host(self.node, max(nbytes, 1))
            bounce.copy_from(buf, nbytes)
            env.payload = bounce
            host_bytes = nbytes
            complete_on_delivery = True
        else:
            env.src_host_buf = buf
            env.host_send_id = next(_host_send_ids)
            ampi.pending_host_sends[env.host_send_id] = ev
            complete_on_delivery = False
            if rt.ampi_payload_copy:
                # AMPI packs the user's host data into its message object
                # before handing it to the runtime (datatype handling).
                pre += self.ampi.machine.cfg.topology.host_mem.transfer_time(nbytes)

        def _go_host() -> None:
            with tracer.under(asp):
                ampi._send_envelope(self.pe, env, host_bytes=host_bytes)
            if complete_on_delivery:
                ev.succeed(None)

        tracer.charge("ampi", pre)
        sim.schedule(self._cpu_delay(pre), _go_host)
        return ev

    def _recv_impl(
        self,
        buf: Optional[Buffer],
        capacity: int,
        src: int,
        tag: int,
        comm: int,
    ) -> SimEvent:
        ampi = self.ampi
        rt = ampi.rt
        sim = self.sim
        ev = SimEvent(sim, name=f"mpi.recv r{self.rank}")
        req = PostedMpiRecv(src=src, tag=tag, comm=comm, buf=buf, capacity=capacity, event=ev)
        tracer = ampi.machine.tracer
        tracer.count("ampi", "recv")
        tracer.charge("ampi", rt.ampi_recv_overhead)
        if tracer.enabled:
            rsp = tracer.span("ampi", "mpi_recv", rank=self.rank, src=src, tag=tag)
            req.span = rsp
            ev.add_callback(lambda _e, _sp=rsp: _sp.end())

        def _post() -> None:
            env, scanned = self.matching.match_recv(req)
            if env is not None:
                tracer.charge("ampi", rt.ampi_match_cost * scanned)
                delay = rt.ampi_match_cost * scanned
                sim.schedule(delay, ampi._complete_recv, self, env, req)

        sim.schedule(self._cpu_delay(rt.ampi_recv_overhead), _post)
        return ev


class Ampi:
    """One AMPI job over a :class:`Charm` runtime."""

    def __init__(
        self,
        charm: Charm,
        n_ranks: Optional[int] = None,
        ranks_per_pe: int = 1,
    ) -> None:
        if ranks_per_pe < 1:
            raise ValueError("ranks_per_pe must be >= 1")
        self.charm = charm
        self.machine = charm.machine
        self.rt = charm.cfg.runtime
        # inline-payload limit: keep the envelope itself safely below the
        # host rendezvous threshold (envelope matching must stay eager and
        # therefore strictly ordered per pair)
        self.eager_threshold = charm.cfg.ucx.host_rndv_threshold - 256
        n_pes = charm.n_pes
        self.n_ranks = n_ranks if n_ranks is not None else n_pes * ranks_per_pe
        # block mapping: virtualized ranks share their PE contiguously
        self.ranks: List[AmpiRank] = [
            AmpiRank(self, r, pe=r * n_pes // self.n_ranks) for r in range(self.n_ranks)
        ]
        self.gpu_caches = [GpuPointerCache(self.rt) for _ in range(n_pes)]
        # freed device addresses may be re-used by later (even host)
        # allocations; drop them from every PE's pointer cache
        self.machine.add_device_free_hook(self._on_device_free)
        self.pending_host_sends: Dict[int, SimEvent] = {}
        charm.converse.register_handler("ampi_msg", self._handle_envelope)
        charm.converse.register_handler("ampi_fin", self._handle_fin)
        charm.layer.register_device_recv_handler(
            DeviceRecvType.AMPI, lambda op: None  # completion runs via op.on_complete
        )

    def _on_device_free(self, buf: Buffer) -> None:
        for cache in self.gpu_caches:
            cache.invalidate(buf.address)

    # -- launch --------------------------------------------------------------------
    def rank_pe(self, rank: int) -> int:
        return self.ranks[rank].pe

    def launch(self, program, *args) -> SimEvent:
        """Start ``program(rank, *args)`` as a process on every rank;
        returns an event that fires when all rank programs finish."""
        procs = [
            Process(self.charm.sim, program(r, *args), name=f"ampi.rank{r.rank}")
            for r in self.ranks
        ]
        return AllOf(self.charm.sim, procs)

    # -- envelope transport -----------------------------------------------------------
    def _send_envelope(self, src_pe: int, env: AmpiEnvelope, host_bytes: int) -> None:
        msg = CmiMessage(
            handler="ampi_msg",
            payload=env,
            host_bytes=host_bytes,
            src_pe=src_pe,
            dst_pe=self.rank_pe(env.dst),
        )
        self.charm.converse.cmi_send(src_pe, msg)

    def _handle_envelope(self, pe, msg: CmiMessage) -> None:
        env: AmpiEnvelope = msg.payload
        tracer = self.machine.tracer
        if tracer.flight.enabled and env.dev_meta is not None:
            tracer.flight.metadata_arrived(env.dev_meta.tag)
        rank = self.ranks[env.dst]
        req, scanned = rank.matching.match_envelope(env)
        pe.charge(self.rt.ampi_match_cost * scanned)
        self.machine.tracer.charge("ampi", self.rt.ampi_match_cost * scanned)
        if req is not None:
            self._complete_recv(rank, env, req)

    def _handle_fin(self, pe, msg: CmiMessage) -> None:
        send_id = msg.payload
        ev = self.pending_host_sends.pop(send_id)
        pe.charge(self.rt.ampi_callback_overhead)
        self.machine.tracer.charge("ampi", self.rt.ampi_callback_overhead)
        ev.succeed(None)

    # -- receive completion --------------------------------------------------------------
    def _complete_recv(self, rank: AmpiRank, env: AmpiEnvelope, req: PostedMpiRecv) -> None:
        sim = self.charm.sim
        rt = self.rt
        status = MpiStatus(
            source=env.src, tag=env.tag, count=env.size, value=env.value
        )
        if env.size > req.capacity:
            req.event.fail(
                MpiTruncationError(
                    f"message of {env.size} B exceeds posted capacity {req.capacity} B"
                )
            )
            return

        if env.dev_meta is not None:
            if req.buf is None or not req.buf.on_device:
                req.event.fail(NotImplementedError(
                    "GPU-sent data must be received into a device buffer "
                    "(mixed host/device pt2pt is outside the paper's scope)"
                ))
                return

            tracer = self.machine.tracer

            def _done(_op: DeviceRdmaOp) -> None:
                tracer.charge("ampi", rt.ampi_callback_overhead)
                sim.schedule(rt.ampi_callback_overhead, req.event.succeed, status)

            def _failed(_op: DeviceRdmaOp, ucs_status) -> None:
                req.event.fail(MpiCommError(
                    f"MPI_Recv of {env.dev_meta.size} B on r{rank.rank} "
                    f"failed: {ucs_status.name}", ucs_status,
                ))

            op = DeviceRdmaOp(
                dest=req.buf,
                size=env.dev_meta.size,
                tag=env.dev_meta.tag,
                recv_type=DeviceRecvType.AMPI,
                on_complete=_done,
                on_error=_failed,
            )
            with tracer.under(req.span):
                self.charm.converse.cmi_recv_device(rank.pe, op)
            return

        if req.buf is not None and req.buf.on_device and env.size > 0:
            req.event.fail(NotImplementedError(
                "host-sent data must be received into a host buffer "
                "(mixed host/device pt2pt is outside the paper's scope)"
            ))
            return

        if env.payload is not None:  # inline eager payload
            copy = self.machine.cfg.topology.host_mem.transfer_time(env.size)

            def _copied() -> None:
                req.buf.copy_from(env.payload, env.size)
                req.event.succeed(status)

            sim.schedule(copy, _copied)
            return

        if env.src_host_buf is not None:  # zero-copy rendezvous fetch
            src_node = env.src_host_buf.node
            src_sock = self.machine.socket_of_gpu(self.rank_pe(env.src))
            dst_sock = self.machine.socket_of_gpu(rank.pe)
            route = self.machine.route(
                self.machine.host_location(src_node, src_sock),
                self.machine.host_location(rank.node, dst_sock),
            )
            pin = 0.0
            if (
                self.rt.model_ampi_128k_dip
                and env.size >= self.rt.ampi_pin_threshold
            ):
                # §IV-B2 artifact: registration/pinning cost at the threshold
                # (delays the fetch; does not occupy the wire)
                pin = self.rt.ampi_pin_overhead + env.size / self.rt.ampi_pin_bandwidth

            # unpack from the message object into the user's recv buffer
            # (charged to the receiving PE after the fetch, not to the link)
            unpack = (
                self.machine.cfg.topology.host_mem.transfer_time(env.size)
                if self.rt.ampi_payload_copy
                else 0.0
            )

            def _fetched(_ev) -> None:
                def _unpacked() -> None:
                    req.buf.copy_from(env.src_host_buf, env.size)
                    req.event.succeed(status)
                    fin = CmiMessage(
                        handler="ampi_fin",
                        payload=env.host_send_id,
                        host_bytes=0,
                        src_pe=rank.pe,
                        dst_pe=self.rank_pe(env.src),
                    )
                    self.charm.converse.cmi_send(rank.pe, fin)

                sim.schedule(unpack, _unpacked)

            # pinning is CPU work on the receiving rank: serialise it
            sim.schedule(
                rank._cpu_delay(pin) if pin else 0.0,
                lambda: path_transfer(sim, route, env.size).add_callback(_fetched),
            )
            return

        # value-based message (collectives) or zero-byte message
        req.event.succeed(status)


class CommView(_CollectiveApi):
    """A sub-communicator view produced by :meth:`AmpiRank.comm_split`.

    Exposes rank/size, point-to-point and the full collective API
    (:class:`_CollectiveApi`) in the sub-communicator's rank space;
    messages travel with the sub-communicator's context id, so they
    never match world-communicator traffic.
    """

    def __init__(self, world_rank: AmpiRank, comm_id: int, members: List[int]) -> None:
        if world_rank.rank not in members:
            raise ValueError("rank is not a member of this communicator")
        self._world = world_rank
        self.comm_id = comm_id
        self.members = list(members)
        self.rank = self.members.index(world_rank.rank)
        self.size = len(self.members)

    def _global(self, local_rank: int) -> int:
        if not 0 <= local_rank < self.size:
            raise ValueError(f"rank {local_rank} out of range for this communicator")
        return self.members[local_rank]

    # -- collective wire protocol ---------------------------------------------------
    @property
    def _coll_comm(self) -> int:
        # high-bit namespace keeps collective traffic disjoint from user
        # pt2pt on the same sub-communicator (which travels with comm_id)
        return (1 << 30) + self.comm_id

    def coll_send_value(self, value: Any, nbytes: int, dst: int, tag: int) -> SimEvent:
        return self._world._send_impl(
            None, nbytes, self._global(dst), tag, self._coll_comm, value=value
        )

    def coll_recv_value(self, src: int, tag: int) -> SimEvent:
        gsrc = ANY_SOURCE if src == ANY_SOURCE else self._global(src)
        return self._world._recv_impl(None, 1 << 62, gsrc, tag, self._coll_comm)

    def coll_local_source(self, source: int) -> int:
        return self.members.index(source)

    def send(self, buf: Buffer, nbytes: int, dst: int, tag: int = 0) -> SimEvent:
        return self._world._send_impl(buf, nbytes, self._global(dst), tag, self.comm_id)

    def isend(self, buf: Buffer, nbytes: int, dst: int, tag: int = 0) -> MpiRequest:
        return MpiRequest(self.send(buf, nbytes, dst, tag), "send")

    def recv(self, buf: Buffer, capacity: int, src: int = ANY_SOURCE,
             tag: int = ANY_TAG) -> SimEvent:
        gsrc = ANY_SOURCE if src == ANY_SOURCE else self._global(src)
        return self._world._recv_impl(buf, capacity, gsrc, tag, self.comm_id)

    def irecv(self, buf: Buffer, capacity: int, src: int = ANY_SOURCE,
              tag: int = ANY_TAG) -> MpiRequest:
        return MpiRequest(self.recv(buf, capacity, src, tag), "recv")

    def waitall(self, requests: List[MpiRequest]) -> SimEvent:
        return waitall(self._world.sim, requests)

    def local_status(self, status: MpiStatus) -> MpiStatus:
        """Translate a status's world source rank into this communicator."""
        return MpiStatus(
            source=self.members.index(status.source),
            tag=status.tag, count=status.count, value=status.value,
        )
