"""MPI request objects (Isend/Irecv handles)."""

from __future__ import annotations

from typing import Optional

from repro.sim.primitives import AllOf, SimEvent


class MpiRequest:
    """Handle for a non-blocking operation; ``.event`` is yieldable.

    ``MPI_Wait`` is ``yield req.event``; ``MPI_Test`` is ``req.done``.
    The event's value is the :class:`MpiStatus` for receives, ``None`` for
    sends.
    """

    __slots__ = ("event", "kind")

    def __init__(self, event: SimEvent, kind: str) -> None:
        self.event = event
        self.kind = kind

    @property
    def done(self) -> bool:
        return self.event.triggered

    @property
    def status(self):
        return self.event.result() if self.event.triggered else None


def waitall(sim, requests) -> SimEvent:
    """``MPI_Waitall``: yieldable event carrying the list of statuses."""
    return AllOf(sim, [r.event for r in requests])
