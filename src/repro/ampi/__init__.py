"""Adaptive MPI: an MPI library over the Charm++ runtime system.

Each AMPI rank is a chare-like entity scheduled on a PE (paper §II-D);
communication travels through Converse and the UCX machine layer, which is
what lets a single machine-layer extension make ``MPI_Send``/``MPI_Recv``
CUDA-aware (paper §III-C): device buffers are detected through a per-PE
pointer cache, wrapped in ``CkDeviceBuffer`` metadata that rides inside the
AMPI envelope, and moved GPU-to-GPU by UCX while the envelope performs the
host-side matching.

Rank programs are generator functions driven by the simulator::

    def program(mpi):
        if mpi.rank == 0:
            yield mpi.send(buf, buf.size, dst=1, tag=7)
        else:
            status = yield mpi.recv(buf, buf.size, src=0, tag=7)

    ampi = Ampi(charm)
    done = ampi.launch(program)
    charm.run_until(done)

Collectives compose over point-to-point and are used with ``yield from``.
"""

from repro.ampi.datatypes import BYTE, DOUBLE, FLOAT, INT, Datatype
from repro.ampi.mpi import ANY_SOURCE, ANY_TAG, Ampi, AmpiRank, MpiStatus
from repro.ampi.request import MpiRequest

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Ampi",
    "AmpiRank",
    "BYTE",
    "DOUBLE",
    "Datatype",
    "FLOAT",
    "INT",
    "MpiRequest",
    "MpiStatus",
]
