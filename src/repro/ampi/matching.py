"""AMPI message matching: the two scenarios of the paper's §III-C2.

If the host-side envelope arrives before the receive is posted, it waits in
the **unexpected queue**; if the receive comes first, it waits in the
**request queue**.  Matching is MPI-semantics FIFO on ``(comm, source,
tag)`` with ``ANY_SOURCE``/``ANY_TAG`` wildcards.

Both queues are indexed by the full ``(comm, src, tag)`` triple by default
(:class:`~repro.core.matchq.IndexedMatchQueue`): wildcard-free receives and
all envelopes are exact-bucket entries, receives using ``ANY_SOURCE`` or
``ANY_TAG`` fall back to the FIFO wildcard list.  Matched entries are
removed by queue *slot* (identity), never by value equality — ``list.remove``
on dataclass entries compares every field and can both delete the wrong
(equal-but-distinct) entry and crash outright when a field (e.g. a NumPy
``value`` payload) has a non-boolean ``__eq__``.  The reported ``scanned``
count remains the virtual linear-scan length, so the modeled
``ampi_match_cost`` charge is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.device_buffer import CkDeviceBuffer
from repro.core.matchq import make_match_queue
from repro.hardware.memory import Buffer
from repro.sim.primitives import SimEvent

ANY_SOURCE = -1
ANY_TAG = -1


@dataclass
class AmpiEnvelope:
    """Host-side metadata of one AMPI message (rides in a Converse message)."""

    src: int
    dst: int
    tag: int
    comm: int
    size: int  # payload bytes
    payload: Optional[Buffer] = None  # inline (eager) host payload copy
    src_host_buf: Optional[Buffer] = None  # zero-copy rendezvous host source
    dev_meta: Optional[CkDeviceBuffer] = None  # GPU transfer metadata
    host_send_id: int = 0  # routes the rendezvous FIN back to the sender
    seq: int = 0  # per (src,dst,comm) sequence, diagnostics only
    value: object = None  # value-based payload (collectives internals)


@dataclass
class PostedMpiRecv:
    """One entry of the request queue."""

    src: int  # ANY_SOURCE allowed
    tag: int  # ANY_TAG allowed
    comm: int
    buf: Buffer
    capacity: int  # bytes the caller allows
    event: SimEvent
    # observability: the tracing span covering this receive, if any
    span: Optional[object] = None

    def matches(self, env: AmpiEnvelope) -> bool:
        return (
            env.comm == self.comm
            and (self.src == ANY_SOURCE or self.src == env.src)
            and (self.tag == ANY_TAG or self.tag == env.tag)
        )


def _recv_key(req: PostedMpiRecv):
    """Bucket key of a posted receive; ``None`` routes wildcard receives to
    the FIFO fallback list."""
    if req.src == ANY_SOURCE or req.tag == ANY_TAG:
        return None
    return (req.comm, req.src, req.tag)


class MatchEngine:
    """Per-rank unexpected + posted queues.

    ``indexed`` selects the hash-bucketed queues (the default; see module
    docstring) or the reference linear lists — matching order and the
    reported ``scanned`` counts are bit-identical either way.
    """

    def __init__(self, indexed: bool = True) -> None:
        self.unexpected = make_match_queue(indexed)
        self.posted = make_match_queue(indexed)
        # cumulative virtual scan length (drives the modeled match cost)
        self.scanned_total = 0

    def match_envelope(self, env: AmpiEnvelope) -> tuple[Optional[PostedMpiRecv], int]:
        """Envelope arrived: return (matching posted recv or None, #scanned)."""
        req, scanned = self.posted.match(
            (env.comm, env.src, env.tag), lambda r: r.matches(env)
        )
        self.scanned_total += scanned
        if req is None:
            self.unexpected.append(env, key=(env.comm, env.src, env.tag))
        return req, scanned

    def match_recv(self, req: PostedMpiRecv) -> tuple[Optional[AmpiEnvelope], int]:
        """Receive posted: return (matching unexpected envelope or None, #scanned)."""
        env, scanned = self.unexpected.match(_recv_key(req), req.matches)
        self.scanned_total += scanned
        if env is None:
            self.posted.append(req, key=_recv_key(req))
        return env, scanned
