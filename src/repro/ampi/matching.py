"""AMPI message matching: the two scenarios of the paper's §III-C2.

If the host-side envelope arrives before the receive is posted, it waits in
the **unexpected queue**; if the receive comes first, it waits in the
**request queue**.  Matching is MPI-semantics FIFO on ``(comm, source,
tag)`` with ``ANY_SOURCE``/``ANY_TAG`` wildcards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.device_buffer import CkDeviceBuffer
from repro.hardware.memory import Buffer
from repro.sim.primitives import SimEvent

ANY_SOURCE = -1
ANY_TAG = -1


@dataclass
class AmpiEnvelope:
    """Host-side metadata of one AMPI message (rides in a Converse message)."""

    src: int
    dst: int
    tag: int
    comm: int
    size: int  # payload bytes
    payload: Optional[Buffer] = None  # inline (eager) host payload copy
    src_host_buf: Optional[Buffer] = None  # zero-copy rendezvous host source
    dev_meta: Optional[CkDeviceBuffer] = None  # GPU transfer metadata
    host_send_id: int = 0  # routes the rendezvous FIN back to the sender
    seq: int = 0  # per (src,dst,comm) sequence, diagnostics only
    value: object = None  # value-based payload (collectives internals)


@dataclass
class PostedMpiRecv:
    """One entry of the request queue."""

    src: int  # ANY_SOURCE allowed
    tag: int  # ANY_TAG allowed
    comm: int
    buf: Buffer
    capacity: int  # bytes the caller allows
    event: SimEvent

    def matches(self, env: AmpiEnvelope) -> bool:
        return (
            env.comm == self.comm
            and (self.src == ANY_SOURCE or self.src == env.src)
            and (self.tag == ANY_TAG or self.tag == env.tag)
        )


class MatchEngine:
    """Per-rank unexpected + posted queues."""

    def __init__(self) -> None:
        self.unexpected: List[AmpiEnvelope] = []
        self.posted: List[PostedMpiRecv] = []

    def match_envelope(self, env: AmpiEnvelope) -> tuple[Optional[PostedMpiRecv], int]:
        """Envelope arrived: return (matching posted recv or None, #scanned)."""
        for scanned, req in enumerate(self.posted):
            if req.matches(env):
                self.posted.remove(req)
                return req, scanned + 1
        self.unexpected.append(env)
        return None, len(self.posted)

    def match_recv(self, req: PostedMpiRecv) -> tuple[Optional[AmpiEnvelope], int]:
        """Receive posted: return (matching unexpected envelope or None, #scanned)."""
        for scanned, env in enumerate(self.unexpected):
            if req.matches(env):
                self.unexpected.remove(env)
                return env, scanned + 1
        self.posted.append(req)
        return None, len(self.unexpected)
