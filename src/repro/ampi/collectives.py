"""Removed: the free-function collectives moved onto the communicators.

The warn-once deprecation shims lived here for two PRs; per the repo's
deprecation policy they are now gone.  Call the methods on
:class:`repro.ampi.mpi.AmpiRank` / :class:`repro.ampi.mpi.CommView`
instead::

    yield from rank.allreduce(value, op="sum")
    yield from rank.allreduce_device(buf, nbytes, op=ReduceOp.SUM)

The method API also carries the per-call ``algorithm=`` override,
topology-aware selection, and sub-communicator (``comm_split``) support
the free functions never had.  ``ReduceOp`` and the collective engine
live in :mod:`repro.collectives`.
"""

raise ImportError(
    "repro.ampi.collectives was removed: the free-function shims "
    "(allreduce, bcast_device, ...) moved onto the communicator objects. "
    "Use rank.allreduce(...) / rank.allreduce_device(...) etc. "
    "(repro.ampi.mpi.AmpiRank, CommView); ReduceOp is in repro.collectives."
)
