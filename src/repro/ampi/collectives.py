"""Deprecated free-function collectives.

The collective API moved onto the communicator objects themselves
(:class:`repro.ampi.mpi.AmpiRank` / :class:`repro.ampi.mpi.CommView`):
``yield from rank.allreduce_device(buf, nbytes, op=ReduceOp.SUM)`` instead
of ``yield from allreduce_device(rank, buf, nbytes, "sum")``.  The method
API adds per-call ``algorithm=`` overrides, topology-aware algorithm
selection, and sub-communicator support; these shims keep the old call
sites working with identical modeled timing, warning once per entry point
(per the repo's deprecation policy — the warning class is an error under
pytest unless explicitly expected).
"""

from __future__ import annotations

import warnings
from typing import Any, List, Optional

from repro.collectives.engine import COLL_COMM as _COLL_COMM  # noqa: F401 (re-export)
from repro.collectives.ops import ReduceOp  # noqa: F401 (re-export)
from repro.hardware.memory import Buffer

__all__ = [
    "allgather", "allreduce", "allreduce_device", "alltoall", "barrier",
    "bcast", "bcast_device", "gather", "reduce", "reduce_device", "scatter",
]

_warned: set = set()


def _deprecated(name: str, replacement: str) -> None:
    if name in _warned:
        return
    _warned.add(name)
    warnings.warn(
        f"repro.ampi.collectives.{name}(rank, ...) is deprecated; "
        f"use the communicator method {replacement}",
        DeprecationWarning,
        stacklevel=3,
    )


# -- host-value collectives (old free-function signatures) ----------------------
def barrier(rank):
    _deprecated("barrier", "rank.barrier()")
    return rank.barrier()


def bcast(rank, value: Any, root: int, nbytes: int = 8):
    _deprecated("bcast", "rank.bcast(value, root)")
    return rank.bcast(value, root, nbytes)


def reduce(rank, value: Any, op: str, root: int, nbytes: int = 8):
    _deprecated("reduce", "rank.reduce(value, op, root)")
    return rank.reduce(value, op, root, nbytes)


def allreduce(rank, value: Any, op: str, nbytes: int = 8):
    _deprecated("allreduce", "rank.allreduce(value, op)")
    return rank.allreduce(value, op, nbytes)


def gather(rank, value: Any, root: int, nbytes: int = 8):
    _deprecated("gather", "rank.gather(value, root)")
    return rank.gather(value, root, nbytes)


def allgather(rank, value: Any, nbytes: int = 8):
    _deprecated("allgather", "rank.allgather(value)")
    return rank.allgather(value, nbytes)


def scatter(rank, values: Optional[List[Any]], root: int, nbytes: int = 8):
    _deprecated("scatter", "rank.scatter(values, root)")
    return rank.scatter(values, root, nbytes)


def alltoall(rank, values: List[Any], nbytes: int = 8):
    _deprecated("alltoall", "rank.alltoall(values)")
    return rank.alltoall(values, nbytes)


# -- device-buffer collectives --------------------------------------------------
def bcast_device(rank, buf: Buffer, nbytes: int, root: int):
    _deprecated("bcast_device", "rank.bcast_device(buf, nbytes, root)")
    return rank.bcast_device(buf, nbytes, root)


def reduce_device(rank, buf: Buffer, nbytes: int, op: str, root: int):
    _deprecated("reduce_device", "rank.reduce_device(buf, nbytes, op, root)")
    return rank.reduce_device(buf, nbytes, op, root)


def allreduce_device(rank, buf: Buffer, nbytes: int, op: str):
    _deprecated("allreduce_device", "rank.allreduce_device(buf, nbytes, op)")
    return rank.allreduce_device(buf, nbytes, op)
