"""MPI collectives built by translating to point-to-point calls.

This is the strategy the paper names as future work for the Charm++
ecosystem ("supporting collective communication of GPU data, using this
work as the basis to translate collective communication primitives to
point-to-point calls"); AMPI itself of course provides MPI collectives, so
we implement the classical algorithms here:

* barrier — dissemination (⌈log2 P⌉ rounds);
* bcast / reduce — binomial trees;
* allreduce — reduce + bcast;
* gather / scatter — linear to/from the root;
* allgather — ring;
* alltoall — pairwise exchange;
* bcast_device — binomial tree of GPU-aware pt2pt sends (the GPU-data
  collective of the future-work paragraph).

All are generator functions composed with ``yield from`` inside rank
programs.  Value-based variants move Python/NumPy values; ``bcast_device``
moves real device buffers through the GPU-aware path.
"""

from __future__ import annotations

from typing import Any, List, Optional

import numpy as np

from repro.hardware.memory import Buffer

#: Collectives run on the reserved internal communicator.
_COLL_COMM = 1


def _combine(op: str, a: Any, b: Any) -> Any:
    if op == "sum":
        return a + b
    if op == "prod":
        return a * b
    if op == "max":
        return np.maximum(a, b) if isinstance(a, np.ndarray) else max(a, b)
    if op == "min":
        return np.minimum(a, b) if isinstance(a, np.ndarray) else min(a, b)
    raise ValueError(f"unknown reduction op {op!r}")


def barrier(rank):
    """Dissemination barrier."""
    p = rank.size
    if p == 1:
        return
    k = 1
    round_no = 0
    while k < p:
        dst = (rank.rank + k) % p
        src = (rank.rank - k) % p
        tag = 0x10_0000 + round_no
        send = rank.send_value(None, 8, dst, tag, comm=_COLL_COMM)
        yield rank.recv_value(src, tag, comm=_COLL_COMM)
        yield send
        k <<= 1
        round_no += 1


def _binomial_children(vrank: int, p: int) -> List[int]:
    children = []
    mask = 1
    while mask < p:
        if vrank & (mask - 1) == 0 and vrank | mask != vrank and vrank + mask < p:
            if vrank & mask == 0:
                children.append(vrank + mask)
        mask <<= 1
    return children


def _binomial_parent(vrank: int) -> int:
    if vrank == 0:
        return -1
    mask = 1
    while vrank & mask == 0:
        mask <<= 1
    return vrank & ~mask


def bcast(rank, value: Any, root: int, nbytes: int = 8):
    """Binomial-tree broadcast; every rank returns the broadcast value."""
    p = rank.size
    vrank = (rank.rank - root) % p
    tag = 0x11_0000
    if vrank != 0:
        parent = (_binomial_parent(vrank) + root) % p
        status = yield rank.recv_value(parent, tag, comm=_COLL_COMM)
        value = status.value
    for child in _binomial_children(vrank, p):
        yield rank.send_value(value, nbytes, (child + root) % p, tag, comm=_COLL_COMM)
    return value


def reduce(rank, value: Any, op: str, root: int, nbytes: int = 8):
    """Binomial-tree reduction; the root returns the result, others None."""
    p = rank.size
    vrank = (rank.rank - root) % p
    tag = 0x12_0000
    acc = value
    mask = 1
    while mask < p:
        if vrank & mask:
            parent = ((vrank & ~mask) + root) % p
            yield rank.send_value(acc, nbytes, parent, tag + mask, comm=_COLL_COMM)
            return None
        child = vrank | mask
        if child < p:
            status = yield rank.recv_value((child + root) % p, tag + mask, comm=_COLL_COMM)
            acc = _combine(op, acc, status.value)
        mask <<= 1
    return acc


def allreduce(rank, value: Any, op: str, nbytes: int = 8):
    """Reduce to rank 0, then broadcast."""
    acc = yield from reduce(rank, value, op, 0, nbytes)
    result = yield from bcast(rank, acc, 0, nbytes)
    return result


def gather(rank, value: Any, root: int, nbytes: int = 8):
    """Linear gather; the root returns the list ordered by rank."""
    tag = 0x13_0000
    if rank.rank == root:
        out: List[Any] = [None] * rank.size
        out[root] = value
        for _ in range(rank.size - 1):
            status = yield rank.recv_value(-1, tag, comm=_COLL_COMM)
            out[status.source] = status.value
        return out
    yield rank.send_value(value, nbytes, root, tag, comm=_COLL_COMM)
    return None


def scatter(rank, values: Optional[List[Any]], root: int, nbytes: int = 8):
    """Linear scatter from the root; every rank returns its element."""
    tag = 0x14_0000
    if rank.rank == root:
        if values is None or len(values) != rank.size:
            raise ValueError("root must supply one value per rank")
        for dst in range(rank.size):
            if dst != root:
                yield rank.send_value(values[dst], nbytes, dst, tag, comm=_COLL_COMM)
        return values[root]
    status = yield rank.recv_value(root, tag, comm=_COLL_COMM)
    return status.value


def allgather(rank, value: Any, nbytes: int = 8):
    """Ring allgather: P-1 steps, each forwarding the newest block."""
    p = rank.size
    out: List[Any] = [None] * p
    out[rank.rank] = value
    if p == 1:
        return out
    right = (rank.rank + 1) % p
    left = (rank.rank - 1) % p
    tag = 0x15_0000
    carry_idx = rank.rank
    for step in range(p - 1):
        send = rank.send_value((carry_idx, out[carry_idx]), nbytes, right,
                               tag + step, comm=_COLL_COMM)
        status = yield rank.recv_value(left, tag + step, comm=_COLL_COMM)
        yield send
        carry_idx, block = status.value
        out[carry_idx] = block
    return out


def alltoall(rank, values: List[Any], nbytes: int = 8):
    """Pairwise-exchange all-to-all."""
    p = rank.size
    if len(values) != p:
        raise ValueError("alltoall needs one value per destination")
    out: List[Any] = [None] * p
    out[rank.rank] = values[rank.rank]
    tag = 0x16_0000
    for step in range(1, p):
        dst = (rank.rank + step) % p
        src = (rank.rank - step) % p
        send = rank.send_value(values[dst], nbytes, dst, tag + step, comm=_COLL_COMM)
        status = yield rank.recv_value(src, tag + step, comm=_COLL_COMM)
        yield send
        out[src] = status.value
    return out


def _combine_kernel(rank, acc: Buffer, incoming: Buffer, nbytes: int, op: str):
    """Launch an elementwise combine kernel on the rank's GPU:
    ``acc = acc <op> incoming`` over float64 payloads."""
    import numpy as np

    from repro.hardware.gpu import Kernel

    def body() -> None:
        if acc.data is None or incoming.data is None:
            return
        a = acc.data.view(np.float64)
        b = incoming.data.view(np.float64)
        n = nbytes // 8
        if op == "sum":
            a[:n] += b[:n]
        elif op == "max":
            np.maximum(a[:n], b[:n], out=a[:n])
        elif op == "min":
            np.minimum(a[:n], b[:n], out=a[:n])
        else:  # pragma: no cover - guarded by caller
            raise ValueError(op)

    cuda = rank.charm.cuda
    # 2 reads + 1 write per element
    kernel = Kernel(f"combine-{op}", bytes_moved=3 * nbytes, body=body)
    return cuda.launch(rank.gpu, kernel)


def reduce_device(rank, buf: Buffer, nbytes: int, op: str, root: int):
    """GPU-data reduction translated to point-to-point (paper SVI future
    work).  ``buf`` holds this rank's contribution on entry and — at the
    root — the combined result on exit.  Binomial tree; each combine step
    is a GPU kernel over a scratch buffer."""
    if not buf.on_device:
        raise ValueError("reduce_device requires a device buffer")
    if op not in ("sum", "max", "min"):
        raise ValueError(f"reduce_device supports sum/max/min, not {op!r}")
    p = rank.size
    vrank = (rank.rank - root) % p
    tag = 0x18_0000
    scratch = None
    mask = 1
    while mask < p:
        if vrank & mask:
            parent = ((vrank & ~mask) + root) % p
            yield rank.send(buf, nbytes, parent, tag + mask)
            return
        child = vrank | mask
        if child < p:
            if scratch is None:
                scratch = rank.charm.cuda.malloc(
                    rank.gpu, nbytes, materialize=not buf.is_virtual
                )
            yield rank.recv(scratch, nbytes, (child + root) % p, tag + mask)
            yield _combine_kernel(rank, buf, scratch, nbytes, op)
        mask <<= 1


def allreduce_device(rank, buf: Buffer, nbytes: int, op: str):
    """Reduce to rank 0, then broadcast — all on GPU buffers."""
    yield from reduce_device(rank, buf, nbytes, op, root=0)
    yield from bcast_device(rank, buf, nbytes, root=0)


def bcast_device(rank, buf: Buffer, nbytes: int, root: int):
    """GPU-data broadcast translated to GPU-aware point-to-point sends
    (binomial tree).  ``buf`` holds the payload at the root and receives it
    everywhere else — the paper's future-work collective, working today
    because pt2pt is device-aware."""
    if not buf.on_device:
        raise ValueError("bcast_device requires a device buffer")
    p = rank.size
    vrank = (rank.rank - root) % p
    tag = 0x17_0000
    if vrank != 0:
        parent = (_binomial_parent(vrank) + root) % p
        yield rank.recv(buf, nbytes, parent, tag)
    for child in _binomial_children(vrank, p):
        yield rank.send(buf, nbytes, (child + root) % p, tag)
