"""Unified public facade: build machine + model + tracer in one place.

Before this module, every consumer used a different incantation per model::

    charm = Charm(cfg)                    # Charm++
    lib = Ampi(Charm(cfg))                # AMPI
    lib = OpenMpi(cfg)                    # OpenMPI
    lib = Charm4py(cfg)                   # Charm4py

Now there is one documented entry point::

    import repro.api as api

    sess = (api.session(MachineConfig.summit(nodes=2))
               .model("ampi")
               .trace()          # enable span-tree tracing
               .build())
    done = sess.launch(program)
    sess.run_until(done)
    sess.export_chrome_trace("timeline.json")   # open in ui.perfetto.dev
    snap = sess.metrics_snapshot()              # counters/histograms/times

The session exposes the underlying model object (``sess.lib``) unchanged, so
every existing program body (``lib.launch``, rank generators, proxies) works
as before — the facade standardises *construction and observation*, not the
programming models themselves.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional, Union

from repro.config import MachineConfig
from repro.obs import chrome_trace, export_chrome_trace, metrics_snapshot
from repro.obs.congestion import CongestionReport, congestion_report
from repro.obs.critical_path import CriticalPathReport, critical_path
from repro.obs.timeline import timeline_dict

__all__ = ["MODELS", "Session", "SessionBuilder", "session", "build"]

#: Model names accepted by :meth:`SessionBuilder.model`.
MODELS = ("charm", "ampi", "openmpi", "charm4py")


class Session:
    """One built simulation: machine + model frontend + tracer."""

    def __init__(self, config: MachineConfig, model: str, lib, charm, machine) -> None:
        self.config = config
        self.model = model
        #: the model frontend object (Charm / Ampi / OpenMpi / Charm4py)
        self.lib = lib
        #: the underlying Charm runtime, if the model runs on one (else None)
        self.charm = charm
        self.machine = machine

    # -- simulation handles -----------------------------------------------------
    @property
    def sim(self):
        return self.machine.sim

    @property
    def now(self) -> float:
        return self.machine.sim.now

    @property
    def tracer(self):
        return self.machine.tracer

    @property
    def counters(self):
        return self.machine.tracer.counters

    # -- running workloads -------------------------------------------------------
    def launch(self, program, *args):
        """Start ``program`` on the model frontend (same semantics as the
        frontend's own ``launch``)."""
        return self.lib.launch(program, *args)

    def run_until(self, event, max_events: Optional[int] = None):
        return self.machine.sim.run_until_complete(event, max_events=max_events)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        self.machine.sim.run(until=until, max_events=max_events)

    # -- observability -------------------------------------------------------------
    def metrics_snapshot(self) -> Dict:
        """Plain-dict metrics snapshot (``counters`` / ``gauges`` /
        ``histograms`` / ``time_by_category``)."""
        return metrics_snapshot(self.machine.tracer)

    def chrome_trace(self) -> Dict:
        """The traced span tree as a Chrome trace-event JSON dict."""
        return chrome_trace(self.machine.tracer, process_name=f"repro-{self.model}")

    def export_chrome_trace(self, path: Union[str, Path]) -> Path:
        """Write the Chrome-trace JSON timeline to ``path``."""
        return export_chrome_trace(
            self.machine.tracer, path, process_name=f"repro-{self.model}"
        )

    def flight_records(self):
        """Per-message device-transfer lifecycles (needs ``.flight()``;
        empty list when flight recording is disabled)."""
        return self.machine.tracer.flight.records()

    def flight_summary(self) -> Dict:
        """Aggregate flight statistics: per-protocol delayed-posting cost,
        unexpected-arrival counts, posting-order inversions."""
        return self.machine.tracer.flight.aggregate()

    def critical_path(self, t0: Optional[float] = None,
                      t1: Optional[float] = None) -> CriticalPathReport:
        """Critical chain + per-layer blame over the traced window
        (requires tracing; see :mod:`repro.obs.critical_path`)."""
        return critical_path(self.machine.tracer, t0, t1)

    def timeline(self) -> Dict:
        """JSON-ready dict of every telemetry series — per-series unit,
        exact count/min/mean/max stats and the retained (decimated)
        points.  Needs ``.telemetry()``; ``series`` is empty without it."""
        return timeline_dict(self.machine.tracer.timeline)

    def export_timeline(self, path: Union[str, Path]) -> Path:
        """Write :meth:`timeline` as JSON to ``path`` (the format
        ``python -m repro.bench.timeline summary`` reads)."""
        import json

        path = Path(path)
        path.write_text(json.dumps(self.timeline()))
        return path

    def congestion_report(self, top_n: int = 5) -> CongestionReport:
        """Congestion attribution over the whole run: top contended links
        with who waited on them, saturation windows, endpoint-thrash
        verdict (requires ``.telemetry()``)."""
        return congestion_report(self.machine.tracer, top_n=top_n)

    def collectives_summary(self) -> Dict:
        """What the device collectives did: per-collective/algorithm
        invocation counts (always available) and cumulative intra- vs
        inter-node phase time (needs ``.trace()``; zero without it)."""
        tracer = self.machine.tracer
        invocations = {
            key[len("coll."):]: count
            for key, count in sorted(self.counters.items())
            if key.startswith("coll.")
        }
        return {
            "invocations": invocations,
            "intra_time_us": tracer.time_in("coll.intra") * 1e6,
            "inter_time_us": tracer.time_in("coll.inter") * 1e6,
        }

    def baseline_fingerprint(self) -> Dict:
        """Deterministic run fingerprint used by the perf-regression
        baseline gate (:mod:`repro.obs.baseline`)."""
        agg = self.machine.tracer.flight.aggregate()
        return {
            "sim_time_us": self.now * 1e6,
            "events": self.sim.event_count,
            "counters": dict(sorted(self.counters.items())),
            "posting": {
                "delayed_posting_us": agg["delayed_posting_seconds"] * 1e6,
                "rndv_delayed_posting_us":
                    agg["by_protocol"]["rndv"]["delayed_posting_seconds"] * 1e6,
                "eager_delayed_posting_us":
                    agg["by_protocol"]["eager"]["delayed_posting_seconds"] * 1e6,
                "inversions": agg["posting_inversions"],
                "n_records": agg["n_records"],
            },
        }


class SessionBuilder:
    """Fluent builder: ``api.session(cfg).model("ampi").trace().build()``."""

    def __init__(self, config: Optional[MachineConfig] = None) -> None:
        self._config = config
        self._model = "charm"
        self._nodes: Optional[int] = None
        self._trace: Optional[bool] = None
        self._flight: Optional[bool] = None
        self._telemetry: Optional[bool] = None
        self._telemetry_capacity: Optional[int] = None
        self._gdrcopy: Optional[bool] = None
        self._n_ranks: Optional[int] = None
        self._ranks_per_pe: int = 1
        self._n_pes: Optional[int] = None
        self._faults = None
        self._collectives: Optional[Dict] = None
        self._memory: Optional[Dict] = None
        self._multirail: Optional[Dict] = None

    def model(self, name: str) -> "SessionBuilder":
        if name not in MODELS:
            raise ValueError(f"unknown model {name!r}; choose from {MODELS}")
        self._model = name
        return self

    def nodes(self, nodes: int) -> "SessionBuilder":
        self._nodes = nodes
        return self

    def trace(self, enabled: bool = True) -> "SessionBuilder":
        self._trace = enabled
        return self

    def flight(self, enabled: bool = True) -> "SessionBuilder":
        """Enable message-lifecycle flight recording (observation-only)."""
        self._flight = enabled
        return self

    def telemetry(self, enabled: bool = True,
                  capacity: Optional[int] = None) -> "SessionBuilder":
        """Enable resource-telemetry timelines (observation-only):
        link/queue/pool/endpoint occupancy series behind
        :meth:`Session.timeline` and :meth:`Session.congestion_report`.
        ``capacity`` overrides the per-series ring-buffer size."""
        self._telemetry = enabled
        if capacity is not None:
            self._telemetry_capacity = capacity
        return self

    def gdrcopy(self, enabled: bool) -> "SessionBuilder":
        self._gdrcopy = enabled
        return self

    def faults(self, plan) -> "SessionBuilder":
        """Attach a deterministic :class:`repro.faults.FaultPlan`.  An empty
        plan is bit-identical to no plan; ``None`` clears a previous one."""
        self._faults = plan
        return self

    def collectives(self, **overrides) -> "SessionBuilder":
        """Collective-algorithm knobs (``CollectivesConfig`` fields):
        per-collective forced algorithms (``allreduce_algorithm="ring"``),
        the global ``algorithm``, ``ring_chunk``, ``hierarchical_enabled``."""
        merged = dict(self._collectives or {})
        merged.update(overrides)
        self._collectives = merged
        return self

    def memory(self, **overrides) -> "SessionBuilder":
        """Allocator knobs (``MemoryConfig`` fields): ``allocator="pool"``,
        ``pool_slab_bytes``, ``pool_bin_quantum``, ``pool_max_bytes``,
        ``pool_auto_trim``, ``pool_retain_slabs``."""
        merged = dict(self._memory or {})
        merged.update(overrides)
        self._memory = merged
        return self

    def multirail(self, enabled: bool = True, **overrides) -> "SessionBuilder":
        """Multi-rail striped bulk transfers (``MultirailConfig`` fields):
        ``max_rails``, ``chunk_bytes``, ``min_bytes``, ``window``,
        ``graph_launch``.  Default off — ``multirail()`` turns striping on,
        ``multirail(False)`` pins it off explicitly."""
        merged = dict(self._multirail or {})
        merged.update(overrides)
        merged["enabled"] = enabled
        self._multirail = merged
        return self

    def pool(self, enabled: bool = True) -> "SessionBuilder":
        """Shorthand: route device allocation through the slab pool (or
        explicitly through the direct allocator with ``pool(False)``)."""
        return self.memory(allocator="pool" if enabled else "direct")

    def ranks(self, n_ranks: Optional[int] = None, ranks_per_pe: int = 1) -> "SessionBuilder":
        """MPI-model rank layout (AMPI virtualisation via ``ranks_per_pe``)."""
        self._n_ranks = n_ranks
        self._ranks_per_pe = ranks_per_pe
        return self

    def pes(self, n_pes: Optional[int]) -> "SessionBuilder":
        self._n_pes = n_pes
        return self

    def build(self) -> Session:
        # imports deferred: the facade must stay importable without pulling
        # the whole model graph until a session is actually built
        from repro.ampi import Ampi
        from repro.charm import Charm
        from repro.charm4py import Charm4py
        from repro.openmpi import OpenMpi

        cfg = self._config if self._config is not None else MachineConfig.default()
        if self._nodes is not None:
            cfg = cfg.with_nodes(self._nodes)
        if self._gdrcopy is False:
            cfg = cfg.without_gdrcopy()
        if self._trace is not None:
            cfg = cfg.with_trace(self._trace)
        if self._flight is not None:
            cfg = cfg.with_flight(self._flight)
        if self._telemetry is not None or self._telemetry_capacity is not None:
            cfg = cfg.with_telemetry(
                self._telemetry if self._telemetry is not None
                else cfg.telemetry,
                capacity=self._telemetry_capacity,
            )
        if self._faults is not None:
            cfg = cfg.with_faults(self._faults)
        if self._collectives:
            cfg = cfg.with_collectives(**self._collectives)
        if self._memory:
            cfg = cfg.with_memory(**self._memory)
        if self._multirail is not None:
            mr = dict(self._multirail)
            cfg = cfg.with_multirail(mr.pop("enabled", True), **mr)

        name = self._model
        charm = None
        if name == "charm":
            lib = charm = Charm(cfg, n_pes=self._n_pes)
            machine = charm.machine
        elif name == "ampi":
            charm = Charm(cfg, n_pes=self._n_pes)
            lib = Ampi(charm, n_ranks=self._n_ranks, ranks_per_pe=self._ranks_per_pe)
            machine = charm.machine
        elif name == "openmpi":
            lib = OpenMpi(cfg, n_ranks=self._n_ranks)
            machine = lib.machine
        else:  # charm4py
            lib = Charm4py(cfg)
            charm = lib.charm
            machine = charm.machine
        return Session(cfg, name, lib, charm, machine)


def session(config: Optional[MachineConfig] = None) -> SessionBuilder:
    """Start building a session: ``api.session(cfg).model("ampi").build()``."""
    return SessionBuilder(config)


def build(
    config: Optional[MachineConfig] = None, model: str = "charm", **kwargs
) -> Session:
    """One-shot convenience: ``api.build(cfg, "openmpi", n_ranks=2)``.

    Keyword arguments map to the builder methods: ``nodes``, ``trace``,
    ``flight``, ``telemetry``, ``gdrcopy``, ``faults``, ``collectives``
    (a dict of ``CollectivesConfig`` overrides), ``multirail`` (a bool or a
    dict of ``MultirailConfig`` overrides), ``n_ranks``, ``ranks_per_pe``,
    ``n_pes``.
    """
    b = session(config).model(model)
    if "nodes" in kwargs:
        b.nodes(kwargs.pop("nodes"))
    if "collectives" in kwargs:
        b.collectives(**kwargs.pop("collectives"))
    if "memory" in kwargs:
        b.memory(**kwargs.pop("memory"))
    if "multirail" in kwargs:
        mr = kwargs.pop("multirail")
        if isinstance(mr, bool):
            b.multirail(mr)
        else:
            mr = dict(mr)
            b.multirail(mr.pop("enabled", True), **mr)
    if "trace" in kwargs:
        b.trace(kwargs.pop("trace"))
    if "flight" in kwargs:
        b.flight(kwargs.pop("flight"))
    if "telemetry" in kwargs:
        b.telemetry(kwargs.pop("telemetry"))
    if "gdrcopy" in kwargs:
        b.gdrcopy(kwargs.pop("gdrcopy"))
    if "faults" in kwargs:
        b.faults(kwargs.pop("faults"))
    if "n_ranks" in kwargs or "ranks_per_pe" in kwargs:
        b.ranks(kwargs.pop("n_ranks", None), kwargs.pop("ranks_per_pe", 1))
    if "n_pes" in kwargs:
        b.pes(kwargs.pop("n_pes"))
    if kwargs:
        raise TypeError(f"unknown session option(s): {sorted(kwargs)}")
    return b.build()
